"""Tests for incremental HEEB computation (Corollaries 3-5, Section 4.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ecb import ecb_join
from repro.core.heeb import heeb_cache, heeb_join
from repro.core.incremental import (
    IncrementalHeebTracker,
    cache_step,
    join_step,
    value_shifted_time,
)
from repro.core.lifetime import LExp
from repro.streams import (
    LinearTrendStream,
    RandomWalkStream,
    StationaryStream,
    bounded_uniform,
    discretized_normal,
    from_mapping,
)

ALPHA = 6.0
HORIZON = 400  # deep enough that truncation error is ~e^-66


@pytest.fixture
def trend():
    return LinearTrendStream(bounded_uniform(4), speed=1.0)


class TestJoinStep:
    def test_matches_direct_for_stationary(self, stationary_stream):
        L = LExp(ALPHA)
        h_prev = heeb_join(stationary_stream, 0, 1, L, HORIZON)
        stepped = join_step(h_prev, ALPHA, stationary_stream.prob(1, 1))
        direct = heeb_join(stationary_stream, 1, 1, L, HORIZON)
        assert stepped == pytest.approx(direct, abs=1e-9)

    def test_matches_direct_for_trend(self, trend):
        L = LExp(ALPHA)
        value = 20
        for t0 in range(14, 26):
            h_prev = heeb_join(trend, t0, value, L, HORIZON)
            stepped = join_step(h_prev, ALPHA, trend.prob(t0 + 1, value))
            direct = heeb_join(trend, t0 + 1, value, L, HORIZON)
            assert stepped == pytest.approx(direct, abs=1e-8)


class TestCacheStep:
    def test_matches_direct_for_stationary(self, stationary_stream):
        L = LExp(ALPHA)
        h_prev = heeb_cache(stationary_stream, 0, 1, L, HORIZON)
        stepped = cache_step(h_prev, ALPHA, stationary_stream.prob(1, 1))
        direct = heeb_cache(stationary_stream, 1, 1, L, HORIZON)
        assert stepped == pytest.approx(direct, abs=1e-9)

    def test_matches_direct_for_trend(self, trend):
        L = LExp(ALPHA)
        value = 21
        for t0 in range(15, 24):
            h_prev = heeb_cache(trend, t0, value, L, HORIZON)
            stepped = cache_step(h_prev, ALPHA, trend.prob(t0 + 1, value))
            direct = heeb_cache(trend, t0 + 1, value, L, HORIZON)
            assert stepped == pytest.approx(direct, abs=1e-8)

    def test_rejects_certain_reference(self):
        with pytest.raises(ValueError):
            cache_step(0.5, ALPHA, 1.0)


class TestTracker:
    def test_tracks_over_many_steps_with_resync(self, trend):
        tracker = IncrementalHeebTracker(
            trend, "join", 40, 10, LExp(ALPHA), horizon=HORIZON, resync_every=16
        )
        L = LExp(ALPHA)
        for _ in range(60):
            tracker.advance()
            direct = heeb_join(trend, tracker.time, 40, L, HORIZON)
            assert tracker.h == pytest.approx(direct, abs=1e-6)

    def test_h_goes_to_zero_after_window(self, trend):
        tracker = IncrementalHeebTracker(
            trend, "join", 10, 9, LExp(ALPHA), horizon=HORIZON, resync_every=8
        )
        for _ in range(30):
            tracker.advance()
        assert tracker.h == pytest.approx(0.0, abs=1e-9)

    def test_rejects_markov_models(self):
        walk = RandomWalkStream(discretized_normal(1.0))
        with pytest.raises(ValueError):
            IncrementalHeebTracker(walk, "join", 0, 0, LExp(ALPHA))

    def test_rejects_unknown_kind(self, stationary_stream):
        with pytest.raises(ValueError):
            IncrementalHeebTracker(
                stationary_stream, "nope", 1, 0, LExp(ALPHA)
            )

    def test_error_amplification_without_resync(self, trend):
        """The documented numerical caveat: disabling re-sync lets the
        e^{1/α} amplification blow up small truncation errors."""
        short_horizon = 40  # deliberately truncated
        tracker = IncrementalHeebTracker(
            trend,
            "join",
            55,  # value just beyond the truncated horizon: the initial H
            10,  # misses a small-but-nonzero tail that then amplifies
            LExp(ALPHA),
            horizon=short_horizon,
            resync_every=0,
        )
        for _ in range(400):
            tracker.advance()
        # With resync the value would be ~0; without, the amplified
        # truncation error dominates.
        assert abs(tracker.h) > 1.0


class TestValueIncremental:
    def test_corollary5_time_shift(self, trend):
        """B_{v,t} = B_{v + a(t'−t), t'} for linear-trend streams."""
        t, t_prime = 30, 42
        v = 25
        shifted_v = v + 1 * (t_prime - t)
        b_now = ecb_join(trend, t, v, 20)
        b_later = ecb_join(trend, t_prime, shifted_v, 20)
        assert np.allclose(b_now.cumulative, b_later.cumulative)

    def test_value_shifted_time_solves(self):
        t = value_shifted_time(value_new=25, value_anchor=37, t_anchor=42, slope=1.0)
        assert t == pytest.approx(54.0)

    def test_value_shifted_time_rejects_zero_slope(self):
        with pytest.raises(ValueError):
            value_shifted_time(1, 2, 3, 0.0)

    def test_h_equal_at_shifted_time(self, trend):
        """Corollary 5 applied to H: same offset ⇒ same H."""
        L = LExp(ALPHA)
        h_a = heeb_join(trend, 30, 33, L, HORIZON)
        h_b = heeb_join(trend, 50, 53, L, HORIZON)
        assert h_a == pytest.approx(h_b, abs=1e-10)
