"""Sim-vs-server parity: the serving tier is the simulator's semantics.

The single-shard :class:`repro.serve.StreamServer` drives the same pure
step functions (:mod:`repro.sim.step`) as the scalar simulators and
shares the caller's recorder verbatim, so replaying a seeded stream
through both must produce *byte-identical* decisions: the same join
results, the same kept/victim uids in the same order (pinned through
JSONL trace events), and the same :mod:`repro.obs` counters and series.
This is the acceptance gate of the serving tier — any drift between the
driver loops is a bug in one of them.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.obs import CounterRecorder, TraceRecorder, read_trace
from repro.policies import make_policy
from repro.serve import StreamServer, run_replay
from repro.serve.replay import (
    arrivals_from_trace,
    generate_join_stream,
    generate_reference_stream,
)
from repro.sim import ExperimentSpec
from repro.sim.cache_sim import CacheSimulator
from repro.sim.join_sim import JoinSimulator
from repro.streams import (
    LinearTrendStream,
    StationaryStream,
    bounded_uniform,
    from_mapping,
)

LENGTH = 400
CACHE = 8
SEED = 20260808


def _models():
    r_model = LinearTrendStream(bounded_uniform(6), speed=1.0, lag=1)
    s_model = LinearTrendStream(bounded_uniform(9), speed=1.0, lag=0)
    return r_model, s_model


def _server_replay(spec, policy_factory, r_values, s_values, recorder):
    """One-producer, single-shard replay (the parity configuration)."""
    return run_replay(
        spec,
        policy_factory,
        r_values,
        s_values,
        n_shards=1,
        recorder=recorder,
    )


@pytest.mark.parametrize("policy_name", ["lru", "lfu"])
def test_join_counters_match_simulator(policy_name):
    r_model, s_model = _models()
    r_values, s_values = generate_join_stream(r_model, s_model, LENGTH, SEED)
    spec = ExperimentSpec(kind="join", cache_size=CACHE)

    rec_sim = CounterRecorder()
    sim = JoinSimulator(
        policy=make_policy(policy_name), cache_size=CACHE, recorder=rec_sim
    )
    sim_result = sim.run(r_values, s_values)

    rec_srv = CounterRecorder()
    summary = _server_replay(
        spec, lambda: make_policy(policy_name), r_values, s_values, rec_srv
    )

    assert summary.total_results == sim_result.total_results
    # Every simulator counter appears in the server run with the same
    # value; the server only adds serve.* bookkeeping on top.
    for key, value in rec_sim.counters.items():
        assert rec_srv.counters.get(key) == value, key
    extras = set(rec_srv.counters) - set(rec_sim.counters)
    assert all(k.startswith("serve.") for k in extras), extras


def test_join_trace_events_are_byte_identical(tmp_path):
    """Kept/victim decisions pinned event by event through the trace."""
    r_model, s_model = _models()
    r_values, s_values = generate_join_stream(r_model, s_model, LENGTH, SEED)
    spec = ExperimentSpec(kind="join", cache_size=CACHE)

    sim_path = tmp_path / "sim.jsonl"
    rec_sim = TraceRecorder(path=sim_path)
    sim = JoinSimulator(
        policy=make_policy("lru"), cache_size=CACHE, recorder=rec_sim
    )
    sim.run(r_values, s_values)
    rec_sim.close()

    srv_path = tmp_path / "srv.jsonl"
    rec_srv = TraceRecorder(path=srv_path)
    _server_replay(spec, lambda: make_policy("lru"), r_values, s_values, rec_srv)
    rec_srv.close()

    def step_events(path):
        # The server's producer interleaves serve.queue_depth series
        # records between step records; everything else comes from the
        # shared step function and must match byte for byte, victim
        # uids included.
        return [
            e
            for e in read_trace(path)
            if not str(e.get("name", "")).startswith("serve.")
        ]

    sim_events = step_events(sim_path)
    srv_events = step_events(srv_path)
    assert sim_events == srv_events
    assert any(e["kind"] == "evict" for e in sim_events)


def test_join_windowed_and_banded_parity():
    # A roomy cache makes sliding-window expiry (not policy pressure)
    # the dominant eviction mode, so the expiry counter is exercised.
    cache_size = 64
    r_model, s_model = _models()
    r_values, s_values = generate_join_stream(r_model, s_model, LENGTH, SEED)
    spec = ExperimentSpec(kind="join", cache_size=cache_size, window=20, band=2)

    rec_sim = CounterRecorder()
    sim = JoinSimulator(
        policy=make_policy("lru"),
        cache_size=cache_size,
        window=20,
        band=2,
        recorder=rec_sim,
    )
    sim_result = sim.run(r_values, s_values)

    rec_srv = CounterRecorder()
    summary = _server_replay(
        spec, lambda: make_policy("lru"), r_values, s_values, rec_srv
    )
    assert summary.total_results == sim_result.total_results
    assert rec_sim.counters.get("evict.window_expired", 0) > 0
    for key, value in rec_sim.counters.items():
        assert rec_srv.counters.get(key) == value, key


def test_join_final_cache_contents_match():
    """Same kept tuples (uid, side, value, arrival) after the stream."""
    r_model, s_model = _models()
    r_values, s_values = generate_join_stream(r_model, s_model, LENGTH, SEED)
    spec = ExperimentSpec(kind="join", cache_size=CACHE)

    # The simulator exposes no final cache, so rebuild it through a
    # manual driver over the shared step function and compare against
    # the server (which does expose its cached tuples).
    from repro.sim.step import join_step, make_join_state

    state = make_join_state(CACHE, make_policy("lru"))
    for t in range(LENGTH):
        join_step(state, t, r_values[t], s_values[t])
    sim_kept = sorted(
        (tup.uid, tup.side, tup.value, tup.arrival)
        for tup in state.cache.tuples()
    )

    async def run_server():
        server = StreamServer(spec, lambda: make_policy("lru"))
        await server.start()
        for t in range(LENGTH):
            await server.submit(t, r_values[t], s_values[t])
        await server.drain()
        kept = sorted(
            (tup.uid, tup.side, tup.value, tup.arrival)
            for tup in server.cached_tuples()
        )
        await server.stop()
        return kept

    srv_kept = asyncio.run(asyncio.wait_for(run_server(), timeout=60))
    assert srv_kept == sim_kept


def test_cache_parity_hits_misses_and_counters():
    model = StationaryStream(
        from_mapping({1: 0.35, 2: 0.25, 3: 0.2, 4: 0.15, 5: 0.05})
    )
    references = generate_reference_stream(model, LENGTH, SEED)
    spec = ExperimentSpec(kind="cache", cache_size=3)

    rec_sim = CounterRecorder()
    sim = CacheSimulator(
        policy=make_policy("lru"), cache_size=3, recorder=rec_sim
    )
    sim_result = sim.run(references)

    rec_srv = CounterRecorder()
    summary = run_replay(
        spec,
        lambda: make_policy("lru"),
        references,
        n_shards=1,
        recorder=rec_srv,
    )
    assert summary.hits == sim_result.hits
    assert summary.misses == sim_result.misses
    for key, value in rec_sim.counters.items():
        assert rec_srv.counters.get(key) == value, key


def test_trace_replay_reproduces_run(tmp_path):
    """arrivals_from_trace → server replay = the original traced run."""
    r_model, s_model = _models()
    r_values, s_values = generate_join_stream(r_model, s_model, 200, SEED)
    spec = ExperimentSpec(kind="join", cache_size=CACHE)

    path = tmp_path / "run.jsonl"
    rec = TraceRecorder(path=path)
    first = _server_replay(
        spec, lambda: make_policy("lru"), r_values, s_values, rec
    )
    rec.close()

    replayed_r, replayed_s = arrivals_from_trace(str(path))
    assert replayed_r == list(r_values)
    assert replayed_s == list(s_values)
    second = _server_replay(
        spec, lambda: make_policy("lru"), replayed_r, replayed_s,
        CounterRecorder(),
    )
    assert second.total_results == first.total_results
