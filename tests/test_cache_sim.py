"""Tests for the classic caching simulator."""

from __future__ import annotations

import pytest

from repro.policies.base import PolicyContext, ScoredPolicy
from repro.policies.lfd import LfdPolicy
from repro.policies.lru import LruPolicy
from repro.sim.cache_sim import CacheSimulator


class KeepOldest(ScoredPolicy):
    name = "KEEP-OLDEST"

    def score(self, tup, ctx: PolicyContext) -> float:
        return -float(tup.uid)


class TestBasics:
    def test_all_misses_when_unique(self):
        sim = CacheSimulator(3, KeepOldest())
        result = sim.run([1, 2, 3, 4, 5])
        assert result.misses == 5 and result.hits == 0

    def test_hits_on_repeats_with_room(self):
        sim = CacheSimulator(10, KeepOldest())
        result = sim.run([1, 2, 1, 2, 1])
        assert result.misses == 2 and result.hits == 3

    def test_hit_rate(self):
        sim = CacheSimulator(10, KeepOldest())
        result = sim.run([1, 1, 1, 1])
        assert result.hit_rate == pytest.approx(0.75)

    def test_none_steps_skipped(self):
        sim = CacheSimulator(2, KeepOldest())
        result = sim.run([1, None, 1])
        assert result.hits == 1 and result.misses == 1

    def test_warmup_counters(self):
        sim = CacheSimulator(10, KeepOldest(), warmup=2)
        result = sim.run([1, 2, 1, 2])
        assert result.hits == 2 and result.hits_after_warmup == 2
        assert result.misses == 2 and result.misses_after_warmup == 0

    def test_fetched_tuple_can_be_rejected(self):
        # KEEP-OLDEST pins the first value forever with capacity 1.
        sim = CacheSimulator(1, KeepOldest())
        result = sim.run([7, 8, 9, 7])
        assert result.hits == 1  # only the final re-reference of 7

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CacheSimulator(0, KeepOldest())
        with pytest.raises(ValueError):
            CacheSimulator(1, KeepOldest(), warmup=-1)


class TestSkippedAccounting:
    """``steps`` counts observed references, never the skipped Nones.

    Regression: the loop ``continue``s past ``None`` ("−") entries
    without touching the cache, but ``steps`` used to be set to
    ``len(reference)`` — inflating it past ``hits + misses`` and making
    per-step rates wrong whenever a trace had missing values.
    """

    def test_steps_exclude_skipped_nones(self):
        sim = CacheSimulator(2, KeepOldest())
        result = sim.run([None, 1, None, 1, 2, None])
        assert result.hits == 1
        assert result.misses == 2
        assert result.steps == result.hits + result.misses == 3
        assert result.skipped == 3

    def test_all_nones(self):
        result = CacheSimulator(2, KeepOldest()).run([None] * 4)
        assert result.steps == 0
        assert result.skipped == 4
        assert result.hit_rate == 0.0

    def test_no_nones_means_no_skips(self):
        result = CacheSimulator(2, KeepOldest()).run([1, 2, 1])
        assert result.steps == 3
        assert result.skipped == 0

    def test_batch_engine_matches_scalar_accounting(self):
        from repro.policies import make_policy
        from repro.sim.runner import run_cache_experiment

        refs = [
            [1, None, 2, 1, None, 3, 2, 1],
            [None, None, 4, 4, 1, 2, None, 4],
        ]
        factory = lambda: make_policy("lru")
        scalar = run_cache_experiment(factory, refs, cache_size=2)
        batch = run_cache_experiment(factory, refs, cache_size=2,
                                     engine="batch")
        for x, y in zip(scalar.per_run, batch.per_run):
            assert x.hits == y.hits and x.misses == y.misses
            assert x.steps == y.steps == x.hits + x.misses
            assert x.skipped == y.skipped


class TestLruBehaviour:
    def test_classic_lru_trace(self):
        # Capacity 2, trace 1 2 1 3 2: LRU evicts 2 when 3 arrives
        # (1 was just used), then 2 misses again.
        sim = CacheSimulator(2, LruPolicy())
        result = sim.run([1, 2, 1, 3, 2])
        assert result.hits == 1  # the second reference to 1
        assert result.misses == 4

    def test_lru_keeps_hot_value(self):
        sim = CacheSimulator(1, LruPolicy())
        result = sim.run([5, 5, 5, 5])
        assert result.hits == 3


class TestLfdOptimality:
    def test_belady_beats_lru_on_adversarial_trace(self):
        # Cyclic trace of 3 values with capacity 2: LRU thrashes, LFD
        # keeps hits.
        trace = [1, 2, 3] * 5
        lru = CacheSimulator(2, LruPolicy()).run(trace)
        lfd = CacheSimulator(2, LfdPolicy(trace)).run(trace)
        assert lfd.hits > lru.hits

    def test_lfd_is_optimal_on_small_traces(self):
        """Compare LFD against exhaustive search over eviction choices."""
        import itertools

        def best_possible(trace, k):
            # Exhaustive DP over cache states.
            from functools import lru_cache

            trace_t = tuple(trace)

            @lru_cache(maxsize=None)
            def go(i, cache):
                if i == len(trace_t):
                    return 0
                v = trace_t[i]
                if v in cache:
                    return 1 + go(i + 1, cache)
                options = []
                if len(cache) < k:
                    options.append(go(i + 1, tuple(sorted(cache + (v,)))))
                else:
                    # replace any cached value, or don't cache v at all
                    options.append(go(i + 1, cache))
                    for out in cache:
                        nxt = tuple(sorted([c for c in cache if c != out] + [v]))
                        options.append(go(i + 1, nxt))
                return max(options)

            return go(0, ())

        import numpy as np

        rng = np.random.default_rng(7)
        for trial in range(10):
            trace = list(rng.integers(0, 4, size=12))
            lfd = CacheSimulator(2, LfdPolicy(trace)).run(trace)
            assert lfd.hits == best_possible(tuple(trace), 2)
