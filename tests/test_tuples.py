"""Tests for tuple and cache-state primitives."""

from __future__ import annotations

import pytest

from repro.core.tuples import CacheState, StreamTuple, TupleFactory, partner


class TestStreamTuple:
    def test_joins_with_opposite_side_equal_value(self):
        r = StreamTuple(0, "R", 5, 0)
        s = StreamTuple(1, "S", 5, 1)
        assert r.joins_with(s) and s.joins_with(r)

    def test_same_side_never_joins(self):
        a = StreamTuple(0, "R", 5, 0)
        b = StreamTuple(1, "R", 5, 0)
        assert not a.joins_with(b)

    def test_none_never_joins(self):
        a = StreamTuple(0, "R", None, 0)
        b = StreamTuple(1, "S", None, 0)
        assert not a.joins_with(b)

    def test_pair_values_join_on_equality(self):
        a = StreamTuple(0, "R", ("x", 2), 0)
        b = StreamTuple(1, "S", ("x", 2), 0)
        c = StreamTuple(2, "S", ("x", 3), 0)
        assert a.joins_with(b)
        assert not a.joins_with(c)

    def test_partner(self):
        assert partner("R") == "S" and partner("S") == "R"
        with pytest.raises(ValueError):
            partner("Q")


class TestTupleFactory:
    def test_unique_uids(self):
        f = TupleFactory()
        a = f.make("R", 1, 0)
        b = f.make("R", 1, 0)
        assert a.uid != b.uid
        assert a != b


class TestCacheState:
    def test_add_remove(self):
        c = CacheState()
        t = StreamTuple(0, "R", 1, 0)
        c.add(t)
        assert t in c and len(c) == 1
        c.remove(t)
        assert t not in c and len(c) == 0

    def test_add_duplicate_rejected(self):
        c = CacheState()
        t = StreamTuple(0, "R", 1, 0)
        c.add(t)
        with pytest.raises(ValueError):
            c.add(t)

    def test_remove_missing_rejected(self):
        c = CacheState()
        with pytest.raises(KeyError):
            c.remove(StreamTuple(0, "R", 1, 0))

    def test_matching(self):
        c = CacheState()
        c.add(StreamTuple(0, "R", 5, 0))
        c.add(StreamTuple(1, "R", 5, 1))
        c.add(StreamTuple(2, "S", 5, 1))
        assert len(c.matching("R", 5)) == 2
        assert len(c.matching("S", 5)) == 1
        assert c.matching("R", 6) == []
        assert c.matching("R", None) == []

    def test_matching_after_removal(self):
        c = CacheState()
        a = StreamTuple(0, "R", 5, 0)
        b = StreamTuple(1, "R", 5, 1)
        c.add(a)
        c.add(b)
        c.remove(a)
        assert c.matching("R", 5) == [b]

    def test_count_side(self):
        c = CacheState()
        c.add(StreamTuple(0, "R", 1, 0))
        c.add(StreamTuple(1, "S", 1, 0))
        c.add(StreamTuple(2, "S", 2, 0))
        assert c.count_side("R") == 1
        assert c.count_side("S") == 2

    def test_expired(self):
        c = CacheState()
        old = StreamTuple(0, "R", 1, 0)
        new = StreamTuple(1, "R", 1, 10)
        c.add(old)
        c.add(new)
        assert c.expired(5) == [old]
        assert c.expired(0) == []

    def test_none_value_tuples_not_indexed(self):
        c = CacheState()
        t = StreamTuple(0, "R", None, 0)
        c.add(t)
        assert c.matching("R", None) == []
        c.remove(t)  # removal of unindexed tuple works
        assert len(c) == 0

    def test_remove_many(self):
        c = CacheState()
        ts = [StreamTuple(i, "R", i, 0) for i in range(4)]
        for t in ts:
            c.add(t)
        c.remove_many(ts[:2])
        assert len(c) == 2
