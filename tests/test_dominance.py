"""Tests for ECB dominance (Section 4.2, Theorem 3, Corollary 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import (
    comparable,
    dominance_matrix,
    dominates,
    find_dominated_subset,
    strongly_dominates,
)
from repro.core.ecb import ECB


def ecb_of(*cumulative) -> ECB:
    return ECB(np.array(cumulative, dtype=float))


class TestPairwise:
    def test_basic_dominance(self):
        a = ecb_of(0.5, 1.0, 1.5)
        b = ecb_of(0.2, 0.9, 1.5)
        assert dominates(a, b)
        assert not strongly_dominates(a, b)  # equal at Δt=3
        assert not dominates(b, a)

    def test_strong_dominance(self):
        a = ecb_of(0.5, 1.0)
        b = ecb_of(0.2, 0.8)
        assert strongly_dominates(a, b)
        assert dominates(a, b)

    def test_incomparable_crossing(self):
        """The x-vs-z dilemma of Figure 2: crossing ECBs are incomparable."""
        x = ecb_of(0.5, 0.6, 0.6)
        z = ecb_of(0.1, 0.5, 1.2)
        assert not comparable(x, z)

    def test_self_dominance(self):
        a = ecb_of(0.3, 0.6)
        assert dominates(a, a)
        assert not strongly_dominates(a, a)

    def test_different_horizons_align(self):
        short = ecb_of(0.5)  # flat at 0.5 afterwards
        long = ecb_of(0.4, 0.6, 0.8)
        assert not dominates(short, long)
        assert not dominates(long, short)

    def test_zero_dominated_by_everything(self):
        zero = ecb_of(0.0, 0.0)
        other = ecb_of(0.1, 0.1)
        assert dominates(other, zero)


class TestMatrix:
    def test_matrix_entries(self):
        a = ecb_of(0.5, 1.0)
        b = ecb_of(0.2, 0.8)
        c = ecb_of(0.6, 0.9)
        m = dominance_matrix([a, b, c])
        assert m[0, 1] and not m[1, 0]
        assert m[2, 1] and not m[1, 2]
        assert not m[0, 2] and not m[2, 0]  # crossing
        assert not m.diagonal().any()


class TestDominatedSubset:
    def test_figure2_example(self):
        """Corollary 2's w/x/y/z scenario.

        w dominates all; y is dominated by everyone; x and z cross.
        Discarding 3 of 4 → {x, y, z}; discarding 1 → {y} only (the
        choice between x and z is unclear).
        """
        w = ecb_of(1.0, 2.0, 3.0)
        x = ecb_of(0.5, 0.6, 0.6)
        y = ecb_of(0.1, 0.2, 0.3)
        z = ecb_of(0.1, 0.5, 1.2)
        ecbs = {"w": w, "x": x, "y": y, "z": z}
        three = find_dominated_subset(ecbs, 3)
        assert sorted(three) == ["x", "y", "z"]
        one = find_dominated_subset(ecbs, 1)
        assert one == ["y"]
        # Two: {x, y} is not valid (z does not dominate x) and {y, z}
        # is not valid (x does not dominate z) → only {y} qualifies.
        two = find_dominated_subset(ecbs, 2)
        assert two == ["y"]

    def test_total_order_returns_full_request(self):
        ecbs = {i: ecb_of(0.1 * i, 0.2 * i) for i in range(1, 6)}
        subset = find_dominated_subset(ecbs, 2)
        assert sorted(subset) == [1, 2]

    def test_empty_request(self):
        assert find_dominated_subset({"a": ecb_of(0.1)}, 0) == []

    def test_empty_candidates(self):
        assert find_dominated_subset({}, 3) == []

    def test_greedy_path_is_sound(self):
        """Above the exhaustive limit, returned subsets must still be valid."""
        ecbs = {i: ecb_of(0.01 * i, 0.02 * i) for i in range(20)}
        subset = find_dominated_subset(ecbs, 5, exhaustive_limit=4)
        assert sorted(subset) == [0, 1, 2, 3, 4]


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------
@st.composite
def ecbs(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    increments = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=n,
            max_size=n,
        )
    )
    return ECB(np.cumsum(increments))


class TestDominanceProperties:
    @given(ecbs(), ecbs(), ecbs())
    @settings(max_examples=80, deadline=None)
    def test_transitivity(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    @given(ecbs(), ecbs())
    @settings(max_examples=80, deadline=None)
    def test_strong_implies_weak(self, a, b):
        if strongly_dominates(a, b):
            assert dominates(a, b)
            assert not dominates(b, a)

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=9),
            ecbs(),
            min_size=1,
            max_size=6,
        ),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_found_subsets_are_valid(self, candidates, max_size):
        subset = find_dominated_subset(candidates, max_size)
        assert len(subset) <= max_size
        inside = set(subset)
        for u, bu in candidates.items():
            if u in inside:
                continue
            for v in subset:
                assert dominates(bu, candidates[v])
