"""Case-study analyses of Sections 5.4-5.5 and Appendices P-Q.

These tests turn the paper's analytical claims about dominance structure
into executable checks on the actual ECB computations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dominance import comparable, dominates, strongly_dominates
from repro.core.ecb import ecb_cache, ecb_join
from repro.streams import (
    History,
    LinearTrendStream,
    RandomWalkStream,
    bounded_normal,
    bounded_uniform,
    discretized_normal,
)


class TestAppendixP:
    """Linear trend + bounded normal noise (Section 5.4)."""

    @pytest.fixture
    def s_stream(self):
        return LinearTrendStream(bounded_normal(8, 2.0), speed=1.0)

    def test_left_farther_is_strongly_dominated(self, s_stream):
        """For R tuples x, y: if v_y is left of f_S(t0) and farther from
        it than v_x, then B_x strongly dominates B_y."""
        t0 = 50
        f = s_stream.trend(t0)
        x_val, y_val = f - 2, f - 5  # both left; y farther
        b_x = ecb_join(s_stream, t0, x_val, 20)
        b_y = ecb_join(s_stream, t0, y_val, 20)
        assert strongly_dominates(b_x, b_y)

    def test_straddling_pair_incomparable(self, s_stream):
        """A tuple close-right (good soon) vs far-right (good later):
        crossing ECBs, hence incomparable -- the x-vs-z dilemma."""
        t0 = 50
        f = s_stream.trend(t0)
        near = ecb_join(s_stream, t0, f + 1, 25)
        far = ecb_join(s_stream, t0, f + 6, 25)
        assert not comparable(near, far)

    def test_caching_also_has_incomparable_pairs(self):
        """Section 5.4: the trend+normal *caching* problem is not almost
        stationary; incomparable tuples exist, so A_o does not apply."""
        ref = LinearTrendStream(bounded_normal(8, 2.0), speed=1.0)
        t0 = 50
        f = ref.trend(t0)
        found_incomparable = False
        for va in range(f - 3, f + 3):
            for vb in range(f + 3, f + 8):
                if not comparable(
                    ecb_cache(ref, t0, va, 25), ecb_cache(ref, t0, vb, 25)
                ):
                    found_incomparable = True
        assert found_incomparable


class TestAppendixQ:
    """Random walk with drift (Section 5.5)."""

    def test_nonzero_drift_dominance_breaks_over_horizon(self):
        """Appendix Q: with positive drift, a value near the next-step
        mean is referenced sooner (dominates early), but a farther-ahead
        value is more likely to be referenced *at all* (the drifting walk
        can jump over nearby values); the dominance breaks over time and
        the pair is incomparable."""
        walk = RandomWalkStream(discretized_normal(1.0), drift=2)
        h = History(now=0, last_value=0)
        near = ecb_cache(walk, 0, 1, 20, h)
        far = ecb_cache(walk, 0, 9, 20, h)
        assert near(1) > far(1)  # near wins at the next step...
        assert far(20) > near(20)  # ...but far wins overall
        assert not comparable(near, far)

    def test_zero_drift_total_order_by_distance(self):
        """Zero drift + symmetric unimodal steps: ECBs are totally
        ordered by |v − x_t0| (caching AND joining)."""
        walk = RandomWalkStream(discretized_normal(1.0))
        h = History(now=0, last_value=0)
        horizon = 40
        for problem in ("join", "cache"):
            prev = None
            for d in range(0, 8):
                if problem == "join":
                    b = ecb_join(walk, 0, d, horizon, h)
                else:
                    b = ecb_cache(walk, 0, d, horizon, h)
                if prev is not None:
                    assert dominates(prev, b), (problem, d)
                prev = b

    def test_zero_drift_symmetry(self):
        walk = RandomWalkStream(discretized_normal(1.0))
        h = History(now=0, last_value=10)
        left = ecb_join(walk, 0, 7, 15, h)
        right = ecb_join(walk, 0, 13, 15, h)
        assert np.allclose(left.cumulative, right.cumulative)


class TestSection52AlmostStationary:
    """Section 5.3's remark: the trend-caching case is almost stationary
    (the value order by reference probability never changes), which is
    why A_o-style discard-smallest-value is optimal there."""

    def test_value_order_stable_over_time(self):
        ref = LinearTrendStream(bounded_uniform(4), speed=1.0)
        for t0 in (30, 40, 50):
            values = range(t0 - 4, t0 + 5)
            ecbs = [ecb_cache(ref, t0, v, 20) for v in values]
            for smaller, larger in zip(ecbs, ecbs[1:]):
                assert dominates(larger, smaller)
