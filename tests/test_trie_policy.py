"""Contract tests for the trie-style shared-prefix cache policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tuples import StreamTuple, TupleFactory
from repro.obs import CounterRecorder
from repro.policies import TrieCachePolicy, make_policy
from repro.policies.base import PolicyContext, validate_victims
from repro.sim.cache_sim import CacheSimulator
from repro.sim.join_sim import JoinSimulator
from repro.sim.multi_join import MultiJoinSimulator
from repro.streams import StationaryStream, from_mapping


def _multi_ctx(cache_size=4, time=0, models=None):
    partner_names = {"A": ("B",), "B": ("A", "C"), "C": ("B",)}
    return PolicyContext(
        kind="multi_join",
        time=time,
        cache_size=cache_size,
        partner_names=partner_names,
        histories={name: [] for name in partner_names},
        models=models,
    )


def _tuples(specs):
    factory = TupleFactory()
    return [factory.make(side, value, t) for side, value, t in specs]


class TestRegistryAndConstruction:
    def test_registered(self):
        policy = make_policy("trie")
        assert isinstance(policy, TrieCachePolicy)
        assert policy.name == "TRIE"

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="beta"):
            TrieCachePolicy(beta=0.0)
        with pytest.raises(ValueError, match="min_share"):
            TrieCachePolicy(min_share=1.5)


class TestVictimContract:
    def test_respects_eviction_contract(self):
        policy = TrieCachePolicy()
        ctx = _multi_ctx()
        policy.reset(ctx)
        candidates = _tuples(
            [("A", 1, 0), ("A", 2, 0), ("B", 1, 1), ("B", 3, 1), ("C", 2, 2)]
        )
        ctx.time = 3
        for n_evict in (1, 2, 5):
            victims = policy.select_victims(candidates, n_evict, ctx)
            validate_victims("TRIE", candidates, victims, n_evict)
            assert len(victims) == n_evict

    def test_zero_evictions(self):
        policy = TrieCachePolicy()
        ctx = _multi_ctx()
        policy.reset(ctx)
        assert policy.select_victims(_tuples([("A", 1, 0)]), 0, ctx) == []

    def test_deterministic(self):
        candidates = _tuples(
            [("A", 1, 0), ("B", 2, 0), ("B", 1, 1), ("C", 3, 1)]
        )

        def run():
            policy = TrieCachePolicy()
            ctx = _multi_ctx()
            policy.reset(ctx)
            ctx.time = 2
            ctx.histories["B"].extend([1, 1, 2])
            ctx.histories["A"].extend([3, 1])
            return [v.uid for v in policy.select_victims(candidates, 2, ctx)]

        assert run() == run()


class TestSharedPrefixScoring:
    def test_frequency_fallback_prefers_frequent_partner_values(self):
        """Without models, the node benefit is the observed partner
        frequency of the value — tuples matching common partner values
        are kept."""
        policy = TrieCachePolicy()
        ctx = _multi_ctx()
        policy.reset(ctx)
        ctx.time = 5
        # B (partner of A) has shown value 7 often and value 1 never.
        ctx.histories["B"].extend([7, 7, 7, 2, 7])
        hot, cold = _tuples([("A", 7, 0), ("A", 1, 0)])
        victims = policy.select_victims([hot, cold], 1, ctx)
        assert victims == [cold]

    def test_node_scores_shared_within_step(self):
        """Two tuples under the same (stream, value) node compute the
        benefit once per step (memoized) and tie-break by uid."""
        calls = []

        class CountingTrie(TrieCachePolicy):
            def _join_benefit(self, stream, value, ctx):
                calls.append((stream, value))
                return super()._join_benefit(stream, value, ctx)

        policy = CountingTrie()
        ctx = _multi_ctx()
        policy.reset(ctx)
        ctx.time = 1
        twins = _tuples([("A", 4, 0), ("A", 4, 1), ("A", 4, 1)])
        victims = policy.select_victims(twins, 1, ctx)
        assert calls.count(("A", 4)) == 1
        assert victims[0].uid == min(t.uid for t in twins)

    def test_multi_partner_stream_scores_sum(self):
        """A middle-of-chain stream (two partners) accumulates benefit
        from both partner histories."""
        policy = TrieCachePolicy()
        ctx = _multi_ctx()
        policy.reset(ctx)
        ctx.time = 4
        ctx.histories["A"].extend([5, 5])
        ctx.histories["C"].extend([5])
        policy._sync(ctx)
        assert policy._node_score("B", 5, ctx) == 3.0
        assert policy._node_score("A", 5, ctx) == 0.0  # B never showed 5


class TestAdaptiveBudgets:
    def test_budget_series_emitted(self):
        rec = CounterRecorder()
        rng = np.random.default_rng(1)
        streams = {
            name: list(rng.integers(0, 4, size=120)) for name in "ABC"
        }
        sim = MultiJoinSimulator(
            3,
            make_policy("trie"),
            queries=[("A", "B"), ("B", "C")],
            recorder=rec,
        )
        sim.run(streams)
        for name in "ABC":
            assert f"trie.budget.{name}" in rec.series_data, name
        assert "scores.cutoff" in rec.series_data

    def test_shares_stay_normalized_with_floor(self):
        policy = TrieCachePolicy(beta=0.5, min_share=0.3)
        ctx = _multi_ctx()
        policy.reset(ctx)
        candidates = _tuples(
            [("A", 1, 0), ("B", 2, 0), ("B", 1, 1), ("C", 3, 1)]
        )
        for t in range(1, 30):
            ctx.time = t
            ctx.histories["B"].append(1)
            policy.select_victims(candidates, 2, ctx)
        shares = policy._shares
        assert sum(shares.values()) == pytest.approx(1.0)
        floor = 0.3 / 3
        assert all(s >= floor - 1e-12 for s in shares.values())

    def test_pressure_shifts_budget_toward_contested_level(self):
        """A level whose evicted tuples still score high gains share."""
        policy = TrieCachePolicy(beta=0.5, min_share=0.0)
        ctx = _multi_ctx()
        policy.reset(ctx)
        # A-tuples are valuable (B shows their value constantly); C is junk.
        candidates = _tuples(
            [("A", 9, 0), ("A", 9, 0), ("C", 1, 0), ("C", 2, 0)]
        )
        for t in range(1, 20):
            ctx.time = t
            ctx.histories["B"].append(9)
            policy.select_victims(candidates, 3, ctx)
        assert policy._shares["A"] > policy._shares["C"]


class TestAllKinds:
    def test_binary_join_and_cache_kinds_run(self):
        dist = from_mapping({v: 1.0 / 4 for v in range(4)})
        model = StationaryStream(dist)
        rng = np.random.default_rng(2)
        values = [int(v) for v in rng.integers(0, 4, size=100)]

        join = JoinSimulator(
            4, make_policy("trie"), r_model=model, s_model=model
        ).run(values, list(reversed(values)))
        assert join.total_results > 0

        cache = CacheSimulator(
            2, make_policy("trie"), reference_model=model
        ).run(values)
        assert cache.hits + cache.misses == len(values)
