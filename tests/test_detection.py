"""Tests for online model identification (repro.analysis.detection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.detection import detect_model, diagnose_series
from repro.streams import (
    AR1Stream,
    LinearTrendStream,
    RandomWalkStream,
    StationaryStream,
    bounded_normal,
    bounded_uniform,
    discretized_normal,
    from_mapping,
)


def path(model, n, seed):
    return np.array(
        model.sample_path(n, np.random.default_rng(seed)), dtype=float
    )


class TestDiagnosis:
    def test_detects_trend(self):
        model = LinearTrendStream(bounded_uniform(8), speed=1.0)
        d = diagnose_series(path(model, 800, 0))
        assert d.kind == "trend"
        assert d.slope == pytest.approx(1.0, abs=0.05)

    def test_detects_slow_trend(self):
        model = LinearTrendStream(bounded_normal(5, 2.0), speed=0.5)
        d = diagnose_series(path(model, 1500, 1))
        assert d.kind == "trend"
        assert d.slope == pytest.approx(0.5, abs=0.05)

    def test_detects_stationary(self):
        model = StationaryStream(from_mapping({1: 0.4, 5: 0.3, 9: 0.3}))
        d = diagnose_series(path(model, 800, 2))
        assert d.kind == "stationary"
        assert abs(d.phi1) < 0.2

    def test_detects_random_walk(self):
        model = RandomWalkStream(discretized_normal(1.0))
        d = diagnose_series(path(model, 1500, 3))
        assert d.kind == "random_walk"

    def test_detects_drifting_walk_as_walk_not_trend(self):
        """A drifting random walk has a trend-looking mean but wandering
        residuals; it must classify as a walk, not a trend."""
        model = RandomWalkStream(discretized_normal(1.0), drift=1)
        d = diagnose_series(path(model, 1500, 4))
        assert d.kind == "random_walk"

    def test_detects_ar1(self):
        model = AR1Stream(phi0=5.59, phi1=0.72, sigma=4.22, bucket=0.1)
        series = path(model, 3000, 5) * 0.1
        d = diagnose_series(series)
        assert d.kind == "ar1"
        assert d.phi1 == pytest.approx(0.72, abs=0.06)

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            diagnose_series([1.0] * 10)


class TestDetectModel:
    def test_trend_model_reproduces_window(self):
        true = LinearTrendStream(bounded_uniform(6), speed=1.0, lag=2)
        fitted = detect_model(path(true, 1200, 6))
        assert isinstance(fitted, LinearTrendStream)
        # The fitted trend tracks the true trend.
        for t in (1300, 1500):
            assert fitted.trend(t) == pytest.approx(true.trend(t), abs=3)
        # The fitted noise spread matches.
        assert fitted.noise.std() == pytest.approx(true.noise.std(), rel=0.15)

    def test_stationary_model_pmf(self):
        true = StationaryStream(from_mapping({1: 0.6, 3: 0.4}))
        fitted = detect_model(path(true, 3000, 7))
        assert isinstance(fitted, StationaryStream)
        assert fitted.dist.pmf(1) == pytest.approx(0.6, abs=0.04)

    def test_walk_model_steps(self):
        true = RandomWalkStream(discretized_normal(1.5))
        fitted = detect_model(path(true, 2500, 8))
        assert isinstance(fitted, RandomWalkStream)
        assert fitted.step.std() == pytest.approx(1.5, rel=0.12)
        assert fitted.drift == 0

    def test_walk_with_drift(self):
        true = RandomWalkStream(discretized_normal(1.0), drift=2)
        fitted = detect_model(path(true, 2000, 9))
        assert isinstance(fitted, RandomWalkStream)
        assert fitted.drift == 2
        assert abs(fitted.step.mean()) < 0.1  # drift separated from steps

    def test_ar1_model_parameters(self):
        true = AR1Stream(phi0=2.0, phi1=0.6, sigma=2.0, bucket=0.01)
        series = path(true, 8000, 10) * 0.01
        fitted = detect_model(series, bucket=1.0)
        assert isinstance(fitted, AR1Stream)
        assert fitted.phi1 == pytest.approx(0.6, abs=0.05)
        assert fitted.sigma == pytest.approx(2.0, rel=0.1)

    def test_decreasing_trend_rejected(self):
        t = np.arange(500, dtype=float)
        series = -1.0 * t + np.random.default_rng(0).uniform(-3, 3, 500)
        with pytest.raises(ValueError, match="non-decreasing"):
            detect_model(series)
