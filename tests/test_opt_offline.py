"""Tests for OPT-offline: exact optimality and schedule replay."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.brute_force import brute_force_offline_benefit
from repro.flow.opt_offline import match_times, solve_opt_offline
from repro.policies.scheduled import ScheduledPolicy
from repro.sim.join_sim import JoinSimulator


class TestMatchTimes:
    def test_basic(self):
        r = [1, 2, 1]
        s = [2, 1, 1]
        # r(1)@0 matched by s at 1 and 2; r(2)@1 matched never (s=2 at 0
        # precedes it); r(1)@2 matched never.
        assert match_times(r, s) == [[1, 2], [], []]

    def test_none_values(self):
        assert match_times([None, 1], [1, 1]) == [[], []]
        assert match_times([1], [None]) == [[]]


class TestSolveOptOffline:
    def test_trivial_all_fit(self):
        r = [1, 2, 3]
        s = [0, 1, 2]
        sol = solve_opt_offline(r, s, cache_size=10)
        assert sol.total_benefit == 2

    def test_capacity_one_forces_choice(self):
        # Keeping r(1) yields 2 matches (s=1 at t=1,2); keeping anything
        # else yields fewer.
        r = [1, 9, 8]
        s = [0, 1, 1]
        sol = solve_opt_offline(r, s, cache_size=1)
        assert sol.total_benefit == 2
        assert ("R", 0) in sol.cached

    def test_empty_streams(self):
        sol = solve_opt_offline([], [], 3)
        assert sol.total_benefit == 0

    def test_eviction_defaults_to_arrival(self):
        r = [1]
        s = [2]
        sol = solve_opt_offline(r, s, 1)
        assert sol.scheduled_eviction("R", 0) == 0
        assert sol.scheduled_eviction("S", 0) == 0

    def test_rejects_bad_cache(self):
        with pytest.raises(ValueError):
            solve_opt_offline([1], [1], 0)


class TestOptimalityAgainstBruteForce:
    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=8),
        st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=8),
        st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_exhaustive_optimum(self, r, s, k):
        n = min(len(r), len(s))
        sol = solve_opt_offline(r[:n], s[:n], k)
        brute = brute_force_offline_benefit(r[:n], s[:n], k)
        assert sol.total_benefit == brute

    def test_randomized_medium_instances(self):
        rng = np.random.default_rng(11)
        for _ in range(5):
            r = list(rng.integers(0, 4, size=9))
            s = list(rng.integers(0, 4, size=9))
            sol = solve_opt_offline(r, s, 2)
            assert sol.total_benefit == brute_force_offline_benefit(r, s, 2)


class TestScheduleReplay:
    def _replay(self, r, s, k):
        sol = solve_opt_offline(r, s, k)
        policy = ScheduledPolicy(sol)
        sim = JoinSimulator(k, policy)
        result = sim.run(r, s)
        return sol, policy, result

    def test_replay_achieves_flow_benefit(self):
        rng = np.random.default_rng(5)
        for trial in range(8):
            n = 40
            r = list(rng.integers(0, 6, size=n))
            s = list(rng.integers(0, 6, size=n))
            k = int(rng.integers(1, 4))
            sol, policy, result = self._replay(r, s, k)
            assert result.total_results == sol.total_benefit
            assert policy.mismatches == 0

    def test_replay_on_trend_streams(self):
        from repro.streams import LinearTrendStream, bounded_uniform

        rng = np.random.default_rng(9)
        r_model = LinearTrendStream(bounded_uniform(4), speed=1.0, lag=1)
        s_model = LinearTrendStream(bounded_uniform(6), speed=1.0)
        r = r_model.sample_path(300, rng)
        s = s_model.sample_path(300, rng)
        sol, policy, result = self._replay(r, s, 5)
        assert result.total_results == sol.total_benefit
        assert policy.mismatches == 0

    def test_opt_dominates_heuristics(self):
        """OPT-offline must produce at least as many results as any
        online policy on the same inputs."""
        from repro.policies import ProbPolicy, RandPolicy

        rng = np.random.default_rng(2)
        r = list(rng.integers(0, 5, size=120))
        s = list(rng.integers(0, 5, size=120))
        k = 3
        sol, _, result = self._replay(r, s, k)
        for policy in (RandPolicy(seed=0), ProbPolicy()):
            other = JoinSimulator(k, policy).run(r, s)
            assert result.total_results >= other.total_results
