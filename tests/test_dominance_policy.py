"""Tests for the dominance-guarded policy (Corollary 2 as a policy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.policies import (
    DominanceGuardedPolicy,
    HeebPolicy,
    ProbPolicy,
    RandPolicy,
    TrendJoinHeeb,
)
from repro.core.lifetime import LExp
from repro.sim.cache_sim import CacheSimulator
from repro.sim.join_sim import JoinSimulator
from repro.streams import (
    LinearTrendStream,
    StationaryStream,
    bounded_uniform,
    from_mapping,
)


class TestStationaryTotalOrder:
    """Stationary streams: dominance totally orders candidates by p, so
    the guard decides every eviction and the fallback is never consulted
    beyond warm-up corner cases."""

    def test_guard_decides_everything(self):
        dist = from_mapping({1: 0.5, 2: 0.3, 3: 0.2})
        model = StationaryStream(dist)
        rng = np.random.default_rng(0)
        r = model.sample_path(200, rng)
        s = model.sample_path(200, np.random.default_rng(1))
        guarded = DominanceGuardedPolicy(RandPolicy(seed=0), horizon=40)
        JoinSimulator(3, guarded, r_model=model, s_model=model).run(r, s)
        assert guarded.decided_by_dominance > 0
        assert guarded.decided_by_fallback == 0

    def test_matches_prob_results(self):
        """With a total dominance order the guard reproduces PROB-with-
        true-probabilities; its results match PROB's closely."""
        dist = from_mapping({1: 0.5, 2: 0.25, 3: 0.15, 4: 0.1})
        model = StationaryStream(dist)
        rng = np.random.default_rng(2)
        r = model.sample_path(800, rng)
        s = model.sample_path(800, np.random.default_rng(3))
        guarded = DominanceGuardedPolicy(RandPolicy(seed=0), horizon=60)
        g = JoinSimulator(3, guarded, r_model=model, s_model=model).run(r, s)
        p = JoinSimulator(3, ProbPolicy()).run(r, s)
        assert g.total_results >= p.total_results * 0.9


class TestIncomparableFallback:
    def test_fallback_consulted_on_trends(self):
        """FLOOR joining ECBs cross (Section 5.3), so some evictions
        must fall through to the fallback."""
        r_model = LinearTrendStream(bounded_uniform(4), speed=1.0, lag=1)
        s_model = LinearTrendStream(bounded_uniform(6), speed=1.0)
        rng = np.random.default_rng(4)
        r = r_model.sample_path(300, rng)
        s = s_model.sample_path(300, np.random.default_rng(5))
        guarded = DominanceGuardedPolicy(RandPolicy(seed=0), horizon=30)
        JoinSimulator(6, guarded, r_model=r_model, s_model=s_model).run(r, s)
        assert guarded.decided_by_fallback > 0
        assert guarded.decided_by_dominance > 0  # dead tuples are dominated

    def test_guard_never_hurts_heeb(self):
        """Guarding HEEB with provably-optimal evictions should not lose
        results relative to plain HEEB."""
        r_model = LinearTrendStream(bounded_uniform(4), speed=1.0, lag=1)
        s_model = LinearTrendStream(bounded_uniform(6), speed=1.0)
        heeb_total = guarded_total = 0
        for run in range(3):
            rng = np.random.default_rng(run)
            r = r_model.sample_path(400, rng)
            s = s_model.sample_path(400, np.random.default_rng(50 + run))
            plain = HeebPolicy(TrendJoinHeeb(LExp(10.0)))
            guarded = DominanceGuardedPolicy(
                HeebPolicy(TrendJoinHeeb(LExp(10.0))), horizon=40
            )
            heeb_total += (
                JoinSimulator(8, plain, r_model=r_model, s_model=s_model)
                .run(r, s)
                .total_results
            )
            guarded_total += (
                JoinSimulator(8, guarded, r_model=r_model, s_model=s_model)
                .run(r, s)
                .total_results
            )
        assert guarded_total >= 0.95 * heeb_total


class TestCachingKind:
    def test_cache_guard_on_stationary(self):
        dist = from_mapping({1: 0.5, 2: 0.3, 3: 0.15, 4: 0.05})
        model = StationaryStream(dist)
        trace = model.sample_path(600, np.random.default_rng(0))
        guarded = DominanceGuardedPolicy(RandPolicy(seed=1), horizon=100)
        rand = RandPolicy(seed=1)
        g = CacheSimulator(2, guarded, reference_model=model).run(trace)
        r = CacheSimulator(2, rand).run(trace)
        assert g.hits > r.hits

    def test_requires_model(self):
        from repro.core.tuples import StreamTuple
        from repro.policies.base import PolicyContext

        guarded = DominanceGuardedPolicy(RandPolicy(), horizon=10)
        ctx = PolicyContext(kind="cache", time=0, cache_size=1)
        with pytest.raises(ValueError):
            guarded.select_victims([StreamTuple(0, "S", 1, 0)], 1, ctx)


class TestConstruction:
    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            DominanceGuardedPolicy(RandPolicy(), horizon=0)

    def test_name_includes_fallback(self):
        assert DominanceGuardedPolicy(RandPolicy()).name == "DOM+RAND"
