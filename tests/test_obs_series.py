"""Per-step series telemetry: cross-engine parity and emitter coverage.

Pins the acceptance contract of the time-series layer:

* the batch engine's simulator series are **bit-identical** to the
  scalar engine's — full snapshot states including downsampling buffers
  and quantile sketches — because batch replays its per-trial logs
  trial-major in the same order the scalar loop offered them;
* the parallel engine's sketch-merge keeps count/sum/min/max exact and
  quantiles within sketch tolerance;
* every documented emitter actually emits: simulators (occupancy,
  cumulative results/hits, hit rate), scored policies (score cutoff,
  mirrored bit-identically by the batch tier for exactly-scored
  adapters), and the FlowExpect fast path (per-solve latency, memo hit
  rate — scalar-only, since batch shares one memo across trials).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import CounterRecorder, NullRecorder
from repro.policies import LruPolicy, make_policy
from repro.policies.flowexpect_policy import FlowExpectPolicy
from repro.sim.cache_sim import CacheSimulator
from repro.sim.engine import ExperimentSpec, ParallelEngine, ScalarEngine
from repro.sim.join_sim import JoinSimulator
from repro.sim.runner import (
    generate_paths,
    generate_reference_paths,
    run_experiment,
)
from repro.streams import RandomWalkStream, make_stream
from repro.streams.noise import bounded_uniform, discretized_normal

CACHE = 3

#: Series emitted by the join simulator itself (engine-independent).
JOIN_SIM_SERIES = {"cache.occupancy", "join.results.cum"}
#: Series emitted by the cache simulator itself.
CACHE_SIM_SERIES = {"cache.occupancy", "cache.hits.cum", "cache.hit_rate"}


def _join_spec_and_paths(n_runs=4, length=70, seed=11):
    step = discretized_normal(1.0)
    r_model = make_stream("random-walk", step=step)
    s_model = make_stream("random-walk", step=step)
    spec = ExperimentSpec(
        kind="join", cache_size=CACHE, r_model=r_model, s_model=s_model
    )
    return spec, generate_paths(r_model, s_model, length, n_runs, seed=seed)


def _cache_spec_and_paths(n_runs=4, length=80, seed=9):
    model = make_stream("random-walk", step=bounded_uniform(2))
    spec = ExperimentSpec(kind="cache", cache_size=CACHE, r_model=model)
    return spec, generate_reference_paths(model, length, n_runs, seed=seed)


def _series_snapshot(spec, paths, engine=None):
    rec = CounterRecorder()
    run_experiment(spec, lambda: LruPolicy(), paths, engine=engine, recorder=rec)
    return rec.snapshot().get("series", {})


class TestBatchSeriesParity:
    """Scalar and batch produce bit-identical simulator series."""

    def test_join_series_identical(self):
        spec, paths = _join_spec_and_paths()
        scalar = _series_snapshot(spec, paths)
        batch = _series_snapshot(spec, paths, engine="batch")
        assert JOIN_SIM_SERIES <= set(scalar)
        # The batch tier mirrors the simulator series AND the scored
        # policies' scores.cutoff (LRU is exactly scored), all
        # bit-identical; trace events remain scalar-only.
        assert set(batch) == JOIN_SIM_SERIES | {"scores.cutoff"}
        for name in sorted(set(batch)):
            assert scalar[name] == batch[name], name

    def test_cache_series_identical(self):
        spec, paths = _cache_spec_and_paths()
        scalar = _series_snapshot(spec, paths)
        batch = _series_snapshot(spec, paths, engine="batch")
        assert CACHE_SIM_SERIES <= set(scalar)
        for name in (*CACHE_SIM_SERIES, "scores.cutoff"):
            assert scalar[name] == batch[name], name

    def test_hit_rate_division_matches_scalar(self):
        # hit_rate is int/int in both tiers — the *same* operands, so
        # the float results are bit-equal, not merely close.
        spec, paths = _cache_spec_and_paths(n_runs=2, length=60, seed=3)
        scalar = _series_snapshot(spec, paths)
        batch = _series_snapshot(spec, paths, engine="batch")
        assert (
            scalar["cache.hit_rate"]["buffer"]["points"]
            == batch["cache.hit_rate"]["buffer"]["points"]
        )


class TestParallelSeriesMerge:
    """Worker sketches merge back: exact aggregates, close quantiles."""

    def test_merged_aggregates_and_quantiles(self):
        spec, paths = _join_spec_and_paths()
        rec_scalar, rec_par = CounterRecorder(), CounterRecorder()
        ScalarEngine().run(spec, lambda: LruPolicy(), paths, recorder=rec_scalar)
        ParallelEngine(max_workers=2).run(
            spec, lambda: LruPolicy(), paths, recorder=rec_par
        )
        scalar = rec_scalar.snapshot()["series"]
        par = rec_par.snapshot()["series"]
        for name in JOIN_SIM_SERIES:
            s, p = scalar[name], par[name]
            assert p["count"] == s["count"]
            assert p["min"] == s["min"]
            assert p["max"] == s["max"]
            assert p["sum"] == pytest.approx(s["sum"], rel=1e-12)
        # Quantile comparison via the public TimeSeries API:
        from repro.obs import TimeSeries

        for name in JOIN_SIM_SERIES:
            ts_s = TimeSeries.from_state(name, scalar[name])
            ts_p = TimeSeries.from_state(name, par[name])
            spread = max(scalar[name]["max"] - scalar[name]["min"], 1e-9)
            for q in (0.5, 0.9):
                assert abs(ts_p.quantile(q) - ts_s.quantile(q)) < 0.1 * spread


class TestEmitters:
    """Each documented series name is actually produced."""

    def test_scored_policy_emits_cutoff(self):
        spec, paths = _join_spec_and_paths(n_runs=1)
        series = _series_snapshot(spec, paths)
        assert "scores.cutoff" in series
        assert series["scores.cutoff"]["count"] > 0

    def test_flowexpect_fast_path_emits_latency_and_hit_rate(self):
        model = RandomWalkStream(step=bounded_uniform(3))
        r = model.sample_path(60, np.random.default_rng(1))
        s = model.sample_path(60, np.random.default_rng(2))
        rec = CounterRecorder()
        policy = FlowExpectPolicy(4, model, model, fast=True)
        JoinSimulator(4, policy, recorder=rec).run(r, s)
        series = rec.snapshot()["series"]
        assert series["flow.solve_ms"]["count"] > 0
        assert series["flow.solve_ms"]["min"] >= 0.0
        hit_rate = series["prob_table.hit_rate"]
        assert 0.0 <= hit_rate["min"] <= hit_rate["max"] <= 1.0

    def test_cache_sim_emits_on_hits_and_misses(self):
        # A reference stream with guaranteed repeats: occupancy series
        # must cover hit steps too, not only the miss path.
        rec = CounterRecorder()
        sim = CacheSimulator(2, make_policy("lru"), recorder=rec)
        sim.run([1, 1, 2, 2, 3, 1])
        series = rec.snapshot()["series"]
        counters = rec.snapshot()["counters"]
        assert counters["cache.hits"] > 0
        # One occupancy point per observed reference — hits included.
        assert series["cache.occupancy"]["count"] == 6
        assert series["cache.hit_rate"]["last"] == counters["cache.hits"] / 6

    def test_null_recorder_collects_no_series(self):
        spec, paths = _join_spec_and_paths(n_runs=1)
        rec = NullRecorder()
        run_experiment(spec, lambda: LruPolicy(), paths, recorder=rec)
        assert rec.enabled is False

    def test_series_absent_from_snapshot_when_unused(self):
        rec = CounterRecorder()
        rec.count("x")
        assert "series" not in rec.snapshot()
