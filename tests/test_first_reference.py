"""Tests for first-reference probabilities (caching ECB internals).

The Markov computations (lattice / bucket DPs) are validated against
Monte-Carlo simulation of the same models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.first_reference import (
    ar1_transition_matrix,
    first_reference_ar1,
    first_reference_independent,
    first_reference_monte_carlo,
    first_reference_probs,
    first_reference_random_walk,
)
from repro.streams import (
    AR1Stream,
    History,
    OfflineStream,
    RandomWalkStream,
    StationaryStream,
    discretized_normal,
    from_mapping,
)


class TestIndependent:
    def test_stationary_geometric(self):
        ref = StationaryStream(from_mapping({1: 0.25, 2: 0.75}))
        f = first_reference_independent(ref, 0, 1, 6)
        for i in range(6):
            assert f[i] == pytest.approx(0.25 * 0.75**i)

    def test_offline_indicator(self):
        ref = OfflineStream([0, 3, 3, 3])
        f = first_reference_independent(ref, 0, 3, 3)
        assert list(f) == [1.0, 0.0, 0.0]

    def test_sums_below_one(self):
        ref = StationaryStream(from_mapping({1: 0.1, 2: 0.9}))
        f = first_reference_independent(ref, 0, 1, 100)
        assert f.sum() <= 1.0 + 1e-12


class TestRandomWalk:
    def test_matches_monte_carlo(self, walk_stream, rng):
        h = History(now=0, last_value=0)
        exact = first_reference_random_walk(walk_stream, 2, 8, h)
        mc = first_reference_monte_carlo(
            walk_stream, 0, 2, 8, h, n_samples=40_000, rng=rng
        )
        assert np.allclose(exact, mc, atol=0.01)

    def test_translation_invariance(self, walk_stream):
        h_a = History(now=0, last_value=10)
        h_b = History(now=0, last_value=-5)
        fa = first_reference_random_walk(walk_stream, 13, 6, h_a)
        fb = first_reference_random_walk(walk_stream, -2, 6, h_b)
        assert np.allclose(fa, fb)

    def test_drift_speeds_up_forward_reference(self, drifting_walk_stream):
        h = History(now=0, last_value=0)
        forward = first_reference_random_walk(drifting_walk_stream, 6, 5, h)
        backward = first_reference_random_walk(drifting_walk_stream, -6, 5, h)
        assert forward.sum() > backward.sum()

    def test_total_mass_bounded(self, walk_stream):
        h = History(now=0, last_value=0)
        f = first_reference_random_walk(walk_stream, 1, 50, h)
        assert 0.0 < f.sum() <= 1.0 + 1e-9

    def test_dispatch(self, walk_stream):
        h = History(now=0, last_value=0)
        via_dispatch = first_reference_probs(walk_stream, 0, 3, 5, h)
        direct = first_reference_random_walk(walk_stream, 3, 5, h)
        assert np.allclose(via_dispatch, direct)


class TestAR1:
    def test_transition_matrix_rows_sum_to_one(self, ar1_stream):
        buckets = np.arange(-20, 100)
        transition = ar1_transition_matrix(ar1_stream, buckets)
        assert np.allclose(transition.sum(axis=1), 1.0)

    def test_matches_monte_carlo(self, rng):
        model = AR1Stream(phi0=2.0, phi1=0.6, sigma=2.0, bucket=1.0)
        h = History(now=0, last_value=5)
        taboo = 6
        exact = first_reference_ar1(model, taboo, 8, h)
        mc = first_reference_monte_carlo(
            model, 0, taboo, 8, h, n_samples=40_000, rng=rng
        )
        assert np.allclose(exact, mc, atol=0.012)

    def test_out_of_range_value_zero(self, ar1_stream):
        h = History(now=0, last_value=ar1_stream.to_bucket(20.0))
        f = first_reference_ar1(ar1_stream, 10_000, 5, h)
        assert np.all(f == 0.0)

    def test_total_mass_bounded(self, ar1_stream):
        h = History(now=0, last_value=ar1_stream.to_bucket(20.0))
        f = first_reference_ar1(ar1_stream, ar1_stream.to_bucket(22.0), 60, h)
        assert 0.0 < f.sum() <= 1.0 + 1e-9

    def test_dispatch(self, ar1_stream):
        h = History(now=0, last_value=40)
        via = first_reference_probs(ar1_stream, 0, 41, 5, h)
        direct = first_reference_ar1(ar1_stream, 41, 5, h)
        assert np.allclose(via, direct)


class TestDispatchErrors:
    def test_unknown_model_rejected(self):
        class Weird:
            is_independent = False

        with pytest.raises(TypeError):
            first_reference_probs(Weird(), 0, 1, 5)


class TestMonteCarloIndependent:
    def test_mc_agrees_with_independent_formula(self, rng):
        ref = StationaryStream(from_mapping({1: 0.3, 2: 0.7}))
        exact = first_reference_independent(ref, 0, 1, 6)
        mc = first_reference_monte_carlo(
            ref, 0, 1, 6, n_samples=30_000, rng=rng
        )
        assert np.allclose(exact, mc, atol=0.01)
