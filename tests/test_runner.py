"""Tests for multi-run orchestration (repro.sim.runner)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.policies.rand import RandPolicy
from repro.sim.runner import generate_paths, run_join_experiment
from repro.streams import StationaryStream, from_mapping


@pytest.fixture
def model():
    return StationaryStream(from_mapping({1: 0.5, 2: 0.5}))


class TestGeneratePaths:
    def test_deterministic_given_seed(self, model):
        a = generate_paths(model, model, 50, 3, seed=9)
        b = generate_paths(model, model, 50, 3, seed=9)
        assert a == b

    def test_runs_are_independent(self, model):
        paths = generate_paths(model, model, 200, 2, seed=0)
        assert paths[0] != paths[1]

    def test_shapes(self, model):
        paths = generate_paths(model, model, 37, 4, seed=1)
        assert len(paths) == 4
        for r, s in paths:
            assert len(r) == 37 and len(s) == 37


class TestRunJoinExperiment:
    def test_aggregation(self, model):
        paths = generate_paths(model, model, 100, 4, seed=2)
        result = run_join_experiment(
            lambda: RandPolicy(seed=0), paths, 3, warmup=10
        )
        assert result.policy_name == "RAND"
        assert len(result.per_run) == 4
        per_run = [r.results_after_warmup for r in result.per_run]
        assert result.mean_results == pytest.approx(np.mean(per_run))
        assert result.std_results == pytest.approx(np.std(per_run))

    def test_fresh_policy_per_run(self, model):
        """State must not leak across runs: running the same path twice
        yields identical results."""
        paths = generate_paths(model, model, 100, 1, seed=3)
        doubled = paths + paths
        result = run_join_experiment(
            lambda: RandPolicy(seed=5), doubled, 3
        )
        assert (
            result.per_run[0].results_after_warmup
            == result.per_run[1].results_after_warmup
        )

    def test_mean_r_fraction_shape(self, model):
        paths = generate_paths(model, model, 60, 2, seed=4)
        result = run_join_experiment(lambda: RandPolicy(seed=0), paths, 3)
        frac = result.mean_r_fraction()
        assert frac.shape == (60,)
        assert np.all((0.0 <= frac) & (frac <= 1.0))
