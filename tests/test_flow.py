"""Tests for the flow machinery: solver, look-ahead graph, FlowExpect."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.tuples import StreamTuple
from repro.flow.flowexpect import flowexpect_decide
from repro.flow.graph import build_lookahead_graph, expected_match_prob
from repro.flow.solver import solve_min_cost_flow
from repro.streams import (
    History,
    OfflineStream,
    StationaryStream,
    TabularStream,
    from_mapping,
)


class TestSolver:
    def test_picks_cheapest_path(self):
        g = nx.DiGraph()
        g.add_edge("s", "a", capacity=1, weight=-0.9)
        g.add_edge("s", "b", capacity=1, weight=-0.1)
        g.add_edge("a", "t", capacity=1, weight=0.0)
        g.add_edge("b", "t", capacity=1, weight=0.0)
        flow, cost = solve_min_cost_flow(g, "s", "t", 1)
        assert flow["s"]["a"] == 1 and flow["s"]["b"] == 0
        assert cost == pytest.approx(-0.9)

    def test_float_costs_preserved(self):
        g = nx.DiGraph()
        g.add_edge("s", "t", capacity=2, weight=-0.123456789)
        _, cost = solve_min_cost_flow(g, "s", "t", 2)
        assert cost == pytest.approx(-0.246913578)

    def test_zero_flow(self):
        g = nx.DiGraph()
        g.add_edge("s", "t", capacity=1, weight=-1.0)
        flow, cost = solve_min_cost_flow(g, "s", "t", 0)
        assert cost == 0.0

    def test_rejects_negative_amount(self):
        g = nx.DiGraph()
        g.add_edge("s", "t", capacity=1, weight=0.0)
        with pytest.raises(ValueError):
            solve_min_cost_flow(g, "s", "t", -1)


class TestExpectedMatchProb:
    def test_independent_product(self):
        a = StationaryStream(from_mapping({1: 0.5, 2: 0.5}))
        b = StationaryStream(from_mapping({1: 0.25, 3: 0.75}))
        # Σ_v P_a(v)·P_b(v) = 0.5·0.25 (only v=1 overlaps).
        p = expected_match_prob(a, 1, b, 2, None, None)
        assert p == pytest.approx(0.125)

    def test_null_mass_excluded(self):
        a = TabularStream([[], [(7, 0.4)]])
        b = TabularStream([[], [], [(7, 0.5)]])
        assert expected_match_prob(a, 1, b, 2, None, None) == pytest.approx(0.2)
        assert expected_match_prob(a, 0, b, 2, None, None) == 0.0


class TestLookaheadGraph:
    def test_node_and_arc_counts(self):
        """Slice G_t has k+2+2(t−t0) nodes; structure per Section 3.1."""
        k = 3
        candidates = [StreamTuple(i, "R", i, 0) for i in range(k + 2)]
        model = StationaryStream(from_mapping({0: 1.0}))
        lookahead = 4
        lg = build_lookahead_graph(
            candidates, 0, lookahead, model, model, cache_size=k
        )
        # Nodes: src + sink + Σ_{j=0..l−1} (k+2+2j)
        expected_nodes = 2 + sum(k + 2 + 2 * j for j in range(lookahead))
        assert lg.graph.number_of_nodes() == expected_nodes
        assert lg.flow_size == k

    def test_lookahead_one_is_greedy_next_step(self):
        """With l=1, FlowExpect keeps the tuples most likely to join at
        the next step."""
        r_model = StationaryStream(from_mapping({1: 0.6, 2: 0.3, 3: 0.1}))
        s_model = StationaryStream(from_mapping({1: 0.6, 2: 0.3, 3: 0.1}))
        # Three S-side candidates valued 1, 2, 3; keep 2 of 3.
        candidates = [StreamTuple(i, "S", v, 0) for i, v in enumerate([1, 2, 3])]
        decision = flowexpect_decide(
            candidates, 0, 1, 2, r_model, s_model
        )
        kept_values = sorted(t.value for t in decision.kept)
        assert kept_values == [1, 2]
        assert decision.expected_benefit == pytest.approx(0.9)

    def test_empty_candidates(self):
        model = StationaryStream(from_mapping({0: 1.0}))
        decision = flowexpect_decide([], 0, 3, 2, model, model)
        assert decision.kept == [] and decision.victims == []

    def test_rejects_bad_lookahead(self):
        model = StationaryStream(from_mapping({0: 1.0}))
        with pytest.raises(ValueError):
            build_lookahead_graph(
                [StreamTuple(0, "R", 1, 0)], 0, 0, model, model
            )

    def test_fewer_candidates_than_cache(self):
        model = StationaryStream(from_mapping({1: 1.0}))
        candidates = [StreamTuple(0, "S", 1, 0)]
        decision = flowexpect_decide(candidates, 0, 2, 5, model, model)
        assert decision.kept == candidates


class TestSection34Example:
    """The paper's suboptimality counterexample, end to end."""

    @pytest.fixture
    def scenario(self):
        r_model = TabularStream([[], [(2, 1.0)], [(3, 1.0)], [(2, 0.5)]])
        s_model = TabularStream(
            [[(2, 1.0)], [(3, 0.5)], [(1, 0.8)], [(1, 0.8)]]
        )
        cached = StreamTuple(0, "R", 1, -1)
        new_s = StreamTuple(1, "S", 2, 0)
        return r_model, s_model, cached, new_s

    def test_flowexpect_keeps_cached_tuple(self, scenario):
        r_model, s_model, cached, new_s = scenario
        decision = flowexpect_decide(
            [cached, new_s], 0, 4, 1, r_model, s_model
        )
        assert decision.kept == [cached]
        assert decision.expected_benefit == pytest.approx(1.6)

    def test_predetermined_alternatives_score_lower(self, scenario):
        """The best predetermined S-caching sequences yield 1.5."""
        r_model, s_model, cached, new_s = scenario
        # Force keeping the new S tuple by removing the cached R tuple
        # from the candidate set.
        decision = flowexpect_decide([new_s], 0, 4, 1, r_model, s_model)
        assert decision.expected_benefit == pytest.approx(1.5)

    def test_adaptive_strategy_beats_flowexpect(self, scenario):
        """Section 3.4: the adaptive optimum is 1.75 > 1.6."""
        from repro.flow.brute_force import brute_force_adaptive_expectation

        r_steps = [[], [(2, 1.0)], [(3, 1.0)], [(2, 0.5)]]
        s_steps = [[(2, 1.0)], [(3, 0.5)], [(1, 0.8)], [(1, 0.8)]]
        steps = []
        for t in range(4):
            outs = []
            r_opts = r_steps[t] + [(None, 1.0 - sum(p for _, p in r_steps[t]))]
            s_opts = s_steps[t] + [(None, 1.0 - sum(p for _, p in s_steps[t]))]
            for rv, rp in r_opts:
                for sv, sp in s_opts:
                    if rp * sp > 0:
                        outs.append((rv, sv, rp * sp))
            steps.append(outs)
        optimum = brute_force_adaptive_expectation(steps, [("R", 1)], 1)
        assert optimum == pytest.approx(1.75)

    def test_offline_degenerate_case(self):
        """Section 5.1: with offline streams, FlowExpect's expected benefit
        equals the deterministic count of its plan."""
        r_model = OfflineStream([0, 5, 6, 5])
        s_model = OfflineStream([5, 9, 9, 9])
        cached = StreamTuple(0, "S", 5, -1)
        new_r = StreamTuple(1, "R", 0, 0)
        new_s = StreamTuple(2, "S", 5, 0)
        decision = flowexpect_decide(
            [cached, new_r, new_s], 0, 4, 2, r_model, s_model
        )
        # Keeping both S(5) tuples joins R(5) at t=1 and t=3: 2 each... but
        # each S tuple joins every matching R arrival → 2 tuples × 2 = 4.
        assert decision.expected_benefit == pytest.approx(4.0)
        kept_values = sorted(t.value for t in decision.kept)
        assert kept_values == [5, 5]
