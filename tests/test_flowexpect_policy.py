"""Tests for FlowExpect as a simulator policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flow.opt_offline import solve_opt_offline
from repro.policies.flowexpect_policy import FlowExpectPolicy
from repro.sim.join_sim import JoinSimulator
from repro.streams import (
    OfflineStream,
    StationaryStream,
    from_mapping,
)


class TestOfflineDegeneracy:
    """Section 5.1: on offline streams FlowExpect degenerates into
    OPT-offline, which is optimal."""

    def _compare(self, r, s, k):
        r_model = OfflineStream(r)
        s_model = OfflineStream(s)
        lookahead = len(r)  # full knowledge of the future
        policy = FlowExpectPolicy(lookahead, r_model, s_model)
        result = JoinSimulator(k, policy).run(r, s)
        opt = solve_opt_offline(r, s, k)
        return result.total_results, opt.total_benefit

    def test_small_random_instances(self):
        rng = np.random.default_rng(3)
        for trial in range(6):
            r = list(rng.integers(0, 4, size=10))
            s = list(rng.integers(0, 4, size=10))
            got, want = self._compare(r, s, 2)
            assert got == want, (r, s)

    def test_instance_with_nones(self):
        r = [1, None, 2, 1, None, 2]
        s = [2, 1, None, 2, 1, 1]
        got, want = self._compare(r, s, 1)
        assert got == want

    def test_capacity_larger_than_needed(self):
        r = [1, 2, 3, 1]
        s = [3, 1, 1, 2]
        got, want = self._compare(r, s, 6)
        assert got == want


class TestStationary:
    def test_flowexpect_beats_random_on_skewed_streams(self):
        from repro.policies import RandPolicy

        dist = from_mapping({1: 0.6, 2: 0.2, 3: 0.1, 4: 0.05, 5: 0.05})
        model = StationaryStream(dist)
        rng = np.random.default_rng(0)
        r = model.sample_path(150, rng)
        s = model.sample_path(150, np.random.default_rng(1))
        fe = JoinSimulator(
            3, FlowExpectPolicy(3, model, model)
        ).run(r, s)
        rand = JoinSimulator(3, RandPolicy(seed=4)).run(r, s)
        assert fe.total_results > rand.total_results


class TestConstruction:
    def test_rejects_bad_lookahead(self):
        with pytest.raises(ValueError):
            FlowExpectPolicy(0)

    def test_requires_models(self):
        from repro.core.tuples import StreamTuple
        from repro.policies.base import PolicyContext

        policy = FlowExpectPolicy(2)
        ctx = PolicyContext(kind="join", time=0, cache_size=1)
        with pytest.raises(ValueError, match="models"):
            policy.select_victims([StreamTuple(0, "R", 1, 0)], 1, ctx)

    def test_models_from_context(self):
        model = StationaryStream(from_mapping({1: 1.0}))
        policy = FlowExpectPolicy(2)
        sim = JoinSimulator(1, policy, r_model=model, s_model=model)
        result = sim.run([1, 1, 1], [1, 1, 1])
        assert result.total_results > 0
