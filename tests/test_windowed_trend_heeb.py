"""Windowed TrendJoinHeeb: Section-7 semantics on trend streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lifetime import LExp
from repro.core.tuples import StreamTuple
from repro.policies.base import PolicyContext
from repro.policies.heeb_policy import GenericJoinHeeb, HeebPolicy, TrendJoinHeeb
from repro.sim.join_sim import JoinSimulator
from repro.streams import LinearTrendStream, bounded_uniform

ALPHA = 8.0


def ctx_for(r_model, s_model, t0, window=None):
    return PolicyContext(
        kind="join",
        time=t0,
        cache_size=5,
        r_history=[t0] * (t0 + 1),
        s_history=[t0] * (t0 + 1),
        r_model=r_model,
        s_model=s_model,
        window=window,
    )


class TestWindowedTrendHeeb:
    @pytest.fixture
    def models(self):
        r = LinearTrendStream(bounded_uniform(4), speed=1.0, lag=1)
        s = LinearTrendStream(bounded_uniform(6), speed=1.0)
        return r, s

    def test_matches_generic_windowed(self, models):
        r_model, s_model = models
        fast = TrendJoinHeeb(LExp(ALPHA))
        generic = GenericJoinHeeb(LExp(ALPHA))
        t0 = 50
        ctx = ctx_for(r_model, s_model, t0, window=7)
        fast.reset(ctx)
        for arrival in (44, 47, 50):
            for v in range(t0 - 5, t0 + 6):
                tup = StreamTuple(arrival * 100 + v, "S", v, arrival)
                assert fast.h_value(tup, ctx) == pytest.approx(
                    generic.h_value(tup, ctx), abs=1e-9
                ), (arrival, v)

    def test_expired_tuple_scores_zero(self, models):
        r_model, s_model = models
        fast = TrendJoinHeeb(LExp(ALPHA))
        ctx = ctx_for(r_model, s_model, 50, window=5)
        old = StreamTuple(0, "S", 52, 40)  # arrival long past the window
        assert fast.h_value(old, ctx) == 0.0

    def test_window_reduces_h(self, models):
        r_model, s_model = models
        fast = TrendJoinHeeb(LExp(ALPHA))
        t0 = 50
        no_window = ctx_for(r_model, s_model, t0, window=None)
        short = ctx_for(r_model, s_model, t0, window=2)
        fast.reset(no_window)
        tup = StreamTuple(0, "S", t0 + 3, t0)
        h_full = fast.h_value(tup, no_window)
        h_short = fast.h_value(tup, short)
        assert 0.0 <= h_short < h_full

    def test_windowed_simulation_runs(self, models):
        r_model, s_model = models
        rng = np.random.default_rng(0)
        r = r_model.sample_path(300, rng)
        s = s_model.sample_path(300, np.random.default_rng(1))
        policy = HeebPolicy(TrendJoinHeeb(LExp(ALPHA)))
        result = JoinSimulator(
            5, policy, window=6, r_model=r_model, s_model=s_model
        ).run(r, s)
        assert result.total_results > 0

    def test_windowed_heeb_tracks_unwindowed_when_window_is_wide(self, models):
        r_model, s_model = models
        rng = np.random.default_rng(2)
        r = r_model.sample_path(300, rng)
        s = s_model.sample_path(300, np.random.default_rng(3))

        def run(window):
            policy = HeebPolicy(TrendJoinHeeb(LExp(ALPHA)))
            return (
                JoinSimulator(
                    5, policy, window=window, r_model=r_model, s_model=s_model
                )
                .run(r, s)
                .total_results
            )

        # A window wider than any tuple's joinable life is a no-op.
        assert run(500) == run(100)
