"""Tests for the baseline replacement policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tuples import StreamTuple
from repro.policies import (
    FarthestFromReferencePolicy,
    LfuPolicy,
    LifePolicy,
    LrukPolicy,
    LruPolicy,
    ProbPolicy,
    RandPolicy,
    SmallestValueFirstPolicy,
    TrendWindowOracle,
)
from repro.policies.base import PolicyContext
from repro.sim.cache_sim import CacheSimulator
from repro.sim.join_sim import JoinSimulator
from repro.streams import LinearTrendStream, bounded_uniform


def make_ctx(kind="join", time=0, cache_size=5, r_hist=None, s_hist=None, oracle=None):
    return PolicyContext(
        kind=kind,
        time=time,
        cache_size=cache_size,
        r_history=list(r_hist or []),
        s_history=list(s_hist or []),
        window_oracle=oracle,
    )


class TestRand:
    def test_deterministic_given_seed(self):
        candidates = [StreamTuple(i, "R", i, 0) for i in range(6)]
        ctx = make_ctx()
        a = RandPolicy(seed=3)
        a.reset(ctx)
        b = RandPolicy(seed=3)
        b.reset(ctx)
        va = {t.uid for t in a.select_victims(candidates, 2, ctx)}
        vb = {t.uid for t in b.select_victims(candidates, 2, ctx)}
        assert va == vb

    def test_evicts_requested_count(self):
        candidates = [StreamTuple(i, "R", i, 0) for i in range(6)]
        ctx = make_ctx()
        p = RandPolicy()
        p.reset(ctx)
        assert len(p.select_victims(candidates, 3, ctx)) == 3
        assert p.select_victims(candidates, 0, ctx) == []

    def test_window_aware_evicts_dead_first(self):
        r_model = LinearTrendStream(bounded_uniform(2), speed=1.0)
        s_model = LinearTrendStream(bounded_uniform(2), speed=1.0)
        oracle = TrendWindowOracle(r_model, s_model)
        t = 50
        dead = StreamTuple(0, "R", 40, 30)  # far behind the window
        alive = StreamTuple(1, "R", 50, 49)
        ctx = make_ctx(time=t, oracle=oracle)
        p = RandPolicy()
        p.reset(ctx)
        for _ in range(10):
            victims = p.select_victims([alive, dead], 1, ctx)
            assert victims == [dead]


class TestProb:
    def test_scores_by_partner_frequency(self):
        # R history irrelevant for R tuples; S tuples score by R history.
        ctx = make_ctx(
            r_hist=[1, 1, 1, 2],
            s_hist=[5, 5, 6, 7],
            time=3,
        )
        p = ProbPolicy()
        p.reset(ctx)
        # R tuple with value 5 occurs twice in S history; value 6 once.
        r5 = StreamTuple(0, "R", 5, 0)
        r6 = StreamTuple(1, "R", 6, 0)
        assert p.score(r5, ctx) > p.score(r6, ctx)
        # S tuple scores against R history.
        s1 = StreamTuple(2, "S", 1, 0)
        s2 = StreamTuple(3, "S", 2, 0)
        assert p.score(s1, ctx) > p.score(s2, ctx)

    def test_counts_update_incrementally(self):
        ctx = make_ctx(r_hist=[1], s_hist=[9], time=0)
        p = ProbPolicy()
        p.reset(ctx)
        s1 = StreamTuple(0, "S", 1, 0)
        first = p.score(s1, ctx)
        ctx.r_history.extend([1, 1])
        ctx.s_history.extend([9, 9])
        ctx.time = 2
        assert p.score(s1, ctx) > first

    def test_cache_kind_counts_reference_stream(self):
        ctx = make_ctx(kind="cache", r_hist=[4, 4, 9], time=2)
        p = ProbPolicy()
        p.reset(ctx)
        hot = StreamTuple(0, "S", 4, 0)
        cold = StreamTuple(1, "S", 9, 0)
        assert p.score(hot, ctx) > p.score(cold, ctx)

    def test_dead_tuples_sink_below_everything(self):
        r_model = LinearTrendStream(bounded_uniform(2), speed=1.0)
        s_model = LinearTrendStream(bounded_uniform(2), speed=1.0)
        oracle = TrendWindowOracle(r_model, s_model)
        ctx = make_ctx(time=50, oracle=oracle, r_hist=[40] * 10, s_hist=[0] * 10)
        p = ProbPolicy()
        p.reset(ctx)
        dead_but_frequent = StreamTuple(0, "S", 40, 30)
        alive_rare = StreamTuple(1, "S", 51, 50)
        assert p.score(alive_rare, ctx) > p.score(dead_but_frequent, ctx)

    def test_lfu_is_prob(self):
        assert issubclass(LfuPolicy, ProbPolicy)
        assert LfuPolicy().name == "LFU"


class TestLife:
    def test_requires_oracle(self):
        ctx = make_ctx()
        p = LifePolicy()
        p.reset(ctx)
        with pytest.raises(ValueError):
            p.score(StreamTuple(0, "R", 1, 0), ctx)

    def test_prefers_long_life_times_probability(self):
        r_model = LinearTrendStream(bounded_uniform(5), speed=1.0)
        s_model = LinearTrendStream(bounded_uniform(5), speed=1.0)
        oracle = TrendWindowOracle(r_model, s_model)
        t = 20
        # Equal frequency, different remaining life.
        ctx = make_ctx(
            time=t,
            oracle=oracle,
            r_hist=[18, 24] * 3,
            s_hist=[0] * 6,
        )
        p = LifePolicy()
        p.reset(ctx)
        short = StreamTuple(0, "S", 18, 10)  # window passes sooner
        long = StreamTuple(1, "S", 24, 19)
        assert p.score(long, ctx) > p.score(short, ctx)


class TestLruk:
    def test_lru2_prefers_frequently_revisited(self):
        # Value 1 referenced at 0 and 4; value 2 only at 5.  LRU evicts 1
        # (older last use... actually 2 is newer); LRU-2 evicts 2 (no 2nd
        # reference).
        ctx = make_ctx(kind="cache", r_hist=[1, 3, 3, 3, 1, 2], time=5)
        p = LrukPolicy(k=2)
        p.reset(ctx)
        v1 = StreamTuple(0, "S", 1, 0)
        v2 = StreamTuple(1, "S", 2, 5)
        assert p.score(v1, ctx) > p.score(v2, ctx)

    def test_lru1_matches_recency(self):
        ctx = make_ctx(kind="cache", r_hist=[1, 2], time=1)
        p = LrukPolicy(k=1)
        p.reset(ctx)
        v1 = StreamTuple(0, "S", 1, 0)
        v2 = StreamTuple(1, "S", 2, 1)
        assert p.score(v2, ctx) > p.score(v1, ctx)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            LrukPolicy(k=0)

    def test_lruk_runs_in_simulator(self):
        trace = [1, 2, 1, 3, 1, 2, 1, 4, 1, 2]
        result = CacheSimulator(2, LrukPolicy(k=2)).run(trace)
        # LRU-2 should protect the hot value 1.
        assert result.hits >= 4


class TestCaseOptimalPolicies:
    def test_smallest_value_first(self):
        ctx = make_ctx()
        p = SmallestValueFirstPolicy()
        tuples = [StreamTuple(i, "S", v, 0) for i, v in enumerate([5, 2, 9])]
        victims = p.select_victims(tuples, 1, ctx)
        assert victims[0].value == 2

    def test_farthest_from_reference(self):
        ctx = make_ctx(kind="cache", r_hist=[10, 20], time=1)
        p = FarthestFromReferencePolicy()
        tuples = [StreamTuple(i, "S", v, 0) for i, v in enumerate([19, 35, 22])]
        victims = p.select_victims(tuples, 1, ctx)
        assert victims[0].value == 35

    def test_farthest_skips_none_history(self):
        ctx = make_ctx(kind="cache", r_hist=[None, 7], time=1)
        p = FarthestFromReferencePolicy()
        t = StreamTuple(0, "S", 9, 0)
        assert p.score(t, ctx) == pytest.approx(-2.0)


class TestWindowOracle:
    def test_deadness_matches_model_window(self):
        r_model = LinearTrendStream(bounded_uniform(3), speed=1.0)
        s_model = LinearTrendStream(bounded_uniform(4), speed=1.0)
        oracle = TrendWindowOracle(r_model, s_model)
        t = 100
        # An S tuple joins R arrivals: dead once value < r_window_low
        # forever, i.e. last joinable time = value + w_r.
        s_tup = StreamTuple(0, "S", 98, 90)
        assert oracle.remaining_life(s_tup, t) == (98 + 3) - t
        assert not oracle.is_dead(s_tup, t)
        assert oracle.is_dead(s_tup, 101)

    def test_remaining_life_never_negative(self):
        r_model = LinearTrendStream(bounded_uniform(3), speed=1.0)
        oracle = TrendWindowOracle(r_model, r_model)
        tup = StreamTuple(0, "S", 0, 0)
        assert oracle.remaining_life(tup, 1000) == 0

    def test_static_window_never_dead(self):
        r_model = LinearTrendStream(bounded_uniform(3), speed=0.0)
        oracle = TrendWindowOracle(r_model, r_model)
        tup = StreamTuple(0, "S", 0, 0)
        assert not oracle.is_dead(tup, 10**9)


class TestPoliciesEndToEnd:
    def test_prob_beats_rand_on_stationary_streams(self, rng):
        """Section 5.2: PROB is optimal for stationary streams."""
        from repro.streams import StationaryStream, from_mapping

        dist = from_mapping({1: 0.55, 2: 0.25, 3: 0.1, 4: 0.05, 5: 0.05})
        model = StationaryStream(dist)
        totals = {"PROB": 0, "RAND": 0}
        for run in range(5):
            r = model.sample_path(800, np.random.default_rng(run))
            s = model.sample_path(800, np.random.default_rng(100 + run))
            for name, policy in (
                ("PROB", ProbPolicy()),
                ("RAND", RandPolicy(seed=run)),
            ):
                sim = JoinSimulator(4, policy)
                totals[name] += sim.run(r, s).total_results
        assert totals["PROB"] > totals["RAND"]

    def test_lru_beats_rand_on_local_trace(self):
        # A trace with heavy temporal locality.
        rng = np.random.default_rng(0)
        trace = []
        hot = 0
        for _ in range(1500):
            if rng.random() < 0.05:
                hot = int(rng.integers(0, 50))
            trace.append(hot if rng.random() < 0.8 else int(rng.integers(0, 50)))
        lru = CacheSimulator(5, LruPolicy()).run(trace)
        rand = CacheSimulator(5, RandPolicy(seed=1)).run(trace)
        assert lru.hits > rand.hits
