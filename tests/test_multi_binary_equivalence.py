"""The multi-join simulator reduces to the binary one for two streams."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lifetime import LExp
from repro.policies.heeb_policy import GenericJoinHeeb, HeebPolicy
from repro.sim.join_sim import JoinSimulator
from repro.sim.multi_join import MultiJoinPolicy, MultiJoinSimulator
from repro.policies.base import ScoredPolicy
from repro.streams import StationaryStream, from_mapping


class KeepLargestValueBinary(ScoredPolicy):
    name = "KEEP-LARGEST"

    def score(self, tup, ctx):
        return float(tup.value)


class KeepLargestValueMulti(MultiJoinPolicy):
    name = "KEEP-LARGEST"

    def select_victims(self, candidates, n_evict, ctx):
        if n_evict <= 0:
            return []
        return sorted(candidates, key=lambda t: (float(t.value), t.uid))[
            :n_evict
        ]


value_lists = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
    min_size=1,
    max_size=30,
)


class TestTwoStreamEquivalence:
    @given(value_lists, value_lists, st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_same_results_with_value_deterministic_policy(self, r, s, k):
        """A value-deterministic policy produces identical result counts
        through both simulators when the multi-join runs the single query
        R⋈S."""
        binary = JoinSimulator(k, KeepLargestValueBinary()).run(r, s)
        multi = MultiJoinSimulator(
            k, KeepLargestValueMulti(), queries=[("R", "S")]
        ).run({"R": r, "S": s})
        assert multi.total_results == binary.total_results

    def test_per_query_attribution_sums(self):
        rng = np.random.default_rng(0)
        streams = {
            name: list(rng.integers(0, 3, size=40)) for name in "ABC"
        }
        sim = MultiJoinSimulator(
            4, KeepLargestValueMulti(), queries=[("A", "B"), ("B", "C")]
        )
        result = sim.run(streams)
        assert sum(result.per_query.values()) == result.total_results


class _RecordingHeeb(HeebPolicy):
    """HEEB wrapper logging every eviction decision as (t, victim uids)."""

    def __init__(self, strategy, log):
        super().__init__(strategy)
        self.log = log

    def select_victims(self, candidates, n_evict, ctx):
        victims = super().select_victims(candidates, n_evict, ctx)
        if victims:
            self.log.append((ctx.time, tuple(v.uid for v in victims)))
        return victims


class TestUnifiedHeebDegeneracy:
    """The unified HeebPolicy is the binary policy on 1-partner contexts.

    Appendix C sums the binary benefit over partner streams; with one
    partner the sum has one term, so a 2-stream/1-query multi-join run
    must make byte-identical decisions to the binary simulator — same
    victims at the same steps, not merely the same counts.
    """

    @given(value_lists, value_lists, st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_heeb_two_stream_decisions_byte_identical(self, r, s, k):
        dist = from_mapping({v: 1.0 / 6 for v in range(6)})
        models = {"R": StationaryStream(dist), "S": StationaryStream(dist)}

        binary_log, multi_log = [], []
        binary = JoinSimulator(
            k,
            _RecordingHeeb(GenericJoinHeeb(LExp(4.0), horizon=20), binary_log),
            r_model=models["R"],
            s_model=models["S"],
        ).run(r, s)
        multi = MultiJoinSimulator(
            k,
            _RecordingHeeb(GenericJoinHeeb(LExp(4.0), horizon=20), multi_log),
            queries=[("R", "S")],
            models=models,
        ).run({"R": r, "S": s})

        assert multi.total_results == binary.total_results
        assert multi_log == binary_log
