"""The multi-join simulator reduces to the binary one for two streams."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.join_sim import JoinSimulator
from repro.sim.multi_join import MultiJoinPolicy, MultiJoinSimulator
from repro.policies.base import ScoredPolicy


class KeepLargestValueBinary(ScoredPolicy):
    name = "KEEP-LARGEST"

    def score(self, tup, ctx):
        return float(tup.value)


class KeepLargestValueMulti(MultiJoinPolicy):
    name = "KEEP-LARGEST"

    def select_victims(self, candidates, n_evict, ctx):
        if n_evict <= 0:
            return []
        return sorted(candidates, key=lambda t: (float(t.value), t.uid))[
            :n_evict
        ]


value_lists = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
    min_size=1,
    max_size=30,
)


class TestTwoStreamEquivalence:
    @given(value_lists, value_lists, st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_same_results_with_value_deterministic_policy(self, r, s, k):
        """A value-deterministic policy produces identical result counts
        through both simulators when the multi-join runs the single query
        R⋈S."""
        binary = JoinSimulator(k, KeepLargestValueBinary()).run(r, s)
        multi = MultiJoinSimulator(
            k, KeepLargestValueMulti(), queries=[("R", "S")]
        ).run({"R": r, "S": s})
        assert multi.total_results == binary.total_results

    def test_per_query_attribution_sums(self):
        rng = np.random.default_rng(0)
        streams = {
            name: list(rng.integers(0, 3, size=40)) for name in "ABC"
        }
        sim = MultiJoinSimulator(
            4, KeepLargestValueMulti(), queries=[("A", "B"), ("B", "C")]
        )
        result = sim.run(streams)
        assert sum(result.per_query.values()) == result.total_results
