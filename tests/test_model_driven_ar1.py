"""The model-driven policy's AR(1) path (per-side Theorem-5 surfaces)."""

from __future__ import annotations

import numpy as np

from repro.policies import ModelDrivenHeebPolicy, RandPolicy
from repro.sim.join_sim import JoinSimulator
from repro.streams import AR1Stream


class TestAutoAR1:
    def test_identifies_and_runs_ar1_pair(self):
        m1 = AR1Stream(2.0, 0.6, 2.0, bucket=1.0)
        m2 = AR1Stream(3.0, 0.7, 1.5, bucket=1.0)
        r = m1.sample_path(700, np.random.default_rng(0))
        s = m2.sample_path(700, np.random.default_rng(1))
        policy = ModelDrivenHeebPolicy(min_history=150, refit_every=300)
        result = JoinSimulator(6, policy).run(r, s)
        assert policy.kinds == ("AR1Stream", "AR1Stream")
        assert policy.refits >= 1
        assert result.total_results > 0

    def test_beats_rand_on_mean_reverting_streams(self):
        m1 = AR1Stream(2.0, 0.6, 2.0, bucket=1.0)
        m2 = AR1Stream(2.0, 0.6, 2.0, bucket=1.0)
        auto_total = rand_total = 0
        for run in range(3):
            r = m1.sample_path(900, np.random.default_rng(run))
            s = m2.sample_path(900, np.random.default_rng(100 + run))
            auto = ModelDrivenHeebPolicy(min_history=150, refit_every=300)
            auto_total += JoinSimulator(5, auto).run(r, s).total_results
            rand_total += (
                JoinSimulator(5, RandPolicy(seed=run)).run(r, s).total_results
            )
        assert auto_total > rand_total
