"""Unit tests for the shared step functions and the seed-spawning helper.

The simulators and the server are both drivers over
:mod:`repro.sim.step`; these tests pin the step functions directly —
manual driving equals the simulator entry points — and pin the
``spawn_seed`` scheme that every per-trial RNG in the repo derives
from.  Changing the scheme would silently re-randomize every pinned
expectation in the suite, so it gets its own regression test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tuples import TupleFactory
from repro.policies import make_policy
from repro.sim import (
    CacheSimulator,
    JoinSimulator,
    cache_step,
    generate_paths,
    join_step,
    make_cache_state,
    make_join_state,
    spawn_rng,
    spawn_seed,
)
from repro.streams import StationaryStream, from_mapping


# ----------------------------------------------------------------------
# Seed spawning (the one place run seeds come from)
# ----------------------------------------------------------------------
def test_spawn_seed_scheme_is_pinned():
    # The scheme is seed + index.  This is a compatibility contract:
    # changing it re-randomizes every seeded expectation in the repo
    # (simulator goldens, parity replays, bench history), so the exact
    # values are pinned here.
    assert spawn_seed(0, 0) == 0
    assert spawn_seed(0, 7) == 7
    assert spawn_seed(123, 0) == 123
    assert spawn_seed(123, 41) == 164
    for seed in (0, 1, 999):
        for index in (0, 1, 50):
            assert spawn_seed(seed, index) == seed + index


def test_spawn_seed_rejects_negative_index():
    with pytest.raises(ValueError):
        spawn_seed(5, -1)


def test_spawn_rng_matches_default_rng_of_spawned_seed():
    draws = spawn_rng(42, 3).integers(0, 1000, size=8)
    expected = np.random.default_rng(45).integers(0, 1000, size=8)
    assert list(draws) == list(expected)


def test_generate_paths_uses_spawned_seeds():
    model = StationaryStream(from_mapping({1: 0.5, 2: 0.5}))
    paths = generate_paths(model, model, length=20, n_runs=3, seed=10)
    for run, (r_values, s_values) in enumerate(paths):
        rng = np.random.default_rng(spawn_seed(10, run))
        assert r_values == model.sample_path(20, rng)
        assert s_values == model.sample_path(20, rng)


# ----------------------------------------------------------------------
# TupleFactory strides (the server's uid-uniqueness mechanism)
# ----------------------------------------------------------------------
def test_tuple_factory_default_is_dense_from_zero():
    factory = TupleFactory()
    uids = [factory.make("R", 1, t).uid for t in range(4)]
    assert uids == [0, 1, 2, 3]
    assert factory.next_uid == 4


def test_tuple_factory_strided_uid_spaces_are_disjoint():
    factories = [TupleFactory(start=i, step=3) for i in range(3)]
    minted = [
        [f.make("R", 0, t).uid for t in range(5)] for f in factories
    ]
    assert minted[0] == [0, 3, 6, 9, 12]
    assert minted[1] == [1, 4, 7, 10, 13]
    all_uids = [u for uids in minted for u in uids]
    assert len(all_uids) == len(set(all_uids))


def test_tuple_factory_rejects_nonpositive_step():
    with pytest.raises(ValueError):
        TupleFactory(step=0)


# ----------------------------------------------------------------------
# join_step / cache_step equal their simulator drivers
# ----------------------------------------------------------------------
def _streams(length=120, seed=9):
    model = StationaryStream(
        from_mapping({1: 0.3, 2: 0.3, 3: 0.2, 4: 0.2})
    )
    rng = np.random.default_rng(seed)
    return (
        model.sample_path(length, rng),
        model.sample_path(length, rng),
    )


def test_manual_join_driver_equals_simulator():
    r_values, s_values = _streams()
    sim = JoinSimulator(policy=make_policy("lru"), cache_size=5)
    sim_result = sim.run(r_values, s_values)

    state = make_join_state(5, make_policy("lru"))
    total = 0
    occupancy = []
    for t in range(len(r_values)):
        outcome = join_step(state, t, r_values[t], s_values[t])
        total += outcome.results
        occupancy.append(outcome.occupancy)
    assert total == sim_result.total_results
    assert state.total_results == sim_result.total_results
    assert occupancy == list(sim_result.occupancy)


def test_join_step_outcome_invariants():
    state = make_join_state(2, make_policy("lru"))
    outcome = join_step(state, 0, 1, 1)
    # Same-step R/S arrivals never join each other.
    assert outcome.results == 0
    assert [t.value for t in outcome.admitted] == [1, 1]
    assert outcome.occupancy == 2

    outcome = join_step(state, 1, 1, None)
    # The new R joins the cached S; "−" mints nothing.
    assert outcome.results == 1
    assert len(outcome.new_tuples) == 1
    assert outcome.occupancy <= 2
    assert outcome.victims  # capacity forced an eviction

    # Admitted tuples are a subset of the step's new tuples.
    new_uids = {t.uid for t in outcome.new_tuples}
    assert all(t.uid in new_uids for t in outcome.admitted)


def test_make_join_state_validates():
    with pytest.raises(ValueError):
        make_join_state(0, make_policy("lru"))
    with pytest.raises(ValueError):
        make_join_state(2, make_policy("lru"), window=-1)
    with pytest.raises(ValueError):
        make_join_state(2, make_policy("lru"), band=-1)


def test_manual_cache_driver_equals_simulator():
    references, _ = _streams()
    references = [None if i % 11 == 0 else v for i, v in enumerate(references)]
    sim = CacheSimulator(policy=make_policy("lru"), cache_size=3)
    sim_result = sim.run(references)

    state = make_cache_state(3, make_policy("lru"))
    hits = misses = skipped = 0
    for t, value in enumerate(references):
        outcome = cache_step(state, t, value)
        if outcome.hit is None:
            skipped += 1
        elif outcome.hit:
            hits += 1
        else:
            misses += 1
    assert (hits, misses, skipped) == (
        sim_result.hits,
        sim_result.misses,
        sim_result.skipped,
    )
    assert (state.hits, state.misses, state.skipped) == (hits, misses, skipped)


def test_cache_step_miss_admits_fetched_tuple():
    state = make_cache_state(2, make_policy("lru"))
    outcome = cache_step(state, 0, 7)
    assert outcome.hit is False
    assert outcome.admitted is not None
    assert outcome.admitted.value == 7
    outcome = cache_step(state, 1, 7)
    assert outcome.hit is True
    assert outcome.victims == []
