"""Sim-vs-server parity for multi-join topologies (PR-7 serving tier).

The single-shard :class:`repro.serve.StreamServer` with
``kind="multi_join"`` drives :func:`repro.sim.step.multi_join_step` —
the same transition as :class:`repro.sim.multi_join.MultiJoinSimulator`
— and shares the caller's recorder verbatim, so a seeded replay must be
decision-identical: same results, same counters, byte-identical trace
events.  Sharded mode routes arrivals by join value (every query edge
probes the same attribute, so matches stay intra-shard).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.obs import CounterRecorder, TraceRecorder, read_trace
from repro.policies import make_policy
from repro.serve import (
    ServerClosed,
    StreamServer,
    generate_multi_join_stream,
    run_replay,
)
from repro.sim import ExperimentSpec
from repro.sim.multi_join import MultiJoinSimulator
from repro.streams import StationaryStream, from_mapping

LENGTH = 400
CACHE = 8
SEED = 20260808


def _models():
    dist = from_mapping({v: 1.0 / 6 for v in range(1, 7)})
    return {name: StationaryStream(dist) for name in ("A", "B", "C")}


QUERIES = [("A", "B"), ("B", "C")]


def _streams(models, length=LENGTH, seed=SEED):
    streams = generate_multi_join_stream(models, length, seed)
    holes = np.random.default_rng(seed)
    for vals in streams.values():
        for t in holes.choice(length, size=length // 5, replace=False):
            vals[t] = None
    return streams


def _spec(models, cache=CACHE):
    return ExperimentSpec(
        kind="multi_join",
        cache_size=cache,
        queries=tuple(tuple(q) for q in QUERIES),
        models=models,
    )


@pytest.mark.parametrize("policy_name", ["lru", "lfu", "trie"])
def test_multi_counters_match_simulator(policy_name):
    models = _models()
    streams = _streams(models)
    spec = _spec(models)

    rec_sim = CounterRecorder()
    sim = MultiJoinSimulator(
        CACHE, make_policy(policy_name), QUERIES, models=models, recorder=rec_sim
    )
    sim_result = sim.run(streams)

    rec_srv = CounterRecorder()
    summary = run_replay(
        spec, lambda: make_policy(policy_name), streams,
        n_shards=1, recorder=rec_srv,
    )

    assert summary.total_results == sim_result.total_results
    for key, value in rec_sim.counters.items():
        assert rec_srv.counters.get(key) == value, key
    extras = set(rec_srv.counters) - set(rec_sim.counters)
    assert all(k.startswith("serve.") for k in extras), extras


def test_multi_trace_events_are_byte_identical(tmp_path):
    models = _models()
    streams = _streams(models)
    spec = _spec(models)

    sim_path = tmp_path / "sim.jsonl"
    rec_sim = TraceRecorder(path=sim_path)
    MultiJoinSimulator(
        CACHE, make_policy("lru"), QUERIES, models=models, recorder=rec_sim
    ).run(streams)
    rec_sim.close()

    srv_path = tmp_path / "srv.jsonl"
    rec_srv = TraceRecorder(path=srv_path)
    run_replay(
        spec, lambda: make_policy("lru"), streams, n_shards=1, recorder=rec_srv
    )
    rec_srv.close()

    def step_events(path):
        return [
            e
            for e in read_trace(path)
            if not str(e.get("name", "")).startswith("serve.")
        ]

    sim_events = step_events(sim_path)
    srv_events = step_events(srv_path)
    assert sim_events == srv_events
    assert any(e["kind"] == "evict" for e in sim_events)


def test_multi_final_cache_contents_match():
    models = _models()
    streams = _streams(models)
    spec = _spec(models)

    from repro.sim.step import build_multi_join_state, multi_join_step

    state = build_multi_join_state(
        CACHE, make_policy("lru"), QUERIES, list(models), models=models
    )
    for t in range(LENGTH):
        multi_join_step(state, t, {n: streams[n][t] for n in models})
    sim_kept = sorted(
        (tup.uid, tup.side, tup.value, tup.arrival)
        for tup in state.cache.tuples()
    )

    async def run_server():
        server = StreamServer(spec, lambda: make_policy("lru"))
        await server.start()
        for t in range(LENGTH):
            await server.submit_multi(t, {n: streams[n][t] for n in models})
        await server.drain()
        kept = sorted(
            (tup.uid, tup.side, tup.value, tup.arrival)
            for tup in server.cached_tuples()
        )
        per_query = server.per_query_results()
        await server.stop()
        return kept, per_query

    srv_kept, per_query = asyncio.run(
        asyncio.wait_for(run_server(), timeout=60)
    )
    assert srv_kept == sim_kept
    assert sum(per_query.values()) == state.total_results
    assert set(per_query) == {frozenset(q) for q in QUERIES}


def test_sharded_multi_routes_by_value_and_conserves_arrivals():
    models = _models()
    streams = _streams(models, length=200)
    spec = _spec(models, cache=4)

    rec = CounterRecorder()
    summary = run_replay(
        spec, lambda: make_policy("lru"), streams, n_shards=3, recorder=rec
    )
    expected = sum(
        sum(v is not None for v in vals) for vals in streams.values()
    )
    assert summary.ingested_arrivals == expected
    # Matches are intra-shard: every cached value hashes to its shard.
    from repro.serve import ShardRouter

    router = ShardRouter(3)

    async def check():
        server = StreamServer(spec, lambda: make_policy("lru"), n_shards=3)
        await server.start()
        for t in range(200):
            await server.submit_multi(t, {n: streams[n][t] for n in models})
        await server.drain()
        for shard in server.shards:
            for tup in shard.state.cache.tuples():
                assert router.shard_for(tup.value) == shard.index
        await server.stop()

    asyncio.run(asyncio.wait_for(check(), timeout=60))


def test_submit_multi_validation():
    models = _models()
    spec = _spec(models)

    async def scenario():
        server = StreamServer(spec, lambda: make_policy("lru"))
        with pytest.raises(ServerClosed):
            await server.submit_multi(0, {"A": 1})
        await server.start()
        with pytest.raises(ValueError, match="unknown streams"):
            await server.submit_multi(0, {"Z": 1})
        with pytest.raises(ValueError, match="submit_multi"):
            await server.submit(0, 1, 2)
        # Absent names are "−"; an all-null tick is accepted.
        await server.submit_multi(0, {"A": 3})
        await server.submit_multi(1, {})
        await server.drain()
        assert server.ingested_arrivals == 1
        await server.stop()

    asyncio.run(asyncio.wait_for(scenario(), timeout=60))


def test_multi_server_requires_known_query_streams():
    models = _models()
    with pytest.raises(ValueError, match="unknown streams"):
        StreamServer(
            ExperimentSpec(
                kind="multi_join",
                cache_size=4,
                queries=(("A", "Z"),),
                models=models,
            ),
            lambda: make_policy("lru"),
        )


def test_multi_shard_null_tick_counted():
    models = _models()
    spec = _spec(models)

    async def scenario():
        rec = CounterRecorder()
        server = StreamServer(
            spec, lambda: make_policy("lru"), n_shards=2, recorder=rec
        )
        await server.start()
        await server.submit_multi(0, {"A": None, "B": None})
        await server.drain()
        await server.stop()
        return rec.counters.get("serve.null_ticks")

    assert asyncio.run(asyncio.wait_for(scenario(), timeout=60)) == 1
