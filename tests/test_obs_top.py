"""The ``python -m repro.obs top`` dashboard: rendering and CLI modes.

Rendering is a pure function of the health document plus the depth
history, so these tests drive the full dashboard — header, per-shard
table, sparkline trend column — without sockets or timers, then cover
the CLI's snapshot mode, polling loop, and unreachable-endpoint exit.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import top
from repro.obs.__main__ import main as obs_main
from repro.obs.top import DepthHistory, load_snapshot, render_health


def health_doc(**overrides) -> dict:
    doc = {
        "status": "ok",
        "kind": "join",
        "n_shards": 2,
        "uptime_seconds": 12.5,
        "ingested_arrivals": 400,
        "backpressure_waits": 3,
        "backpressure_duty": 0.0125,
        "occupancy": 17,
        "shards": [
            {
                "shard": 0,
                "alive": True,
                "queue_depth": 5,
                "queue_maxsize": 100,
                "queue_saturation": 0.05,
                "events_applied": 210,
                "occupancy": 9,
                "max_queue_depth": 40,
                "backpressure_waits": 2,
                "backpressure_duty": 0.01,
                "p99_decide_ms": 0.125,
            },
            {
                "shard": 1,
                "alive": False,
                "queue_depth": 90,
                "queue_maxsize": 100,
                "queue_saturation": 0.9,
                "events_applied": 190,
                "occupancy": 8,
                "max_queue_depth": 95,
                "backpressure_waits": 1,
                "backpressure_duty": 0.002,
                "p99_decide_ms": None,
            },
        ],
        "latency": {
            "serve.span.decide_ms": {
                "count": 400,
                "p50": 0.05,
                "p90": 0.09,
                "p99": 0.125,
                "max": 0.8,
            }
        },
    }
    doc.update(overrides)
    return doc


class TestDepthHistory:
    """Bounded per-shard sample retention for the trend column."""

    def test_push_accumulates_per_shard(self):
        history = DepthHistory()
        history.push(health_doc())
        history.push(health_doc())
        assert history.samples(0) == [5.0, 5.0]
        assert history.samples(1) == [90.0, 90.0]
        assert history.samples(7) == []

    def test_budget_bounds_retention(self):
        history = DepthHistory(budget=3)
        for depth in range(10):
            doc = health_doc()
            doc["shards"][0]["queue_depth"] = depth
            history.push(doc)
        assert history.samples(0) == [7.0, 8.0, 9.0]  # newest three


class TestRenderHealth:
    """The screen: header lines plus the per-shard table."""

    def test_header_and_summary_lines(self):
        screen = render_health(health_doc())
        assert "repro serve · join · status=ok · shards=2 · up 12.5s" in screen
        assert "ingested=400" in screen
        assert "duty=1.25%" in screen
        assert "decide latency: p50=0.05ms p90=0.09ms p99=0.12ms max=0.80ms" \
            in screen

    def test_shard_rows_and_liveness(self):
        lines = render_health(health_doc()).splitlines()
        table = [ln for ln in lines if ln and ln[0].isdigit()]
        assert len(table) == 2
        assert "up" in table[0] and "0.125" in table[0]
        assert "DOWN" in table[1]
        assert table[1].rstrip().endswith("-")  # missing p99 renders "-"

    def test_history_adds_sparkline_column(self):
        history = DepthHistory()
        for depth in (0, 20, 50, 90):
            doc = health_doc()
            doc["shards"][0]["queue_depth"] = depth
            history.push(doc)
        screen = render_health(health_doc(), history)
        assert any(ch in screen for ch in "▁▂▃▄▅▆▇█")

    def test_degenerate_document_renders(self):
        # A bare-minimum document must not crash the renderer.
        screen = render_health({"status": "idle", "shards": []})
        assert "status=idle" in screen


class TestCli:
    """Snapshot mode, polling loop, and failure exit."""

    def test_snapshot_mode_renders_once(self, tmp_path, capsys):
        path = tmp_path / "health.json"
        path.write_text(json.dumps(health_doc()), encoding="utf-8")
        assert load_snapshot(str(path))["status"] == "ok"
        assert top.main(["--snapshot", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.count("repro serve") == 1
        assert "\x1b[2J" not in out  # snapshot mode never clears

    def test_module_dispatch(self, tmp_path, capsys):
        path = tmp_path / "health.json"
        path.write_text(json.dumps(health_doc()), encoding="utf-8")
        assert obs_main(["top", "--snapshot", str(path)]) == 0
        assert "repro serve" in capsys.readouterr().out

    def test_count_limits_live_refreshes(self, monkeypatch, capsys):
        polled = []

        def fake_fetch(url, timeout=2.0):
            polled.append(url)
            return health_doc()

        monkeypatch.setattr(top, "fetch_health", fake_fetch)
        code = top.main(
            ["--url", "http://example.invalid:1", "--count", "3",
             "--interval", "0", "--no-clear"]
        )
        assert code == 0
        assert len(polled) == 3
        assert capsys.readouterr().out.count("repro serve") == 3

    def test_unreachable_url_exits_nonzero(self, capsys):
        # A refused connection must produce an actionable error, fast.
        code = top.main(["--url", "http://127.0.0.1:1", "--count", "1"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_url_and_snapshot_are_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            top.main(["--url", "http://x", "--snapshot", "x.json"])
        with pytest.raises(SystemExit):
            top.main([])
