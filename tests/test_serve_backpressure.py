"""Backpressure and lifecycle behavior of the streaming server.

Every test drives a real asyncio event loop but is wrapped in
``asyncio.wait_for`` so a regression that deadlocks (full queue with no
consumer, drain on a dead worker, shutdown racing producers) fails the
suite with a timeout instead of hanging CI.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.obs import CounterRecorder
from repro.policies import make_policy
from repro.policies.base import ReplacementPolicy
from repro.serve import ServerClosed, StreamServer
from repro.sim import ExperimentSpec

TIMEOUT = 30  # seconds; generous — the tests themselves run in < 1s


def run(coro):
    """Run a coroutine under the suite's hang guard."""
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


def join_spec(cache_size: int = 4) -> ExperimentSpec:
    return ExperimentSpec(kind="join", cache_size=cache_size)


class ExplodingPolicy(ReplacementPolicy):
    """LRU until step ``fuse``, then raises — a worker-crash fixture."""

    name = "exploding"

    def __init__(self, fuse: int):
        self.fuse = fuse
        self.calls = 0

    def select_victims(self, candidates, n_evict, ctx):
        if ctx.time >= self.fuse:
            raise RuntimeError("boom")
        return sorted(candidates, key=lambda t: t.arrival)[:n_evict]


def test_backpressure_engages_and_releases_without_deadlock():
    recorder = CounterRecorder()

    async def go():
        server = StreamServer(
            join_spec(),
            lambda: make_policy("lru"),
            queue_maxsize=2,
            step_delay=0.002,
            recorder=recorder,
        )
        await server.start()
        for t in range(40):
            await server.submit(t, t % 5, (t + 1) % 5)
        await server.drain()
        # Backpressure released: queues are empty again and a fresh
        # submit completes promptly.
        assert all(s.queue.empty() for s in server.shards)
        await server.submit(40, 1, 2)
        await server.stop()
        return server

    server = run(go())
    assert server.backpressure_waits > 0
    assert recorder.counters["serve.backpressure.engaged"] > 0
    assert sum(s.events_applied for s in server.shards) == 41
    assert recorder.counters["sim.steps"] == 41


def test_slow_consumer_bounds_queue_depth():
    async def go():
        server = StreamServer(
            join_spec(),
            lambda: make_policy("lru"),
            queue_maxsize=3,
            step_delay=0.001,
        )
        await server.start()
        for t in range(30):
            await server.submit(t, t % 4, t % 7)
        await server.stop()
        return server

    server = run(go())
    # A bounded queue can never report a depth beyond its bound.
    assert all(s.max_queue_depth <= 3 for s in server.shards)
    assert sum(s.events_applied for s in server.shards) == 30


def test_producer_cancellation_leaves_shard_state_consistent():
    async def go():
        server = StreamServer(
            join_spec(cache_size=3),
            lambda: make_policy("lru"),
            queue_maxsize=1,
            step_delay=0.005,
        )
        await server.start()

        async def producer():
            for t in range(1000):
                await server.submit(t, t % 5, (t + 2) % 5)

        task = asyncio.create_task(producer())
        await asyncio.sleep(0.05)  # let it wedge against backpressure
        task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await task

        # Whatever was accepted before the cancel still drains cleanly,
        # and the shard is in a usable, capacity-respecting state.
        await server.drain()
        assert server.occupancy() <= 3
        uids = [t.uid for t in server.cached_tuples()]
        assert len(uids) == len(set(uids))

        # The server keeps serving after the producer's demise.
        await server.submit(2000, 1, 1)
        await server.drain()
        await server.stop()
        return server

    server = run(go())
    applied = sum(s.events_applied for s in server.shards)
    assert applied >= 1  # the post-cancel tick, at minimum


def test_graceful_stop_drains_queues():
    async def go():
        server = StreamServer(
            join_spec(),
            lambda: make_policy("lru"),
            queue_maxsize=64,
            step_delay=0.001,
        )
        await server.start()
        for t in range(25):
            await server.submit(t, t % 3, t % 4)
        # No drain(): stop() itself must apply everything already
        # accepted before the workers exit.
        await server.stop()
        return server

    server = run(go())
    assert sum(s.events_applied for s in server.shards) == 25
    assert all(s.queue.empty() for s in server.shards)


def test_submit_outside_lifecycle_raises():
    async def go():
        server = StreamServer(join_spec(), lambda: make_policy("lru"))
        with pytest.raises(ServerClosed):
            await server.submit(0, 1, 2)
        await server.start()
        await server.submit(0, 1, 2)
        with pytest.raises(ValueError):
            await server.submit_reference(1, 3)  # wrong kind
        await server.stop()
        with pytest.raises(ServerClosed):
            await server.submit(1, 1, 2)

    run(go())


def test_worker_crash_surfaces_instead_of_hanging():
    async def go():
        server = StreamServer(
            join_spec(cache_size=2),
            lambda: ExplodingPolicy(fuse=5),
            queue_maxsize=4,
        )
        await server.start()
        with pytest.raises(RuntimeError):
            # Eventually the dead worker is noticed at submit or drain;
            # either way the failure surfaces bounded by the timeout.
            for t in range(200):
                await server.submit(t, t % 3, (t + 1) % 3)
                if t % 10 == 9:
                    await server.drain()
            await server.drain()
        with pytest.raises(RuntimeError):
            await server.stop()

    run(go())


def test_abort_cancels_pending_work():
    async def go():
        server = StreamServer(
            join_spec(),
            lambda: make_policy("lru"),
            queue_maxsize=128,
            step_delay=0.01,
        )
        await server.start()
        for t in range(50):
            await server.submit(t, t % 3, t % 5)
        await server.abort()
        return server

    server = run(go())
    # Abort is deliberately lossy: not everything accepted was applied.
    assert sum(s.events_applied for s in server.shards) < 50


def test_live_reshard_preserves_cached_tuples_and_keeps_serving():
    async def go():
        server = StreamServer(
            join_spec(cache_size=50),
            lambda: make_policy("lru"),
            n_shards=2,
        )
        await server.start()
        for t in range(20):
            await server.submit(t, t % 6, (t + 3) % 6)
        await server.drain()
        before = sorted(
            (t.uid, t.side, t.value, t.arrival)
            for t in server.cached_tuples()
        )
        await server.reshard(3)
        after = sorted(
            (t.uid, t.side, t.value, t.arrival)
            for t in server.cached_tuples()
        )
        assert after == before
        assert server.n_shards == 3

        # Still serving: new ticks apply, and uid minting never collides
        # with pre-reshard tuples.
        for t in range(20, 30):
            await server.submit(t, t % 6, (t + 3) % 6)
        await server.drain()
        uids = [t.uid for t in server.cached_tuples()]
        assert len(uids) == len(set(uids))
        await server.stop()
        return server

    server = run(go())
    assert sum(s.events_applied for s in server.shards) > 0
