"""Theorem 1 for arbitrary policies: hits = joins under the adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.policies import LfdPolicy, LruPolicy, LfuPolicy, RandPolicy
from repro.policies.reduction_adapter import ReducedJoiningPolicy
from repro.sim.cache_sim import CacheSimulator
from repro.sim.join_sim import JoinSimulator
from repro.streams.reduction import reduce_reference_stream


def hits_and_joins(reference, caching_policy_factory, cache_size):
    """Run the same policy through both problems; return (hits, joins)."""
    caching = CacheSimulator(cache_size, caching_policy_factory()).run(
        reference
    )
    r_values, s_values = reduce_reference_stream(reference)
    adapter = ReducedJoiningPolicy(caching_policy_factory())
    joining = JoinSimulator(cache_size, adapter).run(r_values, s_values)
    return caching.hits, joining.total_results


class TestTheorem1ForArbitraryPolicies:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_lru(self, seed, k):
        rng = np.random.default_rng(seed)
        reference = list(rng.integers(0, 5, size=80))
        hits, joins = hits_and_joins(reference, LruPolicy, k)
        assert hits == joins

    @pytest.mark.parametrize("seed", range(3))
    def test_lfu(self, seed):
        rng = np.random.default_rng(seed)
        reference = list(rng.integers(0, 4, size=60))
        hits, joins = hits_and_joins(reference, LfuPolicy, 2)
        assert hits == joins

    @pytest.mark.parametrize("seed", range(3))
    def test_lfd(self, seed):
        rng = np.random.default_rng(seed)
        reference = list(rng.integers(0, 4, size=60))
        hits, joins = hits_and_joins(
            reference, lambda: LfdPolicy(reference), 2
        )
        assert hits == joins

    def test_value_deterministic_pseudorandom_policy(self):
        """Positional RNG policies only match in distribution (the cache
        *order* differs across the reduction); a pseudo-random policy
        keyed on (value, time) is decision-identical and must match
        exactly."""
        from repro.policies.base import ScoredPolicy

        class HashRand(ScoredPolicy):
            name = "HASH-RAND"

            def score(self, tup, ctx):
                value = tup.value[0] if isinstance(tup.value, tuple) else tup.value
                return float(hash((value, ctx.time)) % 99991)

        rng = np.random.default_rng(7)
        reference = list(rng.integers(0, 5, size=100))
        hits, joins = hits_and_joins(reference, HashRand, 3)
        assert hits == joins

    def test_rand_matches_in_distribution(self):
        """Positional RAND agrees across the reduction on average."""
        rng = np.random.default_rng(7)
        reference = list(rng.integers(0, 5, size=100))
        hit_mean = np.mean(
            [
                CacheSimulator(3, RandPolicy(seed=s)).run(reference).hits
                for s in range(12)
            ]
        )
        r_values, s_values = reduce_reference_stream(reference)
        join_mean = np.mean(
            [
                JoinSimulator(3, ReducedJoiningPolicy(RandPolicy(seed=s)))
                .run(r_values, s_values)
                .total_results
                for s in range(12)
            ]
        )
        assert join_mean == pytest.approx(hit_mean, rel=0.15)

    def test_skewed_locality_trace(self):
        rng = np.random.default_rng(0)
        reference = []
        hot = 0
        for _ in range(150):
            if rng.random() < 0.1:
                hot = int(rng.integers(0, 10))
            reference.append(
                hot if rng.random() < 0.7 else int(rng.integers(0, 10))
            )
        hits, joins = hits_and_joins(reference, LruPolicy, 3)
        assert hits == joins

    def test_capacity_one(self):
        reference = [1, 2, 1, 1, 2, 2, 3, 1]
        hits, joins = hits_and_joins(reference, LruPolicy, 1)
        assert hits == joins

    def test_hits_match_expected_lru_trace(self):
        # Deterministic cross-check: LRU on 1 2 1 3 2 with capacity 2
        # yields exactly one hit, on both sides of the reduction.
        reference = [1, 2, 1, 3, 2]
        hits, joins = hits_and_joins(reference, LruPolicy, 2)
        assert hits == joins == 1
