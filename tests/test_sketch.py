"""Sketch front-ends: count-min/TinyLFU counts and bloom admission.

Pins the acceptance contract of :mod:`repro.sketch`:

* the data structures themselves — count-min never undercounts, the
  bloom filter never false-negatives, TinyLFU ages by halving, and the
  admission filter gates on doorkeeper membership plus the cutoff EMA;
* the policy integration — ``ProbPolicy(counts="sketch")`` stays within
  one-sided count-min error of exact frequencies, ``counts="exact"`` is
  seed-for-seed identical to the default construction, and the
  admission wrapper rejects one-hit wonders while emitting the
  documented observability series;
* the engine boundary — sketch modes and admission filters are
  scalar-only, so the batch adapter must refuse them and the engine
  negotiation must fall back to the scalar loop;
* state plumbing — fresh simulator states reset stale admission
  filters, and ``sketch_state``/``merge_sketch_state`` union donor
  state across a reshard.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.tuples import StreamTuple
from repro.obs import CounterRecorder
from repro.policies import LfuPolicy, ProbPolicy, make_policy
from repro.policies.base import PolicyContext
from repro.policies.batch import UnbatchablePolicyError, make_batch_policy
from repro.sim.cache_sim import CacheSimulator
from repro.sim.step import make_cache_state
from repro.sketch import (
    AdmissionFilter,
    BloomFilter,
    CountMinSketch,
    TinyLfuFilter,
)
from repro.sketch.countmin import value_hashes


def make_ctx(kind="cache", time=0, cache_size=5, r_hist=None, s_hist=None):
    return PolicyContext(
        kind=kind,
        time=time,
        cache_size=cache_size,
        r_history=list(r_hist or []),
        s_history=list(s_hist or []),
    )


class TestCountMinSketch:
    def test_never_undercounts(self):
        rng = np.random.default_rng(0)
        values = [int(v) for v in rng.integers(0, 200, 2_000)]
        exact: dict[int, int] = {}
        cms = CountMinSketch(width=512, depth=4)
        for v in values:
            cms.increment(v)
            exact[v] = exact.get(v, 0) + 1
        for v, n in exact.items():
            assert cms.estimate(v) >= n

    def test_halve_floors_counts(self):
        cms = CountMinSketch(width=64, depth=2)
        for _ in range(7):
            cms.increment("x")
        cms.halve()
        assert cms.estimate("x") == 3
        assert cms.total <= 3

    def test_merge_is_additive(self):
        a = CountMinSketch(width=128, depth=3)
        b = CountMinSketch(width=128, depth=3)
        a.increment("v", by=2)
        b.increment("v", by=5)
        b.increment("w")
        a.merge(b)
        assert a.estimate("v") >= 7
        assert a.estimate("w") >= 1

    def test_merge_rejects_mismatched_dims(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=64, depth=2).merge(
                CountMinSketch(width=128, depth=2)
            )

    def test_hashes_are_deterministic(self):
        # Process-stable hashing is what makes reshard merges and
        # bench fingerprints reproducible: no PYTHONHASHSEED leakage.
        assert value_hashes(12345) == value_hashes(12345)
        h1, h2 = value_hashes("abc")
        assert h2 % 2 == 1

    def test_memory_is_width_times_depth(self):
        cms = CountMinSketch(width=1024, depth=4)
        assert cms.memory_bytes() == 1024 * 4 * 4


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(n_bits=4096, n_hashes=4)
        for v in range(300):
            bf.add(v)
        assert all(v in bf for v in range(300))

    def test_add_reports_probably_new(self):
        bf = BloomFilter(n_bits=4096, n_hashes=4)
        assert bf.add("a") is True
        assert bf.add("a") is False

    def test_clear_and_fill(self):
        bf = BloomFilter(n_bits=256, n_hashes=2)
        bf.add("a")
        assert bf.fill_ratio() > 0
        bf.clear()
        assert bf.fill_ratio() == 0.0
        assert "a" not in bf

    def test_merge_unions_membership(self):
        a = BloomFilter(n_bits=512, n_hashes=3)
        b = BloomFilter(n_bits=512, n_hashes=3)
        a.add("left")
        b.add("right")
        a.merge(b)
        assert "left" in a and "right" in a


class TestTinyLfu:
    def test_doorkeeper_absorbs_first_occurrence(self):
        tl = TinyLfuFilter(width=256, depth=2)
        tl.increment("v")
        assert tl.estimate("v") >= 1
        # The backing sketch only sees occurrences past the first.
        assert tl.sketch.estimate("v") == 0
        tl.increment("v")
        assert tl.sketch.estimate("v") >= 1

    def test_aging_halves_at_sample_size(self):
        tl = TinyLfuFilter(width=64, depth=2, sample_size=10)
        for _ in range(10):
            tl.increment("hot")
        assert tl.resets == 1
        # Post-halving the estimate is roughly half the raw count.
        assert tl.estimate("hot") <= 6

    def test_merge_sums_estimates(self):
        a = TinyLfuFilter(width=128, depth=2)
        b = TinyLfuFilter(width=128, depth=2)
        for _ in range(3):
            a.increment("v")
            b.increment("v")
        a.merge(b)
        assert a.estimate("v") >= 5


class TestAdmissionFilter:
    def test_repeat_values_always_admitted(self):
        af = AdmissionFilter()
        af.update_cutoff(100.0)
        # First sighting trains the doorkeeper even when rejected ...
        assert not af.admit("v", score=0.0)
        # ... so any repeat is admitted regardless of score.
        assert af.admit("v", score=-1.0)

    def test_first_timer_gated_by_cutoff_ema(self):
        af = AdmissionFilter(ema_alpha=1.0, margin=1.0)
        af.update_cutoff(5.0)
        assert not af.admit("low", score=4.0)
        assert af.admit("high", score=6.0)
        assert af.rejects == 1 and af.admits == 1

    def test_untrained_filter_rejects_first_timers(self):
        # No evictions yet -> no cutoff -> pure doorkeeper mode.
        af = AdmissionFilter()
        assert not af.admit("v", score=1e9)
        assert af.admit("v", score=0.0)

    def test_reset_clears_state(self):
        af = AdmissionFilter(ema_alpha=1.0)
        af.update_cutoff(1.0)
        af.admit("v", score=2.0)
        af.reset()
        assert af.cutoff_ema is None
        assert af.admits == 0 and af.rejects == 0
        assert not af.admit("v", score=1e9)

    def test_merge_unions_doorkeepers_and_averages_emas(self):
        a = AdmissionFilter(ema_alpha=1.0)
        b = AdmissionFilter(ema_alpha=1.0)
        a.update_cutoff(2.0)
        b.update_cutoff(4.0)
        a.admit("a-val", score=3.0)
        b.admit("b-val", score=5.0)
        a.merge(b)
        assert a.cutoff_ema == pytest.approx(3.0)
        # Both doorkeeper populations survive the merge.
        assert a.admit("a-val", score=-1.0)
        assert a.admit("b-val", score=-1.0)


class TestProbPolicySketchCounts:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            ProbPolicy(counts="bogus")

    @pytest.mark.parametrize("mode", ["sketch", "tinylfu"])
    def test_sketch_frequency_never_undercounts(self, mode):
        rng = np.random.default_rng(1)
        hist = [int(v) for v in rng.integers(0, 50, 400)]
        ctx = make_ctx(kind="join", time=len(hist), r_hist=hist, s_hist=hist)
        exact = ProbPolicy()
        approx = ProbPolicy(counts=mode, sketch_width=4096)
        exact.reset(ctx)
        approx.reset(ctx)
        for v in set(hist):
            tup = StreamTuple(v, "R", v, 0)
            assert approx.frequency(tup, ctx) >= exact.frequency(tup, ctx)

    def test_exact_mode_is_default_identical(self):
        rng = np.random.default_rng(2)
        reference = [int(v) for v in rng.integers(0, 30, 500)]
        base = CacheSimulator(8, make_policy("lfu")).run(reference)
        explicit = CacheSimulator(8, make_policy("lfu", counts="exact")).run(
            reference
        )
        assert base.hits == explicit.hits
        assert base.misses == explicit.misses

    def test_asymmetric_histories_count_full_s_tail(self):
        """Regression: the old single-cursor sync stopped consuming
        ``s_history`` at ``len(r_history)``, so any S suffix beyond the
        R length was never counted."""
        p = ProbPolicy()
        ctx = make_ctx(kind="join", time=3, r_hist=[1], s_hist=[2, 2, 2])
        p.reset(ctx)
        # An R tuple scores by its partner-side (S) frequency;
        # score() performs the history sync before reading counts.
        tup = StreamTuple(0, "R", 2, 0)
        assert p.score(tup, ctx) == 3

    def test_asymmetric_histories_incremental_sync(self):
        # Growing the longer side after an initial sync must also land.
        p = ProbPolicy()
        ctx = make_ctx(kind="join", time=2, r_hist=[1, 1], s_hist=[2, 2])
        p.reset(ctx)
        p.score(StreamTuple(0, "R", 2, 0), ctx)
        ctx2 = make_ctx(
            kind="join", time=5, r_hist=[1, 1], s_hist=[2, 2, 2, 2, 2]
        )
        assert p.score(StreamTuple(0, "R", 2, 0), ctx2) == 5
        assert p.score(StreamTuple(1, "S", 1, 0), ctx2) == 2

    def test_sketch_fill_series_emitted(self):
        rec = CounterRecorder()
        rng = np.random.default_rng(3)
        reference = [int(v) for v in rng.integers(0, 40, 200)]
        policy = make_policy("lfu", counts="sketch", sketch_width=1024)
        CacheSimulator(4, policy, recorder=rec).run(reference)
        series = rec.snapshot().get("series", {})
        assert "sketch.fill" in series

    def test_sketch_memory_is_bounded(self):
        policy = ProbPolicy(counts="sketch", sketch_width=1024, sketch_depth=4)
        ctx = make_ctx()
        policy.reset(ctx)
        # Two binary-join sketches (R and S) of width x depth uint32 cells.
        assert policy.sketch_memory_bytes() == 2 * 1024 * 4 * 4


class TestAdmissionIntegration:
    def test_one_hit_wonders_rejected(self):
        """A hot head plus a unique tail: the doorkeeper admits the head
        on its second sighting and rejects the never-repeating tail."""
        rng = np.random.default_rng(4)
        head = [int(v) for v in rng.integers(0, 5, 400)]
        tail = [1_000 + i for i in range(400)]
        order = rng.permutation(800)
        reference = [
            (head + tail)[i] for i in order  # interleave head and tail
        ]
        rec = CounterRecorder()
        policy = LfuPolicy().with_admission(AdmissionFilter())
        result = CacheSimulator(6, policy, recorder=rec).run(reference)
        assert policy.admission.rejects > 0
        assert result.hits > 0
        series = rec.snapshot().get("series", {})
        assert "admission.rejects.cum" in series
        assert "sketch.fp_rate" in series

    def test_with_admission_returns_self(self):
        af = AdmissionFilter()
        policy = LfuPolicy()
        assert policy.with_admission(af) is policy
        assert policy.admission is af

    def test_rejected_arrival_becomes_extra_victim(self):
        policy = LfuPolicy().with_admission(AdmissionFilter(ema_alpha=1.0))
        ctx = make_ctx(kind="cache", time=3, r_hist=[1, 2, 3, 9])
        policy.reset(ctx)
        policy.admission.update_cutoff(1e9)  # nothing can clear the bar
        resident = [StreamTuple(i, "R", i + 1, 0) for i in range(3)]
        arrival = StreamTuple(99, "R", 9, 3)
        victims = policy.select_victims(resident + [arrival], 0, ctx)
        assert victims == [arrival]

    def test_make_cache_state_resets_stale_admission(self):
        af = AdmissionFilter(ema_alpha=1.0)
        af.update_cutoff(123.0)
        af.admit("stale", score=200.0)
        policy = LfuPolicy().with_admission(af)
        make_cache_state(4, policy)
        assert af.cutoff_ema is None
        assert af.admits == 0 and af.rejects == 0


class TestBatchGating:
    def test_batch_adapter_refuses_sketch_counts(self):
        with pytest.raises(UnbatchablePolicyError):
            make_batch_policy(ProbPolicy(counts="sketch"), kind="cache")

    def test_batch_adapter_refuses_admission(self):
        with pytest.raises(UnbatchablePolicyError):
            make_batch_policy(
                LfuPolicy().with_admission(AdmissionFilter()), kind="cache"
            )

    def test_batch_adapter_accepts_exact(self):
        assert make_batch_policy(ProbPolicy(counts="exact"), kind="cache")

    def test_engine_falls_back_to_scalar(self):
        from repro.sim.runner import run_cache_experiment
        from repro.streams import StationaryStream, from_mapping

        model = StationaryStream(from_mapping({1: 0.5, 2: 0.3, 3: 0.2}))
        paths = [model.sample_path(80, np.random.default_rng(0))]
        factory = lambda: make_policy("lfu", counts="sketch")  # noqa: E731
        result = run_cache_experiment(
            factory, paths, cache_size=3, batch=True
        )
        assert result.engine_used == "scalar"


class TestShardMerge:
    def test_sketch_state_round_trip(self):
        hist = [1, 1, 2]
        ctx = make_ctx(kind="join", time=3, r_hist=hist, s_hist=hist)
        donor = ProbPolicy(counts="sketch", sketch_width=512)
        donor.reset(ctx)
        donor.score(StreamTuple(0, "R", 1, 0), ctx)
        heir = ProbPolicy(counts="sketch", sketch_width=512)
        heir.reset(make_ctx(kind="join", time=0))
        state = donor.sketch_state()
        assert state is not None and "counts" in state
        heir.merge_sketch_state(state)
        empty_ctx = make_ctx(kind="join", time=0)
        assert heir.frequency(StreamTuple(0, "S", 1, 0), empty_ctx) >= 2
        assert heir.frequency(StreamTuple(1, "R", 2, 0), empty_ctx) >= 1

    def test_merge_ignores_mode_mismatch(self):
        a = ProbPolicy(counts="sketch")
        b = ProbPolicy(counts="exact")
        a.reset(make_ctx())
        b.reset(make_ctx())
        a.merge_sketch_state(b.sketch_state() or {"counts": None})

    def test_exact_policy_has_no_sketch_state(self):
        p = ProbPolicy()
        p.reset(make_ctx())
        assert p.sketch_state() is None

    def test_admission_state_survives_reshard(self):
        """Server-level: per-shard admission doorkeepers are unioned
        into the successor shards when the shard count changes."""
        from repro.serve import StreamServer
        from repro.sim import ExperimentSpec

        spec = ExperimentSpec(kind="cache", cache_size=3)
        factory = lambda: LfuPolicy().with_admission(  # noqa: E731
            AdmissionFilter()
        )

        async def go():
            server = StreamServer(spec, factory, n_shards=2)
            await server.start()
            for t in range(8):
                await server.submit_reference(t, t % 4)
            await server.reshard(3)
            merged = [
                shard.state.policy.admission.observed
                for shard in server.shards
            ]
            await server.stop()
            return merged

        observed = asyncio.run(asyncio.wait_for(go(), timeout=60))
        # Every successor saw the union of donor doorkeeper history.
        assert all(n > 0 for n in observed)
