"""Report CLI edge cases: empty, unknown, overflowed, truncated traces.

The report must degrade gracefully on every trace a real (possibly
killed, possibly future-versioned) run can leave behind:

* a header-only trace summarizes to zero events without crashing;
* unknown event kinds and unknown fields are counted and otherwise
  ignored — the forward-compatibility contract of schema 1;
* a trace that overflowed its event bound still reports (the events
  that fit plus the ``trace.dropped`` counter tell the story);
* a truncated final line aborts a strict read but is skipped and
  reported by the tolerant read the CLIs use;
* ``--series`` renders sparkline tables, and ``--png`` fails with an
  actionable message when matplotlib is absent rather than crashing.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import (
    TraceRecorder,
    collect_series,
    format_metrics,
    format_series_table,
    format_serve_section,
    read_trace,
    serve_latency_histograms,
    summarize_trace,
    format_trace_summary,
)
from repro.obs.report import main as report_main
from repro.obs.__main__ import main as obs_main
from repro.policies import LruPolicy
from repro.sim.join_sim import JoinSimulator
from repro.streams import RandomWalkStream
from repro.streams.noise import bounded_uniform

HEADER = '{"kind": "header", "schema": 1, "source": "repro.obs"}\n'


def _traced_run(path, length=50):
    model = RandomWalkStream(step=bounded_uniform(2))
    r = model.sample_path(length, np.random.default_rng(5))
    s = model.sample_path(length, np.random.default_rng(6))
    with TraceRecorder(path) as rec:
        JoinSimulator(3, LruPolicy(), recorder=rec).run(r, s)


class TestEmptyTrace:
    """Header-only traces are valid and summarize to nothing."""

    def test_summary_of_no_events(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text(HEADER)
        events = read_trace(path)
        assert events == []
        summary = summarize_trace(events)
        assert summary.total_events == 0
        assert summary.step_range is None
        assert "events  0" in format_trace_summary(summary)

    def test_cli_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text(HEADER)
        assert report_main([str(path)]) == 0
        assert "0 events" in capsys.readouterr().out

    def test_series_table_of_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text(HEADER)
        assert report_main([str(path), "--series"]) == 0
        assert "(no series events in trace)" in capsys.readouterr().out


class TestForwardCompatibility:
    """Unknown kinds and fields are ignored, not fatal."""

    def test_unknown_kinds_are_counted(self, tmp_path, capsys):
        path = tmp_path / "future.jsonl"
        lines = [HEADER.strip()] + [
            json.dumps(ev)
            for ev in (
                {"kind": "step", "t": 0, "results": 2},
                {"kind": "quantum_leap", "t": 0, "certainty": 0.1},
                {"kind": "step", "t": 1, "results": 1, "new_field": [1, 2]},
            )
        ]
        path.write_text("\n".join(lines) + "\n")
        summary = summarize_trace(read_trace(path))
        assert summary.event_counts["quantum_leap"] == 1
        assert summary.join_results == 3  # unknown field didn't derail
        assert report_main([str(path)]) == 0
        assert "events[quantum_leap]" in capsys.readouterr().out

    def test_malformed_series_events_are_skipped(self):
        events = [
            {"kind": "series", "t": 0, "name": "g", "value": 1.0},
            {"kind": "series", "t": 1, "value": 2.0},  # no name
            {"kind": "series", "t": 2, "name": "g", "value": "high"},
            {"kind": "series", "t": 3, "name": "g", "value": 3.0},
        ]
        assert collect_series(events) == {"g": [(0, 1.0), (3, 3.0)]}


class TestOverflowedTrace:
    """A run that hit its event bound still reports coherently."""

    def test_dropped_overflow_counters(self, tmp_path, capsys):
        path = tmp_path / "bounded.jsonl"
        model = RandomWalkStream(step=bounded_uniform(2))
        r = model.sample_path(60, np.random.default_rng(1))
        s = model.sample_path(60, np.random.default_rng(2))
        with TraceRecorder(path, max_events=5) as rec:
            JoinSimulator(3, LruPolicy(), recorder=rec).run(r, s)
        dropped = rec.snapshot()["counters"]["trace.dropped"]
        assert dropped > 0
        events = read_trace(path)
        assert len(events) == 5
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "5 events" in out
        # The counter snapshot names the gap the trace cannot show.
        assert "trace.dropped" in format_metrics(rec.snapshot())


class TestTruncatedTrace:
    """Strict reads refuse torn tails; tolerant reads report them."""

    def test_strict_read_raises(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        _traced_run(path)
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "step", "t": 99')
        with pytest.raises(ValueError, match="line"):
            read_trace(path)

    def test_tolerant_read_skips_and_reports(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        _traced_run(path)
        whole = len(read_trace(path))
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "step", "t": 99')
        bad: list[str] = []
        events = read_trace(path, strict=False, bad_lines=bad)
        assert len(events) == whole
        assert len(bad) == 1

    def test_cli_warns_and_continues(self, tmp_path, capsys):
        path = tmp_path / "torn.jsonl"
        _traced_run(path)
        with path.open("a", encoding="utf-8") as fh:
            fh.write("not json at all")
        assert report_main([str(path)]) == 0
        captured = capsys.readouterr()
        assert "line skipped" in captured.err
        assert "events" in captured.out


class TestSeriesOutput:
    """--series sparklines and the --png matplotlib gate."""

    def test_series_table_rendered(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        _traced_run(path)
        assert report_main([str(path), "--series"]) == 0
        out = capsys.readouterr().out
        assert "cache.occupancy" in out
        assert "join.results.cum" in out
        # Sparkline block characters actually appear.
        assert any(ch in out for ch in "▁▂▃▄▅▆▇█")

    def test_format_series_table_alignment(self):
        table = format_series_table(
            {"a": [(0, 1.0), (1, 2.0)], "bb": [(0, 3.0)]}
        )
        lines = table.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        assert "n=2" in lines[0] and "n=1" in lines[1]

    def test_png_without_matplotlib_fails_cleanly(self, tmp_path, capsys):
        try:
            import matplotlib  # noqa: F401

            pytest.skip("matplotlib installed; the gate is exercised without it")
        except ImportError:
            pass
        path = tmp_path / "run.jsonl"
        _traced_run(path)
        out_png = tmp_path / "series.png"
        assert report_main([str(path), "--series", "--png", str(out_png)]) == 1
        assert "matplotlib" in capsys.readouterr().err
        assert not out_png.exists()

    def test_module_dispatch_back_compat(self, tmp_path, capsys):
        # CI pins the subcommand-less invocation; both forms must agree.
        path = tmp_path / "run.jsonl"
        _traced_run(path)
        assert obs_main([str(path)]) == 0
        legacy = capsys.readouterr().out
        assert obs_main(["report", str(path)]) == 0
        assert capsys.readouterr().out == legacy


class TestServeSection:
    """--serve summarizes span latency and duty cycle from a trace."""

    def test_no_serve_series_fallback(self):
        assert format_serve_section({}) == "(no serve series in trace)"

    def test_duty_cycle_and_span_rows_from_series(self):
        series_map = {
            "serve.backpressure.wait_ms": [(0, 30.0), (5, 20.0)],
            "serve.uptime_ms": [(0, 1000.0)],
            "serve.span.decide_ms": [(t, 0.5) for t in range(10)],
            "cache.occupancy": [(0, 3.0)],  # non-serve series ignored
        }
        section = format_serve_section(series_map)
        assert "backpressure duty cycle" in section
        assert "5.00%" in section  # 50ms blocked of 1000ms uptime
        assert "serve.span.decide_ms" in section
        assert "n=10" in section
        assert "cache.occupancy" not in section

    def test_wait_without_uptime_still_reported(self):
        section = format_serve_section(
            {"serve.backpressure.wait_ms": [(0, 12.0)]}
        )
        assert "12.0ms (no uptime series)" in section

    def test_histograms_rebuilt_from_points(self):
        values = [0.1, 0.5, 2.0, 40.0]
        hists = serve_latency_histograms(
            {
                "serve.span.emit_ms": [(t, v) for t, v in enumerate(values)],
                "serve.queue_depth": [(0, 9.0)],  # not a span series
            }
        )
        assert set(hists) == {"serve.span.emit_ms"}
        hist = hists["serve.span.emit_ms"]
        assert hist.count == len(values)
        assert hist.vmax == 40.0

    def test_traced_replay_round_trips_span_latency(self, tmp_path, capsys):
        # A traced single-shard replay re-summarizes offline to the
        # same decide-latency numbers the live server measured.
        from repro.policies import make_policy
        from repro.serve import run_replay
        from repro.sim import ExperimentSpec

        path = tmp_path / "serve.jsonl"
        r = [i % 5 for i in range(40)]
        s = [(i + 2) % 5 for i in range(40)]
        with TraceRecorder(path) as rec:
            summary = run_replay(
                ExperimentSpec(kind="join", cache_size=6),
                lambda: make_policy("lru"),
                r,
                s,
                recorder=rec,
            )
        series_map = collect_series(read_trace(path))
        hists = serve_latency_histograms(series_map)
        decide = hists["serve.span.decide_ms"]
        assert decide.count == 40
        assert decide.quantile(0.99) == pytest.approx(summary.p99_decide_ms)
        assert report_main([str(path), "--serve"]) == 0
        out = capsys.readouterr().out
        assert "serve:" in out
        assert "serve.span.decide_ms" in out
        assert "backpressure duty cycle" in out
