"""Tests for experiment configurations and figure harnesses.

Figure harnesses run with tiny parameters here; the benchmark suite runs
them at reporting scale.  Assertions target well-formedness plus the
robust qualitative shapes (OPT on top, HEEB ≥ naive baselines where the
paper shows a clear gap).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.configs import (
    SYNTHETIC_CONFIGS,
    floor_config,
    roof_config,
    tower_config,
    walk_config,
)
from repro.experiments.figures import (
    figure6,
    figure7,
    figure8,
    figure9_12,
    figure13,
    figure14,
    figure15_16,
    figure17_18,
    figure19,
)
from repro.experiments.report import format_curve, format_series_table, format_table


class TestConfigs:
    def test_all_four_exist(self):
        configs = SYNTHETIC_CONFIGS()
        assert set(configs) == {"TOWER", "ROOF", "FLOOR", "WALK"}

    def test_trend_configs_have_oracle_and_life(self):
        for make in (tower_config, roof_config, floor_config):
            cfg = make()
            assert cfg.window_oracle is not None
            assert cfg.has_life

    def test_walk_has_no_window(self):
        cfg = walk_config()
        assert cfg.window_oracle is None
        assert not cfg.has_life

    def test_lag_structure(self):
        cfg = tower_config()
        assert cfg.r_model.lag == 1
        assert cfg.s_model.lag == 0

    def test_noise_bounds_match_paper(self):
        cfg = floor_config()
        assert cfg.r_model.noise.min_value == -10
        assert cfg.r_model.noise.max_value == 10
        assert cfg.s_model.noise.min_value == -15
        assert cfg.s_model.noise.max_value == 15

    def test_heeb_factory_builds_policy(self):
        cfg = tower_config()
        policy = cfg.make_heeb(10)
        assert policy.name == "HEEB"


class TestFigure6:
    def test_curves_shapes(self):
        curves = figure6(drifts=(0, 2), alpha=5.0, max_offset=12)
        zero = curves[0]
        # Zero drift: symmetric, peaked at 0 (Section 5.5 optimality).
        assert zero(0) > zero(5) > 0
        assert zero(3) == pytest.approx(zero(-3), rel=1e-6)
        # Positive drift: prefers values to the right.
        two = curves[2]
        assert two(4) > two(-4)

    def test_larger_drift_shifts_preference_further(self):
        curves = figure6(drifts=(2, 4), alpha=5.0, max_offset=20)
        peak2 = max(curves[2].offsets[np.argmax(curves[2].values)], 0)
        peak4 = max(curves[4].offsets[np.argmax(curves[4].values)], 0)
        assert peak4 >= peak2


class TestFigure7:
    def test_three_noises(self):
        pdfs = figure7()
        assert set(pdfs) == {"TOWER", "ROOF", "FLOOR"}
        # TOWER is most peaked, FLOOR flat.
        assert pdfs["TOWER"].pmf(0) > pdfs["ROOF"].pmf(0) > pdfs["FLOOR"].pmf(0)
        assert pdfs["FLOOR"].pmf(0) == pytest.approx(pdfs["FLOOR"].pmf(15))


class TestFigure8:
    @pytest.fixture(scope="class")
    def results(self):
        return figure8(length=150, n_runs=2, include_flowexpect=False, seed=3)

    def test_structure(self, results):
        assert set(results) == {"TOWER", "ROOF", "FLOOR", "WALK"}
        for name, row in results.items():
            assert "OPT-OFFLINE" in row and "HEEB" in row and "RAND" in row
            assert ("LIFE" in row) == (name != "WALK")

    def test_opt_wins(self, results):
        for name, row in results.items():
            best_online = max(v for k, v in row.items() if k != "OPT-OFFLINE")
            assert row["OPT-OFFLINE"] >= best_online - 1e-9, name

    def test_heeb_beats_naive_on_tower(self, results):
        row = results["TOWER"]
        assert row["HEEB"] > row["RAND"]
        assert row["HEEB"] > row["PROB"]
        assert row["HEEB"] > row["LIFE"]

    def test_heeb_beats_rand_and_prob_on_walk(self, results):
        row = results["WALK"]
        assert row["HEEB"] > row["RAND"]


class TestFigure9to12:
    def test_sweep_monotone_in_cache_size(self):
        cfg = tower_config()
        out = figure9_12(cfg, cache_sizes=(2, 10), length=150, n_runs=2)
        assert set(out) >= {"OPT-OFFLINE", "RAND", "PROB", "LIFE", "HEEB"}
        for name, series in out.items():
            assert len(series) == 2
            # More memory never hurts (averaged; allow tiny noise).
            assert series[1] >= series[0] - 2.0, name


class TestFigure13:
    @pytest.fixture(scope="class")
    def result(self):
        return figure13(memory_sizes=(10, 60), n_days=700, exact_steps=30)

    def test_structure(self, result):
        assert set(result.misses) == {"LFD", "RAND", "LRU", "PROB(LFU)", "HEEB"}
        assert all(len(v) == 2 for v in result.misses.values())

    def test_lfd_is_best(self, result):
        for name, series in result.misses.items():
            if name == "LFD":
                continue
            for lfd_m, other_m in zip(result.misses["LFD"], series):
                assert lfd_m <= other_m, name

    def test_more_memory_fewer_misses(self, result):
        for name, series in result.misses.items():
            assert series[1] <= series[0], name


class TestFigure14:
    def test_allocation_shapes(self):
        out = figure14(length=300, cache_size=10, n_runs=1)
        assert len(out) == 5
        base = out["R AND S HAVE SAME PROPERTIES"][-100:].mean()
        lag4 = out["R LAGS BEHIND BY 4"][-100:].mean()
        quad = out["S NOISE HAS FOUR TIMES THE STDEV"][-100:].mean()
        # HEEB allocates less memory to the lagging stream...
        assert lag4 < base
        # ...and more to R when S is noisier (S tuples get discarded).
        assert quad > base


class TestFigure15_16:
    def test_surface_and_approximation(self):
        cmp = figure15_16(n_controls=5, n_dense=7, exact_steps=25, alpha=30.0)
        assert cmp.actual_values.shape == (7, 7)
        assert cmp.max_value > 0
        # Bicubic interpolation from 25 points should stay within a
        # reasonable fraction of the surface's scale.
        assert cmp.max_abs_error < 0.35 * cmp.max_value
        assert cmp.mean_abs_error < 0.1 * cmp.max_value


class TestFigure17_18:
    def test_groups_present(self):
        out = figure17_18(length=200, cache_size=10, n_runs=1)
        assert set(out) == {"variance", "lag"}
        assert len(out["variance"]) == 3
        assert len(out["lag"]) == 3
        for series in out["lag"].values():
            assert len(series) == 200


class TestFigure19:
    def test_lookahead_sweep(self):
        out = figure19(delta_ts=(1, 3), length=80, cache_size=5, n_runs=1)
        assert set(out) == {"FLOWEXPECT", "RAND", "PROB", "LIFE"}
        assert len(out["FLOWEXPECT"]) == 2
        # Baselines are flat.
        assert out["RAND"][0] == out["RAND"][1]


class TestReport:
    def test_format_table(self):
        text = format_table({"TOWER": {"HEEB": 10.0, "RAND": 5.0}})
        assert "TOWER" in text and "HEEB" in text and "10.0" in text

    def test_missing_cells_dashed(self):
        text = format_table(
            {"A": {"x": 1.0}, "B": {"y": 2.0}}, row_label="cfg"
        )
        assert "-" in text

    def test_format_series_table(self):
        text = format_series_table("k", [1, 2], {"ALG": [3.0, 4.0]})
        assert "ALG" in text and "4.0" in text

    def test_format_curve_downsamples(self):
        xs = list(range(100))
        ys = [x * 0.5 for x in xs]
        text = format_curve(xs, ys, max_points=5)
        assert len(text.splitlines()) <= 8


class TestFigureRegistry:
    """The name-addressed figure registry behind the ``figext`` CLI."""

    def test_ext_multi_sweep_is_registered(self):
        from repro.experiments.figures import figure_names

        assert "ext-multi-sweep" in figure_names()

    def test_register_rejects_duplicates(self):
        from repro.experiments.figures import FIGURE_REGISTRY, register_figure

        spec = FIGURE_REGISTRY["ext-multi-sweep"]
        with pytest.raises(ValueError):
            register_figure(spec)

    def test_render_unknown_name_raises(self):
        from repro.experiments.figures import render_figure

        with pytest.raises(KeyError):
            render_figure("no-such-figure")

    def test_ext_multi_sweep_renders_headless(self):
        """End-to-end smoke at toy scale: the trie-vs-unified-HEEB sweep
        builds and renders as a text table with one block per config and
        one row per cache size (no plotting backend required)."""
        from repro.experiments.figures import render_figure

        text = render_figure(
            "ext-multi-sweep",
            config_names=("CHAIN3",),
            cache_sizes=(2, 3),
            length=40,
            n_runs=1,
        )
        assert "CHAIN3" in text
        assert "HEEB" in text and "TRIE" in text
        assert "2" in text and "3" in text
