"""Property-based tests (hypothesis) for ECB algebra and dominance.

Increments are drawn as small integers scaled by 1/8, so every value is
an exactly-representable dyadic rational and the cumulative sums carry
no floating-point error.  That keeps the dominance checks away from the
``_ATOL`` boundary, where tolerance slop would make transitivity
genuinely false.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import (
    comparable,
    dominance_matrix,
    dominates,
    strongly_dominates,
)
from repro.core.ecb import ECB, ecb_join, ecb_join_batch
from repro.streams import StationaryStream, from_mapping

# Exact dyadic increments: k/8 for k in 0..10.
increments_arrays = st.lists(
    st.integers(min_value=0, max_value=10), min_size=1, max_size=30
).map(lambda ks: np.array(ks, dtype=np.float64) / 8.0)

ecbs = increments_arrays.map(ECB.from_increments)

# Random stationary pmfs over a small integer support.
pmfs = st.lists(
    st.integers(min_value=1, max_value=20), min_size=1, max_size=6
).map(
    lambda ws: {v: w / sum(ws) for v, w in enumerate(ws, start=1)}
)


class TestEcbShape:
    @given(incs=increments_arrays)
    @settings(deadline=None)
    def test_nondecreasing_and_nonnegative(self, incs):
        ecb = ECB.from_increments(incs)
        cum = ecb.cumulative
        assert np.all(np.diff(cum) >= 0)
        assert cum[0] >= 0.0
        # Round-trip: increments() recovers the generating sequence.
        np.testing.assert_allclose(ecb.increments(), incs, atol=1e-12)

    @given(incs=increments_arrays, dt=st.integers(min_value=1, max_value=100))
    @settings(deadline=None)
    def test_clamped_beyond_horizon(self, incs, dt):
        ecb = ECB.from_increments(incs)
        assert ecb(dt) == ecb.cumulative[min(dt, ecb.horizon) - 1]

    @given(pmf=pmfs, horizon=st.integers(min_value=1, max_value=40))
    @settings(deadline=None)
    def test_ecb_join_is_valid_ecb(self, pmf, horizon):
        """Lemma 1 on a stationary partner always yields a proper ECB
        whose per-step increments are probabilities."""
        partner = StationaryStream(from_mapping(pmf))
        value = next(iter(pmf))
        ecb = ecb_join(partner, 0, value, horizon)
        assert ecb.horizon == horizon
        incs = ecb.increments()
        assert np.all(incs >= -1e-12)
        assert np.all(incs <= 1.0 + 1e-12)

    @given(pmf=pmfs, horizon=st.integers(min_value=1, max_value=25))
    @settings(deadline=None)
    def test_ecb_join_batch_matches_scalar(self, pmf, horizon):
        partner = StationaryStream(from_mapping(pmf))
        values = list(pmf) + [max(pmf) + 1, None]  # in-support, miss, "−"
        rows = ecb_join_batch(partner, 0, values, horizon)
        assert rows.shape == (len(values), horizon)
        for row, v in zip(rows, values):
            np.testing.assert_array_equal(
                row, ecb_join(partner, 0, v, horizon).cumulative
            )


class TestDominance:
    @given(ecb=ecbs)
    @settings(deadline=None)
    def test_reflexive(self, ecb):
        assert dominates(ecb, ecb)
        assert comparable(ecb, ecb)
        assert not strongly_dominates(ecb, ecb)

    @given(a=ecbs, b=ecbs)
    @settings(deadline=None)
    def test_strong_dominance_implies_dominance(self, a, b):
        if strongly_dominates(a, b):
            assert dominates(a, b)
            assert not dominates(b, a)

    @given(ecb=ecbs)
    @settings(deadline=None)
    def test_constructed_strong_dominance(self, ecb):
        """B + 1 strongly dominates B/2 (nonnegativity makes the gap at
        least 1 everywhere), and strong dominance implies dominance."""
        upper = ECB(ecb.cumulative + 1.0)
        lower = ECB(ecb.cumulative * 0.5)
        assert strongly_dominates(upper, lower)
        assert dominates(upper, lower)

    @given(a=ecbs, b=ecbs, c=ecbs)
    @settings(deadline=None)
    def test_transitive(self, a, b, c):
        trio = [a, b, c]
        m = dominance_matrix(trio)
        # The matrix keeps its diagonal False, so only distinct-index
        # triples exercise transitivity.
        for i in range(3):
            for j in range(3):
                for k in range(3):
                    if i == j or j == k or i == k:
                        continue
                    if m[i, j] and m[j, k]:
                        assert m[i, k], (i, j, k)

    @given(a=ecbs, b=ecbs)
    @settings(deadline=None)
    def test_matrix_agrees_with_predicate(self, a, b):
        m = dominance_matrix([a, b])
        assert m[0, 1] == dominates(a, b)
        assert m[1, 0] == dominates(b, a)
        assert bool(m[0, 1] or m[1, 0]) == comparable(a, b)


class TestEcbValidation:
    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            ECB(np.array([1.0, 0.5]))

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            ECB(np.array([-0.5, 0.5]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ECB(np.array([]))
