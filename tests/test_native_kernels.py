"""Native (numba) kernels: knob logic and arc-for-arc exactness.

The compiled hot kernels — the successive-shortest-paths solver of
:mod:`repro.flow.native` and the dense HEEB sweep of
:mod:`repro.core.kernels` — are restructurings of the pure-Python
reference bodies over flat arrays.  Their kernel functions are plain
Python until numba compiles them, so the equivalence oracle (kernel
vs reference, same instance) runs on numba-free installations too;
a separate, ``importorskip``-gated class repeats it through the
actual jit.  The knob tests pin the ``REPRO_NATIVE`` /
``run_experiment(native=)`` contract: requests are preferences, and a
numba-free install degrades to the reference kernels with a one-time
warning and an ``engine.fallback.native`` counter, never an error.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.core.kernels import (
    heeb_sweep,
    sweep_kernel_available,
    weighted_sweep,
)
from repro.flow.fastpath import LookaheadTemplate, _solve_unit_flow
from repro.flow.native import (
    _ssp_kernel,
    native_active,
    native_available,
    native_requested,
    set_native_override,
    solve_unit_flow,
    template_arrays,
)
from repro.policies.lru import LruPolicy
from repro.sim.engine import ExperimentSpec
from repro.sim.runner import generate_paths, run_experiment
from repro.streams import StationaryStream
from repro.streams.noise import from_mapping


@pytest.fixture(autouse=True)
def _clear_override():
    """Never leak a native override into other tests."""
    yield
    set_native_override(None)


def _random_costs(template, rng):
    """Scaled-integer arc costs shaped like real FlowExpect instances:
    large negative benefit units plus small positive rank perturbations.
    """
    n_arcs = len(template.tails)
    benefits = rng.integers(-(10**9), 0, size=n_arcs, dtype=np.int64)
    perturb = rng.integers(0, 8, size=n_arcs, dtype=np.int64)
    return [int(b * 64 + p) for b, p in zip(benefits, perturb)]


# ----------------------------------------------------------------------
# Array kernel vs pure-Python reference (no numba needed)
# ----------------------------------------------------------------------
class TestSspKernel:
    @pytest.mark.parametrize(
        "n, lookahead", [(1, 1), (2, 3), (4, 4), (6, 8), (3, 10)]
    )
    def test_arc_for_arc_equivalence(self, n, lookahead):
        template = LookaheadTemplate(n, lookahead)
        arrs = template_arrays(template)
        rng = np.random.default_rng(97 * n + lookahead)
        for amount in range(1, n + 1):
            for _ in range(5):
                cost = _random_costs(template, rng)
                ref = _solve_unit_flow(template, cost, amount)
                res = _ssp_kernel(
                    *arrs, np.asarray(cost, dtype=np.int64), amount
                )
                assert bool(res[-1]) is True
                assert list(res[:-1]) == list(ref)

    def test_tie_heavy_costs_agree(self):
        # All-equal costs exercise the heap/relaxation tie order, which
        # is exactly where two exact solvers could legally diverge were
        # the optimum not unique; the rank perturbation used by real
        # instances is absent here, so equality of the *masks* is only
        # guaranteed when both traversals break ties the same way — pin
        # the objective value instead.
        template = LookaheadTemplate(3, 4)
        arrs = template_arrays(template)
        cost = [-(10**6)] * len(template.tails)
        for amount in (1, 2, 3):
            ref = _solve_unit_flow(template, cost, amount)
            res = _ssp_kernel(*arrs, np.asarray(cost, dtype=np.int64), amount)
            ref_total = sum(c for c, u in zip(cost, ref) if u)
            res_total = sum(c for c, u in zip(cost, res[:-1]) if u)
            assert res_total == ref_total

    def test_infeasible_amount_signals_failure(self):
        # src fans out one arc per candidate: n+1 units cannot fit.
        template = LookaheadTemplate(2, 3)
        arrs = template_arrays(template)
        cost = [-5] * len(template.tails)
        res = _ssp_kernel(*arrs, np.asarray(cost, dtype=np.int64), 3)
        assert bool(res[-1]) is False
        with pytest.raises(RuntimeError, match="cannot"):
            _solve_unit_flow(template, cost, 3)

    def test_template_arrays_cached_and_consistent(self):
        template = LookaheadTemplate(3, 3)
        a = template_arrays(template)
        assert template_arrays(template) is a
        tails, heads, topo, out_ptr, out_idx, adj_ptr, adj_idx = a
        assert tails.shape == heads.shape == (len(template.tails),)
        assert int(out_ptr[-1]) == len(template.tails)
        assert int(adj_ptr[-1]) == 2 * len(template.tails)
        assert topo.shape == (template.n_nodes,)


class TestSolveUnitFlowDispatch:
    def test_reference_path_when_not_requested(self):
        template = LookaheadTemplate(2, 2)
        cost = _random_costs(template, np.random.default_rng(0))
        set_native_override(False)
        assert solve_unit_flow(template, cost, 2) == _solve_unit_flow(
            template, cost, 2
        )

    def test_request_without_numba_degrades_to_reference(self):
        if native_available():
            pytest.skip("numba present: covered by TestWithNumba")
        template = LookaheadTemplate(3, 3)
        cost = _random_costs(template, np.random.default_rng(1))
        set_native_override(True)
        assert native_requested() and not native_active()
        assert solve_unit_flow(template, cost, 2) == _solve_unit_flow(
            template, cost, 2
        )


# ----------------------------------------------------------------------
# HEEB sweep
# ----------------------------------------------------------------------
class TestHeebSweep:
    def test_loop_form_matches_blas_within_tolerance(self):
        rng = np.random.default_rng(5)
        probs = rng.random((40, 64))
        weights = np.exp(-np.arange(1, 65) / 7.0)
        np.testing.assert_allclose(
            weighted_sweep(probs, weights), probs @ weights, rtol=1e-12
        )

    def test_dispatch_off_is_exactly_matmul(self):
        rng = np.random.default_rng(6)
        probs = rng.random((8, 16))
        weights = rng.random(16)
        set_native_override(False)
        assert np.array_equal(heeb_sweep(probs, weights), probs @ weights)

    def test_availability_matches_flow_kernel(self):
        assert sweep_kernel_available() == native_available()


# ----------------------------------------------------------------------
# The run_experiment(native=) knob
# ----------------------------------------------------------------------
class TestNativeKnob:
    def _spec_and_paths(self):
        model = StationaryStream(from_mapping({1: 0.6, 2: 0.4}))
        spec = ExperimentSpec(
            kind="join", cache_size=3, r_model=model, s_model=model
        )
        return spec, generate_paths(model, model, 40, 1, seed=2)

    def test_env_var_parsing(self, monkeypatch):
        set_native_override(None)
        for raw, want in [
            ("1", True),
            ("true", True),
            ("YES", True),
            (" on ", True),
            ("0", False),
            ("", False),
            ("off", False),
        ]:
            monkeypatch.setenv("REPRO_NATIVE", raw)
            assert native_requested() is want, raw
        monkeypatch.delenv("REPRO_NATIVE")
        assert native_requested() is False

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "1")
        set_native_override(False)
        assert native_requested() is False
        monkeypatch.setenv("REPRO_NATIVE", "0")
        set_native_override(True)
        assert native_requested() is True

    def test_native_false_never_suffixes_engine(self):
        spec, paths = self._spec_and_paths()
        result = run_experiment(
            spec, lambda: LruPolicy(), paths, native=False
        )
        assert result.engine_used == "scalar"

    def test_request_without_numba_warns_once_and_counts(self, caplog):
        if native_available():
            pytest.skip("numba present: covered by TestWithNumba")
        import repro.sim.runner as runner_mod
        from repro.obs import CounterRecorder

        spec, paths = self._spec_and_paths()
        runner_mod._NATIVE_WARNED = False
        rec = CounterRecorder()
        with caplog.at_level(logging.WARNING, logger="repro.sim.runner"):
            first = run_experiment(
                spec, lambda: LruPolicy(), paths, native=True, recorder=rec
            )
            second = run_experiment(
                spec, lambda: LruPolicy(), paths, native=True
            )
        # No "+native" suffix: the compiled kernels did not actually run.
        assert first.engine_used == "scalar"
        assert second.engine_used == "scalar"
        assert rec.counters["engine.fallback.native"] == 1
        warnings = [
            r
            for r in caplog.records
            if "pure-Python reference kernels" in r.getMessage()
        ]
        assert len(warnings) == 1

    def test_override_cleared_after_run(self):
        spec, paths = self._spec_and_paths()
        run_experiment(spec, lambda: LruPolicy(), paths, native=True)
        assert native_requested() is False


# ----------------------------------------------------------------------
# Through the actual jit (CI native leg; skipped without numba)
# ----------------------------------------------------------------------
class TestWithNumba:
    @pytest.fixture(autouse=True)
    def _numba(self):
        pytest.importorskip("numba")

    def test_jit_solver_matches_reference(self):
        template = LookaheadTemplate(4, 5)
        rng = np.random.default_rng(3)
        set_native_override(True)
        assert native_active()
        for amount in (1, 3, 4):
            cost = _random_costs(template, rng)
            assert list(solve_unit_flow(template, cost, amount)) == list(
                _solve_unit_flow(template, cost, amount)
            )

    def test_jit_sweep_matches_matmul(self):
        rng = np.random.default_rng(4)
        probs = rng.random((30, 48))
        weights = rng.random(48)
        set_native_override(True)
        np.testing.assert_allclose(
            heeb_sweep(probs, weights), probs @ weights, rtol=1e-12
        )

    def test_engine_used_gains_native_suffix(self):
        model = StationaryStream(from_mapping({1: 0.6, 2: 0.4}))
        spec = ExperimentSpec(
            kind="join", cache_size=3, r_model=model, s_model=model
        )
        paths = generate_paths(model, model, 40, 1, seed=2)
        result = run_experiment(
            spec, lambda: LruPolicy(), paths, native=True
        )
        assert result.engine_used == "scalar+native"

    def test_overflow_bound_falls_back_to_reference(self):
        # Costs near 2**60 violate the int64 safety bound: the dispatch
        # must route to the unbounded-integer reference silently.
        template = LookaheadTemplate(2, 2)
        huge = -(2**60)
        cost = [huge] * len(template.tails)
        set_native_override(True)
        assert solve_unit_flow(template, cost, 2) == _solve_unit_flow(
            template, cost, 2
        )
