"""Parallel engine: seed-for-seed scalar equivalence and worker semantics.

The parallel tier runs the *scalar* simulator per trial in worker
processes, so every result — join counts, hit counts, per-step sequences
— must be bit-identical to the scalar engine for every stream family and
every worker count.  A crash inside a worker must surface to the caller
as the original exception, not hang or vanish.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import pytest

from repro.core.lifetime import LExp
from repro.policies import make_policy
from repro.policies.base import PolicyContext, ReplacementPolicy
from repro.policies.heeb_policy import HeebPolicy, WalkJoinHeeb
from repro.sim.engine import (
    ExperimentSpec,
    ParallelEngine,
    ScalarEngine,
    available_engines,
    get_engine,
)
from repro.sim.runner import (
    generate_paths,
    generate_reference_paths,
    run_cache_experiment,
    run_experiment,
    run_join_experiment,
)
from repro.streams import make_stream
from repro.streams.noise import (
    bounded_normal,
    bounded_uniform,
    discretized_normal,
    from_mapping,
)

LENGTH = 130
N_RUNS = 5
CACHE = 4


def _join_models(family: str):
    """One (r_model, s_model) pair per stream family in the paper."""
    if family == "trend-normal":
        r = make_stream("linear-trend", noise=bounded_normal(10, 1.0), lag=1)
        s = make_stream("linear-trend", noise=bounded_normal(15, 2.0), lag=0)
    elif family == "trend-uniform":
        r = make_stream("linear-trend", noise=bounded_uniform(10), lag=1)
        s = make_stream("linear-trend", noise=bounded_uniform(15), lag=0)
    elif family == "random-walk":
        step = discretized_normal(1.0)
        r = make_stream("random-walk", step=step)
        s = make_stream("random-walk", step=step)
    elif family == "stationary":
        pmf = from_mapping({1: 0.4, 2: 0.3, 3: 0.2, 4: 0.1})
        r = make_stream("stationary", dist=pmf)
        s = make_stream("stationary", dist=pmf)
    else:  # pragma: no cover - guard against typos in parametrization
        raise ValueError(family)
    return r, s


def _assert_join_equal(a, b):
    assert a.policy_name == b.policy_name
    assert len(a.per_run) == len(b.per_run)
    for x, y in zip(a.per_run, b.per_run):
        assert x.total_results == y.total_results
        assert x.results_after_warmup == y.results_after_warmup
        np.testing.assert_array_equal(x.r_occupancy, y.r_occupancy)
        np.testing.assert_array_equal(x.occupancy, y.occupancy)


class TestJoinEquivalence:
    @pytest.mark.parametrize(
        "family",
        ["trend-normal", "trend-uniform", "random-walk", "stationary"],
    )
    def test_parallel_matches_scalar(self, family):
        r_model, s_model = _join_models(family)
        paths = generate_paths(r_model, s_model, LENGTH, N_RUNS, seed=3)
        factory = lambda: make_policy("rand", seed=7)
        kwargs = dict(
            cache_size=CACHE, warmup=10, r_model=r_model, s_model=s_model
        )
        scalar = run_join_experiment(factory, paths, **kwargs)
        # An explicit worker count keeps the tier parallel even on a
        # single-CPU machine, where the default would negotiate down.
        par = run_join_experiment(
            factory, paths, engine=ParallelEngine(max_workers=2), **kwargs
        )
        assert scalar.engine_used == "scalar"
        assert par.engine_used == "parallel"
        _assert_join_equal(scalar, par)

    def test_model_aware_policy_with_closure_factory(self):
        """HEEB factories are closures over strategy objects — they must
        reach forked workers without pickling."""
        r_model, s_model = _join_models("random-walk")
        paths = generate_paths(r_model, s_model, LENGTH, N_RUNS, seed=11)

        def factory():
            return HeebPolicy(WalkJoinHeeb(LExp(4.0), horizon=40))

        kwargs = dict(
            cache_size=CACHE, warmup=0, r_model=r_model, s_model=s_model
        )
        scalar = run_join_experiment(factory, paths, **kwargs)
        par = run_join_experiment(
            factory, paths, engine=ParallelEngine(max_workers=2), **kwargs
        )
        _assert_join_equal(scalar, par)


class TestCacheEquivalence:
    @pytest.mark.parametrize("policy_name", ["lru", "lfu", "rand"])
    def test_parallel_matches_scalar(self, policy_name):
        model = make_stream(
            "stationary", dist=from_mapping({i: 1 / 6 for i in range(6)})
        )
        refs = generate_reference_paths(model, LENGTH, N_RUNS, seed=5)
        factory = lambda: make_policy(policy_name, **(
            {"seed": 2} if policy_name == "rand" else {}
        ))
        scalar = run_cache_experiment(factory, refs, cache_size=3, warmup=8)
        par = run_cache_experiment(
            factory,
            refs,
            cache_size=3,
            warmup=8,
            engine=ParallelEngine(max_workers=2),
        )
        assert par.engine_used == "parallel"
        assert len(scalar.per_run) == len(par.per_run)
        for x, y in zip(scalar.per_run, par.per_run):
            assert x.hits == y.hits
            assert x.misses == y.misses
            assert x.hits_after_warmup == y.hits_after_warmup
        assert scalar.mean_hits == par.mean_hits
        assert scalar.std_hits == par.std_hits


class TestWorkerCounts:
    def test_identical_across_worker_counts(self):
        """Chunking is an implementation detail: 2, 4, and cpu_count
        workers must reassemble the exact same per-trial sequence, and a
        single effective worker negotiates down to the scalar engine
        with — again — the exact same results."""
        r_model, s_model = _join_models("trend-normal")
        paths = generate_paths(r_model, s_model, LENGTH, N_RUNS, seed=1)
        spec = ExperimentSpec(
            kind="join",
            cache_size=CACHE,
            warmup=5,
            r_model=r_model,
            s_model=s_model,
        )
        factory = lambda: make_policy("prob")
        baseline = run_experiment(spec, factory, paths, engine=ScalarEngine())
        import os

        counts = sorted({1, 2, 4, os.cpu_count() or 1})
        for workers in counts:
            res = run_experiment(
                spec, factory, paths, engine=ParallelEngine(max_workers=workers)
            )
            expected = "scalar" if workers <= 1 else "parallel"
            assert res.engine_used == expected
            assert [r.total_results for r in res.per_run] == [
                r.total_results for r in baseline.per_run
            ]
            for got, want in zip(res.per_run, baseline.per_run):
                np.testing.assert_array_equal(got.occupancy, want.occupancy)

    def test_more_workers_than_trials(self):
        r_model, s_model = _join_models("stationary")
        paths = generate_paths(r_model, s_model, 60, 2, seed=9)
        spec = ExperimentSpec(kind="join", cache_size=2)
        factory = lambda: make_policy("lru")
        scalar = run_experiment(spec, factory, paths, engine=ScalarEngine())
        par = run_experiment(
            spec, factory, paths, engine=ParallelEngine(max_workers=8)
        )
        _assert_join_equal(scalar, par)

    def test_empty_data(self):
        spec = ExperimentSpec(kind="join", cache_size=2)
        res = run_experiment(
            spec,
            lambda: make_policy("lru"),
            [],
            engine=ParallelEngine(max_workers=2),
        )
        assert res.per_run == []
        assert res.engine_used == "parallel"

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ParallelEngine(max_workers=0)


class _CrashOnTrial(ReplacementPolicy):
    """Evicts fine until a chosen trial, then raises inside the worker."""

    name = "CRASH"

    #: Class-level countdown shared through fork: each forked worker gets
    #: a copy-on-write snapshot, so the crash fires in-worker.
    instances = 0

    def __init__(self, crash_on_instance: int):
        type(self).instances += 1
        self._crash = type(self).instances == crash_on_instance

    def select_victims(
        self,
        candidates: Sequence,
        n_evict: int,
        ctx: PolicyContext,
    ) -> list:
        if self._crash:
            raise RuntimeError("policy exploded inside a worker")
        return sorted(candidates, key=lambda c: c.uid)[:n_evict]


class TestWorkerCrash:
    def test_crash_in_worker_surfaces_as_exception(self):
        r_model, s_model = _join_models("stationary")
        paths = generate_paths(r_model, s_model, 60, 4, seed=2)
        spec = ExperimentSpec(kind="join", cache_size=2)
        _CrashOnTrial.instances = 0
        with pytest.raises(RuntimeError, match="exploded inside a worker"):
            run_experiment(
                spec,
                lambda: _CrashOnTrial(crash_on_instance=2),
                paths,
                engine=ParallelEngine(max_workers=2),
            )

    def test_fork_payload_cleared_after_crash(self):
        import repro.sim.engine as engine_mod

        assert engine_mod._FORK_PAYLOAD is None


class TestRegistry:
    def test_parallel_is_registered(self):
        assert "parallel" in available_engines()
        assert get_engine("parallel").name == "parallel"

    def test_engine_instance_passthrough(self):
        eng = ParallelEngine(max_workers=2)
        assert get_engine(eng) is eng
