"""ProgressRecorder delegation and display contracts (satellite suite).

The wrapper must be a *transparent* recorder — every protocol call
reaches the inner recorder unchanged — while keeping its display honest:
render only when trials actually complete, format the ETA only when a
total is known, stay silent under a ``NullRecorder`` inner, and finish
idempotently.
"""

from __future__ import annotations

import io

from repro.obs import CounterRecorder, NullRecorder, TraceRecorder, read_trace
from repro.obs.progress import TRIALS_COUNTER, ProgressRecorder
from repro.obs.recorder import NULL_RECORDER


def make(inner=None, total=None) -> tuple[ProgressRecorder, io.StringIO]:
    stream = io.StringIO()
    return ProgressRecorder(
        inner, total=total, stream=stream, min_interval=0.0
    ), stream


class TestDelegation:
    """Every Recorder-protocol call passes through to the inner sink."""

    def test_flags_mirror_inner(self):
        assert ProgressRecorder(CounterRecorder()).enabled is True
        assert ProgressRecorder(NullRecorder()).enabled is False
        assert ProgressRecorder(CounterRecorder()).trace is False

    def test_count_timer_series_event_reach_inner(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path) as trace:
            progress = ProgressRecorder(trace, stream=io.StringIO())
            progress.count("cache.hits", 3)
            with progress.timer("flow.solve"):
                pass
            progress.series("cache.occupancy", 0, 2.0)
            progress.event("arrival", 0, side="R", value=1)
            snapshot = progress.snapshot()
        assert snapshot["counters"]["cache.hits"] == 3
        assert snapshot["timers"]["flow.solve"]["calls"] == 1
        kinds = [e["kind"] for e in read_trace(path)]
        assert "arrival" in kinds
        assert "series" in kinds

    def test_snapshot_is_inner_snapshot(self):
        inner = CounterRecorder()
        progress, _ = make(inner)
        progress.count("x")
        assert progress.snapshot() == inner.snapshot()

    def test_merge_forwards_and_harvests_trials(self):
        inner = CounterRecorder()
        progress, _ = make(inner)
        progress.merge({"counters": {TRIALS_COUNTER: 4, "other": 7}})
        assert inner.counters[TRIALS_COUNTER] == 4
        assert inner.counters["other"] == 7
        assert progress.done == 4

    def test_merge_without_trials_does_not_bump(self):
        progress, stream = make(CounterRecorder())
        progress.merge({"counters": {"other": 1}})
        assert progress.done == 0
        assert stream.getvalue() == ""

    def test_fork_returns_inner_fork(self):
        inner = CounterRecorder()
        progress, _ = make(inner)
        fork = progress.fork()
        # The display stays in the parent: workers get a plain recorder.
        assert isinstance(fork, CounterRecorder)
        assert fork is not inner

    def test_close_finishes_and_closes_inner(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = TraceRecorder(path)
        progress = ProgressRecorder(trace, stream=io.StringIO())
        progress.event("arrival", 0, side="R", value=1)
        progress.count(TRIALS_COUNTER)
        progress.close()
        # close() reached the inner recorder: file flushed and closed.
        assert trace._file is None
        assert [e["kind"] for e in read_trace(path)] == ["arrival"]


class TestDisplay:
    """Rendering: counters drive it, totals shape it, Null silences it."""

    def test_trials_bumps_render_progress(self):
        progress, stream = make(CounterRecorder(), total=4)
        for _ in range(3):
            progress.count(TRIALS_COUNTER)
        out = stream.getvalue()
        assert "[progress] 3/4 trials" in out
        assert "trials/s" in out

    def test_other_counters_never_render(self):
        progress, stream = make(CounterRecorder())
        progress.count("cache.hits", 100)
        progress.count("sim.steps", 100)
        assert progress.done == 0
        assert stream.getvalue() == ""

    def test_no_trials_means_no_output_even_at_finish(self):
        # The "trials.done never fires" contract: a run whose engine
        # never bumps the counter leaves stderr untouched.
        progress, stream = make(CounterRecorder(), total=10)
        progress.series("cache.occupancy", 0, 1.0)
        progress.finish()
        assert stream.getvalue() == ""

    def test_null_inner_renders_nothing(self):
        progress, stream = make(NullRecorder())
        progress.count(TRIALS_COUNTER, 5)
        progress.finish()
        assert progress.done == 5  # counted, just not displayed
        assert stream.getvalue() == ""

    def test_null_singleton_inner_renders_nothing(self):
        progress = ProgressRecorder(NULL_RECORDER, stream=io.StringIO())
        progress.count(TRIALS_COUNTER)
        progress.finish()
        assert progress._stream.getvalue() == ""

    def test_finish_is_idempotent_and_terminates_line(self):
        progress, stream = make(CounterRecorder(), total=2)
        progress.count(TRIALS_COUNTER, 2)
        progress.finish()
        progress.finish()
        out = stream.getvalue()
        assert out.count("\n") == 1
        assert out.endswith("\n")


class TestLineFormat:
    """_line: fraction + ETA with a total, count + elapsed without."""

    def test_with_total_shows_fraction_and_eta(self):
        progress, _ = make(CounterRecorder(), total=10)
        progress.done = 4
        line = progress._line()
        assert line.startswith("[progress] 4/10 trials")
        assert "ETA" in line
        assert "elapsed" not in line

    def test_without_total_shows_count_and_elapsed(self):
        progress, _ = make(CounterRecorder())
        progress.done = 4
        line = progress._line()
        assert line.startswith("[progress] 4 trials")
        assert "elapsed" in line
        assert "ETA" not in line

    def test_zero_done_with_total_shows_elapsed_not_eta(self):
        progress, _ = make(CounterRecorder(), total=10)
        line = progress._line()
        assert "0/10 trials" in line
        assert "ETA" not in line

    def test_overrun_total_falls_back_to_elapsed(self):
        progress, _ = make(CounterRecorder(), total=3)
        progress.done = 5  # more trials than promised: no negative ETA
        line = progress._line()
        assert "5/3 trials" in line
        assert "ETA" not in line
