"""Repository self-consistency: docs reference real artifacts, exports
resolve, and the package doctest passes."""

from __future__ import annotations

import doctest
import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

PACKAGES = [
    "repro",
    "repro.core",
    "repro.streams",
    "repro.flow",
    "repro.sim",
    "repro.policies",
    "repro.analysis",
    "repro.experiments",
    "repro.obs",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{package}.{name} missing"

    def test_package_doctest(self):
        import repro

        results = doctest.testmod(repro)
        assert results.failed == 0


class TestDocsReferenceRealFiles:
    def _referenced_paths(self, text: str) -> set[str]:
        out = set()
        for match in re.finditer(
            r"(benchmarks|examples|tests|docs)/[\w./]+\.(py|md)", text
        ):
            out.add(match.group(0))
        return out

    @pytest.mark.parametrize(
        "doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/THEORY.md"]
    )
    def test_paths_exist(self, doc):
        text = (REPO / doc).read_text()
        for ref in self._referenced_paths(text):
            assert (REPO / ref).exists(), f"{doc} references missing {ref}"

    def test_design_covers_every_figure_bench(self):
        design = (REPO / "DESIGN.md").read_text()
        for bench in sorted((REPO / "benchmarks").glob("test_fig*.py")):
            assert bench.name in design, f"DESIGN.md missing {bench.name}"

    def test_every_example_in_readme(self):
        readme = (REPO / "README.md").read_text()
        for example in sorted((REPO / "examples").glob("*.py")):
            assert example.name in readme, f"README missing {example.name}"


class TestModuleDocstrings:
    def test_every_public_module_has_a_docstring(self):
        for path in sorted((REPO / "src" / "repro").rglob("*.py")):
            module = importlib.import_module(
                str(path.relative_to(REPO / "src"))
                .removesuffix(".py")
                .replace("/", ".")
            )
            assert module.__doc__, f"{path} lacks a module docstring"
