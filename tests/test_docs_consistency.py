"""Repository self-consistency: docs reference real artifacts, exports
resolve, and the package doctest passes."""

from __future__ import annotations

import doctest
import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

PACKAGES = [
    "repro",
    "repro.core",
    "repro.streams",
    "repro.flow",
    "repro.sim",
    "repro.policies",
    "repro.analysis",
    "repro.experiments",
    "repro.obs",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{package}.{name} missing"

    def test_package_doctest(self):
        import repro

        results = doctest.testmod(repro)
        assert results.failed == 0


class TestDocsReferenceRealFiles:
    def _referenced_paths(self, text: str) -> set[str]:
        out = set()
        for match in re.finditer(
            r"(benchmarks|examples|tests|docs)/[\w./]+\.(py|md)", text
        ):
            out.add(match.group(0))
        return out

    @pytest.mark.parametrize(
        "doc",
        [
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/THEORY.md",
            "docs/PERFORMANCE.md",
        ],
    )
    def test_paths_exist(self, doc):
        text = (REPO / doc).read_text()
        for ref in self._referenced_paths(text):
            assert (REPO / ref).exists(), f"{doc} references missing {ref}"

    def test_design_covers_every_figure_bench(self):
        design = (REPO / "DESIGN.md").read_text()
        for bench in sorted((REPO / "benchmarks").glob("test_fig*.py")):
            assert bench.name in design, f"DESIGN.md missing {bench.name}"

    def test_every_example_in_readme(self):
        readme = (REPO / "README.md").read_text()
        for example in sorted((REPO / "examples").glob("*.py")):
            assert example.name in readme, f"README missing {example.name}"


class TestPerformanceMatrix:
    """docs/PERFORMANCE.md §1 must mirror the ``make_batch_policy``
    dispatch: every adapter class it names exists, and representative
    matrix rows agree with what ``BatchEngine.supports`` actually says.
    """

    DOC = REPO / "docs" / "PERFORMANCE.md"

    def test_every_named_adapter_class_exists(self):
        import repro.policies.batch as batch_mod

        names = set(re.findall(r"`(Batch\w+)`", self.DOC.read_text()))
        assert names, "PERFORMANCE.md names no adapter classes"
        for name in sorted(names):
            assert hasattr(batch_mod, name), (
                f"PERFORMANCE.md names {name}, absent from "
                "repro.policies.batch"
            )

    @pytest.mark.parametrize(
        "row, batchable",
        [
            ("lru-k always batchable", True),
            ("prob exact counts", True),
            ("windowed generic heeb with LExp", True),
            ("windowed generic heeb non-LExp", False),
            ("trie on independent models", True),
            ("trie on markov models", False),
            ("flowexpect fast path", True),
            ("flowexpect reference pipeline", False),
            ("prob sketch counts", False),
            ("opt replay", False),
        ],
    )
    def test_matrix_rows_match_dispatch(self, row, batchable):
        from repro.core.lifetime import LExp, LFixed
        from repro.policies import make_policy
        from repro.policies.heeb_policy import GenericJoinHeeb, HeebPolicy
        from repro.policies.scheduled import ScheduledPolicy
        from repro.sim.engine import BatchEngine, ExperimentSpec
        from repro.streams import make_stream
        from repro.streams.noise import from_mapping

        stationary = make_stream(
            "stationary", dist=from_mapping({1: 0.6, 2: 0.4})
        )
        walk = make_stream(
            "random-walk", step=from_mapping({-1: 0.5, 1: 0.5})
        )

        def spec(model, **overrides):
            defaults = dict(
                kind="join", cache_size=4, r_model=model, s_model=model
            )
            defaults.update(overrides)
            return ExperimentSpec(**defaults)

        cases = {
            "lru-k always batchable": (
                spec(stationary),
                lambda: make_policy("lru-k"),
            ),
            "prob exact counts": (
                spec(stationary),
                lambda: make_policy("prob"),
            ),
            "windowed generic heeb with LExp": (
                spec(stationary, window=8),
                lambda: HeebPolicy(GenericJoinHeeb(LExp(5.0), horizon=40)),
            ),
            "windowed generic heeb non-LExp": (
                spec(stationary, window=8),
                lambda: HeebPolicy(GenericJoinHeeb(LFixed(5), horizon=40)),
            ),
            "trie on independent models": (
                spec(stationary),
                lambda: make_policy("trie"),
            ),
            "trie on markov models": (
                spec(walk),
                lambda: make_policy("trie"),
            ),
            "flowexpect fast path": (
                spec(stationary),
                lambda: make_policy(
                    "flowexpect",
                    lookahead=2,
                    r_model=stationary,
                    s_model=stationary,
                ),
            ),
            "flowexpect reference pipeline": (
                spec(stationary),
                lambda: make_policy(
                    "flowexpect",
                    lookahead=2,
                    r_model=stationary,
                    s_model=stationary,
                    fast=False,
                ),
            ),
            "prob sketch counts": (
                spec(stationary),
                lambda: make_policy("prob", counts="sketch"),
            ),
            "opt replay": (spec(stationary), lambda: ScheduledPolicy({})),
        }
        the_spec, factory = cases[row]
        reason = BatchEngine().supports(the_spec, factory)
        if batchable:
            assert reason is None, f"{row}: unexpectedly refused: {reason}"
        else:
            assert reason is not None, f"{row}: unexpectedly batchable"
            assert "has no exact batch adapter" in reason

    def test_matrix_documents_the_normalized_refusal(self):
        text = self.DOC.read_text()
        assert "has no exact batch adapter" in text
        assert "it runs on the scalar tier" in text


class TestModuleDocstrings:
    def test_every_public_module_has_a_docstring(self):
        for path in sorted((REPO / "src" / "repro").rglob("*.py")):
            module = importlib.import_module(
                str(path.relative_to(REPO / "src"))
                .removesuffix(".py")
                .replace("/", ".")
            )
            assert module.__doc__, f"{path} lacks a module docstring"
