"""Tests for sliding-window semantics (Section 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ecb import ECB, ecb_join, windowed_ecb
from repro.core.heeb import heeb_from_ecb
from repro.core.lifetime import LExp, WindowedLExp
from repro.core.tuples import StreamTuple
from repro.policies.heeb_policy import GenericJoinHeeb, HeebPolicy
from repro.policies.lru import LruPolicy
from repro.policies.prob import ProbPolicy
from repro.sim.join_sim import JoinSimulator
from repro.streams import StationaryStream, from_mapping


class TestSection7Example:
    """The x1/x2/x3 example: PROB and LIFE misrank; windowed HEEB ranks
    x2 > x1 > x3 -- 'arguably the most reasonable order'."""

    # p(x): stationary match probability; l(x): remaining window life.
    P = {"x1": 0.50, "x2": 0.49, "x3": 0.01}
    LIFE_LEFT = {"x1": 1, "x2": 50, "x3": 51}

    def _windowed_h(self, name: str, alpha: float = 20.0) -> float:
        # Stationary partner: ECB increments are p at every step; the
        # sliding window clips the tuple's own participation at l(x).
        horizon = 200
        p = self.P[name]
        ecb = ECB(np.cumsum(np.full(horizon, p)))
        L = WindowedLExp(alpha, self.LIFE_LEFT[name])
        return heeb_from_ecb(ecb, L)

    def test_prob_prefers_x1(self):
        assert self.P["x1"] > self.P["x2"]  # PROB's (shortsighted) order

    def test_life_prefers_x3_over_x1(self):
        life_score = {k: self.P[k] * self.LIFE_LEFT[k] for k in self.P}
        assert life_score["x3"] > life_score["x1"]  # LIFE's pessimism

    def test_windowed_heeb_ranks_x2_x1_x3(self):
        h = {k: self._windowed_h(k) for k in self.P}
        assert h["x2"] > h["x1"] > h["x3"]

    def test_ranking_robust_to_alpha(self):
        for alpha in (5.0, 10.0, 40.0):
            h = {k: self._windowed_h(k, alpha) for k in self.P}
            assert h["x2"] > h["x1"] > h["x3"], alpha


class TestWindowedEcbConsistency:
    def test_windowed_ecb_equals_weighted_clip(self, stationary_stream):
        """Clipping the ECB or the L function yields the same H."""
        base = ecb_join(stationary_stream, 0, 1, 100)
        alpha = 7.0
        arrival, t0, window = 3, 10, 12  # 5 steps of life left
        clipped_ecb = windowed_ecb(base, arrival, t0, window)
        h_via_ecb = heeb_from_ecb(clipped_ecb, LExp(alpha))
        h_via_l = heeb_from_ecb(
            base, WindowedLExp(alpha, arrival + window - t0)
        )
        assert h_via_ecb == pytest.approx(h_via_l)


class TestWindowedSimulation:
    def test_windowed_heeb_policy_runs(self):
        model = StationaryStream(from_mapping({1: 0.5, 2: 0.3, 3: 0.2}))
        policy = HeebPolicy(GenericJoinHeeb(LExp(5.0), horizon=60))
        rng = np.random.default_rng(0)
        r = model.sample_path(150, rng)
        s = model.sample_path(150, np.random.default_rng(1))
        sim = JoinSimulator(
            4, policy, window=8, r_model=model, s_model=model
        )
        result = sim.run(r, s)
        assert result.total_results > 0

    def test_window_reduces_results(self):
        model = StationaryStream(from_mapping({1: 0.5, 2: 0.5}))
        rng = np.random.default_rng(0)
        r = model.sample_path(200, rng)
        s = model.sample_path(200, np.random.default_rng(1))

        def run(window):
            policy = HeebPolicy(GenericJoinHeeb(LExp(5.0), horizon=40))
            return (
                JoinSimulator(3, policy, window=window, r_model=model, s_model=model)
                .run(r, s)
                .total_results
            )

        assert run(2) <= run(50)

class TestWindowEdgeCases:
    """Boundary semantics: a tuple arriving at ``t_x`` participates
    through ``t_x + window`` inclusive and expires at ``t_x + window + 1``
    (the cache drops ``arrival < t - window`` *before* probing)."""

    def _run(self, r, s, window, warmup=0, cache_size=8):
        sim = JoinSimulator(
            cache_size, LruPolicy(), warmup=warmup, window=window
        )
        return sim.run(r, s)

    def test_join_exactly_at_expiry_boundary(self):
        window = 4
        r = [5, None, None, None, None, None]
        s = [None, None, None, None, 5, None]  # S probes at t = t_x + window
        assert self._run(r, s, window).total_results == 1

    def test_no_join_one_step_past_window(self):
        window = 4
        r = [5, None, None, None, None, None]
        s = [None, None, None, None, None, 5]  # t = t_x + window + 1
        assert self._run(r, s, window).total_results == 0

    def test_window_zero_yields_no_joins(self):
        """window=0 keeps a tuple probe-able only on its arrival step,
        but same-step arrivals are admitted after probing -- so nothing
        ever joins, even on identical streams."""
        values = [1, 2, 3, 1, 2, 3, 1, 2]
        result = self._run(list(values), list(values), window=0)
        assert result.total_results == 0

    def test_window_one_joins_adjacent_steps_only(self):
        r = [7, None, None, 7, None]
        s = [None, 7, None, None, 7]  # t=1 joins r@0; t=4 joins r@3
        assert self._run(r, s, window=1).total_results == 2

    def test_window_shorter_than_warmup(self):
        """A window smaller than the warmup period is legal: warmup only
        gates *counting*, not expiry, so pre-warmup joins still age out
        and post-warmup joins are the only ones reported."""
        n = 40
        r = [1 if t % 2 == 0 else None for t in range(n)]
        s = [1 if t % 2 == 1 else None for t in range(n)]
        result = self._run(r, s, window=2, warmup=20)
        assert result.total_results > result.results_after_warmup > 0

    def test_batch_engine_matches_on_edge_paths(self):
        from repro.policies.batch import make_batch_policy
        from repro.sim.batch import BatchJoinSimulator, paths_to_arrays

        # paths_to_arrays truncates to the shortest path, so keep all
        # trials the same length.
        paths = [
            ([5, None, None, None, None, None, None, None],
             [None, None, None, None, 5, None, None, None]),
            ([5, None, None, None, None, None, None, None],
             [None, None, None, None, None, 5, None, None]),
            ([1, 2, 3, 1, 2, 3, 1, 2], [1, 2, 3, 1, 2, 3, 1, 2]),
        ]
        for window in (0, 1, 4):
            scalar = [
                JoinSimulator(8, LruPolicy(), window=window).run(r, s)
                for r, s in paths
            ]
            r_arr, s_arr = paths_to_arrays(paths)
            batch = BatchJoinSimulator(
                8, make_batch_policy(LruPolicy()), window=window
            ).run(r_arr, s_arr)
            for i, run in enumerate(batch.unbatch()):
                assert run.total_results == scalar[i].total_results, (
                    window,
                    i,
                )


class TestWindowedHeebVsProb:
    def test_windowed_heeb_beats_prob_on_example_like_setup(self):
        """A stationary workload where window-awareness matters: a value
        with slightly lower probability but much more remaining life
        should be retained by windowed HEEB."""
        model = StationaryStream(
            from_mapping({1: 0.45, 2: 0.44, 3: 0.11})
        )
        rng = np.random.default_rng(5)
        r = model.sample_path(400, rng)
        s = model.sample_path(400, np.random.default_rng(6))
        window = 10
        heeb = HeebPolicy(GenericJoinHeeb(LExp(8.0), horizon=60))
        h_res = JoinSimulator(
            2, heeb, window=window, r_model=model, s_model=model
        ).run(r, s)
        p_res = JoinSimulator(2, ProbPolicy(), window=window).run(r, s)
        assert h_res.total_results >= p_res.total_results
