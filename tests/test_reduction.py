"""Tests for the caching→joining reduction (Section 2, Theorem 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flow.opt_offline import solve_opt_offline
from repro.policies.lfd import LfdPolicy
from repro.sim.cache_sim import CacheSimulator
from repro.streams.reduction import occurrence_index, reduce_reference_stream


class TestOccurrenceIndex:
    def test_counts_prior_occurrences(self):
        assert occurrence_index(["a", "b", "a", "a"]) == [0, 0, 1, 2]

    def test_empty(self):
        assert occurrence_index([]) == []


class TestTransformation:
    def test_paper_example(self):
        """The exact example of Section 2."""
        reference = ["a", "b", "a", "c", "a"]
        r, s = reduce_reference_stream(reference)
        assert r == [("a", 0), ("b", 0), ("a", 1), ("c", 0), ("a", 2)]
        assert s == [("a", 1), ("b", 1), ("a", 2), ("c", 1), ("a", 3)]

    def test_no_duplicates_within_streams(self):
        """Observation 1: neither transformed stream has duplicates."""
        rng = np.random.default_rng(0)
        reference = list(rng.integers(0, 5, size=200))
        r, s = reduce_reference_stream(reference)
        assert len(set(r)) == len(r)
        assert len(set(s)) == len(s)

    def test_each_s_tuple_joins_exactly_one_future_r(self):
        """Observation 2: s_(v,i) joins only the next occurrence of v."""
        reference = ["a", "b", "a", "a", "b"]
        r, s = reduce_reference_stream(reference)
        for t, s_val in enumerate(s):
            future_matches = [t2 for t2 in range(len(r)) if r[t2] == s_val]
            # Matches, if any, are strictly in the future and unique.
            assert len(future_matches) <= 1
            assert all(t2 > t for t2 in future_matches)

    def test_no_r_tuple_joins_future_s(self):
        """Observation 3: reference tuples never join future supply."""
        reference = ["a", "a", "b", "a"]
        r, s = reduce_reference_stream(reference)
        for t, r_val in enumerate(r):
            assert all(s[t2] != r_val for t2 in range(t + 1, len(s)))


class TestTheorem1:
    """Optimal hits on the caching side equal optimal joins on the
    reduced joining side.

    LFD maximizes hits (Belady); OPT-offline maximizes join results; by
    Theorem 1 the two optima coincide at equal cache size (the expired
    supply tuple s_(v,i) is replaced by s_(v,i+1) within one step, so no
    extra slot is ever needed).
    """

    @pytest.mark.parametrize("seed", range(5))
    def test_lfd_hits_equal_opt_joins(self, seed):
        rng = np.random.default_rng(seed)
        reference = list(rng.integers(0, 4, size=60))
        k = 2
        lfd = CacheSimulator(k, LfdPolicy(reference)).run(reference)

        r, s = reduce_reference_stream(reference)
        opt = solve_opt_offline(r, s, cache_size=k)
        assert opt.total_benefit == lfd.hits

    def test_skewed_reference(self):
        reference = [1, 1, 2, 1, 3, 1, 2, 1, 1, 4, 1, 2, 1]
        k = 2
        lfd = CacheSimulator(k, LfdPolicy(reference)).run(reference)
        r, s = reduce_reference_stream(reference)
        opt = solve_opt_offline(r, s, cache_size=k)
        assert opt.total_benefit == lfd.hits

    def test_cache_of_one(self):
        reference = [1, 2, 1, 1, 2, 2]
        lfd = CacheSimulator(1, LfdPolicy(reference)).run(reference)
        r, s = reduce_reference_stream(reference)
        opt = solve_opt_offline(r, s, cache_size=1)
        assert opt.total_benefit == lfd.hits
