"""Tests for the command-line experiment runner."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_fig7_runs(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "TOWER" in out and "FLOOR" in out

    def test_fig6_runs(self, capsys):
        assert main(["fig6", "--alpha", "5"]) == 0
        out = capsys.readouterr().out
        assert "drift=0" in out and "drift=4" in out

    def test_fig8_small(self, capsys):
        assert (
            main(
                [
                    "fig8",
                    "--length",
                    "80",
                    "--runs",
                    "1",
                    "--no-flowexpect",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "OPT-OFFLINE" in out and "HEEB" in out

    def test_fig9_small(self, capsys):
        assert (
            main(["fig9", "--length", "80", "--runs", "1", "--sizes", "2", "5"])
            == 0
        )
        out = capsys.readouterr().out
        assert "Figure 9" in out

    def test_fig19_small(self, capsys):
        assert (
            main(
                [
                    "fig19",
                    "--length",
                    "40",
                    "--runs",
                    "1",
                    "--cache",
                    "3",
                    "--deltas",
                    "1",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "FLOWEXPECT" in out

    def test_progress_renders_on_stderr(self, capsys):
        assert (
            main(
                [
                    "fig19",
                    "--length",
                    "40",
                    "--runs",
                    "1",
                    "--cache",
                    "3",
                    "--deltas",
                    "1",
                    "--progress",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "FLOWEXPECT" in captured.out
        assert "[progress]" in captured.err
        assert "trials" in captured.err
        # --progress alone implies a counter recorder for the display,
        # but the metrics table stays opt-in.
        assert "evict." not in captured.out

    def test_no_progress_is_silent_on_stderr(self, capsys):
        assert (
            main(["fig19", "--length", "40", "--runs", "1", "--cache", "3",
                  "--deltas", "1"])
            == 0
        )
        assert "[progress]" not in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-figure"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
