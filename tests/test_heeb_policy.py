"""Tests for HEEB strategies and the HEEB policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lifetime import LExp, LFixed
from repro.core.tuples import StreamTuple
from repro.policies.base import PolicyContext
from repro.policies.heeb_policy import (
    AR1CacheHeeb,
    GenericCacheHeeb,
    GenericJoinHeeb,
    HeebPolicy,
    TrendJoinHeeb,
    WalkJoinHeeb,
)
from repro.sim.cache_sim import CacheSimulator
from repro.sim.join_sim import JoinSimulator
from repro.streams import (
    AR1Stream,
    LinearTrendStream,
    RandomWalkStream,
    StationaryStream,
    bounded_normal,
    bounded_uniform,
    discretized_normal,
    from_mapping,
)

ALPHA = 8.0


def join_ctx(r_model, s_model, time, r_hist, s_hist, cache_size=5, window=None):
    return PolicyContext(
        kind="join",
        time=time,
        cache_size=cache_size,
        r_history=list(r_hist),
        s_history=list(s_hist),
        r_model=r_model,
        s_model=s_model,
        window=window,
    )


class TestTrendJoinHeebAgainstGeneric:
    def test_table_matches_direct_sum(self):
        r_model = LinearTrendStream(bounded_normal(5, 2.0), speed=1.0, lag=1)
        s_model = LinearTrendStream(bounded_uniform(7), speed=1.0)
        generic = GenericJoinHeeb(LExp(ALPHA))
        fast = TrendJoinHeeb(LExp(ALPHA))
        t0 = 60
        ctx = join_ctx(r_model, s_model, t0, [t0 - 1] * (t0 + 1), [t0] * (t0 + 1))
        fast.reset(ctx)
        for side, values in (("R", range(t0 - 8, t0 + 6)), ("S", range(t0 - 6, t0 + 6))):
            for i, v in enumerate(values):
                tup = StreamTuple(i, side, v, t0)
                assert fast.h_value(tup, ctx) == pytest.approx(
                    generic.h_value(tup, ctx), abs=1e-9
                ), (side, v)

    def test_rejects_non_trend_partner(self):
        model = StationaryStream(from_mapping({1: 1.0}))
        fast = TrendJoinHeeb(LExp(ALPHA))
        ctx = join_ctx(model, model, 0, [1], [1])
        with pytest.raises(ValueError):
            fast.h_value(StreamTuple(0, "R", 1, 0), ctx)

    def test_requires_lexp(self):
        with pytest.raises(ValueError):
            TrendJoinHeeb(LFixed(5))

    def test_fractional_speed_fallback(self):
        r_model = LinearTrendStream(bounded_uniform(4), speed=0.5)
        s_model = LinearTrendStream(bounded_uniform(4), speed=0.5)
        generic = GenericJoinHeeb(LExp(ALPHA))
        fast = TrendJoinHeeb(LExp(ALPHA))
        t0 = 40
        ctx = join_ctx(r_model, s_model, t0, [20] * (t0 + 1), [20] * (t0 + 1))
        tup = StreamTuple(0, "S", 22, t0)
        assert fast.h_value(tup, ctx) == pytest.approx(
            generic.h_value(tup, ctx), abs=1e-6
        )


class TestWalkJoinHeebAgainstGeneric:
    def test_table_matches_direct_sum(self):
        step = discretized_normal(1.0)
        r_model = RandomWalkStream(step)
        s_model = RandomWalkStream(step)
        estimator = LExp(ALPHA)
        horizon = estimator.suggested_horizon(1e-9)
        generic = GenericJoinHeeb(estimator, horizon=horizon)
        fast = WalkJoinHeeb(estimator, horizon=horizon)
        t0 = 5
        r_hist = [0, 1, 1, 2, 3, 3]
        s_hist = [0, -1, -1, 0, 1, 2]
        ctx = join_ctx(r_model, s_model, t0, r_hist, s_hist)
        fast.reset(ctx)
        for side in ("R", "S"):
            for i, v in enumerate(range(-4, 8)):
                tup = StreamTuple(i, side, v, t0)
                assert fast.h_value(tup, ctx) == pytest.approx(
                    generic.h_value(tup, ctx), abs=1e-9
                ), (side, v)

    def test_empty_history_scores_zero(self):
        step = discretized_normal(1.0)
        model = RandomWalkStream(step)
        fast = WalkJoinHeeb(LExp(ALPHA), horizon=40)
        ctx = join_ctx(model, model, 0, [None], [None])
        assert fast.h_value(StreamTuple(0, "R", 0, 0), ctx) == 0.0


class TestAR1CacheHeebPolicy:
    def test_surface_strategy_runs_and_prefers_near_values(self):
        from repro.core.precompute import ar1_h2_cache

        model = AR1Stream(phi0=2.0, phi1=0.6, sigma=2.0, bucket=1.0)
        estimator = LExp(20.0)
        center = model.stationary_mean
        v_grid = np.linspace(center - 6, center + 6, 5).round().astype(int)
        x_grid = np.linspace(center - 6, center + 6, 5)
        surface = ar1_h2_cache(model, estimator, v_grid, x_grid, exact_steps=40)
        strategy = AR1CacheHeeb(model, surface)
        ctx = PolicyContext(
            kind="cache",
            time=3,
            cache_size=5,
            r_history=[model.to_bucket(center)] * 4,
            r_model=model,
        )
        near = StreamTuple(0, "S", model.to_bucket(center), 0)
        far = StreamTuple(1, "S", model.to_bucket(center + 5.5), 0)
        assert strategy.h_value(near, ctx) > strategy.h_value(far, ctx)


class TestGenericCacheHeeb:
    def test_matches_module_function(self, stationary_stream):
        from repro.core.heeb import heeb_cache

        strategy = GenericCacheHeeb(LExp(ALPHA))
        ctx = PolicyContext(
            kind="cache",
            time=2,
            cache_size=3,
            r_history=[1, 2, 1],
            r_model=stationary_stream,
        )
        tup = StreamTuple(0, "S", 1, 0)
        assert strategy.h_value(tup, ctx) == pytest.approx(
            heeb_cache(stationary_stream, 2, 1, LExp(ALPHA))
        )

    def test_requires_model(self):
        strategy = GenericCacheHeeb(LExp(ALPHA))
        ctx = PolicyContext(kind="cache", time=0, cache_size=1)
        with pytest.raises(ValueError):
            strategy.h_value(StreamTuple(0, "S", 1, 0), ctx)


class TestHeebPolicyEndToEnd:
    def test_heeb_beats_prob_on_trend_streams(self):
        """The headline claim: hardwired heuristics fail under trends."""
        from repro.policies import ProbPolicy

        r_model = LinearTrendStream(bounded_normal(10, 1.0), speed=1.0, lag=1)
        s_model = LinearTrendStream(bounded_normal(15, 2.0), speed=1.0)
        heeb_total = prob_total = 0
        for run in range(3):
            rng_r = np.random.default_rng(run)
            rng_s = np.random.default_rng(100 + run)
            r = r_model.sample_path(500, rng_r)
            s = s_model.sample_path(500, rng_s)
            heeb = HeebPolicy(TrendJoinHeeb(LExp(3.0)))
            heeb_total += (
                JoinSimulator(10, heeb, r_model=r_model, s_model=s_model)
                .run(r, s)
                .total_results
            )
            prob_total += JoinSimulator(10, ProbPolicy()).run(r, s).total_results
        assert heeb_total > 1.5 * prob_total

    def test_heeb_cache_matches_lfu_on_stationary(self):
        """Section 5.2: HEEB's stationary caching order equals LFU's, so
        hit counts should match closely."""
        from repro.policies import LfuPolicy

        dist = from_mapping({1: 0.4, 2: 0.3, 3: 0.15, 4: 0.1, 5: 0.05})
        model = StationaryStream(dist)
        rng = np.random.default_rng(1)
        trace = model.sample_path(2000, rng)
        heeb = HeebPolicy(GenericCacheHeeb(LExp(20.0), horizon=300))
        lfu = LfuPolicy()
        h = CacheSimulator(2, heeb, reference_model=model).run(trace)
        f = CacheSimulator(2, lfu).run(trace)
        # Identical asymptotic behavior; allow small transient differences.
        assert abs(h.hits - f.hits) <= 0.05 * f.hits
