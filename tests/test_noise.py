"""Tests for discrete distributions (repro.streams.noise)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.noise import (
    DiscreteDistribution,
    bounded_normal,
    bounded_uniform,
    discretized_normal,
    from_mapping,
    point_mass,
)


# ----------------------------------------------------------------------
# Construction and validation
# ----------------------------------------------------------------------
class TestConstruction:
    def test_normalizes_weights(self):
        d = DiscreteDistribution([0, 1], [2.0, 6.0])
        assert d.pmf(0) == pytest.approx(0.25)
        assert d.pmf(1) == pytest.approx(0.75)

    def test_sorts_values(self):
        d = DiscreteDistribution([3, 1, 2], [0.2, 0.5, 0.3])
        assert list(d.values) == [1, 2, 3]
        assert d.pmf(1) == pytest.approx(0.5)

    def test_merges_duplicates(self):
        d = DiscreteDistribution([1, 1, 2], [0.25, 0.25, 0.5])
        assert len(d) == 2
        assert d.pmf(1) == pytest.approx(0.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([], [])

    def test_rejects_negative_probs(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([1, 2], [0.5, -0.5])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([1, 2], [0.0, 0.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([1, 2, 3], [0.5, 0.5])

    def test_from_mapping(self):
        d = from_mapping({5: 0.25, -1: 0.75})
        assert d.pmf(5) == pytest.approx(0.25)
        assert d.min_value == -1

    def test_from_mapping_rejects_empty(self):
        with pytest.raises(ValueError):
            from_mapping({})


# ----------------------------------------------------------------------
# Probability queries
# ----------------------------------------------------------------------
class TestQueries:
    def test_pmf_outside_support_is_zero(self):
        d = bounded_uniform(2)
        assert d.pmf(3) == 0.0
        assert d.pmf(-3) == 0.0

    def test_pmf_many_matches_pmf(self):
        d = bounded_normal(4, 1.5)
        grid = np.arange(-6, 7)
        many = d.pmf_many(grid)
        singles = np.array([d.pmf(int(v)) for v in grid])
        assert np.allclose(many, singles)

    def test_pmf_many_on_gapped_support(self):
        d = DiscreteDistribution([0, 5], [0.5, 0.5])
        out = d.pmf_many([0, 1, 4, 5, 6])
        assert np.allclose(out, [0.5, 0, 0, 0.5, 0])

    def test_cdf_endpoints(self):
        d = bounded_uniform(2)
        assert d.cdf(-3) == 0.0
        assert d.cdf(2) == pytest.approx(1.0)
        assert d.cdf(0) == pytest.approx(3 / 5)

    def test_mean_and_variance_uniform(self):
        w = 5
        d = bounded_uniform(w)
        assert d.mean() == pytest.approx(0.0)
        # Discrete uniform on [-w, w]: variance = w(w+1)/3.
        assert d.variance() == pytest.approx(w * (w + 1) / 3)

    def test_items_in_order(self):
        d = DiscreteDistribution([2, 0], [0.3, 0.7])
        assert list(d.items()) == [(0, pytest.approx(0.7)), (2, pytest.approx(0.3))]


# ----------------------------------------------------------------------
# Algebra
# ----------------------------------------------------------------------
class TestAlgebra:
    def test_shift(self):
        d = bounded_uniform(1).shift(10)
        assert list(d.values) == [9, 10, 11]
        assert d.pmf(10) == pytest.approx(1 / 3)

    def test_convolve_two_coins(self):
        coin = DiscreteDistribution([0, 1], [0.5, 0.5])
        two = coin.convolve(coin)
        assert two.pmf(0) == pytest.approx(0.25)
        assert two.pmf(1) == pytest.approx(0.5)
        assert two.pmf(2) == pytest.approx(0.25)

    def test_convolve_matches_brute_force(self, rng):
        a = DiscreteDistribution([-2, 0, 3], [0.2, 0.5, 0.3])
        b = DiscreteDistribution([1, 2], [0.6, 0.4])
        c = a.convolve(b)
        brute = {}
        for va, pa in a.items():
            for vb, pb in b.items():
                brute[va + vb] = brute.get(va + vb, 0.0) + pa * pb
        for v, p in brute.items():
            assert c.pmf(v) == pytest.approx(p)

    def test_convolve_point_mass_is_shift(self):
        d = bounded_normal(3, 1.0)
        shifted = d.convolve(point_mass(4))
        assert shifted.allclose(d.shift(4))

    def test_truncate_drops_tiny_mass(self):
        d = DiscreteDistribution([0, 1, 2], [0.9, 0.0999999, 1e-9])
        t = d.truncate(1e-6)
        assert t.pmf(2) == 0.0
        assert t.pmf(0) + t.pmf(1) == pytest.approx(1.0)

    def test_truncate_never_empties(self):
        d = DiscreteDistribution([0, 1], [0.5, 0.5])
        t = d.truncate(0.9)
        assert len(t) >= 1
        assert sum(p for _, p in t.items()) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
class TestSampling:
    def test_sample_scalar(self, rng):
        d = bounded_uniform(2)
        v = d.sample(rng)
        assert isinstance(v, int)
        assert -2 <= v <= 2

    def test_sample_frequency(self, rng):
        d = DiscreteDistribution([0, 1], [0.25, 0.75])
        draws = d.sample(rng, size=20_000)
        assert draws.mean() == pytest.approx(0.75, abs=0.02)

    def test_sample_stays_in_support(self, rng):
        d = bounded_normal(4, 1.0)
        draws = d.sample(rng, size=1000)
        assert draws.min() >= -4 and draws.max() <= 4


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
class TestFactories:
    def test_bounded_uniform_probs(self):
        d = bounded_uniform(10)
        assert len(d) == 21
        for v, p in d.items():
            assert p == pytest.approx(1 / 21)

    def test_bounded_uniform_zero_width(self):
        d = bounded_uniform(0)
        assert d.pmf(0) == pytest.approx(1.0)

    def test_bounded_uniform_rejects_negative(self):
        with pytest.raises(ValueError):
            bounded_uniform(-1)

    def test_bounded_normal_shape(self):
        d = bounded_normal(10, 2.0)
        # Symmetric, peaked at zero, decreasing outward.
        assert d.pmf(0) > d.pmf(1) > d.pmf(5) > d.pmf(10) > 0
        assert d.pmf(3) == pytest.approx(d.pmf(-3))

    def test_bounded_normal_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            bounded_normal(5, 0.0)

    def test_discretized_normal_mass(self):
        d = discretized_normal(1.0)
        assert sum(p for _, p in d.items()) == pytest.approx(1.0)
        assert d.pmf(0) > d.pmf(1)
        # 6-sigma support comfortably present.
        assert d.min_value <= -5 and d.max_value >= 5

    def test_discretized_normal_with_mean(self):
        d = discretized_normal(1.0, mean=7.0)
        assert d.mean() == pytest.approx(7.0, abs=0.01)

    def test_point_mass(self):
        d = point_mass(42)
        assert d.pmf(42) == 1.0
        assert d.mean() == 42


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------
@st.composite
def distributions(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    values = draw(
        st.lists(
            st.integers(min_value=-50, max_value=50),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0),
            min_size=n,
            max_size=n,
        )
    )
    return DiscreteDistribution(values, weights)


class TestProperties:
    @given(distributions())
    @settings(max_examples=50, deadline=None)
    def test_pmf_sums_to_one(self, d):
        assert sum(p for _, p in d.items()) == pytest.approx(1.0)

    @given(distributions(), distributions())
    @settings(max_examples=50, deadline=None)
    def test_convolution_moments_add(self, a, b):
        c = a.convolve(b)
        assert c.mean() == pytest.approx(a.mean() + b.mean(), abs=1e-8)
        assert c.variance() == pytest.approx(
            a.variance() + b.variance(), abs=1e-7
        )

    @given(distributions(), st.integers(min_value=-20, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_shift_moments(self, d, k):
        s = d.shift(k)
        assert s.mean() == pytest.approx(d.mean() + k, abs=1e-9)
        assert s.variance() == pytest.approx(d.variance(), abs=1e-8)

    @given(distributions())
    @settings(max_examples=30, deadline=None)
    def test_cdf_monotone(self, d):
        grid = range(d.min_value - 1, d.max_value + 2)
        cdfs = [d.cdf(v) for v in grid]
        assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))
        assert cdfs[-1] == pytest.approx(1.0)
