"""Behavioral Theorem-3 tests: dominance identifies optimal decisions.

Theorem 3(2): if ``B_x`` strongly dominates ``B_y``, *every* optimal
algorithm keeps x (or discards y).  We verify this against the exhaustive
adaptive optimum: forcing the initial decision the "wrong" way must never
yield a higher expected benefit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dominance import strongly_dominates
from repro.core.ecb import ecb_join
from repro.flow.brute_force import brute_force_adaptive_expectation
from repro.streams import TabularStream


def scenario_steps(r_steps, s_steps, horizon):
    """Expand per-stream tables into joint per-step outcome lists."""
    steps = []
    for t in range(horizon):
        r_spec = r_steps[t] if t < len(r_steps) else []
        s_spec = s_steps[t] if t < len(s_steps) else []
        r_opts = list(r_spec) + [(None, 1.0 - sum(p for _, p in r_spec))]
        s_opts = list(s_spec) + [(None, 1.0 - sum(p for _, p in s_spec))]
        outs = []
        for rv, rp in r_opts:
            for sv, sp in s_opts:
                if rp * sp > 0:
                    outs.append((rv, sv, rp * sp))
        steps.append(outs)
    return steps


def optimum_with_initial_cache(r_steps, s_steps, initial, k, horizon):
    return brute_force_adaptive_expectation(
        scenario_steps(r_steps, s_steps, horizon), initial, k
    )


class TestTheorem3Behavioral:
    @pytest.mark.parametrize("seed", range(8))
    def test_keeping_strong_dominator_never_worse(self, seed):
        """Random small scenarios with cache 1 and two S-side candidates:
        whenever one candidate's ECB strongly dominates the other's, the
        adaptive optimum from keeping the dominator is >= the optimum
        from keeping the dominated one."""
        rng = np.random.default_rng(seed)
        future = 4
        # Random R stream over values {1, 2}.  Step 0 is empty: the ECB
        # (and the paper's performance definition, Section 3.3) exclude
        # benefits from the time-0 arrivals.
        r_steps = [[]]
        for _ in range(future):
            p1 = rng.uniform(0, 0.6)
            p2 = rng.uniform(0, 1.0 - p1 - 0.05)
            r_steps.append([(1, p1), (2, p2)])
        horizon = len(r_steps)
        s_steps = [[] for _ in range(horizon)]  # S produces nothing new

        r_model = TabularStream(r_steps)
        b1 = ecb_join(r_model, 0, 1, future)
        b2 = ecb_join(r_model, 0, 2, future)

        opt_keep_1 = optimum_with_initial_cache(
            r_steps, s_steps, [("S", 1)], 1, horizon
        )
        opt_keep_2 = optimum_with_initial_cache(
            r_steps, s_steps, [("S", 2)], 1, horizon
        )

        if strongly_dominates(b1, b2):
            assert opt_keep_1 >= opt_keep_2 - 1e-12
        elif strongly_dominates(b2, b1):
            assert opt_keep_2 >= opt_keep_1 - 1e-12
        # With S producing nothing, the cached tuple is never replaced,
        # so the optimum equals the ECB's terminal value exactly.
        assert opt_keep_1 == pytest.approx(b1(future))
        assert opt_keep_2 == pytest.approx(b2(future))

    def test_incomparable_candidates_can_go_either_way(self):
        """Sanity check that the theorem's converse is false: crossing
        ECBs exist where the early-benefit tuple wins under one horizon
        and the late-benefit tuple under another."""
        # Tuple 1 matches only at t=1; tuple 2 matches at t=2 and t=3.
        r_steps = [[(1, 0.9)], [(2, 0.7)], [(2, 0.7)]]
        s_steps = [[] for _ in range(3)]
        short = (
            optimum_with_initial_cache(r_steps[:1], s_steps[:1], [("S", 1)], 1, 1),
            optimum_with_initial_cache(r_steps[:1], s_steps[:1], [("S", 2)], 1, 1),
        )
        long = (
            optimum_with_initial_cache(r_steps, s_steps, [("S", 1)], 1, 3),
            optimum_with_initial_cache(r_steps, s_steps, [("S", 2)], 1, 3),
        )
        assert short[0] > short[1]  # early tuple wins short horizons
        assert long[1] > long[0]  # late tuple wins long horizons
