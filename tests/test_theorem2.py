"""Theorem 2 validation: the flow optimum equals the best predetermined
decision sequence, enumerated independently of the flow machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tuples import StreamTuple
from repro.flow.brute_force import brute_force_predetermined_expectation
from repro.flow.flowexpect import flowexpect_decide
from repro.streams import StationaryStream, TabularStream, from_mapping


def random_tabular(rng: np.random.Generator, steps: int) -> TabularStream:
    """A random per-step distribution over a small value domain with
    possible '−' mass."""
    table = []
    for _ in range(steps):
        values = rng.choice(np.arange(1, 5), size=rng.integers(0, 3), replace=False)
        if values.size == 0:
            table.append([])
            continue
        raw = rng.random(values.size)
        total = raw.sum() / rng.uniform(0.6, 1.0)  # leave some '−' mass
        table.append([(int(v), float(p / total)) for v, p in zip(values, raw)])
    return TabularStream(table)


class TestFlowEqualsPredeterminedOptimum:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_scenarios(self, seed):
        rng = np.random.default_rng(seed)
        lookahead = int(rng.integers(2, 5))
        cache_size = int(rng.integers(1, 3))
        r_model = random_tabular(rng, lookahead)
        s_model = random_tabular(rng, lookahead)
        # Candidates: cache_size + up to 2 arrivals with random values.
        n_candidates = cache_size + int(rng.integers(1, 3))
        candidates = [
            StreamTuple(i, rng.choice(["R", "S"]), int(rng.integers(1, 5)), 0)
            for i in range(n_candidates)
        ]
        decision = flowexpect_decide(
            candidates, 0, lookahead, cache_size, r_model, s_model
        )
        brute = brute_force_predetermined_expectation(
            candidates, 0, lookahead, cache_size, r_model, s_model
        )
        assert decision.expected_benefit == pytest.approx(brute, abs=1e-9)

    def test_stationary_scenario(self):
        model = StationaryStream(from_mapping({1: 0.6, 2: 0.4}))
        candidates = [
            StreamTuple(0, "R", 1, 0),
            StreamTuple(1, "S", 2, 0),
            StreamTuple(2, "S", 1, 0),
        ]
        decision = flowexpect_decide(candidates, 0, 3, 2, model, model)
        brute = brute_force_predetermined_expectation(
            candidates, 0, 3, 2, model, model
        )
        assert decision.expected_benefit == pytest.approx(brute, abs=1e-9)

    def test_section34_scenario(self):
        """The 3.4 example's flow value equals its predetermined optimum
        (1.6) -- both below the adaptive optimum (1.75)."""
        r_model = TabularStream([[], [(2, 1.0)], [(3, 1.0)], [(2, 0.5)]])
        s_model = TabularStream(
            [[(2, 1.0)], [(3, 0.5)], [(1, 0.8)], [(1, 0.8)]]
        )
        candidates = [
            StreamTuple(0, "R", 1, -1),
            StreamTuple(1, "S", 2, 0),
        ]
        brute = brute_force_predetermined_expectation(
            candidates, 0, 4, 1, r_model, s_model
        )
        decision = flowexpect_decide(candidates, 0, 4, 1, r_model, s_model)
        assert brute == pytest.approx(1.6)
        assert decision.expected_benefit == pytest.approx(brute)
