"""Tests for the two-stream join simulator (hand-computed scenarios)."""

from __future__ import annotations

from typing import Sequence

import numpy as np
import pytest

from repro.core.tuples import StreamTuple
from repro.policies.base import PolicyContext, ReplacementPolicy, ScoredPolicy
from repro.sim.join_sim import JoinSimulator


class KeepOldest(ScoredPolicy):
    """Evict newest tuples first (deterministic, for hand analysis)."""

    name = "KEEP-OLDEST"

    def score(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        return -float(tup.uid)


class KeepNewest(ScoredPolicy):
    name = "KEEP-NEWEST"

    def score(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        return float(tup.uid)


class TestBasicCounting:
    def test_simple_join(self):
        # Cache big enough to hold everything: every cross match counts.
        r = [1, 2, 3]
        s = [9, 1, 2]
        sim = JoinSimulator(10, KeepNewest())
        result = sim.run(r, s)
        # t=1: s=1 joins cached r(1). t=2: s=2 joins cached r(2).
        assert result.total_results == 2

    def test_same_step_pairs_not_counted(self):
        sim = JoinSimulator(10, KeepNewest())
        result = sim.run([5], [5])
        assert result.total_results == 0

    def test_duplicates_multiply(self):
        # Two cached R tuples with value 7 both join one S arrival.
        r = [7, 7, 0]
        s = [1, 2, 7]
        sim = JoinSimulator(10, KeepNewest())
        result = sim.run(r, s)
        assert result.total_results == 2

    def test_none_tuples_ignored(self):
        r = [1, None, 1]
        s = [None, 1, None]
        sim = JoinSimulator(10, KeepNewest())
        result = sim.run(r, s)
        # t=1: s=1 joins cached r(1); t=2: new r(1) joins cached s(1).
        # "−" tuples themselves never join.
        assert result.total_results == 2

    def test_warmup_excludes_early_results(self):
        r = [1, 2, 3, 4]
        s = [9, 1, 2, 3]
        sim = JoinSimulator(10, KeepNewest(), warmup=2)
        result = sim.run(r, s)
        assert result.total_results == 3
        assert result.results_after_warmup == 2  # t=2 and t=3 only

    def test_lengths_truncate_to_min(self):
        sim = JoinSimulator(10, KeepNewest())
        result = sim.run([1, 2, 3, 4, 5], [1])
        assert result.steps == 1


class TestEvictionMechanics:
    def test_capacity_respected(self):
        rng = np.random.default_rng(0)
        r = list(rng.integers(0, 5, size=50))
        s = list(rng.integers(0, 5, size=50))
        sim = JoinSimulator(3, KeepNewest())
        result = sim.run(r, s)
        assert result.occupancy.max() <= 3

    def test_new_tuple_can_be_rejected(self):
        # KEEP-OLDEST never admits new tuples once full.
        r = [1, 2, 3]
        s = [4, 5, 6]
        sim = JoinSimulator(2, KeepOldest())
        result = sim.run(r, s)
        # Cache keeps r(1), s(4) forever; never joins.
        assert result.total_results == 0
        assert result.occupancy[-1] == 2

    def test_policy_decides_outcome(self):
        # value 1 reappears in S at t=3; keeping r(1) pays off.
        r = [1, 7, 8, 9]
        s = [0, 2, 3, 1]
        res_old = JoinSimulator(1, KeepOldest()).run(r, s)
        res_new = JoinSimulator(1, KeepNewest()).run(r, s)
        assert res_old.total_results == 1  # kept r(1), joined at t=3
        assert res_new.total_results == 0

    def test_occupancy_tracking_sides(self):
        r = [1, 2]
        s = [None, None]
        sim = JoinSimulator(5, KeepNewest())
        result = sim.run(r, s)
        assert list(result.r_occupancy) == [1, 2]
        assert list(result.occupancy) == [1, 2]
        assert result.r_fraction[-1] == pytest.approx(2 / 5)


class TestPolicyValidation:
    class TooFew(ReplacementPolicy):
        name = "TOO-FEW"

        def select_victims(self, candidates, n_evict, ctx):
            return []

    class NotACandidate(ReplacementPolicy):
        name = "ALIEN"

        def select_victims(self, candidates, n_evict, ctx):
            return [StreamTuple(10**9, "R", 1, 0)] * 1 if n_evict else []

    class Duplicates(ReplacementPolicy):
        name = "DUP"

        def select_victims(self, candidates, n_evict, ctx):
            if n_evict <= 0:
                return []
            return [candidates[0]] * n_evict if n_evict > 1 else [candidates[0]]

    def test_too_few_victims_rejected(self):
        sim = JoinSimulator(1, self.TooFew())
        with pytest.raises(ValueError, match="needed"):
            sim.run([1, 2], [3, 4])

    def test_alien_victims_rejected(self):
        sim = JoinSimulator(1, self.NotACandidate())
        with pytest.raises(ValueError, match="not a candidate"):
            sim.run([1, 2], [3, 4])

    def test_duplicate_victims_rejected(self):
        sim = JoinSimulator(1, self.Duplicates())
        with pytest.raises(ValueError, match="duplicate"):
            sim.run([1, 2, 3], [4, 5, 6])

    def test_extra_victims_allowed(self):
        class EvictEverything(ReplacementPolicy):
            name = "SCORCHED-EARTH"

            def select_victims(self, candidates, n_evict, ctx):
                return list(candidates)

        sim = JoinSimulator(3, EvictEverything())
        result = sim.run([1, 1, 1], [1, 2, 1])
        assert result.total_results == 0
        assert result.occupancy.max() == 0


class TestSlidingWindow:
    def test_expired_tuples_cannot_join(self):
        # r(1) at t=0 would join s=1 at t=3, but window 2 expires it at t=3.
        r = [1, 0, 0, 0]
        s = [9, 9, 9, 1]
        no_window = JoinSimulator(10, KeepNewest()).run(r, s)
        windowed = JoinSimulator(10, KeepNewest(), window=2).run(r, s)
        assert no_window.total_results == 1
        assert windowed.total_results == 0

    def test_window_boundary_inclusive(self):
        # arrival 0, window 3: joinable while t <= 3.
        r = [1, 0, 0, 0]
        s = [9, 9, 9, 1]
        windowed = JoinSimulator(10, KeepNewest(), window=3).run(r, s)
        assert windowed.total_results == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            JoinSimulator(0, KeepNewest())
        with pytest.raises(ValueError):
            JoinSimulator(1, KeepNewest(), warmup=-1)
        with pytest.raises(ValueError):
            JoinSimulator(1, KeepNewest(), window=-1)


class RecordingPolicy(ScoredPolicy):
    """Records hook invocations for verification."""

    name = "RECORDER"

    def __init__(self):
        self.admitted: list[int] = []
        self.evicted: list[int] = []
        self.referenced: list[int] = []

    def score(self, tup, ctx):
        return -float(tup.uid)  # keep oldest

    def on_admit(self, tup, t):
        self.admitted.append(tup.uid)

    def on_evict(self, tup, t):
        self.evicted.append(tup.uid)

    def on_reference(self, tup, t):
        self.referenced.append(tup.uid)


class TestHooks:
    def test_hooks_fire(self):
        policy = RecordingPolicy()
        sim = JoinSimulator(1, policy)
        sim.run([1, 2], [0, 1])
        # r(1) admitted at t=0 (uid 0); at t=1 s=1 joins it (reference).
        assert 0 in policy.admitted
        assert 0 in policy.referenced
        assert len(policy.evicted) >= 1
