"""FlowExpect fast path: decision-identical to the reference pipeline.

The fast path (:mod:`repro.flow.fastpath`) replaces three layers of the
reference decide — per-step networkx graph construction, the scaled
integer copy, and ``network_simplex`` — with a reusable arc template, a
memoized :class:`~repro.flow.prob_table.ProbTable`, and a direct
successive-shortest-paths solver.  Because both paths round costs with
the same expression and apply the same uid-rank tie-break (which makes
the optimal kept-set *unique*), they must return byte-identical
kept/victim splits on every input, not merely equally-good ones.  These
tests pin that equivalence three ways: property-based on random single
decisions, seed-for-seed at the simulator level across stream families,
and on deliberately tie-heavy constructions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuples import StreamTuple
from repro.flow import (
    FlowExpectFastPath,
    LookaheadTemplate,
    flowexpect_decide,
    flowexpect_decide_fast,
)
from repro.policies.flowexpect_policy import FlowExpectPolicy
from repro.sim.join_sim import JoinSimulator
from repro.streams import make_stream
from repro.streams.base import History
from repro.streams.noise import discretized_normal, from_mapping


def _uids(tuples):
    return [t.uid for t in tuples]


def _assert_same_decision(fast, ref):
    assert _uids(fast.kept) == _uids(ref.kept)
    assert _uids(fast.victims) == _uids(ref.victims)
    assert fast.expected_benefit == pytest.approx(
        ref.expected_benefit, rel=1e-9, abs=1e-9
    )


# ----------------------------------------------------------------------
# Property-based: random single decisions
# ----------------------------------------------------------------------
@st.composite
def _decision_cases(draw):
    """One random FlowExpect step: model pair, candidates, parameters."""
    markov = draw(st.booleans())
    n = draw(st.integers(min_value=1, max_value=6))
    lookahead = draw(st.integers(min_value=1, max_value=10))
    cache_size = draw(st.integers(min_value=1, max_value=6))
    t0 = draw(st.integers(min_value=0, max_value=15))

    if markov:
        r_model = make_stream("random-walk", step=discretized_normal(1.0))
        s_model = make_stream("random-walk", step=discretized_normal(1.5))
        values = st.integers(min_value=-3, max_value=3)
        histories = st.one_of(
            st.none(),
            st.builds(
                History,
                now=st.just(t0),
                last_value=st.integers(min_value=-3, max_value=3),
            ),
        )
        r_history = draw(histories)
        s_history = draw(histories)
    else:
        support = draw(st.integers(min_value=2, max_value=5))
        weights = draw(
            st.lists(
                st.integers(min_value=1, max_value=9),
                min_size=support,
                max_size=support,
            )
        )
        total = sum(weights)
        pmf = {v: w / total for v, w in enumerate(weights)}
        r_model = make_stream("stationary", dist=from_mapping(pmf))
        s_model = make_stream("stationary", dist=from_mapping(pmf))
        values = st.integers(min_value=0, max_value=support - 1)
        r_history = s_history = None

    sides = draw(
        st.lists(st.sampled_from("RS"), min_size=n, max_size=n)
    )
    vals = draw(st.lists(values, min_size=n, max_size=n))
    arrivals = draw(
        st.lists(
            st.integers(min_value=0, max_value=t0), min_size=n, max_size=n
        )
    )
    candidates = [
        StreamTuple(uid, side, value, arrival)
        for uid, (side, value, arrival) in enumerate(
            zip(sides, vals, arrivals)
        )
    ]
    return (
        candidates,
        t0,
        lookahead,
        cache_size,
        r_model,
        s_model,
        r_history,
        s_history,
    )


class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(case=_decision_cases())
    def test_fast_matches_reference(self, case):
        fast = flowexpect_decide_fast(*case)
        ref = flowexpect_decide(*case)
        _assert_same_decision(fast, ref)

    @settings(max_examples=20, deadline=None)
    @given(case=_decision_cases(), reps=st.integers(min_value=2, max_value=4))
    def test_reused_engine_is_stateless_across_calls(self, case, reps):
        """Repeating the same decision through one FlowExpectFastPath —
        warm ProbTable, warm template — must not drift."""
        (candidates, t0, lookahead, cache_size,
         r_model, s_model, r_history, s_history) = case
        engine = FlowExpectFastPath(r_model, s_model)
        ref = flowexpect_decide(*case)
        for _ in range(reps):
            fast = engine.decide(
                candidates, t0, lookahead, cache_size, r_history, s_history
            )
            _assert_same_decision(fast, ref)


# ----------------------------------------------------------------------
# Simulator level: seed-for-seed across families, lookaheads, caches
# ----------------------------------------------------------------------
class _SpyFlowExpect(FlowExpectPolicy):
    """Records every (time, candidate-uids, victim-uids) decision."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.decisions: list[tuple] = []

    def select_victims(self, candidates, n_evict, ctx):
        victims = super().select_victims(candidates, n_evict, ctx)
        self.decisions.append(
            (
                ctx.time,
                tuple(sorted(c.uid for c in candidates)),
                tuple(sorted(v.uid for v in victims)),
            )
        )
        return victims


def _family_models(family):
    if family == "stationary":
        pmf = from_mapping({1: 0.4, 2: 0.3, 3: 0.2, 4: 0.1})
        return make_stream("stationary", dist=pmf), make_stream(
            "stationary", dist=pmf
        )
    if family == "random-walk":
        step = discretized_normal(1.0)
        return (
            make_stream("random-walk", step=step),
            make_stream("random-walk", step=step),
        )
    raise ValueError(family)


class TestSimulatorEquivalence:
    @pytest.mark.parametrize("family", ["stationary", "random-walk"])
    @pytest.mark.parametrize("lookahead", [1, 4, 8])
    @pytest.mark.parametrize("cache_size", [2, 4])
    def test_seed_for_seed_identical_decisions(
        self, family, lookahead, cache_size
    ):
        r_model, s_model = _family_models(family)
        rng = np.random.default_rng(17 * lookahead + cache_size)
        r = r_model.sample_path(50, rng)
        s = s_model.sample_path(50, np.random.default_rng(rng.integers(1 << 30)))

        runs = {}
        for fast in (True, False):
            policy = _SpyFlowExpect(
                lookahead, r_model, s_model, fast=fast
            )
            result = JoinSimulator(cache_size, policy).run(r, s)
            runs[fast] = (result, policy.decisions)

        fast_result, fast_decisions = runs[True]
        ref_result, ref_decisions = runs[False]
        assert fast_decisions == ref_decisions
        assert fast_result.total_results == ref_result.total_results
        np.testing.assert_array_equal(
            fast_result.occupancy, ref_result.occupancy
        )

    def test_policy_flag_reaches_registry(self):
        from repro.policies import make_policy

        assert make_policy("flowexpect", lookahead=2)._fast is True
        assert (
            make_policy("flowexpect", lookahead=2, fast=False)._fast is False
        )


# ----------------------------------------------------------------------
# Ties: equal-cost kept-sets must resolve identically on both paths
# ----------------------------------------------------------------------
class TestTieBreaking:
    def _tied_candidates(self, uids):
        # Same side, same value, same arrival: every kept-set of the
        # right size has exactly the same float cost, so only the
        # tie-break perturbation decides who survives.
        return [StreamTuple(uid, "R", 1, 0) for uid in uids]

    @pytest.mark.parametrize("uids", [[0, 1, 2, 3], [9, 4, 11, 2, 7]])
    @pytest.mark.parametrize("cache_size", [1, 2, 3])
    def test_lowest_uids_survive_ties(self, uids, cache_size):
        pmf = from_mapping({1: 0.5, 2: 0.5})
        model = make_stream("stationary", dist=pmf)
        candidates = self._tied_candidates(uids)
        ref = flowexpect_decide(candidates, 0, 3, cache_size, model, model)
        fast = flowexpect_decide_fast(
            candidates, 0, 3, cache_size, model, model
        )
        want_kept = sorted(uids)[: min(cache_size, len(uids))]
        assert sorted(_uids(ref.kept)) == want_kept
        _assert_same_decision(fast, ref)

    def test_uniform_streams_full_run_identical(self):
        """A uniform stationary stream makes *every* step a tie."""
        pmf = from_mapping({v: 0.25 for v in range(4)})
        model = make_stream("stationary", dist=pmf)
        rng = np.random.default_rng(5)
        r = model.sample_path(40, rng)
        s = model.sample_path(40, np.random.default_rng(6))
        runs = {}
        for fast in (True, False):
            policy = _SpyFlowExpect(4, model, model, fast=fast)
            JoinSimulator(3, policy).run(r, s)
            runs[fast] = policy.decisions
        assert runs[True] == runs[False]


# ----------------------------------------------------------------------
# Template internals
# ----------------------------------------------------------------------
class TestTemplate:
    def test_counts_match_section_3_1(self):
        # l slices, n determined + 2(l-1) undetermined entities, plus
        # source and sink.
        n, look = 3, 5
        t = LookaheadTemplate(n, look)
        n_entities = n + 2 * (look - 1)
        assert t.n_nodes == 2 + sum(
            sum(1 for b in t.born if b <= s) for s in range(look)
        )
        assert len(t.born) == n_entities
        # Costed arcs: one horizontal arc per (entity alive before s, s)
        # plus one sink arc per entity.
        horizontals = sum(
            sum(1 for b in t.born if b < s) for s in range(1, look)
        )
        assert len(t.costed) == horizontals + n_entities

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            LookaheadTemplate(0, 3)
        with pytest.raises(ValueError):
            LookaheadTemplate(2, 0)

    def test_lookahead_one_is_pure_admission(self):
        # With l = 1 the graph is src → candidates → sink: FlowExpect
        # degenerates to keeping the cache_size best next-step matchers.
        pmf = from_mapping({1: 0.7, 2: 0.3})
        model = make_stream("stationary", dist=pmf)
        candidates = [
            StreamTuple(0, "R", 2, 0),
            StreamTuple(1, "R", 1, 0),
            StreamTuple(2, "R", 2, 0),
        ]
        fast = flowexpect_decide_fast(candidates, 0, 1, 1, model, model)
        ref = flowexpect_decide(candidates, 0, 1, 1, model, model)
        _assert_same_decision(fast, ref)
        assert _uids(fast.kept) == [1]  # value 1 matches with prob 0.7
