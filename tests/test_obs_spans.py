"""Span timing (:mod:`repro.obs.spans`) and the series-naming contract.

Two concerns share this file because they share the registry:

* :class:`SpanTracker` mechanics — durations land in both sinks
  (recorder series + latency histograms), spans nest, and an inactive
  tracker does nothing at all (the ≤2%-overhead contract's substrate);
* the **naming satellite** — every series name the codebase emits is
  lowercase dotted, registered in :data:`KNOWN_SERIES`, follows the
  two-way ``*_ms`` ⟺ milliseconds rule, and is documented in
  ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.obs import CounterRecorder, NullRecorder
from repro.obs.hist import HistogramSet
from repro.obs.spans import (
    KNOWN_SERIES,
    MS_SUFFIX,
    SERVE_SPAN_NAMES,
    SERVE_SPAN_PREFIX,
    SpanTracker,
    check_series_name,
    is_wall_clock_series,
)
from repro.policies import LruPolicy, make_policy
from repro.serve import run_replay
from repro.sim import ExperimentSpec
from repro.sim.join_sim import JoinSimulator

DOCS = Path(__file__).resolve().parent.parent / "docs" / "OBSERVABILITY.md"


class TestSpanTracker:
    """Durations reach both sinks; inactive trackers are free."""

    def test_record_hits_series_and_histogram(self):
        recorder = CounterRecorder()
        hists = HistogramSet()
        spans = SpanTracker(recorder, hists, prefix=SERVE_SPAN_PREFIX)
        spans.record("decide", 3, 1.25)
        name = f"{SERVE_SPAN_PREFIX}decide{MS_SUFFIX}"
        assert name in recorder.series_data
        hist = hists.get(name)
        assert hist.count == 1
        assert hist.vmax == pytest.approx(1.25)

    def test_record_without_histograms(self):
        recorder = CounterRecorder()
        spans = SpanTracker(recorder, prefix="serve.span.")
        spans.record("emit", 0, 0.5)
        assert "serve.span.emit_ms" in recorder.series_data

    def test_active_defaults_to_recorder_enabled(self):
        assert SpanTracker(CounterRecorder()).active is True
        assert SpanTracker(NullRecorder()).active is False
        assert SpanTracker(NullRecorder(), active=True).active is True

    def test_span_context_times_the_block(self):
        recorder = CounterRecorder()
        hists = HistogramSet()
        spans = SpanTracker(recorder, hists, prefix=SERVE_SPAN_PREFIX)
        with spans.span("decide", 0):
            time.sleep(0.002)
        hist = hists.get("serve.span.decide_ms")
        assert hist.count == 1
        assert hist.vmax >= 2.0  # slept 2ms, measured in ms

    def test_inactive_span_records_nothing(self):
        recorder = CounterRecorder()
        hists = HistogramSet()
        spans = SpanTracker(recorder, hists, active=False)
        with spans.span("decide"):
            assert spans.depth == 0  # no stack entry either
        assert not hists
        assert not recorder.series_data

    def test_spans_nest_independently(self):
        hists = HistogramSet()
        spans = SpanTracker(NullRecorder(), hists, active=True)
        with spans.span("outer"):
            assert spans.depth == 1
            with spans.span("inner"):
                assert spans.depth == 2
                time.sleep(0.001)
        assert spans.depth == 0
        outer = hists.get(f"outer{MS_SUFFIX}")
        inner = hists.get(f"inner{MS_SUFFIX}")
        assert outer.count == inner.count == 1
        # The outer span encloses the inner one.
        assert outer.vmax >= inner.vmax

    def test_histograms_fill_even_when_recorder_disabled(self):
        # The live-endpoint mode: NullRecorder, spans forced on.
        recorder = NullRecorder()
        hists = HistogramSet()
        spans = SpanTracker(recorder, hists, active=True)
        spans.record("decide", 0, 3.0)
        assert hists.get("decide_ms").count == 1


class TestNamingConvention:
    """The registry is self-consistent and matches reality and docs."""

    def test_registry_entries_are_clean(self):
        problems = [
            msg for name in KNOWN_SERIES for msg in check_series_name(name)
        ]
        assert problems == []

    def test_all_serve_spans_registered(self):
        for span in SERVE_SPAN_NAMES:
            name = f"{SERVE_SPAN_PREFIX}{span}{MS_SUFFIX}"
            assert KNOWN_SERIES.get(name) == "ms"

    def test_ms_suffix_predicate(self):
        assert is_wall_clock_series("flow.solve_ms")
        assert not is_wall_clock_series("cache.occupancy")

    def test_violations_are_reported(self, monkeypatch):
        assert check_series_name("not.registered") != []
        assert check_series_name("Serve.Span") != []
        assert check_series_name("serve..depth") != []
        # Violations of the two-way ms rule, via a scratch registry.
        monkeypatch.setitem(KNOWN_SERIES, "bad.latency", "ms")
        monkeypatch.setitem(KNOWN_SERIES, "bad.count_ms", "events")
        assert any("_ms" in m for m in check_series_name("bad.latency"))
        assert any("_ms" in m for m in check_series_name("bad.count_ms"))

    def test_simulator_series_names_are_registered(self):
        recorder = CounterRecorder()
        r = [i % 5 for i in range(40)]
        s = [(i + 2) % 5 for i in range(40)]
        JoinSimulator(4, LruPolicy(), recorder=recorder).run(r, s)
        assert recorder.series_data  # the run emitted something
        problems = [
            msg
            for name in recorder.series_data
            for msg in check_series_name(name)
        ]
        assert problems == []

    def test_serve_replay_series_names_are_registered(self):
        # A sharded replay under a counting recorder exercises the
        # serve-side emitters: queue depth, span series, uptime.
        recorder = CounterRecorder()
        r = [i % 7 for i in range(60)]
        s = [(i + 3) % 7 for i in range(60)]
        run_replay(
            ExperimentSpec(kind="join", cache_size=8),
            lambda: make_policy("lru"),
            r,
            s,
            n_shards=2,
            recorder=recorder,
        )
        emitted = set(recorder.series_data)
        assert any(name.startswith(SERVE_SPAN_PREFIX) for name in emitted)
        assert "serve.queue_depth" in emitted
        assert "serve.uptime_ms" in emitted
        problems = [
            msg for name in emitted for msg in check_series_name(name)
        ]
        assert problems == []

    def test_every_registered_series_is_documented(self):
        doc = DOCS.read_text(encoding="utf-8")
        missing = [name for name in KNOWN_SERIES if name not in doc]
        assert missing == [], (
            f"series missing from docs/OBSERVABILITY.md: {missing}"
        )
