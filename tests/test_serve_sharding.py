"""Property tests for the serving tier's shard partitioning.

Hypothesis pins the three contracts the sharded server leans on:

* **totality / determinism** — every join-attribute value maps to
  exactly one shard, stably (same value → same shard, every time);
* **reshard conservation** — repartitioning cached tuples from ``N`` to
  ``M`` shards preserves the multiset of tuples exactly;
* **counter union** — in the no-eviction regime (per-shard capacity at
  least the stream length) the union of per-shard counters equals the
  counters of an unsharded run: value-routed partitioning loses no
  arrivals, no matches, no hits.
"""

from __future__ import annotations

import asyncio
from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.tuples import StreamTuple
from repro.obs import CounterRecorder
from repro.policies import make_policy
from repro.serve import (
    ShardRouter,
    StreamServer,
    partition_tuples,
    reshard,
    stable_hash,
)
from repro.sim import ExperimentSpec

#: Join-attribute values of the shapes the repo actually uses: ints,
#: the caching reduction's (value, occurrence) pairs, and strings.
VALUES = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.tuples(st.integers(-100, 100), st.integers(0, 50)),
    st.text(max_size=8),
)

SHARD_COUNTS = st.integers(min_value=1, max_value=8)


@st.composite
def tuple_lists(draw):
    """Lists of distinct-uid StreamTuples with hypothesis-chosen values."""
    values = draw(st.lists(VALUES, max_size=40))
    return [
        StreamTuple(uid=i, side="R" if i % 2 else "S", value=v, arrival=i)
        for i, v in enumerate(values)
    ]


@given(value=VALUES, n_shards=SHARD_COUNTS)
@settings(max_examples=200, deadline=None)
def test_every_key_maps_to_exactly_one_stable_shard(value, n_shards):
    router = ShardRouter(n_shards)
    shard = router.shard_for(value)
    assert 0 <= shard < n_shards
    # Stability: a fresh router (fresh process stands in for it — the
    # hash is PYTHONHASHSEED-independent by construction) agrees.
    assert ShardRouter(n_shards).shard_for(value) == shard
    assert router.shard_for(value) == shard
    # The hash itself is a stable 64-bit quantity.
    assert 0 <= stable_hash(value) < 2**64


@given(tuples=tuple_lists(), n=SHARD_COUNTS, m=SHARD_COUNTS)
@settings(max_examples=100, deadline=None)
def test_reshard_preserves_tuple_multiset(tuples, n, m):
    old = partition_tuples(tuples, ShardRouter(n))
    new = reshard(old, ShardRouter(m))
    assert len(new) == m
    before = Counter((t.uid, t.side, t.value, t.arrival) for t in tuples)
    after = Counter(
        (t.uid, t.side, t.value, t.arrival)
        for shard in new
        for t in shard
    )
    assert before == after
    # Resharding equals partitioning the union from scratch, and every
    # tuple sits on the shard its value routes to.
    assert new == partition_tuples(
        [t for shard in old for t in shard], ShardRouter(m)
    )
    router = ShardRouter(m)
    for index, shard in enumerate(new):
        assert all(router.shard_for(t.value) == index for t in shard)


@given(tuples=tuple_lists())
@settings(max_examples=100, deadline=None)
def test_partition_is_total_and_disjoint(tuples):
    router = ShardRouter(4)
    shards = partition_tuples(tuples, router)
    uids = [t.uid for shard in shards for t in shard]
    assert sorted(uids) == sorted(t.uid for t in tuples)
    assert len(uids) == len(set(uids))


#: Small streams of small-domain values (plus "−" gaps) keep the
#: asyncio round-trips fast while still colliding values across shards.
SMALL_VALUES = st.one_of(st.none(), st.integers(min_value=0, max_value=9))

#: Counters whose union over shards must equal the unsharded run.
#: ``sim.steps`` and ``arrivals.null`` are deliberately excluded: a
#: split tick is observed by two shards (each counting a step, with the
#: absent side recorded as "−"), so they are per-shard observations,
#: not per-tick facts.
_UNION_KEYS = ("arrivals.R", "arrivals.S", "join.results")


def _sharded_counters(spec, r_values, s_values, n_shards):
    """Run a replay and return (merged counters, per-shard snapshots)."""
    recorder = CounterRecorder()

    async def go():
        server = StreamServer(
            spec, lambda: make_policy("lru"), n_shards=n_shards,
            recorder=recorder,
        )
        await server.start()
        for t in range(len(r_values)):
            await server.submit(t, r_values[t], s_values[t])
        await server.stop()
        return server

    server = asyncio.run(asyncio.wait_for(go(), timeout=60))
    snapshots = [s.snapshot for s in server.shards]
    return recorder.counters, snapshots, server


@given(
    r_values=st.lists(SMALL_VALUES, min_size=1, max_size=30),
    s_values=st.lists(SMALL_VALUES, min_size=1, max_size=30),
    n_shards=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_union_of_shard_counters_equals_unsharded_run(
    r_values, s_values, n_shards
):
    n = min(len(r_values), len(s_values))
    r_values, s_values = r_values[:n], s_values[:n]
    # Capacity >= stream length: no evictions anywhere, so sharded and
    # unsharded runs make identical keep decisions and the only possible
    # divergence would be partitioning losing arrivals or matches.
    spec = ExperimentSpec(kind="join", cache_size=2 * n + 1)

    flat = CounterRecorder()
    flat_summary_results = 0

    async def flat_run():
        nonlocal flat_summary_results
        server = StreamServer(spec, lambda: make_policy("lru"), recorder=flat)
        await server.start()
        for t in range(n):
            await server.submit(t, r_values[t], s_values[t])
        await server.stop()
        flat_summary_results = server.total_results

    asyncio.run(asyncio.wait_for(flat_run(), timeout=60))

    merged, snapshots, server = _sharded_counters(
        spec, r_values, s_values, n_shards
    )
    for key in _UNION_KEYS:
        assert merged.get(key, 0) == flat.counters.get(key, 0), key
    assert server.total_results == flat_summary_results
    # No evictions in this regime, sharded or not.
    assert not any(k.startswith("evict.") for k in merged)
    # The merged counters are exactly the sum of the per-shard
    # snapshots (plus server-level serve.* bookkeeping).
    for key in _UNION_KEYS:
        assert merged.get(key, 0) == sum(
            (snap or {}).get("counters", {}).get(key, 0) for snap in snapshots
        ), key


@given(
    references=st.lists(SMALL_VALUES, min_size=1, max_size=30),
    n_shards=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_cache_union_of_shard_counters(references, n_shards):
    n = len(references)
    spec = ExperimentSpec(kind="cache", cache_size=n + 1)

    flat = CounterRecorder()
    sharded = CounterRecorder()

    async def run(recorder, shards):
        server = StreamServer(
            spec, lambda: make_policy("lru"), n_shards=shards,
            recorder=recorder,
        )
        await server.start()
        for t, value in enumerate(references):
            await server.submit_reference(t, value)
        await server.stop()
        return server.hits, server.misses

    flat_hits, flat_misses = asyncio.run(
        asyncio.wait_for(run(flat, 1), timeout=60)
    )
    shard_hits, shard_misses = asyncio.run(
        asyncio.wait_for(run(sharded, n_shards), timeout=60)
    )
    # Value-routing sends every repeat reference to the shard holding
    # the value, so hits and misses are conserved exactly.
    assert (shard_hits, shard_misses) == (flat_hits, flat_misses)
    for key in ("arrivals.R", "cache.hits", "cache.misses"):
        assert sharded.counters.get(key, 0) == flat.counters.get(key, 0), key
