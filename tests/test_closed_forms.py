"""Closed-form FLOOR ECBs (Appendix O / Section 5.3) vs the generic Lemma-1
computation on the actual stream models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.closed_forms import (
    cache_ecb_linear_uniform,
    join_category,
    join_ecb_linear_uniform,
)
from repro.core.ecb import ecb_cache, ecb_join
from repro.streams import LinearTrendStream, bounded_uniform

W_R = 3
W_S = 5
T0 = 40
HORIZON = 30


@pytest.fixture
def r_stream():
    return LinearTrendStream(bounded_uniform(W_R), speed=1.0)


@pytest.fixture
def s_stream():
    return LinearTrendStream(bounded_uniform(W_S), speed=1.0)


class TestCategories:
    @pytest.mark.parametrize(
        "side,value,expected",
        [
            ("R", T0 - W_S, "R1"),
            ("R", T0 - W_S + 1, "R2"),
            ("R", T0 + W_R, "R2"),
            ("S", T0 - W_R, "S1"),
            ("S", T0 - W_R + 1, "S2"),
            ("S", T0 + W_R + 1, "S2"),
            ("S", T0 + W_R + 2, "S3"),
            ("S", T0 + W_S, "S3"),
        ],
    )
    def test_category_boundaries(self, side, value, expected):
        assert join_category(side, value, T0, W_R, W_S) == expected

    def test_unreachable_values_rejected(self):
        with pytest.raises(ValueError):
            join_category("R", T0 + W_R + 1, T0, W_R, W_S)
        with pytest.raises(ValueError):
            join_category("S", T0 + W_S + 1, T0, W_R, W_S)
        with pytest.raises(ValueError):
            join_category("Q", 0, T0, W_R, W_S)


class TestJoinClosedForms:
    @pytest.mark.parametrize("value", range(T0 - W_S, T0 + W_R + 1))
    def test_r_tuples_match_lemma1(self, value, s_stream):
        """An R tuple joins future S arrivals."""
        closed = join_ecb_linear_uniform("R", value, T0, W_R, W_S, HORIZON)
        generic = ecb_join(s_stream, T0, value, HORIZON)
        assert np.allclose(closed.cumulative, generic.cumulative)

    @pytest.mark.parametrize("value", range(T0 - W_R, T0 + W_S + 1))
    def test_s_tuples_match_lemma1(self, value, r_stream):
        """An S tuple joins future R arrivals."""
        closed = join_ecb_linear_uniform("S", value, T0, W_R, W_S, HORIZON)
        generic = ecb_join(r_stream, T0, value, HORIZON)
        assert np.allclose(closed.cumulative, generic.cumulative)

    def test_s3_total_benefit_is_one(self):
        """An S3 tuple eventually collects the whole R window: total 1."""
        value = T0 + W_R + 2
        closed = join_ecb_linear_uniform("S", value, T0, W_R, W_S, HORIZON)
        assert closed(HORIZON) == pytest.approx(1.0)

    def test_r2_rate(self):
        value = T0
        closed = join_ecb_linear_uniform("R", value, T0, W_R, W_S, HORIZON)
        assert closed(1) == pytest.approx(1 / (2 * W_S + 1))

    def test_within_category_dominance_by_value(self):
        """Section 5.3: within R2/S2, larger values dominate."""
        from repro.core.dominance import dominates

        b_small = join_ecb_linear_uniform("R", T0 - 1, T0, W_R, W_S, HORIZON)
        b_large = join_ecb_linear_uniform("R", T0 + 1, T0, W_R, W_S, HORIZON)
        assert dominates(b_large, b_small)
        assert not dominates(b_small, b_large)


class TestCacheClosedForm:
    @pytest.mark.parametrize("value", range(T0 - W_R - 2, T0 + W_R + 1))
    def test_matches_corollary1(self, value, r_stream):
        closed = cache_ecb_linear_uniform(value, T0, W_R, HORIZON)
        generic = ecb_cache(r_stream, T0, value, HORIZON)
        assert np.allclose(closed.cumulative, generic.cumulative)

    def test_missed_window_is_zero(self):
        closed = cache_ecb_linear_uniform(T0 - W_R - 1, T0, W_R, HORIZON)
        assert closed(HORIZON) == 0.0

    def test_trend_offset(self):
        r_lagged = LinearTrendStream(bounded_uniform(W_R), speed=1.0, lag=2)
        value = T0 - 1
        closed = cache_ecb_linear_uniform(
            value, T0, W_R, HORIZON, trend_offset=-2
        )
        generic = ecb_cache(r_lagged, T0, value, HORIZON)
        assert np.allclose(closed.cumulative, generic.cumulative)

    def test_total_order_by_value(self):
        """Section 5.3: discard-smallest-value is optimal (dominance)."""
        from repro.core.dominance import dominates

        ecbs = [
            cache_ecb_linear_uniform(v, T0, W_R, HORIZON)
            for v in range(T0 - W_R - 3, T0 + W_R + 1)
        ]
        for smaller, larger in zip(ecbs, ecbs[1:]):
            assert dominates(larger, smaller)
