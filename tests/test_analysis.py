"""Tests for model fitting and run statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fitting import fit_ar1
from repro.analysis.stats import summarize
from repro.streams import AR1Stream
from repro.streams.melbourne import melbourne_like_temperatures


class TestFitAR1:
    def test_recovers_known_parameters(self):
        model = AR1Stream(phi0=5.59, phi1=0.72, sigma=4.22, bucket=0.001)
        rng = np.random.default_rng(0)
        # Use the latent path (tiny buckets ≈ continuous).
        series = np.array(model.sample_path(20_000, rng)) * model.bucket
        fit = fit_ar1(series)
        assert fit.phi1 == pytest.approx(0.72, abs=0.02)
        assert fit.phi0 == pytest.approx(5.59, rel=0.1)
        assert fit.sigma == pytest.approx(4.22, rel=0.05)

    def test_stationary_moments(self):
        model = AR1Stream(phi0=2.0, phi1=0.5, sigma=1.0, bucket=0.001)
        rng = np.random.default_rng(1)
        series = np.array(model.sample_path(30_000, rng)) * model.bucket
        fit = fit_ar1(series)
        assert fit.stationary_mean == pytest.approx(4.0, abs=0.2)
        assert fit.stationary_std == pytest.approx(
            1.0 / np.sqrt(1 - 0.25), abs=0.1
        )

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            fit_ar1([1.0, 2.0])

    def test_rejects_constant_series(self):
        with pytest.raises(ValueError):
            fit_ar1([3.0] * 100)

    def test_white_noise_fits_near_zero_phi1(self):
        rng = np.random.default_rng(2)
        series = rng.normal(10.0, 2.0, size=20_000)
        fit = fit_ar1(series)
        assert abs(fit.phi1) < 0.05


class TestMelbourneGenerator:
    def test_length_and_range(self):
        temps = melbourne_like_temperatures(3650)
        assert temps.shape == (3650,)
        assert temps.min() > -10 and temps.max() < 45

    def test_seasonality_present(self):
        temps = melbourne_like_temperatures(3650)
        # Summer (Jan) warmer than winter (Jul) on average.
        januaries = np.concatenate(
            [temps[y * 365 : y * 365 + 31] for y in range(9)]
        )
        julys = np.concatenate(
            [temps[y * 365 + 180 : y * 365 + 211] for y in range(9)]
        )
        assert januaries.mean() > julys.mean() + 5

    def test_fitted_ar1_in_plausible_band(self):
        """The raw AR(1) fit should land near the paper's 0.72 / 4.22."""
        temps = melbourne_like_temperatures(3650)
        fit = fit_ar1(temps)
        assert 0.55 <= fit.phi1 <= 0.9
        assert 2.5 <= fit.sigma <= 6.0

    def test_deterministic_given_rng(self):
        a = melbourne_like_temperatures(100, np.random.default_rng(7))
        b = melbourne_like_temperatures(100, np.random.default_rng(7))
        assert np.allclose(a, b)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            melbourne_like_temperatures(0)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.n == 3

    def test_relative_std(self):
        s = summarize([10.0, 10.0])
        assert s.relative_std == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])
