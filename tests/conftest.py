"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams import (
    AR1Stream,
    LinearTrendStream,
    RandomWalkStream,
    StationaryStream,
    bounded_normal,
    bounded_uniform,
    discretized_normal,
    from_mapping,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def uniform_noise():
    return bounded_uniform(3)


@pytest.fixture
def stationary_stream():
    return StationaryStream(from_mapping({1: 0.5, 2: 0.3, 3: 0.2}))


@pytest.fixture
def trend_stream():
    return LinearTrendStream(bounded_uniform(3), speed=1.0)


@pytest.fixture
def lagged_trend_stream():
    return LinearTrendStream(bounded_normal(5, 2.0), speed=1.0, lag=1)


@pytest.fixture
def walk_stream():
    return RandomWalkStream(discretized_normal(1.0), drift=0, start=0)


@pytest.fixture
def drifting_walk_stream():
    return RandomWalkStream(discretized_normal(1.0), drift=2, start=0)


@pytest.fixture
def ar1_stream():
    return AR1Stream(phi0=5.59, phi1=0.72, sigma=4.22, bucket=0.5)
