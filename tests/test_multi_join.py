"""Tests for the multi-stream join generalization (Appendix C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lifetime import LExp
from repro.sim.multi_join import (
    MultiHeebPolicy,
    MultiJoinSimulator,
    MultiProbPolicy,
    MultiRandPolicy,
    MultiScheduledPolicy,
    brute_force_multi_benefit,
    solve_opt_offline_multi,
)
from repro.streams import (
    LinearTrendStream,
    StationaryStream,
    bounded_normal,
    from_mapping,
)


class KeepOldestMulti(MultiRandPolicy):
    name = "KEEP-OLDEST"

    def select_victims(self, candidates, n_evict, ctx):
        if n_evict <= 0:
            return []
        return sorted(candidates, key=lambda t: -t.uid)[:n_evict]


class TestSimulatorBasics:
    def test_three_stream_chain_counting(self):
        # Queries A-B and B-C; B tuples join both sides.
        streams = {
            "A": [1, None, None],
            "B": [None, 1, None],
            "C": [None, None, 1],
        }
        sim = MultiJoinSimulator(
            10, KeepOldestMulti(), queries=[("A", "B"), ("B", "C")]
        )
        result = sim.run(streams)
        # t=1: B(1) joins cached A(1).  t=2: C(1) joins cached B(1).
        assert result.total_results == 2
        assert result.per_query[frozenset(("A", "B"))] == 1
        assert result.per_query[frozenset(("B", "C"))] == 1
        # A and C never join each other (no query).
        assert frozenset(("A", "C")) not in result.per_query

    def test_one_arrival_matching_two_partners(self):
        # B arrival matches cached A and C simultaneously.
        streams = {"A": [5, None], "B": [None, 5], "C": [5, None]}
        sim = MultiJoinSimulator(
            10, KeepOldestMulti(), queries=[("A", "B"), ("B", "C")]
        )
        result = sim.run(streams)
        assert result.total_results == 2

    def test_stream_without_query_not_cached(self):
        streams = {"A": [1, 1], "B": [1, 1], "D": [1, 1]}
        sim = MultiJoinSimulator(10, KeepOldestMulti(), queries=[("A", "B")])
        result = sim.run(streams)
        assert result.occupancy_by_stream["D"].max() == 0

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            MultiJoinSimulator(0, KeepOldestMulti(), queries=[("A", "B")])
        with pytest.raises(ValueError):
            MultiJoinSimulator(1, KeepOldestMulti(), queries=[])
        with pytest.raises(ValueError):
            MultiJoinSimulator(1, KeepOldestMulti(), queries=[("A", "A")])
        with pytest.raises(ValueError):
            MultiJoinSimulator(
                1, KeepOldestMulti(), queries=[("A", "B"), ("B", "A")]
            )

    def test_unknown_stream_in_query(self):
        sim = MultiJoinSimulator(1, KeepOldestMulti(), queries=[("A", "Z")])
        with pytest.raises(ValueError, match="unknown"):
            sim.run({"A": [1]})

    def test_capacity_respected(self):
        rng = np.random.default_rng(0)
        streams = {
            name: list(rng.integers(0, 4, size=50)) for name in "ABC"
        }
        sim = MultiJoinSimulator(
            3, MultiRandPolicy(seed=1), queries=[("A", "B"), ("B", "C")]
        )
        result = sim.run(streams)
        total_occ = sum(result.occupancy_by_stream[n] for n in "ABC")
        assert total_occ.max() <= 3


class TestOptOfflineMulti:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        streams = {
            name: list(rng.integers(0, 3, size=7)) for name in "ABC"
        }
        queries = [("A", "B"), ("B", "C")]
        sol = solve_opt_offline_multi(streams, queries, 2)
        brute = brute_force_multi_benefit(streams, queries, 2)
        assert sol.total_benefit == brute

    def test_triangle_queries(self):
        rng = np.random.default_rng(9)
        streams = {name: list(rng.integers(0, 3, size=6)) for name in "ABC"}
        queries = [("A", "B"), ("B", "C"), ("A", "C")]
        sol = solve_opt_offline_multi(streams, queries, 2)
        brute = brute_force_multi_benefit(streams, queries, 2)
        assert sol.total_benefit == brute

    def test_replay_achieves_benefit(self):
        rng = np.random.default_rng(3)
        streams = {
            name: list(rng.integers(0, 5, size=60)) for name in "ABC"
        }
        queries = [("A", "B"), ("B", "C")]
        sol = solve_opt_offline_multi(streams, queries, 3)
        policy = MultiScheduledPolicy(sol)
        result = MultiJoinSimulator(3, policy, queries=queries).run(streams)
        assert result.total_results == sol.total_benefit
        assert policy.mismatches == 0

    def test_two_stream_case_matches_binary_solver(self):
        from repro.flow.opt_offline import solve_opt_offline

        rng = np.random.default_rng(5)
        r = list(rng.integers(0, 4, size=40))
        s = list(rng.integers(0, 4, size=40))
        multi = solve_opt_offline_multi(
            {"R": r, "S": s}, [("R", "S")], 2
        )
        binary = solve_opt_offline(r, s, 2)
        assert multi.total_benefit == binary.total_benefit


class TestMultiHeeb:
    def test_beats_baselines_on_trend_streams(self):
        a = LinearTrendStream(bounded_normal(10, 1.0), speed=1.0, lag=1)
        b = LinearTrendStream(bounded_normal(12, 1.5), speed=1.0)
        c = LinearTrendStream(bounded_normal(15, 2.0), speed=1.0, lag=2)
        models = {"A": a, "B": b, "C": c}
        queries = [("A", "B"), ("B", "C")]
        totals = {"HEEB": 0, "PROB": 0, "RAND": 0}
        for run in range(2):
            streams = {
                name: model.sample_path(600, np.random.default_rng(run * 10 + i))
                for i, (name, model) in enumerate(models.items())
            }
            policies = {
                "HEEB": MultiHeebPolicy(LExp(3.0), horizon=60),
                "PROB": MultiProbPolicy(),
                "RAND": MultiRandPolicy(seed=run),
            }
            for name, policy in policies.items():
                sim = MultiJoinSimulator(
                    10, policy, queries=queries, models=models
                )
                totals[name] += sim.run(streams).total_results
        assert totals["HEEB"] > totals["PROB"]
        assert totals["HEEB"] > totals["RAND"]

    def test_requires_models(self):
        policy = MultiHeebPolicy(LExp(5.0), horizon=10)
        sim = MultiJoinSimulator(2, policy, queries=[("A", "B")])
        with pytest.raises(ValueError, match="models"):
            sim.run({"A": [1, 1], "B": [1, 1]})

    def test_hub_stream_scores_higher_with_two_partners(self):
        """A value matched by two partner streams accrues the summed
        benefit (the appendix's rule)."""
        model = StationaryStream(from_mapping({1: 0.5, 2: 0.5}))
        models = {"A": model, "B": model, "C": model}
        from repro.core.tuples import StreamTuple
        from repro.sim.multi_join import MultiPolicyContext

        policy = MultiHeebPolicy(LExp(5.0), horizon=40)
        ctx = MultiPolicyContext(
            time=0,
            cache_size=2,
            partner_names={"A": ("B",), "B": ("A", "C"), "C": ("B",)},
            histories={"A": [1], "B": [1], "C": [1]},
            models=models,
        )
        hub = StreamTuple(0, "B", 1, 0)
        leaf = StreamTuple(1, "A", 1, 0)
        h_hub = policy._h_value(hub, ctx)
        h_leaf = policy._h_value(leaf, ctx)
        assert h_hub == pytest.approx(2 * h_leaf, rel=1e-9)


class TestDeprecatedAliases:
    """Every pre-unification ``Multi*`` alias warns on construction.

    The aliases stay importable (and behave identically to their
    unified replacements), but new code should not reach for them —
    the warning is the migration signpost.  The repo-wide pytest
    config ignores ``DeprecationWarning``, so existing alias-using
    tests keep passing unchanged."""

    def test_multi_policy_context_warns(self):
        from repro.sim.multi_join import MultiPolicyContext

        with pytest.warns(DeprecationWarning, match="MultiPolicyContext"):
            MultiPolicyContext(
                time=0,
                cache_size=2,
                partner_names={"A": ("B",), "B": ("A",)},
                histories={"A": [], "B": []},
            )

    def test_multi_heeb_policy_warns(self):
        with pytest.warns(DeprecationWarning, match="MultiHeebPolicy"):
            MultiHeebPolicy(LExp(5.0), horizon=10)

    def test_multi_prob_policy_warns(self):
        with pytest.warns(DeprecationWarning, match="MultiProbPolicy"):
            MultiProbPolicy()

    def test_multi_rand_policy_warns(self):
        with pytest.warns(DeprecationWarning, match="MultiRandPolicy"):
            MultiRandPolicy(seed=0)

    def test_multi_scheduled_policy_warns(self):
        from repro.flow.opt_offline import OfflineSolution

        solution = OfflineSolution(
            eviction_time={}, total_benefit=0, cache_size=1, length=0
        )
        with pytest.warns(DeprecationWarning, match="MultiScheduledPolicy"):
            MultiScheduledPolicy(solution)

    def test_multi_join_policy_warns(self):
        from repro.sim.multi_join import MultiJoinPolicy

        class _Alias(MultiJoinPolicy):
            def select_victims(self, candidates, n_evict, ctx):
                return list(candidates[:n_evict])

        with pytest.warns(DeprecationWarning, match="MultiJoinPolicy"):
            _Alias()
