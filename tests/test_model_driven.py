"""Tests for the self-configuring HEEB policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.policies import (
    HeebPolicy,
    ModelDrivenHeebPolicy,
    ProbPolicy,
    RandPolicy,
    TrendJoinHeeb,
    WalkJoinHeeb,
)
from repro.core.lifetime import LExp
from repro.sim.join_sim import JoinSimulator
from repro.streams import (
    LinearTrendStream,
    RandomWalkStream,
    StationaryStream,
    bounded_normal,
    discretized_normal,
    from_mapping,
)


class TestConstruction:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ModelDrivenHeebPolicy(min_history=5)
        with pytest.raises(ValueError):
            ModelDrivenHeebPolicy(refit_every=0)


class TestIdentification:
    def test_identifies_trend_streams(self):
        r_model = LinearTrendStream(bounded_normal(10, 1.0), speed=1.0, lag=1)
        s_model = LinearTrendStream(bounded_normal(15, 2.0), speed=1.0)
        rng = np.random.default_rng(0)
        r = r_model.sample_path(900, rng)
        s = s_model.sample_path(900, np.random.default_rng(1))
        policy = ModelDrivenHeebPolicy(min_history=150, refit_every=300)
        JoinSimulator(10, policy).run(r, s)  # no models supplied!
        assert policy.refits >= 1
        assert policy.kinds == ("LinearTrendStream", "LinearTrendStream")

    def test_identifies_random_walks(self):
        step = discretized_normal(1.0)
        a = RandomWalkStream(step)
        b = RandomWalkStream(step)
        rng = np.random.default_rng(2)
        r = a.sample_path(900, rng)
        s = b.sample_path(900, np.random.default_rng(3))
        policy = ModelDrivenHeebPolicy(min_history=200, refit_every=300)
        JoinSimulator(8, policy).run(r, s)
        assert policy.kinds == ("RandomWalkStream", "RandomWalkStream")

    def test_cold_start_uses_prob(self):
        model = StationaryStream(from_mapping({1: 0.6, 2: 0.4}))
        rng = np.random.default_rng(4)
        r = model.sample_path(60, rng)  # below min_history: never refits
        s = model.sample_path(60, np.random.default_rng(5))
        policy = ModelDrivenHeebPolicy(min_history=500)
        result = JoinSimulator(3, policy).run(r, s)
        assert policy.refits == 0
        assert result.total_results >= 0


class TestEndToEndQuality:
    def test_auto_heeb_beats_prob_on_trends(self):
        """Without being told anything about the inputs, the policy should
        approach hand-configured HEEB and clearly beat PROB."""
        r_model = LinearTrendStream(bounded_normal(10, 1.0), speed=1.0, lag=1)
        s_model = LinearTrendStream(bounded_normal(15, 2.0), speed=1.0)
        auto_total = manual_total = prob_total = 0
        for run in range(3):
            rng = np.random.default_rng(run)
            r = r_model.sample_path(1500, rng)
            s = s_model.sample_path(1500, np.random.default_rng(100 + run))
            auto = ModelDrivenHeebPolicy(min_history=150, refit_every=400)
            manual = HeebPolicy(TrendJoinHeeb(LExp(3.0)))
            auto_total += JoinSimulator(10, auto).run(r, s).total_results
            manual_total += (
                JoinSimulator(10, manual, r_model=r_model, s_model=s_model)
                .run(r, s)
                .total_results
            )
            prob_total += JoinSimulator(10, ProbPolicy()).run(r, s).total_results
        assert auto_total > 1.3 * prob_total
        assert auto_total >= 0.8 * manual_total

    def test_auto_heeb_beats_rand_on_walks(self):
        step = discretized_normal(1.0)
        a = RandomWalkStream(step)
        b = RandomWalkStream(step)
        auto_total = rand_total = 0
        for run in range(3):
            rng = np.random.default_rng(run)
            r = a.sample_path(1200, rng)
            s = b.sample_path(1200, np.random.default_rng(50 + run))
            auto = ModelDrivenHeebPolicy(min_history=200, refit_every=400)
            auto_total += JoinSimulator(8, auto).run(r, s).total_results
            rand_total += (
                JoinSimulator(8, RandPolicy(seed=run)).run(r, s).total_results
            )
        assert auto_total > 1.5 * rand_total

    def test_reset_reproducible(self):
        model = StationaryStream(from_mapping({1: 0.5, 2: 0.5}))
        rng = np.random.default_rng(6)
        r = model.sample_path(400, rng)
        s = model.sample_path(400, np.random.default_rng(7))
        policy = ModelDrivenHeebPolicy(min_history=120, refit_every=100)
        first = JoinSimulator(4, policy).run(r, s).total_results
        second = JoinSimulator(4, policy).run(r, s).total_results
        assert first == second
