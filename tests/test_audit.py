"""Trace diffing: step alignment, first divergence, fast-vs-reference.

Pins the audit contracts:

* two traces of the *same* run are step-aligned identical (exit 0);
* a perturbed eviction is localized to its step and kind, with a
  victim-set detail naming the disagreeing tuples;
* the acceptance check of the PR: FlowExpect fast-path and
  reference-path traces of a pinned seed diff to **zero divergences**;
* series events and unknown kinds are excluded from comparison
  (forward compatibility + wall-clock fields);
* truncated inputs are read tolerantly by the file-level API and CLI.
"""

from __future__ import annotations

import json

import numpy as np

from repro.obs import TraceRecorder, diff_trace_files, diff_traces, format_diff
from repro.obs.audit import main as diff_main
from repro.policies import LruPolicy
from repro.policies.flowexpect_policy import FlowExpectPolicy
from repro.sim.join_sim import JoinSimulator
from repro.streams import RandomWalkStream
from repro.streams.noise import bounded_uniform


def _lru_trace(path):
    model = RandomWalkStream(step=bounded_uniform(2))
    r = model.sample_path(50, np.random.default_rng(5))
    s = model.sample_path(50, np.random.default_rng(6))
    with TraceRecorder(path) as rec:
        JoinSimulator(3, LruPolicy(), recorder=rec).run(r, s)


def _flowexpect_trace(path, fast):
    model = RandomWalkStream(step=bounded_uniform(3))
    r = model.sample_path(60, np.random.default_rng(42))
    s = model.sample_path(60, np.random.default_rng(43))
    policy = FlowExpectPolicy(4, model, model, fast=fast)
    with TraceRecorder(path) as rec:
        JoinSimulator(4, policy, recorder=rec).run(r, s)


class TestDiffTraces:
    """In-memory event-stream comparison."""

    def test_identical_streams(self):
        events = [
            {"kind": "arrival", "t": 0, "side": "R", "value": 1},
            {"kind": "step", "t": 0, "results": 0},
            {"kind": "occupancy", "t": 0, "total": 1},
        ]
        diff = diff_traces(events, [dict(e) for e in events])
        assert diff.identical
        assert diff.first is None
        assert diff.steps_compared == 1
        assert "zero divergences" in format_diff(diff)

    def test_victim_order_is_canonicalized(self):
        a = [
            {
                "kind": "evict",
                "t": 3,
                "policy": "LRU",
                "victims": [
                    {"uid": 1, "side": "R", "value": 2},
                    {"uid": 4, "side": "S", "value": 0},
                ],
            }
        ]
        b = [dict(a[0], victims=list(reversed(a[0]["victims"])))]
        assert diff_traces(a, b).identical

    def test_perturbed_victim_is_localized(self):
        base = [
            {"kind": "step", "t": 0, "results": 1},
            {
                "kind": "evict",
                "t": 1,
                "policy": "LRU",
                "victims": [{"uid": 7, "side": "R", "value": 3}],
            },
            {"kind": "step", "t": 2, "results": 0},
        ]
        other = json.loads(json.dumps(base))
        other[1]["victims"][0]["uid"] = 9
        diff = diff_traces(base, other)
        assert not diff.identical
        first = diff.first
        assert (first.t, first.kind) == (1, "evict")
        assert "victims differ" in first.detail
        assert diff.per_step == {1: 1}
        assert "FIRST DIVERGENCE at t=1 [evict]" in format_diff(diff)

    def test_float_tolerance(self):
        a = [{"kind": "scores", "t": 0, "candidates": [{"uid": 1, "score": 0.5}]}]
        b = [
            {
                "kind": "scores",
                "t": 0,
                "candidates": [{"uid": 1, "score": 0.5 + 1e-12}],
            }
        ]
        assert diff_traces(a, b).identical
        assert not diff_traces(a, b, tol=1e-15).identical

    def test_missing_event_is_a_count_mismatch(self):
        a = [{"kind": "step", "t": 0, "results": 1}]
        diff = diff_traces(a, [])
        assert not diff.identical
        assert "1 event(s) in A vs 0 in B" in diff.first.detail

    def test_unknown_kinds_and_series_are_ignored(self):
        a = [
            {"kind": "step", "t": 0, "results": 1},
            {"kind": "series", "t": 0, "name": "flow.solve_ms", "value": 1.0},
            {"kind": "from_the_future", "t": 0, "zap": True},
        ]
        b = [
            {"kind": "step", "t": 0, "results": 1},
            {"kind": "series", "t": 0, "name": "flow.solve_ms", "value": 99.0},
        ]
        diff = diff_traces(a, b)
        assert diff.identical
        assert diff.events_a == diff.events_b == 1

    def test_divergence_series_covers_gap_steps(self):
        a = [
            {"kind": "step", "t": 0, "results": 1},
            {"kind": "step", "t": 1, "results": 1},
            {"kind": "step", "t": 2, "results": 1},
        ]
        b = json.loads(json.dumps(a))
        b[0]["results"] = 9
        b[2]["results"] = 9
        series = diff_traces(a, b).divergence_series()
        assert series == [(0, 1), (1, 0), (2, 1)]


class TestDiffFiles:
    """File-level API and CLI."""

    def test_same_run_twice_is_identical(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _lru_trace(a)
        _lru_trace(b)
        diff = diff_trace_files(a, b)
        assert diff.identical
        assert diff.steps_compared > 0
        assert diff_main([str(a), str(b)]) == 0

    def test_flowexpect_fast_matches_reference(self, tmp_path):
        """The PR's acceptance criterion: zero fast-vs-reference drift."""
        fast, ref = tmp_path / "fast.jsonl", tmp_path / "ref.jsonl"
        _flowexpect_trace(fast, fast=True)
        _flowexpect_trace(ref, fast=False)
        diff = diff_trace_files(fast, ref)
        assert diff.identical, format_diff(diff)
        assert diff_main([str(fast), str(ref)]) == 0

    def test_different_seeds_diverge_with_exit_1(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _lru_trace(a)
        model = RandomWalkStream(step=bounded_uniform(2))
        r = model.sample_path(50, np.random.default_rng(50))
        s = model.sample_path(50, np.random.default_rng(60))
        with TraceRecorder(b) as rec:
            JoinSimulator(3, LruPolicy(), recorder=rec).run(r, s)
        assert diff_main([str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "FIRST DIVERGENCE" in out

    def test_truncated_trailing_line_is_skipped(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _lru_trace(a)
        _lru_trace(b)
        with b.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "step", "t": 999, "resul')  # killed mid-write
        diff = diff_trace_files(a, b)
        assert diff.identical  # the torn line never reaches comparison
        assert diff_main([str(a), str(b)]) == 0
        assert "line skipped" in capsys.readouterr().err
