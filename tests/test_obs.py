"""Observability layer: exact counters, trace round-trips, zero overhead.

Four contracts from ``docs/OBSERVABILITY.md`` are pinned here:

* counters are *exact* — a scripted LRU run whose arrivals/evictions we
  can count by hand produces exactly those counters;
* trace events round-trip: write JSONL, ``read_trace`` it back, and the
  ``repro.obs.report`` summary agrees with the recorder's own counters;
* a :class:`NullRecorder` run is seed-for-seed identical to an
  uninstrumented run (the zero-overhead guarantee is semantic, not just
  temporal);
* the parallel engine's fork/merge of counter snapshots reproduces the
  scalar engine's counters exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import (
    NULL_RECORDER,
    CounterRecorder,
    NullRecorder,
    TraceRecorder,
    format_metrics,
    format_trace_summary,
    read_trace,
    summarize_trace,
    summarize_trace_file,
)
from repro.core.lifetime import LExp
from repro.policies import LruPolicy, make_policy
from repro.policies.heeb_policy import HeebPolicy, WalkJoinHeeb
from repro.sim.cache_sim import CacheSimulator
from repro.sim.engine import ExperimentSpec, ParallelEngine, ScalarEngine
from repro.sim.join_sim import JoinSimulator
from repro.sim.runner import (
    generate_paths,
    run_experiment,
    run_join_experiment,
)
from repro.streams import RandomWalkStream, make_stream
from repro.streams.noise import bounded_uniform, discretized_normal

CACHE = 3


def _walk_models():
    step = discretized_normal(1.0)
    return (
        make_stream("random-walk", step=step),
        make_stream("random-walk", step=step),
    )


class TestExactCounters:
    """Counters on a run small enough to count by hand."""

    # 4 steps, no None values.  S re-emits R's earlier values while
    # they are still cached: S=1 at t=1 joins R=1 (arrived t=0) and S=2
    # at t=3 joins R=2 (arrived t=1, survives the t=2 LRU eviction),
    # so exactly 2 join results.
    R = [1, 2, 3, 4]
    S = [9, 1, 9, 2]
    K = 4

    def _run(self, recorder):
        sim = JoinSimulator(self.K, LruPolicy(), recorder=recorder)
        return sim.run(self.R, self.S)

    def test_lru_join_counters(self):
        rec = CounterRecorder()
        result = self._run(rec)
        counters = rec.snapshot()["counters"]
        assert counters["sim.steps"] == 4
        assert counters["arrivals.R"] == 4
        assert counters["arrivals.S"] == 4
        assert "arrivals.null" not in counters
        assert result.total_results == 2
        assert counters["join.results"] == 2
        # Two arrivals per step against 4 slots: 8 tuples enter, 4 fit,
        # so exactly 4 LRU evictions.
        assert counters["evict.LRU"] == 2 * 4 - self.K == 4
        assert "evict.window_expired" not in counters

    def test_metrics_attached_to_result(self):
        rec = CounterRecorder()
        result = self._run(rec)
        assert result.metrics is not None
        assert result.metrics["counters"] == rec.snapshot()["counters"]
        assert "evict.LRU" in format_metrics(result.metrics)

    def test_null_recorder_attaches_nothing(self):
        assert self._run(NULL_RECORDER).metrics is None

    def test_cache_run_counters(self):
        # 2-slot LRU over [1,2,1,3,4,1]: only the second reference to 1
        # (t=2) hits; 3 and 4 then evict 2 and 1, so the final 1 misses.
        refs = [1, 2, 1, 3, 4, 1]
        rec = CounterRecorder()
        result = CacheSimulator(2, LruPolicy(), recorder=rec).run(refs)
        counters = rec.snapshot()["counters"]
        assert counters["cache.hits"] == result.hits == 1
        assert counters["cache.misses"] == result.misses == 5
        assert counters["sim.steps"] == 6


class TestTraceRoundTrip:
    """Events written as JSONL read back and summarize consistently."""

    def _traced_run(self, path):
        r_model, s_model = _walk_models()
        rng = np.random.default_rng(7)
        r = r_model.sample_path(60, rng)
        s = s_model.sample_path(60, rng)
        with TraceRecorder(path) as rec:
            JoinSimulator(
                CACHE,
                LruPolicy(),
                r_model=r_model,
                s_model=s_model,
                recorder=rec,
            ).run(r, s)
        return rec

    def test_round_trip_matches_counters(self, tmp_path):
        path = tmp_path / "run.jsonl"
        rec = self._traced_run(path)
        events = read_trace(path)
        counters = rec.snapshot()["counters"]

        summary = summarize_trace(events)
        assert summary.total_events == len(events)
        # The summary, computed from the file alone, agrees with the
        # live recorder's counters.
        assert summary.join_results == counters["join.results"]
        assert summary.evictions_by_policy["LRU"] == counters["evict.LRU"]
        assert summary.arrivals["R"] == counters.get("arrivals.R", 0)
        assert summary.arrivals["S"] == counters.get("arrivals.S", 0)
        assert summary.null_arrivals == counters.get("arrivals.null", 0)
        # Per-kind event counts match the recorder's events.* counters.
        for kind, n in summary.event_counts.items():
            assert counters[f"events.{kind}"] == n

        assert summarize_trace_file(path).total_events == len(events)
        rendered = format_trace_summary(summary)
        assert "evictions[LRU]" in rendered

    def test_header_is_validated(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "evict", "t": 0}\n')
        with pytest.raises(ValueError, match="missing header"):
            read_trace(bad)

    def test_bounded_trace_counts_drops(self):
        rec = TraceRecorder(max_events=3)
        for t in range(10):
            rec.event("step", t, results=0)
        assert len(rec.events) == 3
        assert rec.snapshot()["counters"]["trace.dropped"] == 7
        assert rec.snapshot()["counters"]["events.step"] == 10


class TestNullRecorderIdentity:
    """NullRecorder must not perturb results in any way."""

    @pytest.mark.parametrize("policy_name", ["rand", "lru", "heeb"])
    def test_seed_for_seed_identity(self, policy_name):
        r_model, s_model = _walk_models()
        paths = generate_paths(r_model, s_model, 80, n_runs=3, seed=5)

        def factory():
            if policy_name == "heeb":
                return HeebPolicy(WalkJoinHeeb(LExp(4.0), horizon=40))
            if policy_name == "rand":
                return make_policy("rand", seed=3)
            return make_policy(policy_name)

        kwargs = dict(
            cache_size=CACHE, r_model=r_model, s_model=s_model
        )
        plain = run_join_experiment(factory, paths, **kwargs)
        nulled = run_join_experiment(
            factory, paths, recorder=NullRecorder(), **kwargs
        )
        for a, b in zip(plain.per_run, nulled.per_run):
            assert a.total_results == b.total_results
            assert a.results_after_warmup == b.results_after_warmup
            np.testing.assert_array_equal(a.occupancy, b.occupancy)
            np.testing.assert_array_equal(a.r_occupancy, b.r_occupancy)
        assert nulled.metrics is None


class TestEngineCounterParity:
    """Counters agree across execution tiers."""

    def _spec_and_paths(self):
        r_model, s_model = _walk_models()
        spec = ExperimentSpec(
            kind="join",
            cache_size=CACHE,
            r_model=r_model,
            s_model=s_model,
        )
        paths = generate_paths(r_model, s_model, 70, n_runs=4, seed=11)
        return spec, paths

    def _counters(self, engine):
        spec, paths = self._spec_and_paths()
        rec = CounterRecorder()
        engine.run(spec, lambda: LruPolicy(), paths, recorder=rec)
        return rec.snapshot()["counters"]

    def test_parallel_merge_equals_scalar(self):
        scalar = self._counters(ScalarEngine())
        # Explicit worker count: on a single-CPU box the negotiated
        # default would refuse to run in parallel at all.
        parallel = self._counters(ParallelEngine(max_workers=2))
        assert parallel == scalar
        assert scalar["evict.LRU"] > 0

    def test_batch_equals_scalar(self):
        spec, paths = self._spec_and_paths()
        rec_scalar = CounterRecorder()
        rec_batch = CounterRecorder()
        scalar = run_experiment(
            spec, lambda: LruPolicy(), paths, recorder=rec_scalar
        )
        batch = run_experiment(
            spec,
            lambda: LruPolicy(),
            paths,
            engine="batch",
            recorder=rec_batch,
        )
        assert batch.engine_used == "batch"
        s = rec_scalar.snapshot()["counters"]
        b = rec_batch.snapshot()["counters"]
        # Engine-dispatch bookkeeping differs by design; the simulation
        # counters must not.
        sim_keys = {
            k for k in s if not k.startswith(("engine.", "events."))
        }
        assert {k: s[k] for k in sim_keys} == {
            k: b[k] for k in sim_keys if k in b
        }
        assert b["engine.dispatch.batch"] == 1


class TestRecorderPrimitives:
    """Snapshot/merge/fork mechanics used by the parallel engine."""

    def test_merge_is_additive(self):
        a, b = CounterRecorder(), CounterRecorder()
        a.count("x", 2)
        b.count("x", 3)
        b.count("y")
        with b.timer("t"):
            pass
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"x": 5, "y": 1}
        assert snap["timers"]["t"]["calls"] == 1

    def test_trace_fork_is_counters_only(self):
        rec = TraceRecorder()
        child = rec.fork()
        assert isinstance(child, CounterRecorder)
        assert not child.trace

    def test_null_fork_is_shared_singleton(self):
        assert NULL_RECORDER.fork() is NULL_RECORDER
        assert NULL_RECORDER.snapshot() == {}


class TestFlowExpectCounters:
    """The FlowExpect fast path reports solver and memo work."""

    def test_fast_path_counters(self):
        r_model = RandomWalkStream(bounded_uniform(3))
        s_model = RandomWalkStream(bounded_uniform(3))
        rng = np.random.default_rng(2)
        r = r_model.sample_path(40, rng)
        s = s_model.sample_path(40, rng)
        rec = CounterRecorder()
        policy = make_policy(
            "flowexpect",
            lookahead=3,
            r_model=r_model,
            s_model=s_model,
            fast=True,
        )
        JoinSimulator(
            CACHE, policy, r_model=r_model, s_model=s_model, recorder=rec
        ).run(r, s)
        snap = rec.snapshot()
        counters = snap["counters"]
        assert counters["flow.solves"] > 0
        assert counters["flow.solver_iterations"] >= counters["flow.solves"]
        lookups = (
            counters["prob_table.hits"] + counters["prob_table.misses"]
        )
        assert lookups > 0
        assert snap["timers"]["flow.solve"]["calls"] == counters["flow.solves"]
