"""Exact batch adapters for the formerly scalar-only policy families.

PR-9 extends the vectorized tier to the last four policy families that
used to negotiate down to the scalar loop: LRU-k, the windowed /
band-join HEEB strategies, trie caching on the binary problems, and
FlowExpect.  Each adapter is specified to be *seed-for-seed identical*
to its scalar counterpart — same victims, same totals, same occupancy
traces, same policy-emitted series — not merely statistically
equivalent.  These tests pin that contract per family, and every test
also asserts ``engine_used == "batch"`` so a silent scalar fallback can
never make the equivalence pass vacuously.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lifetime import LExp
from repro.experiments.configs import tower_config, walk_config
from repro.obs import CounterRecorder
from repro.policies import make_policy
from repro.policies.flowexpect_policy import FlowExpectPolicy
from repro.policies.heeb_policy import (
    BandJoinHeeb,
    GenericJoinHeeb,
    HeebPolicy,
    TrendJoinHeeb,
)
from repro.policies.lru import LrukPolicy
from repro.sim.engine import BatchEngine, ExperimentSpec, ScalarEngine
from repro.sim.runner import (
    generate_paths,
    generate_reference_paths,
    run_cache_experiment,
    run_join_experiment,
)
from repro.streams import (
    LinearTrendStream,
    RandomWalkStream,
    StationaryStream,
)
from repro.streams.noise import (
    bounded_normal,
    discretized_normal,
    from_mapping,
)

LENGTH = 240
N_RUNS = 3
CACHE = 6
WARMUP = 20

STATIONARY_PMF = {1: 0.35, 2: 0.25, 3: 0.2, 4: 0.12, 5: 0.08}


def _stationary_pair():
    return (
        StationaryStream(from_mapping(STATIONARY_PMF)),
        StationaryStream(from_mapping(STATIONARY_PMF)),
    )


def _assert_join_equal(scalar, batch):
    assert scalar.policy_name == batch.policy_name
    assert len(scalar.per_run) == len(batch.per_run)
    for i, (a, b) in enumerate(zip(scalar.per_run, batch.per_run)):
        assert a.total_results == b.total_results, f"run {i}"
        assert a.results_after_warmup == b.results_after_warmup, f"run {i}"
        np.testing.assert_array_equal(a.occupancy, b.occupancy)
        np.testing.assert_array_equal(a.r_occupancy, b.r_occupancy)


def _assert_snapshot_equal(a, b, name):
    """Snapshot equality that treats NaN == NaN.

    LRU-k cutoffs include ``-inf`` (below-k slots), which puts NaNs in
    the quantile-sketch state; ``repr`` round-trips floats exactly, so
    repr equality is still byte-level equality of the state.
    """
    assert repr(a.snapshot()) == repr(b.snapshot()), name


def _policy_counters(rec):
    """Counters minus the engine-dispatch bookkeeping (tier-specific)."""
    return {
        k: v for k, v in rec.counters.items() if not k.startswith("engine.")
    }


def _assert_cache_equal(scalar, batch):
    assert scalar.policy_name == batch.policy_name
    for i, (a, b) in enumerate(zip(scalar.per_run, batch.per_run)):
        assert (a.hits, a.misses) == (b.hits, b.misses), f"run {i}"
        assert a.hits_after_warmup == b.hits_after_warmup, f"run {i}"


def _join_both(
    r_model,
    s_model,
    factory,
    *,
    window=None,
    window_oracle=None,
    seed=0,
    length=LENGTH,
    n_runs=N_RUNS,
    cache_size=CACHE,
    recorders=None,
):
    paths = generate_paths(r_model, s_model, length, n_runs, seed=seed)
    kwargs = dict(
        cache_size=cache_size,
        warmup=WARMUP,
        window=window,
        r_model=r_model,
        s_model=s_model,
        window_oracle=window_oracle,
    )
    rec_scalar, rec_batch = recorders or (None, None)
    scalar = run_join_experiment(
        factory,
        paths,
        **kwargs,
        **({"recorder": rec_scalar} if rec_scalar is not None else {}),
    )
    batch = run_join_experiment(
        factory,
        paths,
        batch=True,
        **kwargs,
        **({"recorder": rec_batch} if rec_batch is not None else {}),
    )
    assert batch.engine_used == "batch", "adapter fell back to scalar"
    return scalar, batch


# ----------------------------------------------------------------------
# LRU-k
# ----------------------------------------------------------------------
class TestLruK:
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize(
        "make_config", [tower_config, walk_config], ids=["TOWER", "WALK"]
    )
    def test_join_exact(self, make_config, k):
        config = make_config()
        scalar, batch = _join_both(
            config.r_model, config.s_model, lambda: LrukPolicy(k)
        )
        _assert_join_equal(scalar, batch)
        assert any(r.total_results > 0 for r in scalar.per_run)

    def test_join_windowed(self):
        config = tower_config()
        scalar, batch = _join_both(
            config.r_model,
            config.s_model,
            lambda: LrukPolicy(2),
            window=8,
            window_oracle=config.window_oracle,
        )
        _assert_join_equal(scalar, batch)

    @pytest.mark.parametrize("k", [1, 2])
    def test_cache_exact(self, k):
        models = {
            "stationary": StationaryStream(from_mapping(STATIONARY_PMF)),
            "walk": RandomWalkStream(discretized_normal(1.0), drift=0, start=0),
        }
        for model in models.values():
            refs = generate_reference_paths(model, LENGTH, N_RUNS, seed=7)
            kwargs = dict(
                cache_size=CACHE, warmup=WARMUP, reference_model=model
            )
            scalar = run_cache_experiment(
                lambda: LrukPolicy(k), refs, **kwargs
            )
            batch = run_cache_experiment(
                lambda: LrukPolicy(k), refs, batch=True, **kwargs
            )
            assert batch.engine_used == "batch"
            _assert_cache_equal(scalar, batch)

    def test_cutoff_series_parity(self):
        """LRU-k is exactly scored: the batch tier must mirror its
        scores.cutoff series byte-for-byte."""
        config = tower_config()
        rec_scalar, rec_batch = CounterRecorder(), CounterRecorder()
        _join_both(
            config.r_model,
            config.s_model,
            lambda: LrukPolicy(2),
            recorders=(rec_scalar, rec_batch),
        )
        _assert_snapshot_equal(
            rec_batch.series_data["scores.cutoff"],
            rec_scalar.series_data["scores.cutoff"],
            "scores.cutoff",
        )


# ----------------------------------------------------------------------
# Windowed HEEB (trend + stationary) and the band join
# ----------------------------------------------------------------------
class TestWindowedHeeb:
    @pytest.mark.parametrize("window", [5, 25])
    def test_trend_unit_speed(self, window):
        config = tower_config()
        scalar, batch = _join_both(
            config.r_model,
            config.s_model,
            lambda: config.make_heeb(CACHE),
            window=window,
            window_oracle=config.window_oracle,
        )
        _assert_join_equal(scalar, batch)
        assert any(r.total_results > 0 for r in scalar.per_run)

    def test_trend_general_speed(self):
        """speed != 1 lacks translation invariance: the adapter's
        per-step memo branch must still reproduce the scalar sums."""
        r_model = LinearTrendStream(bounded_normal(10, 1.5), speed=2.0, lag=1)
        s_model = LinearTrendStream(bounded_normal(15, 2.0), speed=2.0, lag=0)
        factory = lambda: HeebPolicy(TrendJoinHeeb(LExp(4.0)))
        scalar, batch = _join_both(
            r_model, s_model, factory, window=8, length=160
        )
        _assert_join_equal(scalar, batch)

    @pytest.mark.parametrize("window", [None, 6])
    def test_stationary_generic(self, window):
        r_model, s_model = _stationary_pair()
        factory = lambda: HeebPolicy(GenericJoinHeeb(LExp(3.0), horizon=40))
        scalar, batch = _join_both(
            r_model, s_model, factory, window=window
        )
        _assert_join_equal(scalar, batch)
        assert any(r.total_results > 0 for r in scalar.per_run)


class TestBandJoinHeeb:
    @pytest.mark.parametrize("band", [1, 2])
    def test_stationary_band_exact(self, band):
        r_model, s_model = _stationary_pair()
        spec = ExperimentSpec(
            kind="join",
            cache_size=CACHE,
            warmup=WARMUP,
            band=band,
            r_model=r_model,
            s_model=s_model,
        )
        factory = lambda: HeebPolicy(
            BandJoinHeeb(band, LExp(3.0), horizon=40)
        )
        paths = generate_paths(r_model, s_model, LENGTH, N_RUNS, seed=13)
        assert BatchEngine().supports(spec, factory) is None
        scalar = ScalarEngine().run(spec, factory, paths)
        batch = BatchEngine().run(spec, factory, paths)
        _assert_join_equal(scalar, batch)
        assert any(r.total_results > 0 for r in scalar.per_run)


# ----------------------------------------------------------------------
# Trie caching on the binary problems
# ----------------------------------------------------------------------
class TestTrieBinary:
    def test_join_exact_with_series(self):
        r_model, s_model = _stationary_pair()
        rec_scalar, rec_batch = CounterRecorder(), CounterRecorder()
        scalar, batch = _join_both(
            r_model,
            s_model,
            lambda: make_policy("trie"),
            recorders=(rec_scalar, rec_batch),
        )
        _assert_join_equal(scalar, batch)
        assert _policy_counters(rec_batch) == _policy_counters(rec_scalar)
        budget_series = [
            name
            for name in rec_scalar.series_data
            if name.startswith("trie.budget.")
        ]
        assert budget_series, "scalar trie must emit per-level budgets"
        for name in ("scores.cutoff", *budget_series):
            _assert_snapshot_equal(
                rec_batch.series_data[name], rec_scalar.series_data[name], name
            )

    def test_cache_exact_with_series(self):
        model = StationaryStream(from_mapping(STATIONARY_PMF))
        refs = generate_reference_paths(model, LENGTH, N_RUNS, seed=29)
        kwargs = dict(cache_size=CACHE, warmup=WARMUP, reference_model=model)
        rec_scalar, rec_batch = CounterRecorder(), CounterRecorder()
        scalar = run_cache_experiment(
            lambda: make_policy("trie"), refs, recorder=rec_scalar, **kwargs
        )
        batch = run_cache_experiment(
            lambda: make_policy("trie"),
            refs,
            batch=True,
            recorder=rec_batch,
            **kwargs,
        )
        assert batch.engine_used == "batch"
        _assert_cache_equal(scalar, batch)
        assert _policy_counters(rec_batch) == _policy_counters(rec_scalar)
        for name in rec_scalar.series_data:
            if name.startswith("trie.budget.") or name == "scores.cutoff":
                _assert_snapshot_equal(
                    rec_batch.series_data[name],
                    rec_scalar.series_data[name],
                    name,
                )

    def test_trend_models_batch_too(self):
        """Independent but time-*dependent* models (linear trends) take
        the per-step memo branch; decisions must still match."""
        config = tower_config()
        scalar, batch = _join_both(
            config.r_model,
            config.s_model,
            lambda: make_policy("trie"),
            length=160,
        )
        _assert_join_equal(scalar, batch)


# ----------------------------------------------------------------------
# FlowExpect
# ----------------------------------------------------------------------
class TestFlowExpectBatch:
    def _flow_counters(self, rec):
        return {
            k: v
            for k, v in rec.counters.items()
            if k in ("flow.solves", "flow.solver_iterations")
        }

    @pytest.mark.parametrize("lookahead", [1, 3, 6])
    def test_stationary_exact(self, lookahead):
        r_model, s_model = _stationary_pair()
        factory = lambda: FlowExpectPolicy(
            lookahead, r_model, s_model, fast=True
        )
        rec_scalar, rec_batch = CounterRecorder(), CounterRecorder()
        scalar, batch = _join_both(
            r_model,
            s_model,
            factory,
            length=100,
            n_runs=2,
            cache_size=4,
            recorders=(rec_scalar, rec_batch),
        )
        _assert_join_equal(scalar, batch)
        # The batch tier shares one ProbTable/template cache across
        # trials, so memo hit/miss telemetry legitimately differs; the
        # *decision-path* counters must agree exactly.
        assert self._flow_counters(rec_scalar) == self._flow_counters(
            rec_batch
        )
        assert rec_scalar.counters["flow.solves"] > 0

    def test_trend_models_exact(self):
        """Independent time-dependent models: per-(t, value) ProbTable
        entries, shared across trials, must not change any decision."""
        config = tower_config()
        factory = lambda: FlowExpectPolicy(
            3, config.r_model, config.s_model, fast=True
        )
        scalar, batch = _join_both(
            config.r_model,
            config.s_model,
            factory,
            length=80,
            n_runs=2,
            cache_size=4,
        )
        _assert_join_equal(scalar, batch)

    @settings(max_examples=25, deadline=None)
    @given(
        support=st.integers(min_value=2, max_value=5),
        weights=st.lists(
            st.integers(min_value=1, max_value=9), min_size=5, max_size=5
        ),
        lookahead=st.integers(min_value=1, max_value=6),
        cache_size=st.integers(min_value=1, max_value=5),
        length=st.integers(min_value=10, max_value=40),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_random_stationary_runs(
        self, support, weights, lookahead, cache_size, length, seed
    ):
        """Property-based mirror of the fastpath suite, one level up:
        random stationary pmfs and parameters, full short runs, exact
        batch-vs-scalar agreement on results and occupancy."""
        total = sum(weights[:support])
        pmf = {v: w / total for v, w in enumerate(weights[:support])}
        r_model = StationaryStream(from_mapping(pmf))
        s_model = StationaryStream(from_mapping(pmf))
        factory = lambda: FlowExpectPolicy(
            lookahead, r_model, s_model, fast=True
        )
        paths = generate_paths(r_model, s_model, length, 1, seed=seed)
        kwargs = dict(
            cache_size=cache_size,
            warmup=0,
            r_model=r_model,
            s_model=s_model,
        )
        scalar = run_join_experiment(factory, paths, **kwargs)
        batch = run_join_experiment(factory, paths, batch=True, **kwargs)
        assert batch.engine_used == "batch"
        _assert_join_equal(scalar, batch)

    def test_slow_reference_pipeline_stays_scalar(self):
        """fast=False pins the networkx reference pipeline; the batch
        tier must refuse rather than silently swap solvers."""
        r_model, s_model = _stationary_pair()
        spec = ExperimentSpec(
            kind="join", cache_size=4, r_model=r_model, s_model=s_model
        )
        factory = lambda: FlowExpectPolicy(2, r_model, s_model, fast=False)
        reason = BatchEngine().supports(spec, factory)
        assert reason is not None and "networkx" in reason

    def test_markov_models_stay_scalar(self):
        """History-anchored (Markov) models rebind the ProbTable every
        step per trial; there is no exact shared-memo replay."""
        step = discretized_normal(1.0)
        r_model = RandomWalkStream(step, drift=0, start=0)
        s_model = RandomWalkStream(step, drift=0, start=0)
        spec = ExperimentSpec(
            kind="join", cache_size=4, r_model=r_model, s_model=s_model
        )
        factory = lambda: FlowExpectPolicy(2, r_model, s_model, fast=True)
        reason = BatchEngine().supports(spec, factory)
        assert reason is not None and "has no exact batch adapter" in reason
