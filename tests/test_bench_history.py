"""Benchmark-history gate: flattening, fingerprints, rolling-median check.

``tools/`` is not a package, so the module under test is loaded by file
path — the same way ``benchmarks/perf_harness.py`` imports it.  Pins:

* a harness report flattens into an entry whose metrics cover both the
  aggregate and FlowExpect sections (and tolerates either being absent);
* append/load round-trips through JSONL, skipping truncated lines;
* the fingerprint separates runs by environment *and* workload, so the
  check never compares apples to oranges;
* the check fails in the correct direction for higher-is-better and
  lower-is-better metrics, passes within tolerance, and passes with a
  note below ``min_runs``;
* the CLI exits 0/1 accordingly.
"""

from __future__ import annotations

import copy
import importlib.util
from pathlib import Path

import pytest

_REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def bh():
    """The bench_history module, loaded by path like the harness does."""
    spec = importlib.util.spec_from_file_location(
        "bench_history_under_test", _REPO / "tools" / "bench_history.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


REPORT = {
    "workload": {"figure": "fig08", "length": 100, "trials_per_experiment": 8},
    "environment": {
        "python": "3.11.7",
        "numpy": "2.4.6",
        "machine": "x86_64",
        "cpu_count": 1,
        "parallel_workers": 1,
        "irrelevant_extra": "dropped",
    },
    "aggregate": {
        "trials": 32,
        "scalar_trials_per_sec": 100.0,
        "batch_trials_per_sec": 800.0,
        "batch_speedup": 8.0,
        "parallel_speedup": 1.0,
        "parallel_trials_per_sec": 100.0,
    },
    "flowexpect": {
        "length": 60,
        "lookahead": 4,
        "cache_size": 10,
        "fast_ms_per_step": 0.5,
        "reference_ms_per_step": 3.0,
        "fast_speedup": 6.0,
        "prob_table_hit_rate": 0.7,
    },
    "multi_join": {
        "config": "CHAIN3",
        "length": 80,
        "trials": 8,
        "scalar_trials_per_sec": 40.0,
        "batch_trials_per_sec": 200.0,
        "batch_speedup": 5.0,
        "serve_length": 500,
        "serve_n_shards": 3,
        "serve_tuples_per_sec": 9000.0,
    },
}


def _entry(bh, ts=1.0, **metric_overrides):
    entry = bh.entry_from_report(REPORT, ts=ts, sha="abc1234")
    entry["metrics"].update(metric_overrides)
    return entry


class TestEntryFromReport:
    """Report → history-entry flattening."""

    def test_headline_metrics_flattened(self, bh):
        entry = _entry(bh)
        m = entry["metrics"]
        assert m["batch_speedup"] == 8.0
        assert m["fe_fast_ms_per_step"] == 0.5
        assert m["fe_prob_table_hit_rate"] == 0.7
        assert "trials" not in m  # workload size is identity, not a metric

    def test_env_keys_filtered(self, bh):
        entry = _entry(bh)
        assert "irrelevant_extra" not in entry["env"]
        assert entry["env"]["cpu_count"] == 1

    def test_fe_workload_params_join_the_fingerprint(self, bh):
        entry = _entry(bh)
        assert entry["workload"]["fe_lookahead"] == 4
        other = copy.deepcopy(REPORT)
        other["flowexpect"]["lookahead"] = 8
        assert bh.fingerprint_key(entry) != bh.fingerprint_key(
            bh.entry_from_report(other, ts=1.0, sha="abc1234")
        )

    def test_multi_join_section_flattened_with_prefix(self, bh):
        entry = _entry(bh)
        m = entry["metrics"]
        assert m["multi_batch_speedup"] == 5.0
        assert m["multi_serve_tuples_per_sec"] == 9000.0
        assert entry["workload"]["multi_config"] == "CHAIN3"
        assert entry["workload"]["multi_trials"] == 8
        assert "multi_length" in entry["workload"]

    def test_missing_sections_are_tolerated(self, bh):
        partial = {"workload": {}, "environment": {}, "flowexpect": REPORT["flowexpect"]}
        entry = bh.entry_from_report(partial, ts=1.0, sha="x")
        assert "fe_fast_speedup" in entry["metrics"]
        assert "batch_speedup" not in entry["metrics"]


class TestAppendLoad:
    """JSONL round trip and tolerant loading."""

    def test_round_trip(self, bh, tmp_path):
        path = tmp_path / "hist.jsonl"
        first = _entry(bh, ts=1.0)
        second = _entry(bh, ts=2.0)
        bh.append_entry(path, first)
        bh.append_entry(path, second)
        loaded = bh.load_history(path)
        assert loaded == [first, second]

    def test_truncated_line_skipped_with_report(self, bh, tmp_path):
        path = tmp_path / "hist.jsonl"
        bh.append_entry(path, _entry(bh, ts=1.0))
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"ts": 2.0, "metr')  # killed mid-append
        bad: list[str] = []
        loaded = bh.load_history(path, bad_lines=bad)
        assert len(loaded) == 1
        assert len(bad) == 1 and bad[0].startswith("2:")

    def test_missing_file_is_empty_history(self, bh, tmp_path):
        assert bh.load_history(tmp_path / "nope.jsonl") == []


class TestCheck:
    """Rolling-median gating semantics."""

    def test_passes_within_tolerance(self, bh):
        entries = [
            _entry(bh, ts=1.0),
            _entry(bh, ts=2.0, batch_speedup=7.5),
            _entry(bh, ts=3.0, batch_speedup=7.2),  # −10% of median 7.75
        ]
        ok, messages = bh.check(entries, tolerance=0.2)
        assert ok, messages
        assert any("PASS" in m for m in messages)

    def test_higher_better_regression_fails(self, bh):
        entries = [_entry(bh, ts=1.0), _entry(bh, ts=2.0, batch_speedup=2.0)]
        ok, messages = bh.check(entries, tolerance=0.2)
        assert not ok
        assert any("batch_speedup" in m and "REGRESSION" in m for m in messages)

    def test_lower_better_regression_fails(self, bh):
        entries = [
            _entry(bh, ts=1.0),
            _entry(bh, ts=2.0, fe_fast_ms_per_step=5.0),  # 10× slower
        ]
        ok, messages = bh.check(entries, tolerance=0.2)
        assert not ok
        assert any(
            "fe_fast_ms_per_step" in m and "REGRESSION" in m for m in messages
        )

    def test_improvements_never_fail(self, bh):
        entries = [
            _entry(bh, ts=1.0),
            _entry(bh, ts=2.0, batch_speedup=80.0, fe_fast_ms_per_step=0.05),
        ]
        ok, _ = bh.check(entries, tolerance=0.2)
        assert ok

    def test_different_fingerprint_is_not_compared(self, bh):
        fast_elsewhere = _entry(bh, ts=1.0, batch_speedup=100.0)
        fast_elsewhere["env"]["cpu_count"] = 64
        entries = [fast_elsewhere, _entry(bh, ts=2.0)]
        ok, messages = bh.check(entries, tolerance=0.2, min_runs=2)
        # Only 1 comparable run → baseline-building pass, no comparison
        # against the 64-core numbers.
        assert ok
        assert any("baseline building" in m for m in messages)

    def test_empty_history_passes(self, bh):
        ok, messages = bh.check([])
        assert ok and any("empty" in m for m in messages)


class TestCli:
    """Exit codes of the command-line gate."""

    def test_check_pass_and_fail(self, bh, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        bh.append_entry(path, _entry(bh, ts=1.0))
        bh.append_entry(path, _entry(bh, ts=2.0))
        assert bh.main(["--check", "--history", str(path)]) == 0
        bh.append_entry(path, _entry(bh, ts=3.0, batch_speedup=0.5))
        assert bh.main(["--check", "--history", str(path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_summary_without_check(self, bh, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        bh.append_entry(path, _entry(bh, ts=1.0))
        assert bh.main(["--history", str(path)]) == 0
        assert "1 recorded run(s)" in capsys.readouterr().out

    def test_committed_history_gates_green(self, bh, capsys):
        """The repo's own BENCH_history.jsonl must satisfy its gate."""
        history = _REPO / "BENCH_history.jsonl"
        assert history.exists()
        entries = bh.load_history(history)
        assert len(entries) >= 2
        assert (
            bh.main(["--check", "--history", str(history), "--tolerance", "0.5"])
            == 0
        )
        capsys.readouterr()
