"""Band joins: the paper's non-equality-join future work, end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ecb import ecb_join, ecb_join_band
from repro.core.heeb import heeb_join, heeb_join_band
from repro.core.lifetime import LExp
from repro.core.tuples import CacheState, StreamTuple
from repro.flow.brute_force import brute_force_offline_benefit
from repro.flow.opt_offline import match_times, solve_opt_offline
from repro.policies import BandJoinHeeb, HeebPolicy, RandPolicy, ScheduledPolicy
from repro.sim.join_sim import JoinSimulator
from repro.streams import (
    RandomWalkStream,
    StationaryStream,
    discretized_normal,
    from_mapping,
)


class TestCacheStateBand:
    def test_matching_band(self):
        c = CacheState()
        for i, v in enumerate([3, 5, 7, 9]):
            c.add(StreamTuple(i, "R", v, 0))
        assert {t.value for t in c.matching_band("R", 6, 1)} == {5, 7}
        assert {t.value for t in c.matching_band("R", 6, 3)} == {3, 5, 7, 9}
        assert c.matching_band("R", 6, 0) == []
        assert c.matching_band("R", None, 2) == []


class TestBandEcbAndHeeb:
    def test_band_zero_reduces_to_equijoin(self, stationary_stream):
        a = ecb_join(stationary_stream, 0, 1, 10)
        b = ecb_join_band(stationary_stream, 0, 1, 0, 10)
        assert np.allclose(a.cumulative, b.cumulative)
        ha = heeb_join(stationary_stream, 0, 1, LExp(5.0), 50)
        hb = heeb_join_band(stationary_stream, 0, 1, 0, LExp(5.0), 50)
        assert ha == pytest.approx(hb)

    def test_band_sums_neighbor_mass(self):
        model = StationaryStream(from_mapping({1: 0.2, 2: 0.3, 3: 0.5}))
        b = ecb_join_band(model, 0, 2, 1, 4)
        # Per-step match probability = p(1)+p(2)+p(3) = 1.0.
        assert b(4) == pytest.approx(4.0)

    def test_band_monotone_in_width(self, walk_stream):
        from repro.streams import History

        h = History(now=0, last_value=0)
        prev = 0.0
        for band in range(0, 4):
            cur = heeb_join_band(walk_stream, 0, 2, band, LExp(8.0), 60, h)
            assert cur >= prev - 1e-12
            prev = cur

    def test_rejects_negative_band(self, stationary_stream):
        with pytest.raises(ValueError):
            ecb_join_band(stationary_stream, 0, 1, -1, 5)
        with pytest.raises(ValueError):
            heeb_join_band(stationary_stream, 0, 1, -1, LExp(5.0))
        with pytest.raises(ValueError):
            BandJoinHeeb(-1, LExp(5.0))


class TestBandMatchTimes:
    def test_band_widens_matches(self):
        r = [5]
        s = [0, 4, 6, 9]
        assert match_times(r, s, band=0) == [[]]
        assert match_times(r, s, band=1) == [[1, 2]]
        assert match_times(r, s, band=4) == [[1, 2, 3]]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            match_times([1], [1], band=-1)


class TestBandSimulator:
    def test_band_counting_hand_case(self):
        # Cached r(5); arrivals s=4 then s=7 with band 1: only s=4 joins.
        from tests.test_join_sim import KeepOldest

        r = [5, 0, 0]
        s = [9, 4, 7]
        result = JoinSimulator(10, KeepOldest(), band=1).run(r, s)
        assert result.total_results == 1
        wide = JoinSimulator(10, KeepOldest(), band=2).run(r, s)
        assert wide.total_results == 2

    def test_band_rejects_negative(self):
        from tests.test_join_sim import KeepOldest

        with pytest.raises(ValueError):
            JoinSimulator(1, KeepOldest(), band=-1)


class TestBandOptOffline:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        r = list(rng.integers(0, 6, size=8))
        s = list(rng.integers(0, 6, size=8))
        for band in (1, 2):
            sol = solve_opt_offline(r, s, 2, band=band)
            brute = brute_force_offline_benefit(r, s, 2, band=band)
            assert sol.total_benefit == brute, (r, s, band)

    def test_replay_through_band_simulator(self):
        rng = np.random.default_rng(1)
        r = list(rng.integers(0, 8, size=60))
        s = list(rng.integers(0, 8, size=60))
        band = 1
        sol = solve_opt_offline(r, s, 3, band=band)
        policy = ScheduledPolicy(sol)
        result = JoinSimulator(3, policy, band=band).run(r, s)
        assert result.total_results == sol.total_benefit
        assert policy.mismatches == 0


class TestBandHeebPolicy:
    def test_band_heeb_beats_rand_on_walks(self):
        step = discretized_normal(1.0)
        a = RandomWalkStream(step)
        b = RandomWalkStream(step)
        band = 2
        heeb_total = rand_total = 0
        for run in range(3):
            rng = np.random.default_rng(run)
            r = a.sample_path(400, rng)
            s = b.sample_path(400, np.random.default_rng(100 + run))
            heeb = HeebPolicy(BandJoinHeeb(band, LExp(10.0), horizon=60))
            heeb_total += (
                JoinSimulator(6, heeb, band=band, r_model=a, s_model=b)
                .run(r, s)
                .total_results
            )
            rand_total += (
                JoinSimulator(6, RandPolicy(seed=run), band=band)
                .run(r, s)
                .total_results
            )
        assert heeb_total > rand_total
