"""Tests for ECB computation (Lemma 1 / Corollary 1, Section 4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ecb import ECB, ecb_cache, ecb_join, windowed_ecb
from repro.streams import (
    LinearTrendStream,
    OfflineStream,
    StationaryStream,
    bounded_uniform,
    from_mapping,
)


class TestECBClass:
    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            ECB([1.0, 0.5])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ECB([-0.5, 0.5])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ECB([])

    def test_call_clamps_beyond_horizon(self):
        b = ECB([0.1, 0.2, 0.3])
        assert b(3) == pytest.approx(0.3)
        assert b(100) == pytest.approx(0.3)

    def test_call_rejects_dt_zero(self):
        with pytest.raises(ValueError):
            ECB([0.1])(0)

    def test_increments_roundtrip(self):
        inc = np.array([0.1, 0.0, 0.4])
        b = ECB.from_increments(inc)
        assert np.allclose(b.increments(), inc)
        assert b(2) == pytest.approx(0.1)
        assert b(3) == pytest.approx(0.5)


class TestJoinECB:
    def test_stationary_is_linear(self):
        """Section 5.2: B_x(Δt) = p(v_x)·Δt for stationary partners."""
        partner = StationaryStream(from_mapping({1: 0.3, 2: 0.7}))
        b = ecb_join(partner, t0=5, value=1, horizon=10)
        for dt in range(1, 11):
            assert b(dt) == pytest.approx(0.3 * dt)

    def test_offline_is_step_function(self):
        """Section 5.1: each step corresponds to a partner occurrence."""
        partner = OfflineStream([9, 1, 9, 1, 1])
        b = ecb_join(partner, t0=0, value=1, horizon=4)
        assert list(b.cumulative) == [1.0, 1.0, 2.0, 3.0]

    def test_none_value_zero(self, stationary_stream):
        b = ecb_join(stationary_stream, 0, None, 5)
        assert b(5) == 0.0

    def test_trend_ecb_saturates(self):
        """Once the partner window passes the value, the ECB flattens."""
        partner = LinearTrendStream(bounded_uniform(2), speed=1.0)
        # value 3: window [t-2, t+2] covers 3 while t <= 5.
        b = ecb_join(partner, t0=0, value=3, horizon=12)
        assert b(12) == pytest.approx(b(5))
        assert b(5) > b(4)

    def test_rejects_bad_horizon(self, stationary_stream):
        with pytest.raises(ValueError):
            ecb_join(stationary_stream, 0, 1, 0)


class TestCacheECB:
    def test_stationary_geometric(self):
        """Section 5.2: B_x(Δt) = 1 − (1 − p)^Δt."""
        ref = StationaryStream(from_mapping({1: 0.3, 2: 0.7}))
        b = ecb_cache(ref, t0=0, value=1, horizon=8)
        for dt in range(1, 9):
            assert b(dt) == pytest.approx(1 - 0.7**dt)

    def test_offline_single_step(self):
        """Section 5.1: jumps 0→1 at the next occurrence (LFD's quantity)."""
        ref = OfflineStream([0, 5, 5, 7, 5])
        b = ecb_cache(ref, t0=0, value=7, horizon=6)
        assert list(b.cumulative) == [0.0, 0.0, 1.0, 1.0, 1.0, 1.0]

    def test_never_referenced_zero(self):
        ref = OfflineStream([1, 2, 3])
        b = ecb_cache(ref, t0=0, value=99, horizon=3)
        assert b(3) == 0.0

    def test_reference_tuple_zero(self, stationary_stream):
        """Corollary 1: reference-stream tuples have ECB ≡ 0."""
        b = ecb_cache(stationary_stream, 0, None, 5)
        assert b(5) == 0.0

    def test_bounded_by_one(self):
        ref = StationaryStream(from_mapping({1: 0.9, 2: 0.1}))
        b = ecb_cache(ref, 0, 1, 50)
        assert b(50) <= 1.0 + 1e-12

    def test_cache_le_join_ecb(self):
        """First-reference mass never exceeds total reference mass."""
        ref = StationaryStream(from_mapping({1: 0.4, 2: 0.6}))
        bj = ecb_join(ref, 0, 1, 20)
        bc = ecb_cache(ref, 0, 1, 20)
        assert all(
            c <= j + 1e-12 for c, j in zip(bc.cumulative, bj.cumulative)
        )


class TestWindowedECB:
    def test_clips_after_cutoff(self):
        base = ECB([0.1, 0.2, 0.3, 0.4, 0.5])
        w = windowed_ecb(base, arrival=8, t0=10, window=4)
        # cutoff = 8 + 4 − 10 = 2: flat from Δt = 3 on.
        assert w(1) == pytest.approx(0.1)
        assert w(2) == pytest.approx(0.2)
        assert w(3) == pytest.approx(0.2)
        assert w(5) == pytest.approx(0.2)

    def test_already_expired_is_zero(self):
        base = ECB([0.5, 1.0])
        w = windowed_ecb(base, arrival=0, t0=10, window=4)
        assert w(1) == 0.0 and w(2) == 0.0

    def test_wide_window_is_identity(self):
        base = ECB([0.5, 1.0])
        w = windowed_ecb(base, arrival=9, t0=10, window=100)
        assert np.allclose(w.cumulative, base.cumulative)

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError):
            windowed_ecb(ECB([0.1]), 0, 0, -1)
