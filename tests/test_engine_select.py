"""Capability negotiation: select_engine, ExperimentSpec, and registries.

These are the unit tests of the dispatch layer itself — which engine a
preference resolves to, what the spec validator rejects, and how the
string-keyed registries (engines, policies, streams, configs) report
unknown names.
"""

from __future__ import annotations

import logging
import re

import pytest

from repro.core.lifetime import LExp
from repro.experiments.configs import (
    available_configs,
    available_multi_configs,
    make_config,
    make_multi_config,
)
from repro.policies import available_policies, make_policy
from repro.policies.heeb_policy import GenericJoinHeeb, HeebPolicy
from repro.sim.engine import (
    BatchEngine,
    Engine,
    EngineRun,
    ExperimentSpec,
    ParallelEngine,
    ScalarEngine,
    _FALLBACK_WARNED,
    available_engines,
    get_engine,
    register_engine,
    select_engine,
)
from repro.streams import available_streams, make_stream
from repro.streams.noise import from_mapping


def _join_spec(**overrides) -> ExperimentSpec:
    defaults = dict(kind="join", cache_size=4)
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def _rand_factory():
    return make_policy("rand", seed=0)


class TestExperimentSpec:
    def test_defaults(self):
        spec = _join_spec()
        assert spec.warmup == 0
        assert spec.window is None
        assert spec.band == 0

    @pytest.mark.parametrize(
        "overrides, message",
        [
            (dict(kind="nope"), "unknown kind"),
            (dict(cache_size=0), "cache_size"),
            (dict(warmup=-1), "warmup"),
            (dict(window=-2), "window"),
            (dict(band=-1), "band"),
        ],
    )
    def test_validation(self, overrides, message):
        with pytest.raises(ValueError, match=message):
            _join_spec(**overrides)

    def test_multi_join_needs_queries(self):
        with pytest.raises(ValueError, match="at least one query"):
            ExperimentSpec(kind="multi_join", cache_size=4)


class TestSelectEngine:
    def test_no_preference_is_scalar(self):
        chosen = select_engine(_join_spec(), _rand_factory)
        assert isinstance(chosen, ScalarEngine)

    def test_supported_preference_is_honoured(self):
        chosen = select_engine(_join_spec(), _rand_factory, prefer="batch")
        assert isinstance(chosen, BatchEngine)

    def test_engine_instance_preference(self):
        eng = ParallelEngine(max_workers=2)
        assert select_engine(_join_spec(), _rand_factory, prefer=eng) is eng

    def test_single_worker_parallel_negotiates_to_scalar(self, caplog):
        """A parallel engine whose effective worker count is 1 only adds
        fork overhead; the resolver must drop to scalar and warn once."""
        eng = ParallelEngine(max_workers=1)
        assert eng.supports(_join_spec(), _rand_factory) is not None
        _FALLBACK_WARNED.clear()
        with caplog.at_level(logging.WARNING, logger="repro.sim.engine"):
            first = select_engine(_join_spec(), _rand_factory, prefer=eng)
            second = select_engine(_join_spec(), _rand_factory, prefer=eng)
        assert isinstance(first, ScalarEngine)
        assert isinstance(second, ScalarEngine)
        warnings = [
            r
            for r in caplog.records
            if "falling back to the scalar engine" in r.getMessage()
        ]
        assert len(warnings) == 1

    def test_unsupported_preference_falls_back_and_warns_once(self, caplog):
        """Generic HEEB on a spec without stream models has no exact
        replay; the resolver must pick scalar and say so exactly once
        per (engine, reason) pair."""
        factory = lambda: HeebPolicy(GenericJoinHeeb(LExp(5.0), horizon=40))
        spec = _join_spec(window=8)
        _FALLBACK_WARNED.clear()
        with caplog.at_level(logging.WARNING, logger="repro.sim.engine"):
            first = select_engine(spec, factory, prefer="batch")
            second = select_engine(spec, factory, prefer="batch")
        assert isinstance(first, ScalarEngine)
        assert isinstance(second, ScalarEngine)
        warnings = [
            r
            for r in caplog.records
            if "falling back to the scalar engine" in r.getMessage()
        ]
        assert len(warnings) == 1

    def test_batch_accepts_multi_join(self):
        """Multi-join specs negotiate onto the batch tier when the policy
        has an exact adapter (the old blanket rejection is gone)."""
        spec = ExperimentSpec(
            kind="multi_join", cache_size=4, queries=[("A", "B")]
        )
        assert BatchEngine().supports(spec, _rand_factory) is None
        chosen = select_engine(spec, _rand_factory, prefer="batch")
        assert isinstance(chosen, BatchEngine)

    def test_batch_rejects_unbatchable_multi_join_policy(self):
        """Policies without a multi-join adapter still fall back."""
        from repro.policies.scheduled import ScheduledPolicy

        spec = ExperimentSpec(
            kind="multi_join", cache_size=4, queries=[("A", "B")]
        )
        factory = lambda: ScheduledPolicy({})
        assert BatchEngine().supports(spec, factory) is not None
        _FALLBACK_WARNED.clear()
        chosen = select_engine(spec, factory, prefer="batch")
        assert isinstance(chosen, ScalarEngine)


class TestUnbatchableReasonFormat:
    """Every batch refusal speaks the same normalized sentence.

    The contract (pinned here so tooling can parse fallback warnings):
    ``<POLICY> has no exact batch adapter (<reason>); it runs on the
    scalar tier``.
    """

    FORMAT = (
        r"^\S.* has no exact batch adapter \(.+\); "
        r"it runs on the scalar tier$"
    )

    def _reason(self, spec, factory):
        reason = BatchEngine().supports(spec, factory)
        assert reason is not None
        assert re.match(self.FORMAT, reason), reason
        return reason

    def _stationary_spec(self, **overrides):
        model = make_stream(
            "stationary", dist=from_mapping({1: 0.6, 2: 0.4})
        )
        return _join_spec(r_model=model, s_model=model, **overrides), model

    def test_sketch_counters(self):
        spec, _ = self._stationary_spec()
        reason = self._reason(spec, lambda: make_policy("prob", counts="sketch"))
        assert reason.startswith("PROB ")

    def test_windowed_heeb_needs_lexp(self):
        from repro.core.lifetime import LFixed

        spec, _ = self._stationary_spec(window=8)
        factory = lambda: HeebPolicy(GenericJoinHeeb(LFixed(5), horizon=40))
        reason = self._reason(spec, factory)
        assert "LExp" in reason

    def test_heeb_without_models(self):
        factory = lambda: HeebPolicy(GenericJoinHeeb(LExp(5.0), horizon=40))
        self._reason(_join_spec(), factory)

    def test_trie_on_markov_models(self):
        model = make_stream("random-walk", step=from_mapping({-1: 0.5, 1: 0.5}))
        spec = _join_spec(r_model=model, s_model=model)
        reason = self._reason(spec, lambda: make_policy("trie"))
        assert reason.startswith("TRIE ")

    def test_flowexpect_reference_pipeline(self):
        spec, model = self._stationary_spec()
        factory = lambda: make_policy(
            "flowexpect", lookahead=2, r_model=model, s_model=model, fast=False
        )
        reason = self._reason(spec, factory)
        assert "networkx" in reason

    def test_flowexpect_on_markov_models(self):
        model = make_stream("random-walk", step=from_mapping({-1: 0.5, 1: 0.5}))
        spec = _join_spec(r_model=model, s_model=model)
        factory = lambda: make_policy(
            "flowexpect", lookahead=2, r_model=model, s_model=model
        )
        self._reason(spec, factory)

    def test_multi_join_lruk_names_the_family(self):
        spec = ExperimentSpec(
            kind="multi_join", cache_size=4, queries=[("A", "B")]
        )
        reason = self._reason(spec, lambda: make_policy("lru-k"))
        assert "LRU-k" in reason


class TestEngineRegistry:
    def test_builtins_present_scalar_first(self):
        names = available_engines()
        assert names[0] == "scalar"
        assert {"scalar", "batch", "parallel"} <= set(names)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("warp-drive")

    def test_custom_engine_registration(self):
        class NullEngine(Engine):
            name = "null"

            def supports(self, spec, policy_factory):
                return None

            def run(self, spec, policy_factory, data):
                return EngineRun(policy_name="null", per_run=[])

        register_engine("null", NullEngine)
        try:
            assert "null" in available_engines()
            assert isinstance(get_engine("null"), NullEngine)
        finally:
            from repro.sim.engine import _ENGINE_FACTORIES

            _ENGINE_FACTORIES.pop("null", None)


class TestNameRegistries:
    def test_policy_registry(self):
        assert "heeb" in available_policies()
        assert make_policy("RAND", seed=3).name == "RAND"
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("clairvoyant")

    def test_stream_registry(self):
        assert "ar1" in available_streams()
        model = make_stream(
            "Stationary", dist=from_mapping({1: 0.5, 2: 0.5})
        )
        assert model.sample_path(3, __import__("numpy").random.default_rng(0))
        with pytest.raises(ValueError, match="unknown stream"):
            make_stream("brownian-bridge")

    def test_config_registry(self):
        assert available_configs() == ("TOWER", "ROOF", "FLOOR", "WALK")
        assert make_config("tower").name == "TOWER"
        with pytest.raises(ValueError, match="unknown config"):
            make_config("cliff")

    def test_multi_config_registry(self):
        assert available_multi_configs() == ("CHAIN3", "STAR5")
        chain = make_multi_config("chain3")
        assert chain.name == "CHAIN3"
        assert list(chain.models) == ["A", "B", "C"]
        star = make_multi_config("STAR5")
        assert len(star.queries) == 4
        # make_config falls through to the multi registry by name.
        assert make_config("chain3").name == "CHAIN3"
        with pytest.raises(ValueError, match="unknown multi-join config"):
            make_multi_config("ring9")
        # Binary registry is untouched by the fallthrough.
        assert "CHAIN3" not in available_configs()
