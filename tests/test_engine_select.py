"""Capability negotiation: select_engine, ExperimentSpec, and registries.

These are the unit tests of the dispatch layer itself — which engine a
preference resolves to, what the spec validator rejects, and how the
string-keyed registries (engines, policies, streams, configs) report
unknown names.
"""

from __future__ import annotations

import logging

import pytest

from repro.core.lifetime import LExp
from repro.experiments.configs import (
    available_configs,
    available_multi_configs,
    make_config,
    make_multi_config,
)
from repro.policies import available_policies, make_policy
from repro.policies.heeb_policy import GenericJoinHeeb, HeebPolicy
from repro.sim.engine import (
    BatchEngine,
    Engine,
    EngineRun,
    ExperimentSpec,
    ParallelEngine,
    ScalarEngine,
    _FALLBACK_WARNED,
    available_engines,
    get_engine,
    register_engine,
    select_engine,
)
from repro.streams import available_streams, make_stream
from repro.streams.noise import from_mapping


def _join_spec(**overrides) -> ExperimentSpec:
    defaults = dict(kind="join", cache_size=4)
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def _rand_factory():
    return make_policy("rand", seed=0)


class TestExperimentSpec:
    def test_defaults(self):
        spec = _join_spec()
        assert spec.warmup == 0
        assert spec.window is None
        assert spec.band == 0

    @pytest.mark.parametrize(
        "overrides, message",
        [
            (dict(kind="nope"), "unknown kind"),
            (dict(cache_size=0), "cache_size"),
            (dict(warmup=-1), "warmup"),
            (dict(window=-2), "window"),
            (dict(band=-1), "band"),
        ],
    )
    def test_validation(self, overrides, message):
        with pytest.raises(ValueError, match=message):
            _join_spec(**overrides)

    def test_multi_join_needs_queries(self):
        with pytest.raises(ValueError, match="at least one query"):
            ExperimentSpec(kind="multi_join", cache_size=4)


class TestSelectEngine:
    def test_no_preference_is_scalar(self):
        chosen = select_engine(_join_spec(), _rand_factory)
        assert isinstance(chosen, ScalarEngine)

    def test_supported_preference_is_honoured(self):
        chosen = select_engine(_join_spec(), _rand_factory, prefer="batch")
        assert isinstance(chosen, BatchEngine)

    def test_engine_instance_preference(self):
        eng = ParallelEngine(max_workers=2)
        assert select_engine(_join_spec(), _rand_factory, prefer=eng) is eng

    def test_single_worker_parallel_negotiates_to_scalar(self, caplog):
        """A parallel engine whose effective worker count is 1 only adds
        fork overhead; the resolver must drop to scalar and warn once."""
        eng = ParallelEngine(max_workers=1)
        assert eng.supports(_join_spec(), _rand_factory) is not None
        _FALLBACK_WARNED.clear()
        with caplog.at_level(logging.WARNING, logger="repro.sim.engine"):
            first = select_engine(_join_spec(), _rand_factory, prefer=eng)
            second = select_engine(_join_spec(), _rand_factory, prefer=eng)
        assert isinstance(first, ScalarEngine)
        assert isinstance(second, ScalarEngine)
        warnings = [
            r
            for r in caplog.records
            if "falling back to the scalar engine" in r.getMessage()
        ]
        assert len(warnings) == 1

    def test_unsupported_preference_falls_back_and_warns_once(self, caplog):
        """Batch cannot run windowed generic HEEB; the resolver must pick
        scalar and say so exactly once per (engine, reason) pair."""
        factory = lambda: HeebPolicy(GenericJoinHeeb(LExp(5.0), horizon=40))
        spec = _join_spec(window=8)
        _FALLBACK_WARNED.clear()
        with caplog.at_level(logging.WARNING, logger="repro.sim.engine"):
            first = select_engine(spec, factory, prefer="batch")
            second = select_engine(spec, factory, prefer="batch")
        assert isinstance(first, ScalarEngine)
        assert isinstance(second, ScalarEngine)
        warnings = [
            r
            for r in caplog.records
            if "falling back to the scalar engine" in r.getMessage()
        ]
        assert len(warnings) == 1

    def test_batch_accepts_multi_join(self):
        """Multi-join specs negotiate onto the batch tier when the policy
        has an exact adapter (the old blanket rejection is gone)."""
        spec = ExperimentSpec(
            kind="multi_join", cache_size=4, queries=[("A", "B")]
        )
        assert BatchEngine().supports(spec, _rand_factory) is None
        chosen = select_engine(spec, _rand_factory, prefer="batch")
        assert isinstance(chosen, BatchEngine)

    def test_batch_rejects_unbatchable_multi_join_policy(self):
        """Policies without a multi-join adapter still fall back."""
        from repro.policies.scheduled import ScheduledPolicy

        spec = ExperimentSpec(
            kind="multi_join", cache_size=4, queries=[("A", "B")]
        )
        factory = lambda: ScheduledPolicy({})
        assert BatchEngine().supports(spec, factory) is not None
        _FALLBACK_WARNED.clear()
        chosen = select_engine(spec, factory, prefer="batch")
        assert isinstance(chosen, ScalarEngine)


class TestEngineRegistry:
    def test_builtins_present_scalar_first(self):
        names = available_engines()
        assert names[0] == "scalar"
        assert {"scalar", "batch", "parallel"} <= set(names)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("warp-drive")

    def test_custom_engine_registration(self):
        class NullEngine(Engine):
            name = "null"

            def supports(self, spec, policy_factory):
                return None

            def run(self, spec, policy_factory, data):
                return EngineRun(policy_name="null", per_run=[])

        register_engine("null", NullEngine)
        try:
            assert "null" in available_engines()
            assert isinstance(get_engine("null"), NullEngine)
        finally:
            from repro.sim.engine import _ENGINE_FACTORIES

            _ENGINE_FACTORIES.pop("null", None)


class TestNameRegistries:
    def test_policy_registry(self):
        assert "heeb" in available_policies()
        assert make_policy("RAND", seed=3).name == "RAND"
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("clairvoyant")

    def test_stream_registry(self):
        assert "ar1" in available_streams()
        model = make_stream(
            "Stationary", dist=from_mapping({1: 0.5, 2: 0.5})
        )
        assert model.sample_path(3, __import__("numpy").random.default_rng(0))
        with pytest.raises(ValueError, match="unknown stream"):
            make_stream("brownian-bridge")

    def test_config_registry(self):
        assert available_configs() == ("TOWER", "ROOF", "FLOOR", "WALK")
        assert make_config("tower").name == "TOWER"
        with pytest.raises(ValueError, match="unknown config"):
            make_config("cliff")

    def test_multi_config_registry(self):
        assert available_multi_configs() == ("CHAIN3", "STAR5")
        chain = make_multi_config("chain3")
        assert chain.name == "CHAIN3"
        assert list(chain.models) == ["A", "B", "C"]
        star = make_multi_config("STAR5")
        assert len(star.queries) == 4
        # make_config falls through to the multi registry by name.
        assert make_config("chain3").name == "CHAIN3"
        with pytest.raises(ValueError, match="unknown multi-join config"):
            make_multi_config("ring9")
        # Binary registry is untouched by the fallthrough.
        assert "CHAIN3" not in available_configs()
