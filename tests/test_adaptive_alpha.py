"""Tests for runtime-adaptive α calibration (the paper's future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lifetime import LExp, mean_lifetime_for_alpha
from repro.policies import AdaptiveAlphaHeebPolicy, TrendJoinHeeb
from repro.policies.heeb_policy import GenericJoinHeeb, HeebPolicy
from repro.sim.join_sim import JoinSimulator
from repro.streams import LinearTrendStream, bounded_normal


def trend_models():
    r = LinearTrendStream(bounded_normal(10, 1.0), speed=1.0, lag=1)
    s = LinearTrendStream(bounded_normal(15, 2.0), speed=1.0)
    return r, s


class TestConstruction:
    def test_rejects_bad_params(self):
        factory = lambda est: TrendJoinHeeb(est)  # noqa: E731
        with pytest.raises(ValueError):
            AdaptiveAlphaHeebPolicy(factory, initial_alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveAlphaHeebPolicy(factory, 2.0, smoothing=0.0)
        with pytest.raises(ValueError):
            AdaptiveAlphaHeebPolicy(factory, 2.0, rebuild_threshold=0.0)


class TestAdaptation:
    def test_alpha_converges_to_observed_lifetime(self):
        """After a long run, the calibrated α should predict a mean
        lifetime close to the lifetimes actually observed."""
        r_model, s_model = trend_models()
        rng = np.random.default_rng(0)
        r = r_model.sample_path(2000, rng)
        s = s_model.sample_path(2000, np.random.default_rng(1))
        policy = AdaptiveAlphaHeebPolicy(
            lambda est: TrendJoinHeeb(est), initial_alpha=50.0
        )
        JoinSimulator(10, policy, r_model=r_model, s_model=s_model).run(r, s)
        assert policy.rebuilds >= 1
        assert policy.alpha < 50.0  # badly-overestimated start corrected
        predicted = mean_lifetime_for_alpha(policy.alpha)
        assert policy._mean_lifetime == pytest.approx(predicted, rel=0.3)

    def test_no_rebuild_when_start_is_right(self):
        """Starting at the converged α should trigger few or no rebuilds."""
        r_model, s_model = trend_models()
        rng = np.random.default_rng(2)
        r = r_model.sample_path(1000, rng)
        s = s_model.sample_path(1000, np.random.default_rng(3))
        probe = AdaptiveAlphaHeebPolicy(
            lambda est: TrendJoinHeeb(est), initial_alpha=40.0
        )
        JoinSimulator(10, probe, r_model=r_model, s_model=s_model).run(r, s)
        settled_alpha = probe.alpha
        policy = AdaptiveAlphaHeebPolicy(
            lambda est: TrendJoinHeeb(est), initial_alpha=settled_alpha
        )
        JoinSimulator(10, policy, r_model=r_model, s_model=s_model).run(r, s)
        assert policy.rebuilds <= 2

    def test_adaptive_matches_calibrated_fixed_alpha(self):
        """Starting from a badly wrong α, the adaptive policy should land
        within a few percent of a hand-calibrated fixed-α HEEB."""
        from repro.core.lifetime import alpha_for_mean_lifetime

        r_model, s_model = trend_models()
        good_alpha = alpha_for_mean_lifetime(3.0)
        adaptive_total = fixed_total = 0
        for run in range(3):
            rng = np.random.default_rng(run)
            r = r_model.sample_path(1200, rng)
            s = s_model.sample_path(1200, np.random.default_rng(100 + run))
            adaptive = AdaptiveAlphaHeebPolicy(
                lambda est: TrendJoinHeeb(est), initial_alpha=200.0
            )
            fixed = HeebPolicy(TrendJoinHeeb(LExp(good_alpha)))
            adaptive_total += (
                JoinSimulator(10, adaptive, r_model=r_model, s_model=s_model)
                .run(r, s)
                .total_results
            )
            fixed_total += (
                JoinSimulator(10, fixed, r_model=r_model, s_model=s_model)
                .run(r, s)
                .total_results
            )
        assert adaptive_total >= 0.93 * fixed_total

    def test_reset_clears_state(self):
        r_model, s_model = trend_models()
        rng = np.random.default_rng(4)
        r = r_model.sample_path(500, rng)
        s = s_model.sample_path(500, np.random.default_rng(5))
        policy = AdaptiveAlphaHeebPolicy(
            lambda est: TrendJoinHeeb(est), initial_alpha=100.0
        )
        sim = JoinSimulator(8, policy, r_model=r_model, s_model=s_model)
        first = sim.run(r, s).total_results
        second = (
            JoinSimulator(8, policy, r_model=r_model, s_model=s_model)
            .run(r, s)
            .total_results
        )
        assert first == second  # reset makes runs reproducible

    def test_works_with_generic_strategy(self):
        r_model, s_model = trend_models()
        rng = np.random.default_rng(6)
        r = r_model.sample_path(200, rng)
        s = s_model.sample_path(200, np.random.default_rng(7))
        policy = AdaptiveAlphaHeebPolicy(
            lambda est: GenericJoinHeeb(est, horizon=50), initial_alpha=10.0
        )
        result = JoinSimulator(
            5, policy, r_model=r_model, s_model=s_model
        ).run(r, s)
        assert result.total_results > 0
