"""Tests for precomputed-table persistence and the AR(1) joining surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lifetime import LExp
from repro.core.precompute import (
    ar1_h2_cache,
    ar1_h2_join,
    load_tables,
    random_walk_h1_join,
    save_tables,
)
from repro.core.tuples import StreamTuple
from repro.policies.base import PolicyContext
from repro.policies.heeb_policy import AR1JoinHeeb, GenericJoinHeeb
from repro.streams import AR1Stream, RandomWalkStream, discretized_normal


@pytest.fixture
def walk_table():
    walk = RandomWalkStream(discretized_normal(1.0))
    return random_walk_h1_join(walk, LExp(8.0), horizon=60)


@pytest.fixture
def ar1_surface():
    model = AR1Stream(phi0=2.0, phi1=0.6, sigma=2.0, bucket=1.0)
    center = model.stationary_mean
    grid = np.linspace(center - 5, center + 5, 5)
    return model, ar1_h2_cache(
        model, LExp(12.0), grid.round().astype(int), grid, exact_steps=40
    )


class TestPersistence:
    def test_h1_roundtrip(self, tmp_path, walk_table):
        path = tmp_path / "tables.npz"
        save_tables(path, walk=walk_table)
        loaded = load_tables(path)["walk"]
        for d in (-10, -1, 0, 3, 10, 999):
            assert loaded(d) == pytest.approx(walk_table(d))

    def test_h2_roundtrip(self, tmp_path, ar1_surface):
        model, surface = ar1_surface
        path = tmp_path / "tables.npz"
        save_tables(path, real=surface)
        loaded = load_tables(path)["real"]
        for v in surface.v_grid:
            for x in surface.x_grid:
                assert loaded(v, x) == pytest.approx(surface(v, x))
        # Off-grid spline evaluations agree too.
        assert loaded(
            surface.v_grid[1] + 0.4, surface.x_grid[2] + 0.7
        ) == pytest.approx(surface(surface.v_grid[1] + 0.4, surface.x_grid[2] + 0.7))

    def test_mixed_bundle(self, tmp_path, walk_table, ar1_surface):
        _, surface = ar1_surface
        path = tmp_path / "tables.npz"
        save_tables(path, walk=walk_table, real=surface)
        loaded = load_tables(path)
        assert set(loaded) == {"walk", "real"}

    def test_rejects_unknown_type(self, tmp_path):
        with pytest.raises(TypeError):
            save_tables(tmp_path / "x.npz", bad=object())


class TestAR1JoinStrategy:
    def test_matches_generic_on_bucket_centers(self):
        model = AR1Stream(phi0=2.0, phi1=0.6, sigma=2.0, bucket=1.0)
        estimator = LExp(10.0)
        horizon = estimator.suggested_horizon(1e-8)
        center = model.stationary_mean
        v_grid = np.arange(int(center) - 5, int(center) + 6)
        x_grid = np.arange(int(center) - 5, int(center) + 6, dtype=float)
        surface = ar1_h2_join(model, estimator, v_grid, x_grid, horizon)
        strategy = AR1JoinHeeb(model, surface)
        generic = GenericJoinHeeb(estimator, horizon=horizon)
        t0 = 4
        anchor = int(center)
        ctx = PolicyContext(
            kind="join",
            time=t0,
            cache_size=5,
            r_history=[anchor] * (t0 + 1),
            s_history=[anchor] * (t0 + 1),
            r_model=model,
            s_model=model,
        )
        for i, v in enumerate(range(anchor - 4, anchor + 5)):
            tup = StreamTuple(i, "S", v, t0)
            # Control points are exact; interior agreement within spline
            # tolerance of the surface scale.
            assert strategy.h_value(tup, ctx) == pytest.approx(
                generic.h_value(tup, ctx), abs=5e-3
            )

    def test_empty_history_scores_zero(self):
        model = AR1Stream(phi0=2.0, phi1=0.6, sigma=2.0, bucket=1.0)
        grid = np.linspace(0, 10, 5)
        surface = ar1_h2_join(model, LExp(5.0), grid, grid, horizon=40)
        strategy = AR1JoinHeeb(model, surface)
        ctx = PolicyContext(
            kind="join",
            time=0,
            cache_size=2,
            r_history=[None],
            s_history=[None],
            r_model=model,
            s_model=model,
        )
        assert strategy.h_value(StreamTuple(0, "S", 5, 0), ctx) == 0.0
