"""Tests for lifetime estimators (Section 4.3's L functions)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lifetime import (
    LExp,
    LFixed,
    LInf,
    LInv,
    WindowedLExp,
    alpha_for_mean_lifetime,
    check_lifetime_properties,
    mean_lifetime_for_alpha,
)


class TestLFixed:
    def test_step_shape(self):
        L = LFixed(3)
        assert [L(dt) for dt in range(1, 6)] == [1.0, 1.0, 1.0, 0.0, 0.0]

    def test_horizon(self):
        assert LFixed(7).suggested_horizon() == 7

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            LFixed(0)


class TestLInf:
    def test_constant_one(self):
        L = LInf()
        assert L(1) == 1.0 and L(1000) == 1.0
        assert L.suggested_horizon() is None


class TestLInv:
    def test_inverse(self):
        L = LInv()
        assert L(4) == pytest.approx(0.25)
        assert L(0) == 0.0


class TestLExp:
    def test_values(self):
        L = LExp(10.0)
        assert L(1) == pytest.approx(math.exp(-0.1))
        assert L(10) == pytest.approx(math.exp(-1.0))

    def test_weights_vectorized(self):
        L = LExp(5.0)
        w = L.weights(20)
        assert np.allclose(w, [L(dt) for dt in range(1, 21)])

    def test_horizon_decay(self):
        L = LExp(10.0)
        h = L.suggested_horizon(1e-6)
        assert L(h) <= 1e-6 * 1.001
        assert L(h - 5) > 1e-6

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            LExp(0.0)

    def test_zero_before_one(self):
        assert LExp(3.0)(0) == 0.0


class TestWindowedLExp:
    def test_clips_at_remaining(self):
        L = WindowedLExp(10.0, remaining=3)
        assert L(3) > 0.0
        assert L(4) == 0.0

    def test_matches_lexp_inside(self):
        base = LExp(7.0)
        win = WindowedLExp(7.0, remaining=5)
        for dt in range(1, 6):
            assert win(dt) == pytest.approx(base(dt))

    def test_zero_remaining(self):
        L = WindowedLExp(2.0, remaining=0)
        assert L(1) == 0.0

    def test_rejects_negative_remaining(self):
        with pytest.raises(ValueError):
            WindowedLExp(1.0, remaining=-1)


class TestCalibration:
    def test_roundtrip(self):
        for life in (2.0, 5.0, 12.5, 100.0):
            alpha = alpha_for_mean_lifetime(life)
            assert mean_lifetime_for_alpha(alpha) == pytest.approx(life)

    def test_rejects_short_lifetime(self):
        with pytest.raises(ValueError):
            alpha_for_mean_lifetime(1.0)

    def test_monotone(self):
        assert alpha_for_mean_lifetime(20) > alpha_for_mean_lifetime(5)


class TestPropertyChecker:
    @pytest.mark.parametrize(
        "estimator",
        [LFixed(5), LInf(), LInv(), LExp(3.0), WindowedLExp(3.0, 10)],
    )
    def test_all_catalog_estimators_pass(self, estimator):
        assert check_lifetime_properties(estimator) == []

    def test_detects_violations(self):
        from repro.core.lifetime import LifetimeEstimator

        class Bad(LifetimeEstimator):
            def __call__(self, dt):
                return 2.0 if dt == 3 else math.exp(-dt / 3.0)

        problems = check_lifetime_properties(Bad())
        assert problems  # both range and monotonicity violated


class TestPropertiesHypothesis:
    @given(st.floats(min_value=0.5, max_value=200.0))
    @settings(max_examples=50, deadline=None)
    def test_lexp_satisfies_paper_properties(self, alpha):
        L = LExp(alpha)
        assert check_lifetime_properties(L, horizon=100) == []
        # Property 5: L(1) > 0 so strong dominance is actionable.
        assert L(1) > 0.0

    @given(
        st.floats(min_value=0.5, max_value=50.0),
        st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_windowed_lexp_satisfies_properties(self, alpha, remaining):
        L = WindowedLExp(alpha, remaining)
        assert check_lifetime_properties(L, horizon=80) == []
