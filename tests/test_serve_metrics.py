"""The serve tier's scrape surface: /metrics, /health, span histograms.

Pins the observability acceptance criteria:

* **scrape exactness** — every counter/timer in the merged recorder
  snapshot appears in the Prometheus rendering with the identical
  value, and the rendering parses back losslessly;
* **live endpoint** — ``start_metrics`` serves both documents over real
  sockets (fetched via ``asyncio.to_thread`` so the client never blocks
  the server's own event loop), rejects unknown paths and methods, and
  dies with the server;
* **reshard-surviving histograms** — span-latency counts are preserved
  exactly across a live reshard and keep accumulating afterwards;
* **queue-depth sampling at both ends** — enqueue- and dequeue-side
  samples mean the series sees drain phases, and ``ReplaySummary``
  reports its p99.
"""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro.obs import CounterRecorder
from repro.obs.promtext import parse_prometheus_text, render_prometheus
from repro.obs.hist import LogHistogram
from repro.policies import make_policy
from repro.serve import (
    MetricsEndpoint,
    StreamServer,
    merged_snapshot,
    metrics_text,
    run_replay,
    server_health,
)
from repro.sim import ExperimentSpec

TIMEOUT = 30


def run(coro):
    """Run a coroutine under the suite's hang guard."""
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


def join_spec(cache_size: int = 8) -> ExperimentSpec:
    return ExperimentSpec(kind="join", cache_size=cache_size)


def _get(url: str) -> tuple[int, str, str]:
    """Blocking GET: (status, content-type, body). Call via to_thread."""
    with urllib.request.urlopen(url, timeout=5) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


class TestPromText:
    """render_prometheus ⟷ parse_prometheus_text is lossless."""

    def test_round_trip_all_families(self):
        hist = LogHistogram("serve.span.decide_ms")
        for v in (0.5, 1.5, 700.0):
            hist.observe(v)
        text = render_prometheus(
            counters={"sim.steps": 41, "serve.ingested": 40},
            timers={"flow.solve": {"seconds": 1.25, "calls": 3}},
            gauges=[("shard_alive", {"shard": 0}, 1.0)],
            histograms={"serve.span.decide_ms": hist},
        )
        samples = parse_prometheus_text(text)
        assert samples[("repro_counter_total", (("name", "sim.steps"),))] == 41
        assert (
            samples[("repro_timer_seconds_total", (("name", "flow.solve"),))]
            == 1.25
        )
        assert (
            samples[("repro_timer_calls_total", (("name", "flow.solve"),))]
            == 3
        )
        assert (
            samples[
                ("repro_gauge", (("name", "shard_alive"), ("shard", "0")))
            ]
            == 1.0
        )
        count_key = ("repro_latency_ms_count",
                     (("span", "serve.span.decide_ms"),))
        assert samples[count_key] == 3
        sum_key = ("repro_latency_ms_sum",
                   (("span", "serve.span.decide_ms"),))
        assert samples[sum_key] == pytest.approx(702.0)
        # The +Inf bucket carries the total count.
        inf_key = (
            "repro_latency_ms_bucket",
            (("le", "+Inf"), ("span", "serve.span.decide_ms")),
        )
        assert samples[inf_key] == 3

    def test_label_escaping_round_trips(self):
        text = render_prometheus(
            gauges=[("g", {"k": 'a"b\\c\nd'}, 1.0)]
        )
        ((name, labels),) = [
            key for key in parse_prometheus_text(text) if key[0] == "repro_gauge"
        ]
        assert dict(labels)["k"] == 'a"b\\c\nd'

    def test_empty_render_parses_to_nothing(self):
        assert parse_prometheus_text(render_prometheus()) == {}

    @pytest.mark.parametrize(
        "bad",
        [
            "# comment without HELP or TYPE\n",
            "metric_name not_a_number\n",
            'metric{name=unquoted} 1\n',
            "!!! 5\n",
            'dup{a="1"} 1\ndup{a="1"} 2\n',
        ],
    )
    def test_malformed_text_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_prometheus_text(bad)


class TestScrapeExactness:
    """/metrics counters equal the recorder snapshot, value for value."""

    def test_counters_and_timers_match_snapshot_exactly(self):
        recorder = CounterRecorder()

        async def go():
            server = StreamServer(
                join_spec(),
                lambda: make_policy("lru"),
                n_shards=2,
                recorder=recorder,
            )
            await server.start()
            for t in range(30):
                await server.submit(t, t % 5, (t + 2) % 5)
            await server.drain()
            snapshot = merged_snapshot(server)
            text = metrics_text(server)
            await server.stop()
            return snapshot, text

        snapshot, text = run(go())
        samples = parse_prometheus_text(text)
        counters = snapshot["counters"]
        assert counters  # the run produced real counters
        for name, value in counters.items():
            key = ("repro_counter_total", (("name", name),))
            assert samples[key] == value, name
        scraped = [k for k in samples if k[0] == "repro_counter_total"]
        assert len(scraped) == len(counters)  # nothing extra either
        for name, timer in snapshot.get("timers", {}).items():
            key = ("repro_timer_seconds_total", (("name", name),))
            assert samples[key] == pytest.approx(timer["seconds"])

    def test_single_shard_snapshot_is_the_callers_recorder(self):
        recorder = CounterRecorder()

        async def go():
            server = StreamServer(
                join_spec(), lambda: make_policy("lru"), recorder=recorder
            )
            await server.start()
            for t in range(10):
                await server.submit(t, t % 3, t % 4)
            await server.drain()
            merged = merged_snapshot(server)
            await server.stop()
            return merged

        merged = run(go())
        assert merged["counters"]["sim.steps"] == 10
        assert merged["counters"]["sim.steps"] == recorder.counters["sim.steps"]

    def test_sharded_live_scrape_sees_unmerged_fork_counters(self):
        # Before stop() the shard forks hold the sim counters; a live
        # merged_snapshot must already include them, and the post-stop
        # merge must not double-count.
        recorder = CounterRecorder()

        async def go():
            server = StreamServer(
                join_spec(),
                lambda: make_policy("lru"),
                n_shards=3,
                recorder=recorder,
            )
            await server.start()
            for t in range(24):
                await server.submit(t, t % 6, (t + 1) % 6)
            await server.drain()
            live = merged_snapshot(server)["counters"]["sim.steps"]
            applied = sum(s.events_applied for s in server.shards)
            await server.stop()
            final = merged_snapshot(server)["counters"]["sim.steps"]
            return live, applied, final

        live, applied, final = run(go())
        assert live == applied
        assert final == applied  # no double count after the stop-merge
        assert recorder.counters["sim.steps"] == applied


class TestLiveEndpoint:
    """The asyncio scrape endpoint over real sockets."""

    def test_scrape_metrics_and_health(self):
        async def go():
            server = StreamServer(
                join_spec(),
                lambda: make_policy("lru"),
                n_shards=2,
                recorder=CounterRecorder(),
            )
            await server.start()
            endpoint = await server.start_metrics(port=0)
            assert endpoint.port > 0
            assert server.metrics_endpoint is endpoint
            for t in range(20):
                await server.submit(t, t % 5, (t + 2) % 5)
            await server.drain()
            status, ctype, body = await asyncio.to_thread(
                _get, endpoint.url + "/metrics"
            )
            hstatus, hctype, hbody = await asyncio.to_thread(
                _get, endpoint.url + "/health"
            )
            await server.stop()
            return status, ctype, body, hstatus, hctype, hbody

        status, ctype, body, hstatus, hctype, hbody = run(go())
        assert status == 200
        assert "version=0.0.4" in ctype
        samples = parse_prometheus_text(body)  # also validates grammar
        families = {key[0] for key in samples}
        assert "repro_counter_total" in families
        assert "repro_gauge" in families
        assert "repro_latency_ms_bucket" in families
        assert "repro_latency_ms_count" in families
        assert hstatus == 200
        assert hctype.startswith("application/json")
        health = json.loads(hbody)
        assert health["status"] == "ok"
        assert health["n_shards"] == 2
        assert len(health["shards"]) == 2
        assert all(row["alive"] for row in health["shards"])
        assert "serve.span.decide_ms" in health["latency"]

    def test_unknown_path_and_method_rejected(self):
        async def go():
            server = StreamServer(join_spec(), lambda: make_policy("lru"))
            await server.start()
            endpoint = await server.start_metrics(port=0)

            def post(url):
                req = urllib.request.Request(url, data=b"", method="POST")
                with urllib.request.urlopen(req, timeout=5) as resp:
                    return resp.status

            codes = {}
            try:
                await asyncio.to_thread(_get, endpoint.url + "/nope")
            except urllib.error.HTTPError as exc:
                codes["path"] = exc.code
            try:
                await asyncio.to_thread(post, endpoint.url + "/metrics")
            except urllib.error.HTTPError as exc:
                codes["method"] = exc.code
            await server.stop()
            return codes

        codes = run(go())
        assert codes == {"path": 404, "method": 405}

    def test_double_start_rejected_and_stop_closes(self):
        async def go():
            server = StreamServer(join_spec(), lambda: make_policy("lru"))
            await server.start()
            endpoint = await server.start_metrics(port=0)
            with pytest.raises(RuntimeError):
                await server.start_metrics(port=0)
            url = endpoint.url
            await server.stop()  # closes the endpoint too
            assert server.metrics_endpoint is None
            await server.stop_metrics()  # idempotent after close
            try:
                await asyncio.to_thread(_get, url + "/health")
            except (urllib.error.URLError, OSError):
                return True
            return False

        assert run(go()) is True

    def test_standalone_endpoint_lifecycle(self):
        async def go():
            server = StreamServer(join_spec(), lambda: make_policy("lru"))
            await server.start()
            endpoint = MetricsEndpoint(server, port=0)
            assert endpoint.port == 0  # unbound until start
            await endpoint.start()
            with pytest.raises(RuntimeError):
                await endpoint.start()
            await endpoint.stop()
            await endpoint.stop()  # idempotent
            await server.stop()

        run(go())


class TestHealthDocument:
    """server_health status transitions and per-shard rows."""

    def test_status_lifecycle(self):
        async def go():
            server = StreamServer(join_spec(), lambda: make_policy("lru"))
            assert server_health(server)["status"] == "idle"
            await server.start()
            running = server_health(server)["status"]
            await server.stop()
            stopped = server_health(server)["status"]
            return running, stopped

        running, stopped = run(go())
        assert running == "ok"
        assert stopped == "stopped"

    def test_shard_rows_carry_operational_fields(self):
        async def go():
            server = StreamServer(
                join_spec(cache_size=4),
                lambda: make_policy("lru"),
                n_shards=2,
                recorder=CounterRecorder(),
            )
            await server.start()
            server.enable_spans()
            for t in range(30):
                await server.submit(t, t % 5, (t + 1) % 5)
            await server.drain()
            health = server_health(server)
            await server.stop()
            return health

        health = run(go())
        row = health["shards"][0]
        for field in (
            "shard",
            "alive",
            "queue_depth",
            "queue_maxsize",
            "queue_saturation",
            "events_applied",
            "occupancy",
            "max_queue_depth",
            "backpressure_waits",
            "backpressure_duty",
            "p99_decide_ms",
        ):
            assert field in row
        assert health["uptime_seconds"] > 0
        applied = sum(r["events_applied"] for r in health["shards"])
        assert applied == health["latency"]["serve.span.decide_ms"]["count"]


class TestSpanHistogramsOnServer:
    """Span latency survives fork/merge and live resharding."""

    def test_histogram_counts_survive_live_reshard(self):
        async def go():
            server = StreamServer(
                join_spec(cache_size=50),
                lambda: make_policy("lru"),
                n_shards=2,
            )
            await server.start()
            server.enable_spans()
            for t in range(40):
                await server.submit(t, t % 6, (t + 3) % 6)
            await server.drain()
            before = server.latency_histograms()["serve.span.decide_ms"]
            count_before = before.count
            sum_before = before.total
            await server.reshard(3)
            after = server.latency_histograms()["serve.span.decide_ms"]
            # Exact preservation: the retiring shards' histograms were
            # folded into the server set, bucket by bucket.
            preserved = (
                after.count == count_before
                and after.total == pytest.approx(sum_before)
                and after.counts == before.counts
            )
            for t in range(40, 55):
                await server.submit(t, t % 6, (t + 3) % 6)
            await server.drain()
            new_applied = sum(s.events_applied for s in server.shards)
            await server.stop()
            final = server.latency_histograms()["serve.span.decide_ms"]
            return preserved, count_before, new_applied, final

        preserved, count_before, new_applied, final = run(go())
        assert preserved
        # Post-reshard events keep accumulating into the merged view.
        assert final.count == count_before + new_applied
        assert final.quantile(0.99) is not None

    def test_spans_off_by_default_under_null_recorder(self):
        async def go():
            server = StreamServer(join_spec(), lambda: make_policy("lru"))
            await server.start()
            for t in range(10):
                await server.submit(t, t % 3, t % 4)
            await server.stop()
            return server.latency_histograms(), server.span_p99_ms()

        hists, p99 = run(go())
        assert hists == {}
        assert p99 is None

    def test_span_p99_ms_accessor(self):
        async def go():
            server = StreamServer(join_spec(), lambda: make_policy("lru"))
            await server.start()
            server.enable_spans()
            for t in range(15):
                await server.submit(t, t % 3, t % 4)
            await server.stop()
            return server

        server = run(go())
        assert server.span_p99_ms("decide") > 0
        assert server.span_p99_ms("submit") > 0
        assert server.span_p99_ms("no_such_span") is None


class TestQueueDepthSampling:
    """Depth is sampled at enqueue *and* dequeue (satellite 1)."""

    def test_two_samples_per_event(self):
        recorder = CounterRecorder()

        async def go():
            server = StreamServer(
                join_spec(), lambda: make_policy("lru"), recorder=recorder
            )
            await server.start()
            for t in range(12):
                await server.submit(t, t % 4, t % 5)
            await server.drain()
            await server.stop()
            return sum(s.events_applied for s in server.shards)

        applied = run(go())
        series = recorder.series_data["serve.queue_depth"]
        assert series.count == 2 * applied
        # Dequeue-side samples see the drained tail, so the series
        # minimum reaches an empty queue even under producer pressure.
        assert series.vmin == 0


class TestReplaySummary:
    """run_replay surfaces the new latency and duty-cycle fields."""

    R = [i % 7 for i in range(80)]
    S = [(i + 3) % 7 for i in range(80)]

    def test_counting_replay_reports_p99s(self):
        recorder = CounterRecorder()
        summary = run_replay(
            join_spec(),
            lambda: make_policy("lru"),
            self.R,
            self.S,
            n_shards=2,
            recorder=recorder,
        )
        assert summary.p99_queue_depth is not None
        assert summary.p90_queue_depth is not None
        assert 0.0 <= summary.backpressure_duty <= 1.0
        # CounterRecorder enables spans, so decide latency is measured.
        assert summary.p99_decide_ms > 0
        out = summary.as_dict()
        for key in ("p99_queue_depth", "backpressure_duty", "p99_decide_ms"):
            assert key in out

    def test_metrics_port_forces_spans_even_unrecorded(self):
        summary = run_replay(
            join_spec(),
            lambda: make_policy("lru"),
            self.R,
            self.S,
            metrics_port=0,
        )
        assert summary.p99_decide_ms > 0  # endpoint enabled spans
        assert summary.p99_queue_depth is None  # no counting recorder

    def test_health_path_writes_live_snapshot(self, tmp_path):
        out = tmp_path / "health.json"
        run_replay(
            join_spec(),
            lambda: make_policy("lru"),
            self.R,
            self.S,
            n_shards=2,
            recorder=CounterRecorder(),
            health_path=str(out),
        )
        health = json.loads(out.read_text(encoding="utf-8"))
        # Written after drain but before stop: the snapshot shows a
        # healthy serving state, not a corpse.
        assert health["status"] == "ok"
        assert len(health["shards"]) == 2
        assert all(row["alive"] for row in health["shards"])
        assert "serve.span.decide_ms" in health["latency"]
