"""Tests for the stream models (repro.streams)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams import (
    AR1Stream,
    History,
    LinearTrendStream,
    OfflineStream,
    RandomWalkStream,
    StationaryStream,
    TabularStream,
    as_history,
    bounded_normal,
    bounded_uniform,
    discretized_normal,
    from_mapping,
)


class TestHistory:
    def test_as_history(self):
        h = as_history([1, 2, 3], 1)
        assert h.now == 1 and h.last_value == 2

    def test_as_history_bounds(self):
        with pytest.raises(ValueError):
            as_history([1], 1)

    def test_check_time_rejects_past(self, stationary_stream):
        with pytest.raises(ValueError):
            stationary_stream.cond_dist(3, History(now=5, last_value=1))

    def test_check_time_rejects_negative(self, stationary_stream):
        with pytest.raises(ValueError):
            stationary_stream.cond_dist(-1)


class TestOfflineStream:
    def test_value_at(self):
        s = OfflineStream([7, None, 9])
        assert s.value_at(0) == 7
        assert s.value_at(1) is None
        assert s.value_at(99) is None  # beyond the sequence: "−"

    def test_prob_is_indicator(self):
        s = OfflineStream([7, None, 9])
        assert s.prob(0, 7) == 1.0
        assert s.prob(0, 8) == 0.0
        assert s.prob(1, 7) == 0.0  # "−" joins nothing

    def test_support(self):
        s = OfflineStream([7, None])
        assert s.support(0) == [(7, 1.0)]
        assert s.support(1) == []

    def test_cond_dist_raises_on_null_step(self):
        s = OfflineStream([7, None])
        with pytest.raises(ValueError):
            s.cond_dist(1)

    def test_sample_path_is_the_sequence(self, rng):
        s = OfflineStream([1, 2, 3])
        assert s.sample_path(5, rng) == [1, 2, 3, None, None]

    def test_next_occurrence(self):
        s = OfflineStream([1, 2, 1, 3, 1])
        assert s.next_occurrence(1, 0) == 2
        assert s.next_occurrence(1, 2) == 4
        assert s.next_occurrence(1, 4) is None
        assert s.next_occurrence(9, 0) is None

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            OfflineStream([])


class TestStationaryStream:
    def test_cond_dist_time_invariant(self, stationary_stream):
        d1 = stationary_stream.cond_dist(1)
        d2 = stationary_stream.cond_dist(100)
        assert d1.allclose(d2)

    def test_sample_frequencies(self, stationary_stream, rng):
        path = stationary_stream.sample_path(30_000, rng)
        freq = sum(1 for v in path if v == 1) / len(path)
        assert freq == pytest.approx(0.5, abs=0.02)

    def test_is_independent(self, stationary_stream):
        assert stationary_stream.is_independent


class TestLinearTrendStream:
    def test_trend_with_lag(self):
        s = LinearTrendStream(bounded_uniform(2), speed=1.0, lag=3)
        assert s.trend(3) == 0
        assert s.trend(10) == 7

    def test_window(self):
        s = LinearTrendStream(bounded_uniform(2), speed=1.0)
        assert s.window(10) == (8, 12)

    def test_prob_matches_cond_dist(self, lagged_trend_stream):
        s = lagged_trend_stream
        d = s.cond_dist(20)
        for v in range(10, 30):
            assert s.prob(20, v) == pytest.approx(d.pmf(v))

    def test_prob_outside_window_zero(self, trend_stream):
        lo, hi = trend_stream.window(50)
        assert trend_stream.prob(50, lo - 1) == 0.0
        assert trend_stream.prob(50, hi + 1) == 0.0

    def test_samples_stay_in_window(self, trend_stream, rng):
        path = trend_stream.sample_path(200, rng)
        for t, v in enumerate(path):
            lo, hi = trend_stream.window(t)
            assert lo <= v <= hi

    def test_none_prob_zero(self, trend_stream):
        assert trend_stream.prob(5, None) == 0.0

    def test_rejects_negative_speed(self):
        with pytest.raises(ValueError):
            LinearTrendStream(bounded_uniform(1), speed=-1.0)

    def test_fractional_speed_trend(self):
        s = LinearTrendStream(bounded_uniform(1), speed=0.5)
        assert s.trend(4) == 2
        assert s.trend(5) in (2, 3)  # rounding


class TestRandomWalkStream:
    def test_step_sum_is_iterated_convolution(self, walk_stream):
        s1 = walk_stream.step_sum(1)
        s2 = walk_stream.step_sum(2)
        assert s2.allclose(s1.convolve(s1), atol=1e-9)

    def test_cond_dist_anchors_on_history(self, walk_stream):
        h = History(now=10, last_value=100)
        d = walk_stream.cond_dist(11, h)
        assert d.mean() == pytest.approx(100.0, abs=1e-9)

    def test_drift_shifts_mean(self, drifting_walk_stream):
        h = History(now=0, last_value=0)
        d = drifting_walk_stream.cond_dist(5, h)
        assert d.mean() == pytest.approx(10.0, abs=1e-6)

    def test_variance_grows_linearly(self, walk_stream):
        h = History(now=0, last_value=0)
        v1 = walk_stream.cond_dist(1, h).variance()
        v4 = walk_stream.cond_dist(4, h).variance()
        assert v4 == pytest.approx(4 * v1, rel=0.01)

    def test_prob_matches_cond_dist(self, walk_stream):
        h = History(now=0, last_value=5)
        d = walk_stream.cond_dist(3, h)
        for v in range(-5, 16):
            assert walk_stream.prob(3, v, h) == pytest.approx(d.pmf(v))

    def test_sample_path_statistics(self, walk_stream, rng):
        # Across many short paths the one-step increments have mean ~0, var ~1.
        increments = []
        for _ in range(300):
            path = walk_stream.sample_path(10, rng)
            increments.extend(np.diff(path))
        increments = np.asarray(increments, dtype=float)
        assert increments.mean() == pytest.approx(0.0, abs=0.1)
        assert increments.var() == pytest.approx(1.0, abs=0.15)

    def test_sample_future_anchors(self, walk_stream, rng):
        h = History(now=7, last_value=50)
        path = walk_stream.sample_future(7, 5, rng, h)
        assert len(path) == 5
        assert abs(path[0] - 50) <= walk_stream.step.max_value

    def test_history_without_value_rejected(self, walk_stream):
        with pytest.raises(ValueError):
            walk_stream.cond_dist(3, History(now=1, last_value=None))

    def test_translation_invariance(self, walk_stream):
        """Theorem 5(2): the conditional pmf depends only on the offset."""
        h_a = History(now=0, last_value=10)
        h_b = History(now=0, last_value=-40)
        for d in (-3, 0, 2):
            assert walk_stream.prob(4, 10 + d, h_a) == pytest.approx(
                walk_stream.prob(4, -40 + d, h_b)
            )


class TestAR1Stream:
    def test_rejects_unit_root(self):
        with pytest.raises(ValueError):
            AR1Stream(0.0, 1.0, 1.0)

    def test_stationary_moments(self, ar1_stream):
        assert ar1_stream.stationary_mean == pytest.approx(5.59 / 0.28)
        assert ar1_stream.stationary_std == pytest.approx(
            4.22 / np.sqrt(1 - 0.72**2)
        )

    def test_conditional_moments_converge_to_stationary(self, ar1_stream):
        mean, std = ar1_stream.conditional_moments(200, 0.0)
        assert mean == pytest.approx(ar1_stream.stationary_mean, abs=1e-6)
        assert std == pytest.approx(ar1_stream.stationary_std, abs=1e-6)

    def test_one_step_moments(self, ar1_stream):
        mean, std = ar1_stream.conditional_moments(1, 10.0)
        assert mean == pytest.approx(5.59 + 0.72 * 10.0)
        assert std == pytest.approx(4.22)

    def test_cond_dist_sums_to_one(self, ar1_stream):
        h = History(now=0, last_value=ar1_stream.to_bucket(20.0))
        d = ar1_stream.cond_dist(3, h)
        assert sum(p for _, p in d.items()) == pytest.approx(1.0, abs=1e-6)

    def test_prob_matches_cond_dist(self, ar1_stream):
        h = History(now=0, last_value=40)
        d = ar1_stream.cond_dist(2, h)
        for v, p in list(d.items())[::5]:
            assert ar1_stream.prob(2, v, h) == pytest.approx(p, abs=1e-9)

    def test_sample_path_stationary_statistics(self, ar1_stream, rng):
        path = ar1_stream.sample_path(20_000, rng)
        latent = np.array(path) * ar1_stream.bucket
        assert latent.mean() == pytest.approx(
            ar1_stream.stationary_mean, abs=0.5
        )
        assert latent.std() == pytest.approx(
            ar1_stream.stationary_std, rel=0.1
        )

    def test_bucketing_roundtrip(self, ar1_stream):
        assert ar1_stream.to_bucket(ar1_stream.to_latent(37)) == 37


class TestTabularStream:
    def test_support_and_prob(self):
        s = TabularStream([[(1, 0.5), (2, 0.3)], []])
        assert s.support(0) == [(1, 0.5), (2, 0.3)]
        assert s.prob(0, 1) == 0.5
        assert s.prob(0, 3) == 0.0
        assert s.support(1) == []
        assert s.prob(1, 1) == 0.0
        assert s.support(5) == []  # beyond table: "−"

    def test_sampling_distribution(self, rng):
        s = TabularStream([[(1, 0.5)]] * 1)
        draws = [s.sample_path(1, np.random.default_rng(i))[0] for i in range(4000)]
        frac_none = sum(1 for d in draws if d is None) / len(draws)
        assert frac_none == pytest.approx(0.5, abs=0.03)

    def test_rejects_excess_mass(self):
        with pytest.raises(ValueError):
            TabularStream([[(1, 0.7), (2, 0.7)]])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            TabularStream([[(1, 0.2), (1, 0.2)]])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TabularStream([[(1, -0.1)]])

    def test_cond_dist_renormalizes(self):
        s = TabularStream([[(1, 0.25), (2, 0.25)]])
        d = s.cond_dist(0)
        assert d.pmf(1) == pytest.approx(0.5)

    def test_cond_dist_raises_on_null_step(self):
        s = TabularStream([[]])
        with pytest.raises(ValueError):
            s.cond_dist(0)
