"""Tests for HEEB values (Section 4.3, Theorem 4) and case-study rankings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dominance import dominates, strongly_dominates
from repro.core.ecb import ECB, ecb_cache, ecb_join
from repro.core.heeb import default_horizon, heeb_cache, heeb_from_ecb, heeb_join
from repro.core.lifetime import LExp, LFixed, LInf
from repro.streams import (
    History,
    LinearTrendStream,
    RandomWalkStream,
    StationaryStream,
    bounded_uniform,
    discretized_normal,
    from_mapping,
)


class TestBasics:
    def test_lfixed_gives_ecb_at_deltat(self, stationary_stream):
        """The paper's table: H^fixed = B(ΔT)."""
        b = ecb_join(stationary_stream, 0, 1, 20)
        h = heeb_from_ecb(b, LFixed(7))
        assert h == pytest.approx(b(7))

    def test_linf_gives_limit_for_caching(self, stationary_stream):
        """H^inf = lim B(Δt): the probability of any future reference."""
        b = ecb_cache(stationary_stream, 0, 1, 300)
        h = heeb_from_ecb(b, LInf())
        assert h == pytest.approx(b(300), abs=1e-9)
        assert h == pytest.approx(1.0, abs=1e-6)

    def test_heeb_join_equals_ecb_form(self, stationary_stream):
        """The two equivalent definitions of H agree (Lemma 1 applied)."""
        L = LExp(8.0)
        horizon = 200
        direct = heeb_join(stationary_stream, 0, 1, L, horizon)
        via_ecb = heeb_from_ecb(
            ecb_join(stationary_stream, 0, 1, horizon), L
        )
        assert direct == pytest.approx(via_ecb)

    def test_heeb_cache_equals_ecb_form(self, stationary_stream):
        L = LExp(8.0)
        horizon = 200
        direct = heeb_cache(stationary_stream, 0, 1, L, horizon)
        via_ecb = heeb_from_ecb(
            ecb_cache(stationary_stream, 0, 1, horizon), L
        )
        assert direct == pytest.approx(via_ecb)

    def test_none_value_zero(self, stationary_stream):
        assert heeb_join(stationary_stream, 0, None, LExp(5.0)) == 0.0
        assert heeb_cache(stationary_stream, 0, None, LExp(5.0)) == 0.0

    def test_default_horizon(self):
        assert default_horizon(LFixed(9)) == 9
        assert default_horizon(LInf(), fallback=123) == 123
        assert default_horizon(LExp(10.0)) == LExp(10.0).suggested_horizon()


class TestTheorem4:
    """Dominance in ECBs implies ordering in H (shared L)."""

    @st.composite
    @staticmethod
    def dominating_pair(draw):
        n = draw(st.integers(min_value=2, max_value=8))
        inc_low = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=0.5),
                min_size=n,
                max_size=n,
            )
        )
        extra = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=0.5),
                min_size=n,
                max_size=n,
            )
        )
        low = np.cumsum(inc_low)
        high = np.cumsum(np.asarray(inc_low) + np.asarray(extra))
        return ECB(high), ECB(low)

    @given(dominating_pair(), st.floats(min_value=0.5, max_value=50.0))
    @settings(max_examples=80, deadline=None)
    def test_h_respects_dominance(self, pair, alpha):
        high, low = pair
        assert dominates(high, low)
        L = LExp(alpha)
        assert heeb_from_ecb(high, L) >= heeb_from_ecb(low, L) - 1e-12

    def test_h_strict_under_strong_dominance(self):
        high = ECB([0.3, 0.7, 1.2])
        low = ECB([0.1, 0.4, 0.8])
        assert strongly_dominates(high, low)
        L = LExp(4.0)
        assert heeb_from_ecb(high, L) > heeb_from_ecb(low, L)


class TestCaseStudyRankings:
    def test_stationary_caching_ranks_by_probability(self):
        """Section 5.2: discard lowest reference probability (LFU / A_o)."""
        ref = StationaryStream(from_mapping({1: 0.5, 2: 0.3, 3: 0.2}))
        L = LExp(10.0)
        h = {v: heeb_cache(ref, 0, v, L) for v in (1, 2, 3)}
        assert h[1] > h[2] > h[3]

    def test_stationary_joining_ranks_by_probability(self):
        """Section 5.2: PROB's ordering is optimal here."""
        partner = StationaryStream(from_mapping({1: 0.5, 2: 0.3, 3: 0.2}))
        L = LExp(10.0)
        h = {v: heeb_join(partner, 0, v, L) for v in (1, 2, 3)}
        assert h[1] > h[2] > h[3]

    def test_trend_caching_ranks_by_value(self):
        """Section 5.3: discard the smallest join value."""
        ref = LinearTrendStream(bounded_uniform(4), speed=1.0)
        L = LExp(6.0)
        t0 = 50
        values = [t0 - 4, t0 - 2, t0, t0 + 2, t0 + 4]
        hs = [heeb_cache(ref, t0, v, L) for v in values]
        assert all(a < b for a, b in zip(hs, hs[1:]))

    def test_zero_drift_walk_caching_ranks_by_distance(self):
        """Section 5.5: discard the value farthest from the current walk."""
        walk = RandomWalkStream(discretized_normal(1.0))
        history = History(now=10, last_value=100)
        L = LExp(10.0)
        distances = [0, 1, 3, 6, 10]
        hs = [
            heeb_cache(walk, 10, 100 + d, L, horizon=80, history=history)
            for d in distances
        ]
        assert all(a > b for a, b in zip(hs, hs[1:]))
        # Symmetry: equal distance, equal H.
        left = heeb_cache(walk, 10, 97, L, horizon=80, history=history)
        right = heeb_cache(walk, 10, 103, L, horizon=80, history=history)
        assert left == pytest.approx(right, rel=1e-9)
