"""Property-based invariants of the simulators.

A mirror tracker rebuilt purely from policy hooks must always agree with
the simulator's own accounting, for arbitrary streams and arbitrary
(valid) policies.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuples import StreamTuple
from repro.policies.base import PolicyContext, ReplacementPolicy
from repro.sim.cache_sim import CacheSimulator
from repro.sim.join_sim import JoinSimulator


class SeededArbitraryPolicy(ReplacementPolicy):
    """Evicts a pseudo-random but deterministic subset; mirrors the cache
    via hooks so tests can recount results independently."""

    name = "ARBITRARY"

    def __init__(self, seed: int):
        self._seed = seed
        self.mirror: dict[int, StreamTuple] = {}
        self.recount = 0

    def reset(self, ctx: PolicyContext) -> None:
        self._rng = np.random.default_rng(self._seed)
        self.mirror = {}
        self.recount = 0

    def select_victims(self, candidates, n_evict, ctx):
        if n_evict <= 0:
            return []
        order = sorted(candidates, key=lambda t: t.uid)
        picks = self._rng.choice(len(order), size=n_evict, replace=False)
        return [order[i] for i in picks]

    def on_admit(self, tup, t):
        self.mirror[tup.uid] = tup

    def on_evict(self, tup, t):
        self.mirror.pop(tup.uid, None)

    def on_reference(self, tup, t):
        self.recount += 1


value_lists = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=4)),
    min_size=1,
    max_size=40,
)


class TestJoinSimInvariants:
    @given(value_lists, value_lists, st.integers(1, 4), st.integers(0, 99))
    @settings(max_examples=60, deadline=None)
    def test_capacity_and_recount(self, r, s, k, seed):
        policy = SeededArbitraryPolicy(seed)
        sim = JoinSimulator(k, policy)
        result = sim.run(r, s)
        # Capacity invariant: never exceeds k after evictions.
        assert result.occupancy.max(initial=0) <= k
        # The hook-based mirror recounts exactly the simulator's results
        # (each on_reference is one produced result tuple).
        assert policy.recount == result.total_results
        # The mirror's final size equals the recorded final occupancy.
        if result.steps:
            assert len(policy.mirror) == result.occupancy[-1]

    @given(value_lists, value_lists, st.integers(1, 3), st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_windowed_run_never_beats_unwindowed(self, r, s, k, window):
        unwindowed = JoinSimulator(k, SeededArbitraryPolicy(1)).run(r, s)
        windowed = JoinSimulator(k, SeededArbitraryPolicy(1), window=window).run(
            r, s
        )
        # The same eviction choices with expiry on top cannot create
        # results out of thin air.  (Different candidate sets mean the
        # policies diverge, so compare against the trivial upper bound.)
        n = min(len(r), len(s))
        upper = sum(
            1
            for t in range(n)
            for u in range(t)
            if r[u] is not None and r[u] == s[t]
        ) + sum(
            1
            for t in range(n)
            for u in range(t)
            if s[u] is not None and s[u] == r[t]
        )
        assert windowed.total_results <= upper
        assert unwindowed.total_results <= upper

    @given(value_lists, value_lists, st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_results_after_warmup_bounded(self, r, s, k):
        sim = JoinSimulator(k, SeededArbitraryPolicy(0), warmup=5)
        result = sim.run(r, s)
        assert 0 <= result.results_after_warmup <= result.total_results


class TestCacheSimInvariants:
    @given(value_lists, st.integers(1, 4), st.integers(0, 99))
    @settings(max_examples=60, deadline=None)
    def test_hits_plus_misses(self, trace, k, seed):
        policy = SeededArbitraryPolicy(seed)
        result = CacheSimulator(k, policy).run(trace)
        n_refs = sum(1 for v in trace if v is not None)
        assert result.hits + result.misses == n_refs
        assert len(policy.mirror) <= k

    @given(value_lists, st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_lfd_never_worse_than_arbitrary(self, trace, k):
        from repro.policies.lfd import LfdPolicy

        arbitrary = CacheSimulator(k, SeededArbitraryPolicy(3)).run(trace)
        lfd = CacheSimulator(k, LfdPolicy(trace)).run(trace)
        assert lfd.hits >= arbitrary.hits
