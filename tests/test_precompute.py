"""Tests for precomputed HEEB functions (Theorem 5, Section 4.4.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.first_reference import first_reference_ar1
from repro.core.heeb import heeb_cache, heeb_join
from repro.core.lifetime import LExp
from repro.core.precompute import (
    H1Table,
    H2Surface,
    ar1_cache_heeb_values,
    ar1_h2_cache,
    ar1_h2_join,
    ar1_stationary_bucket_prob,
    random_walk_h1_cache,
    random_walk_h1_join,
)
from repro.streams import (
    AR1Stream,
    History,
    RandomWalkStream,
    discretized_normal,
)

ALPHA = 8.0


@pytest.fixture
def walk():
    return RandomWalkStream(discretized_normal(1.0))


@pytest.fixture
def drift_walk():
    return RandomWalkStream(discretized_normal(1.0), drift=2)


class TestH1Table:
    def test_out_of_grid_is_zero(self):
        t = H1Table(np.arange(-2, 3), np.ones(5))
        assert t(-3) == 0.0 and t(3) == 0.0
        assert t(0) == 1.0

    def test_rejects_non_contiguous(self):
        with pytest.raises(ValueError):
            H1Table(np.array([0, 2]), np.array([1.0, 1.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            H1Table(np.arange(3), np.ones(4))


class TestRandomWalkH1Join:
    def test_matches_direct_heeb(self, walk):
        estimator = LExp(ALPHA)
        horizon = estimator.suggested_horizon(1e-9)
        table = random_walk_h1_join(walk, estimator, horizon)
        history = History(now=5, last_value=42)
        for offset in (-6, -1, 0, 2, 7):
            direct = heeb_join(
                walk, 5, 42 + offset, estimator, horizon, history
            )
            assert table(offset) == pytest.approx(direct, abs=1e-10)

    def test_symmetric_for_zero_drift(self, walk):
        table = random_walk_h1_join(walk, LExp(ALPHA), horizon=60)
        for d in (1, 3, 8):
            assert table(d) == pytest.approx(table(-d), rel=1e-9)

    def test_drift_shifts_peak(self, drift_walk):
        """Figure-6 intuition: positive drift favors values ahead."""
        table = random_walk_h1_join(drift_walk, LExp(ALPHA), horizon=60)
        assert table(4) > table(-4)


class TestRandomWalkH1Cache:
    def test_matches_direct_heeb_cache(self, walk):
        estimator = LExp(ALPHA)
        horizon = 80
        table = random_walk_h1_cache(walk, estimator, horizon, max_offset=12)
        history = History(now=3, last_value=10)
        for offset in (-5, -1, 1, 4):
            direct = heeb_cache(
                walk, 3, 10 + offset, estimator, horizon, history
            )
            assert table(offset) == pytest.approx(direct, abs=1e-10)

    def test_zero_drift_ranks_by_distance(self, walk):
        """Section 5.5: zero drift + symmetric unimodal steps ⇒ H ranked
        by distance from the current position."""
        table = random_walk_h1_cache(walk, LExp(10.0), horizon=100, max_offset=15)
        values = [table(d) for d in range(0, 12)]
        assert all(a >= b - 1e-12 for a, b in zip(values[1:], values[2:]))

    def test_drift_curve_asymmetric(self, drift_walk):
        table = random_walk_h1_cache(
            drift_walk, LExp(10.0), horizon=80, max_offset=20
        )
        assert table(6) > table(-6)


class TestAR1StationaryProb:
    def test_sums_to_one(self, ar1_stream):
        lo = ar1_stream.to_bucket(
            ar1_stream.stationary_mean - 8 * ar1_stream.stationary_std
        )
        hi = ar1_stream.to_bucket(
            ar1_stream.stationary_mean + 8 * ar1_stream.stationary_std
        )
        total = sum(
            ar1_stationary_bucket_prob(ar1_stream, b) for b in range(lo, hi + 1)
        )
        assert total == pytest.approx(1.0, abs=1e-6)


class TestAR1CacheHeeb:
    def test_matches_first_reference_dp(self):
        """The vectorized surface column equals a weighted first-ref DP."""
        model = AR1Stream(phi0=2.0, phi1=0.6, sigma=2.0, bucket=1.0)
        estimator = LExp(10.0)
        horizon = 200
        x0 = 5.0
        taboo = 6
        h_vec = ar1_cache_heeb_values(
            model, taboo, np.array([x0]), estimator,
            exact_steps=horizon, close_tail=False,
        )[0]
        history = History(now=0, last_value=model.to_bucket(x0))
        first = first_reference_ar1(model, taboo, horizon, history)
        weights = estimator.weights(horizon)
        assert h_vec == pytest.approx(float(np.dot(first, weights)), abs=1e-6)

    def test_tail_closure_close_to_long_exact(self):
        """Geometric tail closure ≈ running the DP much longer."""
        model = AR1Stream(phi0=2.0, phi1=0.6, sigma=2.0, bucket=1.0)
        estimator = LExp(15.0)
        x0s = np.array([2.0, 5.0, 8.0])
        with_tail = ar1_cache_heeb_values(
            model, 5, x0s, estimator, exact_steps=40, close_tail=True
        )
        long_exact = ar1_cache_heeb_values(
            model, 5, x0s, estimator, exact_steps=400, close_tail=False
        )
        assert np.allclose(with_tail, long_exact, rtol=0.02, atol=1e-4)

    def test_near_anchor_values_score_higher(self, ar1_stream):
        estimator = LExp(20.0)
        x0 = ar1_stream.stationary_mean
        near = ar1_cache_heeb_values(
            ar1_stream, ar1_stream.to_bucket(x0), np.array([x0]), estimator
        )[0]
        far = ar1_cache_heeb_values(
            ar1_stream,
            ar1_stream.to_bucket(x0 + 4 * ar1_stream.stationary_std),
            np.array([x0]),
            estimator,
        )[0]
        assert near > far


class TestH2Surface:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            H2Surface(np.arange(5), np.arange(5), np.zeros((4, 5)))
        with pytest.raises(ValueError):
            H2Surface(np.arange(3), np.arange(5), np.zeros((3, 5)))

    def test_interpolates_control_points(self):
        v = np.arange(0, 5, dtype=float)
        x = np.arange(0, 5, dtype=float)
        vals = np.outer(v, x) * 0.01
        surf = H2Surface(v, x, vals)
        for i in range(5):
            for j in range(5):
                assert surf(v[i], x[j]) == pytest.approx(vals[i, j], abs=1e-9)

    def test_clamps_out_of_domain(self):
        v = np.arange(0, 5, dtype=float)
        surf = H2Surface(v, v, np.ones((5, 5)))
        assert surf(-100, 100) == pytest.approx(1.0)

    def test_cache_surface_spline_accuracy(self):
        """Figures 15/16: 25 control points approximate the true surface
        well relative to its magnitude."""
        model = AR1Stream(phi0=2.0, phi1=0.6, sigma=2.0, bucket=1.0)
        estimator = LExp(12.0)
        center = model.stationary_mean
        half = 2.0 * model.stationary_std
        v_grid = np.linspace(center - half, center + half, 5).round().astype(int)
        x_grid = np.linspace(center - half, center + half, 5)
        surface = ar1_h2_cache(model, estimator, v_grid, x_grid, exact_steps=50)
        # Exact values at off-grid points.
        test_v = int(round(center + 0.37 * half))
        test_x = center - 0.53 * half
        exact = ar1_cache_heeb_values(
            model, test_v, np.array([test_x]), estimator, exact_steps=50
        )[0]
        approx = surface(test_v, test_x)
        scale = float(np.max(surface.values))
        assert abs(approx - exact) < 0.1 * scale


class TestAR1JoinSurface:
    def test_matches_direct_heeb_join(self):
        model = AR1Stream(phi0=2.0, phi1=0.6, sigma=2.0, bucket=1.0)
        estimator = LExp(10.0)
        horizon = estimator.suggested_horizon(1e-8)
        center = model.stationary_mean
        v_grid = np.arange(int(center) - 4, int(center) + 5, 2)
        x_grid = np.linspace(center - 4, center + 4, 5)
        surface = ar1_h2_join(model, estimator, v_grid, x_grid, horizon)
        # At control points (v integer, x a bucket center), compare direct.
        v = int(v_grid[2])
        x = float(x_grid[1])
        history = History(now=0, last_value=model.to_bucket(x))
        # direct conditional uses the bucket-center latent; pick x exactly
        # on a bucket center so the anchors agree.
        x_centered = model.to_latent(model.to_bucket(x))
        direct = heeb_join(model, 0, v, estimator, horizon, history)
        approx_exact_point = ar1_h2_join(
            model, estimator, np.array([v - 2, v - 1, v, v + 1]),
            np.array([x_centered - 1.5, x_centered - 0.5, x_centered, x_centered + 1.0]),
            horizon,
        )
        assert approx_exact_point(v, x_centered) == pytest.approx(direct, abs=1e-6)
