"""Batch-vs-scalar parity for multi-join specs (the PR-7 acceptance gate).

``BatchEngine`` now accepts ``kind="multi_join"`` through the exact
multi-join policy adapters; every decision must be seed-for-seed
identical to the scalar reference: total and per-query results,
per-stream occupancy trajectories, :mod:`repro.obs` counters, and the
multi-join telemetry series (``cache.occupancy``, ``join.results.cum``,
``cache.hit_rate``), plus the policy-side series the batch tier mirrors
for exactly-scored adapters (``scores.cutoff``) and for the trie
replay (``trie.budget.<stream>``).  Trace events stay scalar-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lifetime import LExp
from repro.experiments.configs import make_multi_config
from repro.obs import CounterRecorder
from repro.policies import make_policy
from repro.policies.heeb_policy import GenericJoinHeeb, HeebPolicy
from repro.sim.engine import BatchEngine, ExperimentSpec, ScalarEngine, spawn_rng

MULTI_SERIES = (
    "cache.occupancy",
    "join.results.cum",
    "cache.hit_rate",
    "scores.cutoff",
)


def _trials(config, length, n_runs, seed, null_every=5):
    """Seeded trial streams with "−" holes so null paths are exercised."""
    trials = []
    for run in range(n_runs):
        rng = spawn_rng(seed, run)
        streams = {
            name: model.sample_path(length, rng)
            for name, model in config.models.items()
        }
        holes = np.random.default_rng(seed + run)
        for vals in streams.values():
            for t in holes.choice(length, size=length // null_every, replace=False):
                vals[t] = None
        trials.append(streams)
    return trials


def _factory(policy_name, config, cache_size):
    if policy_name == "heeb":
        alpha = config.heeb_alpha_for(cache_size)
        return lambda: HeebPolicy(GenericJoinHeeb(LExp(alpha)))
    if policy_name == "rand":
        return lambda: make_policy("rand", seed=7)
    return lambda: make_policy(policy_name)


def _spec(config, cache_size=6, warmup=10):
    return ExperimentSpec(
        kind="multi_join",
        cache_size=cache_size,
        warmup=warmup,
        queries=tuple(tuple(q) for q in config.queries),
        models=config.models,
    )


@pytest.mark.parametrize("config_name", ["CHAIN3", "STAR5"])
@pytest.mark.parametrize("policy_name", ["rand", "lru", "lfu", "prob", "heeb"])
def test_batch_matches_scalar_seed_for_seed(config_name, policy_name):
    config = make_multi_config(config_name)
    spec = _spec(config)
    factory = _factory(policy_name, config, spec.cache_size)
    trials = _trials(config, length=150, n_runs=3, seed=11)

    assert BatchEngine().supports(spec, factory) is None

    scalar = ScalarEngine().run(spec, factory, trials)
    batch = BatchEngine().run(spec, factory, trials)

    assert len(batch.per_run) == len(scalar.per_run) == 3
    for b, s in zip(batch.per_run, scalar.per_run):
        assert b.total_results == s.total_results
        assert b.results_after_warmup == s.results_after_warmup
        assert b.per_query == s.per_query
        assert set(b.occupancy_by_stream) == set(s.occupancy_by_stream)
        for name in s.occupancy_by_stream:
            np.testing.assert_array_equal(
                np.asarray(b.occupancy_by_stream[name]),
                np.asarray(s.occupancy_by_stream[name]),
            )


@pytest.mark.parametrize("policy_name", ["lru", "prob", "heeb"])
def test_batch_counters_and_series_match_scalar(policy_name):
    config = make_multi_config("CHAIN3")
    spec = _spec(config)
    factory = _factory(policy_name, config, spec.cache_size)
    trials = _trials(config, length=120, n_runs=2, seed=23)

    rec_scalar = CounterRecorder()
    ScalarEngine().run(spec, factory, trials, recorder=rec_scalar)
    rec_batch = CounterRecorder()
    BatchEngine().run(spec, factory, trials, recorder=rec_batch)

    assert rec_batch.counters == rec_scalar.counters
    for name in MULTI_SERIES:
        assert name in rec_scalar.series_data, name
        assert (
            rec_batch.series_data[name].snapshot()
            == rec_scalar.series_data[name].snapshot()
        ), name


def test_unbatchable_multi_policy_is_rejected_not_wrong():
    """LRU-k keeps per-value histories the batch tier cannot replicate
    exactly; supports() must say so instead of running approximately."""
    config = make_multi_config("CHAIN3")
    spec = _spec(config)
    factory = lambda: make_policy("lru-k")
    reason = BatchEngine().supports(spec, factory)
    assert reason is not None and "LRU-k" in reason


def test_trie_policy_batches_with_series_parity():
    """Trie on independent models batches exactly: decisions, counters,
    and its own emitted series (``scores.cutoff``, ``trie.budget.*``)
    are byte-identical to the scalar run."""
    config = make_multi_config("CHAIN3")
    spec = _spec(config)
    factory = lambda: make_policy("trie")
    assert BatchEngine().supports(spec, factory) is None
    trials = _trials(config, length=150, n_runs=3, seed=31)

    rec_scalar = CounterRecorder()
    scalar = ScalarEngine().run(spec, factory, trials, recorder=rec_scalar)
    rec_batch = CounterRecorder()
    batch = BatchEngine().run(spec, factory, trials, recorder=rec_batch)

    for b, s in zip(batch.per_run, scalar.per_run):
        assert b.total_results == s.total_results
        assert b.per_query == s.per_query
        for name in s.occupancy_by_stream:
            np.testing.assert_array_equal(
                np.asarray(b.occupancy_by_stream[name]),
                np.asarray(s.occupancy_by_stream[name]),
            )
    assert rec_batch.counters == rec_scalar.counters
    budget_series = [
        name for name in rec_scalar.series_data if name.startswith("trie.budget.")
    ]
    assert budget_series, "scalar trie must emit per-level budget series"
    for name in (*MULTI_SERIES, *budget_series):
        assert name in rec_scalar.series_data, name
        assert (
            rec_batch.series_data[name].snapshot()
            == rec_scalar.series_data[name].snapshot()
        ), name
