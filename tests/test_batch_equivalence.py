"""Scalar vs batch engine: exact, seed-for-seed equivalence.

The vectorized engine (:mod:`repro.sim.batch`) is specified to be a
*bit-exact* re-implementation of the scalar simulators for every policy
it supports -- same totals, same per-step occupancy traces, same RNG
consumption.  These tests pin that contract for the join and cache
simulators across all synthetic stream families, plus the sliding
window, determinism, and the silent scalar fallback for policies
without a batch adapter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lifetime import LExp
from repro.core.precompute import random_walk_h1_cache
from repro.experiments.configs import (
    roof_config,
    tower_config,
    walk_config,
)
from repro.policies.heeb_policy import GenericJoinHeeb, HeebPolicy, WalkCacheHeeb
from repro.policies.lfu import LfuPolicy
from repro.policies.life import LifePolicy
from repro.policies.lru import LruPolicy
from repro.policies.prob import ProbPolicy
from repro.policies.rand import RandPolicy
from repro.sim.runner import (
    generate_paths,
    generate_reference_paths,
    run_cache_experiment,
    run_join_experiment,
)
from repro.streams import (
    RandomWalkStream,
    StationaryStream,
    discretized_normal,
    from_mapping,
)

LENGTH = 300
N_RUNS = 4
CACHE = 6
WARMUP = 24


def _assert_join_equal(scalar, batch):
    assert scalar.policy_name == batch.policy_name
    assert len(scalar.per_run) == len(batch.per_run)
    for i, (a, b) in enumerate(zip(scalar.per_run, batch.per_run)):
        assert a.total_results == b.total_results, f"run {i}"
        assert a.results_after_warmup == b.results_after_warmup, f"run {i}"
        assert a.steps == b.steps and a.warmup == b.warmup
        assert a.cache_size == b.cache_size
        np.testing.assert_array_equal(a.occupancy, b.occupancy)
        np.testing.assert_array_equal(a.r_occupancy, b.r_occupancy)


def _assert_cache_equal(scalar, batch):
    assert scalar.policy_name == batch.policy_name
    for i, (a, b) in enumerate(zip(scalar.per_run, batch.per_run)):
        assert (a.hits, a.misses) == (b.hits, b.misses), f"run {i}"
        assert a.hits_after_warmup == b.hits_after_warmup, f"run {i}"
        assert a.misses_after_warmup == b.misses_after_warmup, f"run {i}"


def _join_both(config, factory, *, window=None, seed=0):
    paths = generate_paths(
        config.r_model, config.s_model, LENGTH, N_RUNS, seed=seed
    )
    kwargs = dict(
        cache_size=CACHE,
        warmup=WARMUP,
        window=window,
        r_model=config.r_model,
        s_model=config.s_model,
        window_oracle=config.window_oracle,
    )
    return (
        run_join_experiment(factory, paths, **kwargs),
        run_join_experiment(factory, paths, batch=True, **kwargs),
    )


JOIN_POLICIES = {
    "RAND": lambda cfg: RandPolicy(seed=1),
    "LRU": lambda cfg: LruPolicy(),
    "PROB": lambda cfg: ProbPolicy(),
    "HEEB": lambda cfg: cfg.make_heeb(CACHE),
}


class TestJoinEquivalence:
    @pytest.mark.parametrize("policy_name", sorted(JOIN_POLICIES))
    @pytest.mark.parametrize(
        "make_config", [tower_config, roof_config, walk_config]
    )
    def test_exact_match(self, make_config, policy_name):
        config = make_config()
        make_policy = JOIN_POLICIES[policy_name]
        scalar, batch = _join_both(config, lambda: make_policy(config))
        _assert_join_equal(scalar, batch)

    def test_life_on_trend(self):
        config = tower_config()
        scalar, batch = _join_both(config, LifePolicy)
        _assert_join_equal(scalar, batch)
        assert any(r.total_results > 0 for r in scalar.per_run)

    @pytest.mark.parametrize("window", [0, 5, 25])
    @pytest.mark.parametrize(
        "make_policy", [lambda: RandPolicy(seed=3), LruPolicy, ProbPolicy]
    )
    def test_sliding_window_parity(self, make_policy, window):
        config = tower_config()
        scalar, batch = _join_both(config, make_policy, window=window)
        _assert_join_equal(scalar, batch)
        if window == 0:
            # lag-1 partners can never meet inside a zero-width window
            assert all(r.total_results == 0 for r in batch.per_run)


class TestCacheEquivalence:
    MODELS = {
        "stationary": StationaryStream(
            from_mapping({1: 0.4, 2: 0.3, 3: 0.2, 4: 0.1})
        ),
        "walk": RandomWalkStream(discretized_normal(1.0), drift=0, start=0),
    }

    @pytest.mark.parametrize(
        "make_policy",
        [lambda: RandPolicy(seed=2), LruPolicy, ProbPolicy, LfuPolicy],
        ids=["RAND", "LRU", "PROB", "LFU"],
    )
    @pytest.mark.parametrize("model_name", sorted(MODELS))
    def test_exact_match(self, model_name, make_policy):
        model = self.MODELS[model_name]
        refs = generate_reference_paths(model, LENGTH, N_RUNS, seed=7)
        kwargs = dict(cache_size=CACHE, warmup=WARMUP, reference_model=model)
        scalar = run_cache_experiment(make_policy, refs, **kwargs)
        batch = run_cache_experiment(make_policy, refs, batch=True, **kwargs)
        _assert_cache_equal(scalar, batch)

    def test_walk_cache_heeb(self):
        model = self.MODELS["walk"]
        table = random_walk_h1_cache(model, LExp(float(CACHE)), horizon=40)
        refs = generate_reference_paths(model, LENGTH, N_RUNS, seed=11)
        kwargs = dict(cache_size=CACHE, warmup=WARMUP, reference_model=model)
        factory = lambda: HeebPolicy(WalkCacheHeeb(table))
        scalar = run_cache_experiment(factory, refs, **kwargs)
        batch = run_cache_experiment(factory, refs, batch=True, **kwargs)
        _assert_cache_equal(scalar, batch)
        assert any(r.hits > 0 for r in scalar.per_run)


class TestDeterminism:
    """Same seed, same engine -> byte-identical results, across engines."""

    def _run(self, batch: bool):
        config = tower_config()
        return _join_both(config, lambda: RandPolicy(seed=9), seed=42)[
            1 if batch else 0
        ]

    @pytest.mark.parametrize("batch", [False, True], ids=["scalar", "batch"])
    def test_repeat_runs_byte_identical(self, batch):
        first = self._run(batch)
        second = self._run(batch)
        for a, b in zip(first.per_run, second.per_run):
            assert a.total_results == b.total_results
            assert a.occupancy.tobytes() == b.occupancy.tobytes()
            assert a.r_occupancy.tobytes() == b.r_occupancy.tobytes()

    def test_engines_byte_identical(self):
        scalar = self._run(batch=False)
        batch = self._run(batch=True)
        for a, b in zip(scalar.per_run, batch.per_run):
            assert a.occupancy.tobytes() == b.occupancy.tobytes()
            assert a.r_occupancy.tobytes() == b.r_occupancy.tobytes()


class TestScalarFallback:
    def test_unbatchable_policy_falls_back_with_warning(self, caplog):
        """Sketch-backed PROB has no batch adapter; ``batch=True`` must
        produce the scalar result, record the engine actually used, and
        log a one-time warning instead of failing silently."""
        import logging

        import repro.sim.engine as engine_mod

        model = StationaryStream(from_mapping({1: 0.5, 2: 0.3, 3: 0.2}))
        paths = [
            (
                model.sample_path(150, np.random.default_rng(0)),
                model.sample_path(150, np.random.default_rng(1)),
            )
        ]
        factory = lambda: ProbPolicy(counts="sketch")
        kwargs = dict(
            cache_size=4, warmup=10, window=8, r_model=model, s_model=model
        )
        scalar = run_join_experiment(factory, paths, **kwargs)
        engine_mod._FALLBACK_WARNED.clear()
        with caplog.at_level(logging.WARNING, logger="repro.sim.engine"):
            batch = run_join_experiment(factory, paths, batch=True, **kwargs)
        _assert_join_equal(scalar, batch)
        assert scalar.engine_used == "scalar"
        assert batch.engine_used == "scalar"
        fallback_records = [
            r
            for r in caplog.records
            if "falling back to the scalar engine" in r.getMessage()
        ]
        assert len(fallback_records) == 1
        assert "batch" in fallback_records[0].getMessage()

        # The warning is deduplicated: an identical second request stays
        # quiet.
        caplog.clear()
        with caplog.at_level(logging.WARNING, logger="repro.sim.engine"):
            run_join_experiment(factory, paths, batch=True, **kwargs)
        assert not [
            r
            for r in caplog.records
            if "falling back to the scalar engine" in r.getMessage()
        ]
