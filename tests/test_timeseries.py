"""Bounded-memory time-series primitives: sketches, buffers, merging.

Pins the contracts ``docs/OBSERVABILITY.md`` states for
:mod:`repro.obs.timeseries`:

* :class:`P2Quantile` is *exact* below five observations and accurate
  (within a few percent of the true quantile) on larger streams;
* :class:`SeriesBuffer` never exceeds its budget regardless of stream
  length, keeps an evenly-strided sample, and is deterministic in the
  order points are offered;
* :class:`TimeSeries` snapshots round-trip through ``from_state`` and
  ``merge`` preserves the exact aggregates (count/sum/min/max);
* :func:`sparkline` renders any numeric list without blowing up on
  constant or empty input.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import P2Quantile, SeriesBuffer, TimeSeries, sparkline


class TestP2Quantile:
    """Streaming quantile sketch accuracy and mergeability."""

    def test_exact_below_five_observations(self):
        for values in ([3.0], [5.0, 1.0], [2.0, 9.0, 4.0], [7.0, 1.0, 3.0, 5.0]):
            sketch = P2Quantile(0.5)
            for v in values:
                sketch.add(v)
            ranked = sorted(values)
            # Nearest-rank median on the tiny sorted sample.
            k = max(0, min(len(ranked) - 1, round(0.5 * (len(ranked) - 1))))
            assert sketch.value() == ranked[k]

    @pytest.mark.parametrize("q", [0.5, 0.9])
    def test_accuracy_on_large_stream(self, q):
        rng = np.random.default_rng(7)
        values = rng.normal(10.0, 3.0, size=5000)
        sketch = P2Quantile(q)
        for v in values:
            sketch.add(float(v))
        exact = float(np.quantile(values, q))
        spread = float(values.max() - values.min())
        assert abs(sketch.value() - exact) < 0.02 * spread

    def test_state_round_trip(self):
        sketch = P2Quantile(0.9)
        for v in range(100):
            sketch.add(float(v))
        clone = P2Quantile.from_state(sketch.state())
        assert clone.value() == sketch.value()
        assert clone.state() == sketch.state()

    def test_merge_approximates_union(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0.0, 100.0, size=4000)
        full = P2Quantile(0.5)
        left, right = P2Quantile(0.5), P2Quantile(0.5)
        for i, v in enumerate(values):
            full.add(float(v))
            (left if i % 2 == 0 else right).add(float(v))
        left.merge(right.state())
        assert left.value() == pytest.approx(full.value(), rel=0.1)

    def test_merge_of_tiny_donor_is_exact_replay(self):
        base = P2Quantile(0.5)
        donor = P2Quantile(0.5)
        for v in (1.0, 2.0):
            base.add(v)
        for v in (3.0, 4.0):
            donor.add(v)
        base.merge(donor.state())
        reference = P2Quantile(0.5)
        for v in (1.0, 2.0, 3.0, 4.0):
            reference.add(v)
        assert base.value() == reference.value()


class TestP2QuantileFractionalWeights:
    """Weighted observations must not lose mass in the initial phase.

    Regression for the seeding bug where ``add(x, weight)`` replayed
    ``int(weight)`` unit observations, silently dropping the fractional
    remainder (a ``weight=0.5`` add contributed nothing at all)."""

    def test_fractional_weight_counts_full_mass(self):
        sketch = P2Quantile(0.5)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            sketch.add(v, weight=0.5)
        assert sketch.count == pytest.approx(2.5)
        assert sketch.value() == 3.0

    def test_sub_unit_weight_is_not_dropped(self):
        sketch = P2Quantile(0.5)
        sketch.add(7.0, weight=0.25)
        assert sketch.count == pytest.approx(0.25)
        assert sketch.value() == 7.0

    @given(
        weights=st.lists(
            st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_count_position_consistency(self, weights, seed):
        """``positions[4] == count`` whenever the markers are live, and
        the buffered mass equals ``count`` before that — no weight is
        ever truncated on either path."""
        rng = np.random.default_rng(seed)
        sketch = P2Quantile(0.5)
        for w in weights:
            sketch.add(float(rng.normal()), weight=w)
        assert sketch.count == pytest.approx(sum(weights))
        if sketch._heights:
            assert sketch._positions[4] == pytest.approx(sketch.count)
        else:
            buffered = sum(w for _, w in sketch._initial)
            assert buffered == pytest.approx(sketch.count)

    @given(
        left_weights=st.lists(
            st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
            min_size=1,
            max_size=4,
        ),
        right_weights=st.lists(
            st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_preserves_fractional_mass(self, left_weights, right_weights):
        """Merging tiny sketches replays (value, weight) pairs, so the
        union's count is the exact sum of both sides' weights."""
        left, right = P2Quantile(0.5), P2Quantile(0.5)
        for i, w in enumerate(left_weights):
            left.add(float(i), weight=w)
        for i, w in enumerate(right_weights):
            right.add(float(10 + i), weight=w)
        left.merge(right.state())
        assert left.count == pytest.approx(
            sum(left_weights) + sum(right_weights)
        )
        assert left.value() is not None

    def test_weighted_state_round_trip(self):
        sketch = P2Quantile(0.9)
        for i in range(8):
            sketch.add(float(i), weight=0.5 + 0.25 * i)
        clone = P2Quantile.from_state(sketch.state())
        assert clone.value() == sketch.value()
        assert clone.state() == sketch.state()

    def test_legacy_bare_float_state_still_loads(self):
        # Pre-weighted snapshots stored the initial buffer as bare
        # floats; they must round-trip as unit-weight observations.
        sketch = P2Quantile(0.5)
        sketch.add(1.0)
        sketch.add(2.0)
        state = sketch.state()
        state["initial"] = [1.0, 2.0]
        clone = P2Quantile.from_state(state)
        assert clone.value() == sketch.value()


class TestSeriesBuffer:
    """Fixed-budget downsampling buffer."""

    def test_never_exceeds_budget(self):
        buf = SeriesBuffer(budget=16)
        for t in range(10_000):
            buf.add(t, float(t))
        state = buf.state()
        assert len(state["points"]) <= 16
        assert state["offered"] == 10_000

    def test_keeps_evenly_strided_sample(self):
        buf = SeriesBuffer(budget=8)
        for t in range(100):
            buf.add(t, float(t))
        ts = [t for t, _ in buf.state()["points"]]
        strides = {b - a for a, b in zip(ts, ts[1:])}
        assert len(strides) == 1  # uniform spacing
        assert ts[0] == 0

    def test_exact_below_budget(self):
        buf = SeriesBuffer(budget=64)
        points = [[t, t * 0.5] for t in range(20)]
        for t, v in points:
            buf.add(t, v)
        assert buf.state()["points"] == points

    def test_deterministic_in_offer_order(self):
        a, b = SeriesBuffer(budget=8), SeriesBuffer(budget=8)
        for t in range(500):
            a.add(t, float(t % 7))
            b.add(t, float(t % 7))
        assert a.state() == b.state()

    def test_merge_respects_budget(self):
        a, b = SeriesBuffer(budget=8), SeriesBuffer(budget=8)
        for t in range(100):
            a.add(t, float(t))
            b.add(100 + t, float(t))
        a.merge(b.state())
        state = a.state()
        assert len(state["points"]) <= 8
        assert state["offered"] == 200
        ts = [t for t, _ in state["points"]]
        assert ts == sorted(ts)


class TestTimeSeries:
    """Combined aggregates + buffer + sketches."""

    def test_exact_aggregates(self):
        ts = TimeSeries("gauge")
        values = [3.0, 1.0, 4.0, 1.0, 5.0]
        for t, v in enumerate(values):
            ts.add(t, v)
        snap = ts.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == sum(values)
        assert snap["min"] == 1.0
        assert snap["max"] == 5.0
        assert snap["last"] == 5.0
        assert snap["last_t"] == 4

    def test_snapshot_round_trip(self):
        ts = TimeSeries("gauge", budget=16)
        for t in range(200):
            ts.add(t, float(t % 13))
        clone = TimeSeries.from_state("gauge", ts.snapshot())
        assert clone.snapshot() == ts.snapshot()

    def test_merge_exact_on_scalar_aggregates(self):
        full = TimeSeries("g")
        left, right = TimeSeries("g"), TimeSeries("g")
        rng = np.random.default_rng(11)
        for t, v in enumerate(rng.uniform(0, 10, size=600)):
            full.add(t, float(v))
            (left if t < 300 else right).add(t, float(v))
        left.merge(right.snapshot())
        a, b = left.snapshot(), full.snapshot()
        for key in ("count", "min", "max", "last", "last_t"):
            assert a[key] == b[key]
        # Sum is exact up to float summation order.
        assert a["sum"] == pytest.approx(b["sum"], rel=1e-12)
        # Quantiles are sketch-merged: approximate, not exact.  Bound
        # the error relative to the data range (the honest metric for a
        # five-marker sketch), not the value.
        assert abs(left.quantile(0.5) - full.quantile(0.5)) < 0.1 * (
            b["max"] - b["min"]
        )

    def test_snapshot_is_json_serializable(self):
        import json

        ts = TimeSeries("g")
        for t in range(50):
            ts.add(t, float(t))
        json.dumps(ts.snapshot())


class TestSparkline:
    """Unicode rendering edge cases."""

    def test_monotone_ramp_uses_full_range(self):
        line = sparkline(list(range(48)))
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series_is_flat(self):
        line = sparkline([5.0] * 10)
        assert len(set(line)) == 1
        assert len(line) == 10

    def test_empty_is_empty(self):
        assert sparkline([]) == ""

    def test_downsamples_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40
