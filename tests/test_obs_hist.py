"""Mergeable log-bucketed latency histograms (:mod:`repro.obs.hist`).

The serve tier's latency story rests on three guarantees this suite
pins:

* **no observation is ever dropped** — underflow clamps to bucket 0,
  overflow to the last bucket, and exact bucket bounds settle correctly
  despite floating-point log;
* **same-layout merge is exact** — observations partitioned across
  shard histograms and merged back are *bucket-identical* to the
  unsharded histogram, so every quantile (p99 included) matches the
  unsharded run exactly, not just "within a bucket";
* **state round-trips as plain JSON** — the dict snapshots the serve
  tier ships across shard boundaries rebuild the histogram losslessly.
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.obs.hist import (
    DEFAULT_GROWTH,
    DEFAULT_MIN_VALUE_MS,
    DEFAULT_N_BUCKETS,
    HistogramSet,
    LogHistogram,
)


def filled(values, **kwargs) -> LogHistogram:
    hist = LogHistogram("test", **kwargs)
    for v in values:
        hist.observe(v)
    return hist


class TestBucketLayout:
    """Bucket geometry: bounds, boundary settling, clamping."""

    def test_constructor_validates_layout(self):
        with pytest.raises(ValueError):
            LogHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            LogHistogram(growth=1.0)
        with pytest.raises(ValueError):
            LogHistogram(n_buckets=1)

    def test_default_layout_constants(self):
        hist = LogHistogram()
        assert hist.n_buckets == DEFAULT_N_BUCKETS
        assert hist.min_value == DEFAULT_MIN_VALUE_MS
        assert hist.growth == DEFAULT_GROWTH

    def test_bounds_grow_geometrically(self):
        hist = LogHistogram(min_value=1.0, growth=2.0, n_buckets=8)
        assert [hist.bucket_bound(i) for i in range(4)] == [1, 2, 4, 8]

    def test_exact_boundary_values_land_in_their_bucket(self):
        # bound[i] is inclusive: v == min * growth**i belongs to bucket i.
        hist = LogHistogram(min_value=1e-3, growth=2.0, n_buckets=44)
        for i in range(0, 40):
            v = hist.bucket_bound(i)
            assert hist.bucket_index(v) == i, f"bound {i} misplaced"
            # Just above an inclusive bound falls into the next bucket.
            assert hist.bucket_index(v * 1.0000001) == i + 1

    def test_underflow_and_overflow_clamp(self):
        hist = LogHistogram(min_value=1.0, growth=2.0, n_buckets=4)
        assert hist.bucket_index(0.0) == 0
        assert hist.bucket_index(-5.0) == 0
        assert hist.bucket_index(1e12) == 3
        hist.observe(1e12)
        assert hist.count == 1  # overflow counted, not dropped

    def test_every_observation_lands_somewhere(self):
        rng = random.Random(7)
        hist = LogHistogram()
        values = [rng.lognormvariate(0.0, 3.0) for _ in range(500)]
        for v in values:
            hist.observe(v)
        assert sum(hist.counts) == hist.count == 500
        assert hist.total == pytest.approx(sum(values))
        assert hist.vmin == min(values)
        assert hist.vmax == max(values)


class TestQuantiles:
    """Quantile interpolation, clamping, and the log-bucket bound."""

    def test_empty_histogram(self):
        hist = LogHistogram()
        assert hist.count == 0
        assert hist.mean is None
        assert hist.quantile(0.99) is None
        assert hist.percentiles()["p50"] is None

    def test_quantile_domain_checked(self):
        with pytest.raises(ValueError):
            LogHistogram().quantile(1.5)

    def test_single_value_reports_exact_extremes(self):
        hist = filled([3.7])
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(3.7)

    def test_quantiles_within_one_bucket_of_truth(self):
        rng = random.Random(11)
        values = sorted(rng.uniform(0.01, 500.0) for _ in range(1000))
        hist = filled(values)
        for q in (0.5, 0.9, 0.99):
            true = values[int(q * len(values)) - 1]
            est = hist.quantile(q)
            # The estimate lives within one geometric bucket of truth.
            assert true / hist.growth <= est <= true * hist.growth

    def test_quantiles_monotone_and_clamped(self):
        hist = filled([0.5, 1.5, 2.5, 100.0])
        qs = [hist.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert qs == sorted(qs)
        assert qs[0] >= hist.vmin
        assert qs[-1] <= hist.vmax

    def test_percentiles_summary_shape(self):
        pct = filled([1.0, 2.0, 4.0]).percentiles()
        assert set(pct) == {"count", "p50", "p90", "p99", "max"}
        assert pct["count"] == 3
        assert pct["max"] == 4.0

    def test_mean_matches_arithmetic_mean(self):
        assert filled([1.0, 2.0, 3.0]).mean == pytest.approx(2.0)


class TestMerge:
    """Exact same-layout merge; lossless mismatched-layout rebin."""

    def test_partitioned_merge_is_bucket_identical(self):
        # The acceptance bound for live resharding: observations split
        # across shard histograms and merged equal the unsharded
        # histogram exactly — counts, sum, extremes, and thus p99.
        rng = random.Random(23)
        values = [rng.lognormvariate(1.0, 2.0) for _ in range(600)]
        whole = filled(values)
        shards = [LogHistogram("s") for _ in range(3)]
        for i, v in enumerate(values):
            shards[i % 3].observe(v)
        merged = LogHistogram("merged")
        for shard in shards:
            merged.merge(shard.state())
        assert merged.counts == whole.counts
        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total)
        assert merged.vmin == whole.vmin
        assert merged.vmax == whole.vmax
        for q in (0.5, 0.9, 0.99):
            assert merged.quantile(q) == pytest.approx(whole.quantile(q))

    def test_merge_is_commutative(self):
        a = filled([0.1, 5.0, 40.0])
        b = filled([0.7, 0.7, 900.0])
        ab = filled([0.1, 5.0, 40.0])
        ab.merge(b.state())
        ba = filled([0.7, 0.7, 900.0])
        ba.merge(a.state())
        assert ab.counts == ba.counts
        assert ab.count == ba.count == 6

    def test_merge_into_empty_equals_donor(self):
        donor = filled([1.0, 2.0, 3.0])
        empty = LogHistogram("empty")
        empty.merge(donor.state())
        assert empty.counts == donor.counts
        assert empty.vmin == donor.vmin and empty.vmax == donor.vmax

    def test_mismatched_layout_rebin_preserves_count_and_sum(self):
        donor = filled([0.5, 3.0, 77.0], min_value=0.1, growth=3.0,
                       n_buckets=12)
        target = filled([10.0])
        target.merge(donor.state())
        assert target.count == 4
        assert sum(target.counts) == 4
        assert target.total == pytest.approx(10.0 + 0.5 + 3.0 + 77.0)
        assert target.vmin == 0.5
        assert target.vmax == 77.0


class TestState:
    """JSON snapshots rebuild histograms losslessly."""

    def test_state_round_trip(self):
        hist = filled([0.002, 1.5, 88.0, 4000.0])
        clone = LogHistogram.from_state("test", hist.state())
        assert clone.counts == hist.counts
        assert clone.count == hist.count
        assert clone.total == hist.total
        assert clone.vmin == hist.vmin and clone.vmax == hist.vmax
        assert clone.quantile(0.99) == hist.quantile(0.99)

    def test_state_is_json_serializable(self):
        hist = filled([1.0, 2.0])
        rebuilt = LogHistogram.from_state(
            "test", json.loads(json.dumps(hist.state()))
        )
        assert rebuilt.counts == hist.counts

    def test_empty_state_round_trip(self):
        clone = LogHistogram.from_state("e", LogHistogram().state())
        assert clone.count == 0
        assert clone.vmin is None and clone.vmax is None


class TestCumulativeBuckets:
    """The Prometheus-facing cumulative view."""

    def test_ends_with_infinity_bucket(self):
        hist = filled([1.0, 2.0, 2.0, 64.0])
        pairs = hist.cumulative_buckets()
        bound, cum = pairs[-1]
        assert math.isinf(bound)
        assert cum == hist.count

    def test_cumulative_counts_are_nondecreasing(self):
        hist = filled([0.1, 1.0, 10.0, 100.0, 1000.0])
        cums = [c for _, c in hist.cumulative_buckets()]
        assert cums == sorted(cums)

    def test_empty_histogram_renders_compactly(self):
        pairs = LogHistogram().cumulative_buckets()
        assert pairs == [(math.inf, 0)]

    def test_trailing_empty_buckets_elided(self):
        hist = filled([1.0])  # far below the top of the default range
        pairs = hist.cumulative_buckets()
        assert len(pairs) < DEFAULT_N_BUCKETS


class TestHistogramSet:
    """The name-keyed collection the serve shards carry."""

    def test_observe_creates_lazily_and_get(self):
        hs = HistogramSet()
        assert not hs
        assert hs.get("a") is None
        hs.observe("a", 1.0)
        assert hs
        assert hs.get("a").count == 1

    def test_set_merge_unions_names(self):
        a = HistogramSet()
        a.observe("x", 1.0)
        a.observe("y", 2.0)
        b = HistogramSet()
        b.observe("y", 3.0)
        b.observe("z", 4.0)
        a.merge(b.state())
        assert set(a.hists) == {"x", "y", "z"}
        assert a.get("y").count == 2
        assert a.get("z").count == 1

    def test_copy_is_independent(self):
        hs = HistogramSet()
        hs.observe("x", 1.0)
        clone = hs.copy()
        clone.observe("x", 2.0)
        assert hs.get("x").count == 1
        assert clone.get("x").count == 2

    def test_state_round_trip(self):
        hs = HistogramSet()
        hs.observe("x", 5.0)
        rebuilt = HistogramSet()
        rebuilt.merge(json.loads(json.dumps(hs.state())))
        assert rebuilt.get("x").counts == hs.get("x").counts
