"""Batch adapters: prove scalar-vs-batch decision identity, then race them.

A windowed HEEB join was scalar-only until the exact batch adapters
landed: the windowed scoring branch clips each tuple's remaining
lifetime, and vectorizing that clip exactly needs the closed form an
``LExp`` estimator provides.  This walkthrough runs the same
Monte-Carlo workload through the scalar reference loop and the batch
tier and shows the guarantee the engines make:

* identical per-trial result counts and occupancy traces,
* identical policy counters and telemetry series (the ``scores.cutoff``
  eviction-threshold series matches snapshot for snapshot),
* and only then a wall-clock comparison — the speedup is a bonus on
  top of exactness, never a trade against it.

It also pokes the negotiation: swapping the ``LExp`` estimator for a
fixed-lifetime one makes the batch tier refuse with the normalized
"no exact batch adapter" reason and fall back to scalar.

Run:  python examples/batch_adapter_walkthrough.py
(See docs/PERFORMANCE.md for the full coverage matrix.)
"""

from __future__ import annotations

import time

from repro.core.lifetime import LExp, LFixed
from repro.obs import CounterRecorder
from repro.policies import HeebPolicy, TrendJoinHeeb, TrendWindowOracle
from repro.policies.heeb_policy import GenericJoinHeeb
from repro.sim.engine import BatchEngine, ExperimentSpec
from repro.sim.runner import generate_paths, run_join_experiment
from repro.streams import (
    LinearTrendStream,
    StationaryStream,
    bounded_normal,
)
from repro.streams.noise import from_mapping

CACHE_SIZE = 8
WINDOW = 8
LENGTH = 400
N_RUNS = 64
SEED = 7


def main() -> None:
    # 1. A TOWER-style trending workload with a Section-7 sliding
    #    window: tuples expire WINDOW steps after arrival, and the
    #    windowed HEEB branch clips lifetimes against that horizon.
    r_model = LinearTrendStream(bounded_normal(10, 1.0), speed=1.0, lag=1)
    s_model = LinearTrendStream(bounded_normal(15, 2.0), speed=1.0)
    oracle = TrendWindowOracle(r_model, s_model)
    factory = lambda: HeebPolicy(TrendJoinHeeb(LExp(3.0)))

    paths = generate_paths(r_model, s_model, LENGTH, N_RUNS, seed=SEED)
    kwargs = dict(
        cache_size=CACHE_SIZE,
        window=WINDOW,
        warmup=2 * CACHE_SIZE,
        r_model=r_model,
        s_model=s_model,
        window_oracle=oracle,
    )

    # 2. Same paths, both tiers, instrumented.
    runs = {}
    for engine in ("scalar", "batch"):
        recorder = CounterRecorder()
        t0 = time.perf_counter()
        result = run_join_experiment(
            factory, paths, engine=engine, recorder=recorder, **kwargs
        )
        elapsed = time.perf_counter() - t0
        assert result.engine_used == engine, result.engine_used
        runs[engine] = (result, recorder, elapsed)

    scalar, s_rec, s_sec = runs["scalar"]
    batch, b_rec, b_sec = runs["batch"]

    # 3. Decision identity, trial for trial.  Totals and occupancy
    #    traces equal means every admit/evict decision matched.
    divergent = sum(
        a.total_results != b.total_results
        or list(a.occupancy) != list(b.occupancy)
        for a, b in zip(scalar.per_run, batch.per_run)
    )
    print(f"trials compared        : {N_RUNS}")
    print(f"divergent trials       : {divergent}")
    assert divergent == 0

    # 4. Telemetry identity: policy counters (engine.* differs by
    #    construction — each tier counts its own dispatch) and the
    #    eviction-cutoff series the admission filters train on.
    s_counters = {
        k: v for k, v in s_rec.counters.items()
        if not k.startswith("engine.")
    }
    b_counters = {
        k: v for k, v in b_rec.counters.items()
        if not k.startswith("engine.")
    }
    assert s_counters == b_counters
    s_cut = s_rec.series_data["scores.cutoff"].snapshot()
    b_cut = b_rec.series_data["scores.cutoff"].snapshot()
    assert repr(s_cut) == repr(b_cut)
    print(f"policy counters        : {len(s_counters)} keys, identical")
    print(
        f"scores.cutoff series   : {s_cut['count']} points, identical"
    )

    # 5. Only now, the clock.
    print(f"scalar                 : {s_sec:6.2f}s")
    print(f"batch                  : {b_sec:6.2f}s  "
          f"({s_sec / b_sec:.1f}x)")

    # 6. Negotiation: a windowed generic HEEB without the LExp closed
    #    form has no exact vectorized clip, so the batch tier refuses
    #    (normalized reason) and a batch *preference* lands on scalar —
    #    recorded on engine_used, warned once.
    stationary = StationaryStream(
        from_mapping({1: 0.5, 2: 0.3, 3: 0.2})
    )
    spec = ExperimentSpec(
        kind="join",
        cache_size=CACHE_SIZE,
        window=WINDOW,
        r_model=stationary,
        s_model=stationary,
    )
    stubborn = lambda: HeebPolicy(GenericJoinHeeb(LFixed(5), horizon=40))
    reason = BatchEngine().supports(spec, stubborn)
    print(f"\nLFixed estimator refusal:\n  {reason}")
    assert reason is not None and "LExp" in reason
    assert "scalar tier" in reason


if __name__ == "__main__":
    main()
