"""Trace walkthrough: answer "why did HEEB evict tuple X at step t?".

Runs a short TOWER-style join under HEEB with a
:class:`~repro.obs.trace.TraceRecorder` attached, writes the JSONL
trace, prints the counter snapshot and the trace summary, and then
zooms in on one eviction: the ``scores`` event shows every candidate's
H value at that step and the ``evict`` event shows which tuple lost.

This is the runnable companion to ``docs/OBSERVABILITY.md``.

Run:  python examples/trace_walkthrough.py [trace.jsonl]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.lifetime import LExp, alpha_for_mean_lifetime
from repro.obs import (
    TraceRecorder,
    format_metrics,
    format_trace_summary,
    read_trace,
    summarize_trace,
)
from repro.policies import HeebPolicy, TrendJoinHeeb
from repro.sim.join_sim import JoinSimulator
from repro.streams import LinearTrendStream, bounded_normal

CACHE_SIZE = 5
LENGTH = 120
SEED = 42


def main() -> None:
    trace_path = sys.argv[1] if len(sys.argv) > 1 else "heeb_trace.jsonl"

    # 1. A small TOWER-style workload (see examples/quickstart.py).
    r_model = LinearTrendStream(bounded_normal(10, 1.0), speed=1.0, lag=1)
    s_model = LinearTrendStream(bounded_normal(15, 2.0), speed=1.0)
    rng = np.random.default_rng(SEED)
    r_values = r_model.sample_path(LENGTH, rng)
    s_values = s_model.sample_path(LENGTH, rng)

    # 2. Run HEEB with a trace recorder attached.  The recorder is the
    #    only change versus an uninstrumented run; close() flushes the
    #    JSONL file (or use the recorder as a context manager).
    policy = HeebPolicy(TrendJoinHeeb(LExp(alpha_for_mean_lifetime(3.0))))
    with TraceRecorder(trace_path) as recorder:
        sim = JoinSimulator(
            CACHE_SIZE,
            policy,
            r_model=r_model,
            s_model=s_model,
            recorder=recorder,
        )
        result = sim.run(r_values, s_values)

    print(f"join results: {result.total_results}   (trace -> {trace_path})\n")

    # 3. The counter snapshot: what happened, in aggregate.
    print("counters\n--------")
    print(format_metrics(recorder.snapshot()))

    # 4. The trace summary (same table `python -m repro.obs` prints).
    events = read_trace(trace_path)
    print("\ntrace summary\n-------------")
    print(format_trace_summary(summarize_trace(events)))

    # 5. Zoom: find an eviction and show the scores that caused it.
    #    A `scores` event lists every candidate's H value; the matching
    #    `evict` event (same step) names the loser — by construction the
    #    candidate with the lowest score.
    evict = next(
        e for e in events if e["kind"] == "evict" and not e.get("expired")
    )
    t = evict["t"]
    scores = next(
        e for e in events if e["kind"] == "scores" and e["t"] == t
    )
    victim = evict["victims"][0]
    print(f"\nwhy was {victim['side']}={victim['value']} evicted at t={t}?")
    for cand in sorted(scores["candidates"], key=lambda c: c["score"]):
        mark = "  <- victim (lowest H)" if cand["uid"] == victim["uid"] else ""
        print(
            f"  uid={cand['uid']:<4} {cand['side']}={cand['value']:<5} "
            f"H={cand['score']:.4f}{mark}"
        )
    print(
        "\nThe victim had the lowest estimated expected benefit H among "
        "the candidates\n(drill further with "
        f"`python -m repro.obs {trace_path} --steps {t} {t}`)."
    )


if __name__ == "__main__":
    main()
