"""Multiple join queries over three streams sharing one cache.

Appendix C of the paper sketches the generalization from one binary join
to "multiple binary join queries over multiple probabilistic streams":
a tuple's expected benefit becomes the *sum* of its expected benefits
against every partner stream it has a query with.

Scenario: three market data feeds (two exchanges A and C, one
consolidated tape B) with drifting price levels; an arbitrage monitor
runs the queries A⋈B and B⋈C.  Tape tuples (B) are twice as valuable to
cache -- they serve both queries -- and HEEB's summed-benefit scoring
discovers that automatically.

Run:  python examples/multi_query.py
"""

from __future__ import annotations

import numpy as np

from repro.core.lifetime import LExp, alpha_for_mean_lifetime
from repro.sim.multi_join import (
    MultiHeebPolicy,
    MultiJoinSimulator,
    MultiProbPolicy,
    MultiRandPolicy,
    MultiScheduledPolicy,
    solve_opt_offline_multi,
)
from repro.streams import LinearTrendStream, bounded_normal

CACHE_SIZE = 12
LENGTH = 2000
QUERIES = [("A", "B"), ("B", "C")]


def main() -> None:
    models = {
        "A": LinearTrendStream(bounded_normal(10, 1.0), speed=1.0, lag=1),
        "B": LinearTrendStream(bounded_normal(12, 1.5), speed=1.0),
        "C": LinearTrendStream(bounded_normal(15, 2.0), speed=1.0, lag=2),
    }
    streams = {
        name: model.sample_path(LENGTH, np.random.default_rng(i))
        for i, (name, model) in enumerate(models.items())
    }

    alpha = alpha_for_mean_lifetime(4.0)
    policies = {
        "HEEB (summed benefits)": MultiHeebPolicy(LExp(alpha), horizon=80),
        "PROB": MultiProbPolicy(),
        "RAND": MultiRandPolicy(seed=0),
    }

    print(
        f"3 streams, queries {QUERIES}, shared cache of {CACHE_SIZE} tuples, "
        f"{LENGTH} steps\n"
    )
    results = {}
    occupancy = {}
    for name, policy in policies.items():
        sim = MultiJoinSimulator(
            CACHE_SIZE, policy, queries=QUERIES, warmup=4 * CACHE_SIZE,
            models=models,
        )
        run = sim.run(streams)
        results[name] = run.results_after_warmup
        occupancy[name] = {
            s: float(run.occupancy_by_stream[s][LENGTH // 2 :].mean())
            for s in "ABC"
        }

    solution = solve_opt_offline_multi(streams, QUERIES, CACHE_SIZE)
    opt_run = MultiJoinSimulator(
        CACHE_SIZE,
        MultiScheduledPolicy(solution),
        queries=QUERIES,
        warmup=4 * CACHE_SIZE,
    ).run(streams)
    results["OPT-OFFLINE (oracle)"] = opt_run.results_after_warmup

    width = max(len(n) for n in results)
    for name, count in sorted(results.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<{width}}  {count:>6}")

    print("\nmean cached tuples per stream (steady state):")
    for name, occ in occupancy.items():
        shares = "  ".join(f"{s}:{occ[s]:.1f}" for s in "ABC")
        print(f"  {name:<{width}}  {shares}")

    heeb_occ = occupancy["HEEB (summed benefits)"]
    print(
        "\nHEEB holds the hub stream B hardest "
        f"(B:{heeb_occ['B']:.1f} vs A:{heeb_occ['A']:.1f}, "
        f"C:{heeb_occ['C']:.1f}): a B tuple serves two queries, so its "
        "summed expected benefit doubles."
    )


if __name__ == "__main__":
    main()
