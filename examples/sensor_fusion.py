"""Domain scenario: correlating two sensor streams with random-walk state.

Two sensors publish readings of slowly wandering physical quantities
(modeled as random walks with discretized normal steps, the paper's WALK
configuration).  A correlation query equi-joins the two streams on the
quantized reading; memory for join state is scarce.

This example shows the Section-5.5 machinery end to end:

* the precomputed ``h1`` curve (Theorem 5(2)): HEEB's score depends only
  on the offset between a tuple's value and the partner's latest reading,
* how HEEB's offset-based retention beats frequency-based PROB, whose
  history mispredicts a wandering distribution, and
* how the gap to OPT-offline stays large -- random-walk variance
  accumulates too fast for any online policy (the paper's Figure 12).

Run:  python examples/sensor_fusion.py
"""

from __future__ import annotations

import numpy as np

from repro.core.lifetime import LExp
from repro.core.precompute import random_walk_h1_join
from repro.flow.opt_offline import solve_opt_offline
from repro.policies import (
    HeebPolicy,
    ProbPolicy,
    RandPolicy,
    ScheduledPolicy,
    WalkJoinHeeb,
)
from repro.sim.join_sim import JoinSimulator
from repro.streams import RandomWalkStream, discretized_normal

CACHE_SIZE = 12
LENGTH = 3000
SEED = 7


def main() -> None:
    step = discretized_normal(1.0)
    sensor_a = RandomWalkStream(step, start=0)
    sensor_b = RandomWalkStream(step, start=0)

    rng = np.random.default_rng(SEED)
    a_values = sensor_a.sample_path(LENGTH, rng)
    b_values = sensor_b.sample_path(LENGTH, rng)

    # --- Inspect HEEB's precomputed h1 curve -------------------------------
    estimator = LExp(float(CACHE_SIZE))  # α = cache size (Section 5.5)
    table = random_walk_h1_join(
        sensor_a, estimator, horizon=estimator.suggested_horizon(1e-6)
    )
    print("h1(offset): HEEB's value of caching a tuple at a given distance")
    print("from the partner sensor's latest reading (alpha = cache size):")
    for d in (0, 1, 2, 4, 8, 16):
        bar = "#" * int(60 * table(d) / table(0))
        print(f"  |offset| = {d:>2}   h1 = {table(d):.4f}  {bar}")
    print()

    # --- Compare policies ---------------------------------------------------
    policies = {
        "HEEB": HeebPolicy(
            WalkJoinHeeb(estimator, horizon=estimator.suggested_horizon(1e-6))
        ),
        "PROB": ProbPolicy(),
        "RAND": RandPolicy(seed=SEED),
    }
    results = {}
    for name, policy in policies.items():
        sim = JoinSimulator(
            CACHE_SIZE,
            policy,
            warmup=4 * CACHE_SIZE,
            r_model=sensor_a,
            s_model=sensor_b,
        )
        results[name] = sim.run(a_values, b_values).results_after_warmup

    solution = solve_opt_offline(a_values, b_values, CACHE_SIZE)
    results["OPT-OFFLINE"] = (
        JoinSimulator(
            CACHE_SIZE, ScheduledPolicy(solution), warmup=4 * CACHE_SIZE
        )
        .run(a_values, b_values)
        .results_after_warmup
    )

    print(f"correlated readings produced (cache {CACHE_SIZE}, {LENGTH} steps):")
    width = max(len(n) for n in results)
    for name, count in sorted(results.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<{width}}  {count:>6}")

    print(
        "\nHEEB keeps tuples near the partner's current level and drops "
        "stragglers; PROB\nclings to historically frequent values the walk "
        "has already left behind.  The\nremaining gap to OPT-offline is "
        "inherent: future random-walk positions are\ntoo dispersed to "
        "predict far ahead (Section 6.3)."
    )


if __name__ == "__main__":
    main()
