"""Walk through the paper's Section-3.4 counterexample.

FlowExpect solves, at every step, a min-cost flow over all *predetermined*
sequences of future replacement decisions.  The paper constructs a
four-step scenario with a one-slot cache where the best predetermined
sequence yields expected benefit 1.6, yet a strategy that adapts to the
observed arrival at t0+1 achieves 1.75 -- proving FlowExpect suboptimal
even with unbounded look-ahead.

This script reproduces every number in that argument from the actual
implementation: the flow decision, the per-sequence expectations, and the
adaptive optimum from exhaustive search.

Run:  python examples/suboptimality.py
"""

from __future__ import annotations

from repro.core.tuples import StreamTuple
from repro.flow.brute_force import brute_force_adaptive_expectation
from repro.flow.flowexpect import flowexpect_decide
from repro.streams import TabularStream

# The scenario table from Section 3.4 (t0 = 0 here):
#   time   new R tuple                 new S tuple
#   t0     −                           2
#   t0+1   2                           3 with prob 0.5 (− otherwise)
#   t0+2   3                           1 with prob 0.8
#   t0+3   2 with prob 0.5             1 with prob 0.8
R_STEPS = [[], [(2, 1.0)], [(3, 1.0)], [(2, 0.5)]]
S_STEPS = [[(2, 1.0)], [(3, 0.5)], [(1, 0.8)], [(1, 0.8)]]


def main() -> None:
    r_model = TabularStream(R_STEPS)
    s_model = TabularStream(S_STEPS)
    cached_r1 = StreamTuple(0, "R", 1, -1)  # the cached tuple, value 1
    new_s2 = StreamTuple(1, "S", 2, 0)  # the S tuple arriving now

    print("Cache size 1.  Cached: R tuple with value 1.  Arriving: S(2).\n")

    # --- FlowExpect's view ------------------------------------------------
    decision = flowexpect_decide(
        [cached_r1, new_s2], 0, 4, 1, r_model, s_model
    )
    kept = decision.kept[0]
    print(
        f"FlowExpect keeps {kept.side}({kept.value}) with expected benefit "
        f"{decision.expected_benefit:.2f}"
    )

    # The best sequence that caches the S tuple instead:
    alt = flowexpect_decide([new_s2], 0, 4, 1, r_model, s_model)
    print(
        f"Best predetermined sequence caching S(2) instead: "
        f"{alt.expected_benefit:.2f}"
    )

    # --- The adaptive optimum ----------------------------------------------
    steps = []
    for t in range(4):
        outcomes = []
        r_opts = R_STEPS[t] + [(None, 1.0 - sum(p for _, p in R_STEPS[t]))]
        s_opts = S_STEPS[t] + [(None, 1.0 - sum(p for _, p in S_STEPS[t]))]
        for r_val, r_p in r_opts:
            for s_val, s_p in s_opts:
                if r_p * s_p > 0:
                    outcomes.append((r_val, s_val, r_p * s_p))
        steps.append(outcomes)
    optimum = brute_force_adaptive_expectation(steps, [("R", 1)], 1)

    print(f"Optimal adaptive strategy:                        {optimum:.2f}")
    print(
        "\nThe adaptive strategy caches S(2) now, then replaces it with "
        "S(3) *only if* S(3)\nactually arrives at t0+1 -- a conditional "
        "branch no predetermined sequence (and\nhence no min-cost flow over "
        "them) can express.  FlowExpect's 1.60 < 1.75: the\nsearch space of "
        "Section 3.3 is strictly larger than FlowExpect's."
    )


if __name__ == "__main__":
    main()
