"""Self-configuring join state management: no model knowledge required.

The paper's framework assumes the input streams' statistical properties
are "known or observed".  This example shows the closed loop we built on
top of it (`repro.analysis.detection` + `ModelDrivenHeebPolicy`): the
policy watches raw arrivals, classifies each stream (trend? random walk?
stationary? AR(1)?), fits the model, picks the matching HEEB strategy,
and calibrates α from the lifetimes it observes -- all at runtime.

The same unmodified policy object is dropped onto two completely
different workloads and identifies both.

Run:  python examples/auto_configure.py
"""

from __future__ import annotations

import numpy as np

from repro.policies import ModelDrivenHeebPolicy, ProbPolicy, RandPolicy
from repro.sim.join_sim import JoinSimulator
from repro.streams import (
    LinearTrendStream,
    RandomWalkStream,
    bounded_normal,
    discretized_normal,
)

CACHE_SIZE = 10
LENGTH = 2500


def run_workload(title: str, r_model, s_model, seed: int) -> None:
    rng = np.random.default_rng(seed)
    r = r_model.sample_path(LENGTH, rng)
    s = s_model.sample_path(LENGTH, np.random.default_rng(seed + 1))

    policies = {
        "HEEB-AUTO": ModelDrivenHeebPolicy(min_history=200, refit_every=500),
        "PROB": ProbPolicy(),
        "RAND": RandPolicy(seed=seed),
    }
    print(f"\n== {title} ==")
    rows = []
    identified = None
    for name, policy in policies.items():
        # Note: no models are passed to the simulator.
        sim = JoinSimulator(CACHE_SIZE, policy, warmup=4 * CACHE_SIZE)
        result = sim.run(r, s)
        rows.append((name, result.results_after_warmup))
        if isinstance(policy, ModelDrivenHeebPolicy):
            identified = policy.kinds
    for name, count in sorted(rows, key=lambda kv: -kv[1]):
        print(f"  {name:<10}  {count:>6}")
    print(f"  identified models: {identified}")


def main() -> None:
    run_workload(
        "workload 1: drifting sensor levels (linear trends)",
        LinearTrendStream(bounded_normal(10, 1.0), speed=1.0, lag=1),
        LinearTrendStream(bounded_normal(15, 2.0), speed=1.0),
        seed=0,
    )
    run_workload(
        "workload 2: wandering quantities (random walks)",
        RandomWalkStream(discretized_normal(1.0)),
        RandomWalkStream(discretized_normal(1.0)),
        # Random walks frequently diverge (Section 6.1: "the number of
        # join result tuples is highly variable between runs"); this seed
        # gives a realization where the two walks stay in contact.
        seed=9,
    )
    print(
        "\nThe same policy object class identified both workloads from "
        "raw history and\nswitched to the matching precomputed HEEB "
        "strategy -- no configuration needed."
    )


if __name__ == "__main__":
    main()
