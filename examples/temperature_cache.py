"""The REAL scenario: caching database tuples referenced by temperatures.

A stream of daily temperatures (Melbourne-like; the paper's Section 6.5
uses 10 years of real Melbourne data) looks up projected energy
consumption in a database keyed by 0.1 °C ranges.  The cache holds
database tuples; we compare classic policies against HEEB driven by an
AR(1) model fitted to the stream.

Pipeline, exactly as in the paper:
  1. obtain the temperature series,
  2. fit an AR(1) by MLE,
  3. precompute the h2 surface at 25 control points (Theorem 5) and
     interpolate it bicubically,
  4. simulate, counting cache misses.

Run:  python examples/temperature_cache.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.fitting import fit_ar1
from repro.core.lifetime import LExp
from repro.core.precompute import ar1_h2_cache
from repro.policies import (
    AR1CacheHeeb,
    HeebPolicy,
    LfdPolicy,
    LfuPolicy,
    LruPolicy,
    RandPolicy,
)
from repro.sim.cache_sim import CacheSimulator
from repro.streams import AR1Stream, melbourne_like_temperatures

N_DAYS = 3650
MEMORY = 150
BUCKET = 0.1  # one database tuple per 0.1 °C


def main() -> None:
    # 1. Ten years of daily temperatures.
    temps = melbourne_like_temperatures(N_DAYS, np.random.default_rng(0))
    print(
        f"{N_DAYS} days of temperatures: "
        f"mean {temps.mean():.1f} °C, min {temps.min():.1f}, max {temps.max():.1f}"
    )

    # 2. Fit the AR(1) model (the paper reports 0.72 / 5.59 / 4.22 for
    #    the real Melbourne data).
    fit = fit_ar1(temps)
    print(
        f"fitted AR(1): X_t = {fit.phi1:.2f}·X_(t-1) + {fit.phi0:.2f} "
        f"+ N(0, {fit.sigma:.2f}²)\n"
    )
    model = AR1Stream(fit.phi0, fit.phi1, fit.sigma, bucket=BUCKET)
    reference = [model.to_bucket(t) for t in temps]

    # 3. Precompute HEEB's h2 surface: 5×5 control points, bicubic spline.
    lo, hi = min(reference), max(reference)
    v_grid = np.linspace(lo, hi, 5).round().astype(int)
    x_grid = np.linspace(lo * BUCKET, hi * BUCKET, 5)
    surface = ar1_h2_cache(model, LExp(float(MEMORY)), v_grid, x_grid)

    # 4. Simulate.
    policies = {
        "LFD (offline oracle)": LfdPolicy(reference),
        "LRU": LruPolicy(),
        "LFU / PROB": LfuPolicy(),
        "RAND": RandPolicy(seed=1),
        "HEEB": HeebPolicy(AR1CacheHeeb(model, surface)),
    }
    print(f"cache: {MEMORY} database tuples; {len(reference)} references")
    rows = []
    for name, policy in policies.items():
        result = CacheSimulator(MEMORY, policy, reference_model=model).run(
            reference
        )
        rows.append((name, result.misses, result.hit_rate))
    rows.sort(key=lambda r: r[1])
    width = max(len(r[0]) for r in rows)
    for name, misses, hit_rate in rows:
        print(f"  {name:<{width}}  misses {misses:>5}   hit rate {hit_rate:.3f}")

    print(
        "\nTemperature locality keeps every heuristic in the same league "
        "(small RAND-to-LFD gap);\nHEEB leads the online policies by "
        "modeling where tomorrow's temperature will be."
    )


if __name__ == "__main__":
    main()
