"""Sliding-window semantics (Section 7): why PROB and LIFE both misrank.

Three candidate tuples compete for cache slots under a sliding window:

    x1: match probability 0.50, remaining window life  1 step
    x2: match probability 0.49, remaining window life 50 steps
    x3: match probability 0.01, remaining window life 51 steps

PROB prefers x1 to x2 (shortsighted: x2 stays productive long after x1
expires).  LIFE prefers x3 to x1 (pessimistic: it assumes nothing better
will arrive for 50 steps).  Windowed HEEB -- L_exp clipped to the
window, per Section 7 -- ranks x2 > x1 > x3, "arguably the most
reasonable order".

The script computes the three scores from the actual implementation and
then verifies the ranking's consequence in a windowed join simulation.

Run:  python examples/sliding_window_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core.ecb import ECB
from repro.core.heeb import heeb_from_ecb
from repro.core.lifetime import WindowedLExp
from repro.policies import GenericJoinHeeb, HeebPolicy, ProbPolicy
from repro.core.lifetime import LExp
from repro.sim.join_sim import JoinSimulator
from repro.streams import StationaryStream, from_mapping

CANDIDATES = {
    "x1": {"p": 0.50, "life": 1},
    "x2": {"p": 0.49, "life": 50},
    "x3": {"p": 0.01, "life": 51},
}
ALPHA = 20.0
HORIZON = 200


def main() -> None:
    print("candidate   p      window life   PROB order   LIFE score   HEEB H")
    heeb_scores = {}
    for name, spec in CANDIDATES.items():
        # Stationary partner: the ECB rises by p every step; the tuple's
        # own window clips its participation.
        ecb = ECB(np.cumsum(np.full(HORIZON, spec["p"])))
        h = heeb_from_ecb(ecb, WindowedLExp(ALPHA, spec["life"]))
        heeb_scores[name] = h
        life_score = spec["p"] * spec["life"]
        print(
            f"  {name}      {spec['p']:.2f}   {spec['life']:>4}          "
            f"p = {spec['p']:.2f}     {life_score:>6.2f}     {h:.4f}"
        )

    prob_rank = sorted(CANDIDATES, key=lambda n: -CANDIDATES[n]["p"])
    life_rank = sorted(
        CANDIDATES, key=lambda n: -CANDIDATES[n]["p"] * CANDIDATES[n]["life"]
    )
    heeb_rank = sorted(CANDIDATES, key=lambda n: -heeb_scores[n])
    print(f"\n  PROB keeps, best-first: {prob_rank}   (overvalues the expiring x1)")
    print(f"  LIFE keeps, best-first: {life_rank}   (overvalues the barren x3)")
    print(f"  HEEB keeps, best-first: {heeb_rank}   (the reasonable order)")
    assert heeb_rank == ["x2", "x1", "x3"]

    # ----------------------------------------------------------------------
    # The ranking matters: windowed join where HEEB's retention wins.
    # ----------------------------------------------------------------------
    model = StationaryStream(from_mapping({1: 0.45, 2: 0.44, 3: 0.11}))
    rng = np.random.default_rng(3)
    r = model.sample_path(2000, rng)
    s = model.sample_path(2000, np.random.default_rng(4))
    window = 10
    heeb = HeebPolicy(GenericJoinHeeb(LExp(8.0), horizon=60))
    heeb_result = JoinSimulator(
        2, heeb, window=window, r_model=model, s_model=model
    ).run(r, s)
    prob_result = JoinSimulator(2, ProbPolicy(), window=window).run(r, s)
    print(
        f"\nwindowed join (w={window}, cache 2, 2000 steps): "
        f"HEEB {heeb_result.total_results} results, "
        f"PROB {prob_result.total_results} results"
    )


if __name__ == "__main__":
    main()
