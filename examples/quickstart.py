"""Quickstart: join two drifting streams with a bounded cache.

Builds the paper's TOWER-style workload (two streams whose join values
follow a linear trend with bounded normal noise, R lagging one step
behind S), then compares cache replacement policies under the MAX-subset
metric: how many join results can a 10-tuple cache produce?

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core.lifetime import LExp, alpha_for_mean_lifetime
from repro.flow.opt_offline import solve_opt_offline
from repro.policies import (
    HeebPolicy,
    LifePolicy,
    ProbPolicy,
    RandPolicy,
    ScheduledPolicy,
    TrendJoinHeeb,
    TrendWindowOracle,
)
from repro.sim.join_sim import JoinSimulator
from repro.streams import LinearTrendStream, bounded_normal

CACHE_SIZE = 10
LENGTH = 2000
SEED = 42


def main() -> None:
    # 1. Stream models: join values drift upward at speed 1; R lags S by
    #    one step; noise is a discretized normal bounded at ±10 / ±15.
    r_model = LinearTrendStream(bounded_normal(10, 1.0), speed=1.0, lag=1)
    s_model = LinearTrendStream(bounded_normal(15, 2.0), speed=1.0)

    # 2. One realization of each stream.
    rng = np.random.default_rng(SEED)
    r_values = r_model.sample_path(LENGTH, rng)
    s_values = s_model.sample_path(LENGTH, rng)

    # 3. Policies.  HEEB exploits the known statistics; the baselines are
    #    window-aware per the paper's experimental setup.
    oracle = TrendWindowOracle(r_model, s_model)
    alpha = alpha_for_mean_lifetime(3.0)  # ≈ time to drift 2 noise stdevs
    policies = {
        "HEEB": HeebPolicy(TrendJoinHeeb(LExp(alpha))),
        "PROB": ProbPolicy(),
        "LIFE": LifePolicy(),
        "RAND": RandPolicy(seed=SEED),
    }

    print(f"Joining {LENGTH}-tuple streams with a {CACHE_SIZE}-slot cache\n")
    results = {}
    for name, policy in policies.items():
        sim = JoinSimulator(
            CACHE_SIZE,
            policy,
            warmup=4 * CACHE_SIZE,
            r_model=r_model,
            s_model=s_model,
            window_oracle=oracle,
        )
        results[name] = sim.run(r_values, s_values).results_after_warmup

    # 4. The offline optimum for calibration.
    solution = solve_opt_offline(r_values, s_values, CACHE_SIZE)
    opt = (
        JoinSimulator(CACHE_SIZE, ScheduledPolicy(solution), warmup=4 * CACHE_SIZE)
        .run(r_values, s_values)
        .results_after_warmup
    )
    results["OPT-OFFLINE (oracle)"] = opt

    width = max(len(n) for n in results)
    for name, count in sorted(results.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(40 * count / max(results.values()))
        print(f"  {name:<{width}}  {count:>6}  {bar}")

    print(
        "\nHEEB recovers most of the offline optimum by exploiting the "
        "streams' statistics;\nfrequency-based heuristics (PROB/LIFE) "
        "misread the drifting value distribution."
    )


if __name__ == "__main__":
    main()
