"""Perf-regression harness: engine tiers on fig08, FlowExpect fast path.

Times every batchable policy of the Figure-8 comparison workload (all
four synthetic configurations) on the three execution tiers and records
trials/sec plus the per-engine speedup over scalar in
``BENCH_batch.json`` at the repo root.  The numbers seed the performance
trajectory: future engine work should move the ``aggregate`` speedups
up, and a regression below the recorded baseline is a red flag.

All engines consume the *same* pre-generated paths and produce identical
per-trial results (asserted here run by run), so the timing comparison
is apples to apples.  The parallel tier fans trials across worker
processes; on a single-core machine its speedup is expectedly < 1 (pure
fork/IPC overhead) — the recorded ``cpu_count`` makes that legible.

The ``flowexpect`` section times one FLOOR-config join run under
:class:`~repro.policies.flowexpect_policy.FlowExpectPolicy` on the fast
(template + ProbTable + direct solver) and reference (networkx +
``network_simplex``) paths, asserts they make *identical* per-step
kept/victim decisions, and records per-step milliseconds plus the
speedup.  ``--min-fe-speedup`` turns the speedup into a hard floor for
CI smoke runs.

The FlowExpect section also enforces the :mod:`repro.obs` zero-overhead
contract — an explicit ``NullRecorder`` run must stay within
``--max-null-overhead`` percent (default 2%) of the default run — and
records a ``CounterRecorder`` run's solver-iteration count and ProbTable
hit rate alongside the timings.

The ``serve`` section replays a seeded FLOOR stream through the
:mod:`repro.serve` streaming tier — after asserting single-shard
parity with the scalar simulator — and records ingestion throughput
(tuples/sec) plus queue-depth telemetry (p90 and high-water mark).

The ``multi_join`` section times the CHAIN3 Appendix-C topology under
unified HEEB on the scalar and batch tiers (asserting trial-for-trial
identical results before reporting the speedup), then replays the same
topology through the serving tier — single-shard parity against
:class:`~repro.sim.multi_join.MultiJoinSimulator` first — and records
sharded ingestion throughput.

The ``batch_coverage`` section times the four PR-9 adapter families —
LRU-k, windowed HEEB, trie caching, FlowExpect — scalar vs batch,
asserting seed-for-seed identical results and that the batch preference
was honoured before recording per-family speedups.
``--min-batch-speedup`` turns the non-FlowExpect speedups into a hard
CI floor; FlowExpect gets the separate, lower
``--min-fe-batch-speedup`` floor because its scalar tier already is the
optimized fast path (the Amdahl argument is spelled out in
``docs/PERFORMANCE.md``).

The ``native`` section runs one FlowExpect experiment through
``run_experiment(native=...)`` with the compiled kernels off and on,
asserts identical decisions, and records the speedup; on a numba-free
install both runs use the reference kernels and the entry says so.
``--min-native-speedup`` is the CI native-leg floor, enforced only when
numba is importable.

The ``sketch`` section runs the bounded-memory cache workload of
:func:`run_sketch_bench`: a ``cache_size=10**6`` skewed reference
stream under ``LfuPolicy(counts="sketch")`` plus the bloom
:class:`~repro.sketch.AdmissionFilter`, with the run's tracemalloc peak
asserted under ``--sketch-max-mem-mb`` and the hit-rate delta vs exact
counts recorded for the history gate.

Each full run is also appended to ``BENCH_history.jsonl`` (timestamp,
git SHA, environment fingerprint, headline metrics) via
``tools/bench_history.py``, whose ``--check`` mode gates CI against the
rolling median of prior same-environment runs.  ``--no-history`` skips
the append; ``--skip-engines`` partial runs never append.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py [--trials 256]
        [--length 600] [--workers N] [--fe-length 300]
        [--fe-lookahead 8] [--min-fe-speedup X] [--max-null-overhead P]
        [--batchcov-trials 192] [--batchcov-length 400]
        [--min-batch-speedup X] [--min-fe-batch-speedup X]
        [--skip-batchcov] [--native-length 200] [--native-lookahead 8]
        [--min-native-speedup X] [--skip-native]
        [--serve-length 2000] [--serve-shards 4] [--serve-queue 256]
        [--skip-serve] [--multi-length 300] [--multi-trials 64]
        [--multi-serve-length 1500] [--multi-shards 3] [--skip-multi]
        [--sketch-cache-size 1000000] [--sketch-length 120000]
        [--sketch-max-mem-mb 64] [--sketch-width 65536] [--skip-sketch]
        [--out BENCH_batch.json]
        [--history BENCH_history.jsonl] [--no-history]
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.experiments.configs import SYNTHETIC_CONFIGS, make_config
from repro.obs import NULL_RECORDER, CounterRecorder, NullRecorder
from repro.policies import make_policy
from repro.policies.flowexpect_policy import FlowExpectPolicy
from repro.sim.engine import ParallelEngine
from repro.sim.join_sim import JoinSimulator
from repro.sim.runner import generate_paths, run_join_experiment

CACHE_SIZE = 10

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_bench_history():
    """Import ``tools/bench_history.py`` by path (tools/ is not a package)."""
    path = _REPO_ROOT / "tools" / "bench_history.py"
    spec = importlib.util.spec_from_file_location("bench_history", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _policy_factories(config):
    factories = {
        "RAND": lambda: make_policy("rand", seed=1),
        "PROB": lambda: make_policy("prob"),
    }
    if config.has_life:
        factories["LIFE"] = lambda: make_policy("life")
    factories["HEEB"] = lambda: config.make_heeb(CACHE_SIZE)
    return factories


def _assert_equal(config_name, policy_name, engine_name, baseline, other):
    mismatches = sum(
        a.total_results != b.total_results
        or not np.array_equal(a.occupancy, b.occupancy)
        for a, b in zip(baseline.per_run, other.per_run)
    )
    if mismatches:
        raise AssertionError(
            f"{config_name}/{policy_name}: {engine_name} diverged from "
            f"scalar on {mismatches} trials"
        )


def run_harness(n_trials: int, length: int, workers: int | None) -> dict:
    """Time the fig08 workload on all three engines; return the report."""
    warmup = 4 * CACHE_SIZE
    parallel_engine = ParallelEngine(max_workers=workers)
    entries = []
    totals = {"scalar": 0.0, "batch": 0.0, "parallel": 0.0}
    total_trials = 0

    for config_name, config in SYNTHETIC_CONFIGS().items():
        paths = generate_paths(
            config.r_model, config.s_model, length, n_trials, seed=0
        )
        kwargs = dict(
            cache_size=CACHE_SIZE,
            warmup=warmup,
            r_model=config.r_model,
            s_model=config.s_model,
            window_oracle=config.window_oracle,
        )
        for policy_name, factory in _policy_factories(config).items():
            seconds = {}
            results = {}
            for engine_name, engine in (
                ("scalar", None),
                ("batch", "batch"),
                ("parallel", parallel_engine),
            ):
                t0 = time.perf_counter()
                results[engine_name] = run_join_experiment(
                    factory, paths, engine=engine, **kwargs
                )
                seconds[engine_name] = time.perf_counter() - t0

            for engine_name in ("batch", "parallel"):
                _assert_equal(
                    config_name,
                    policy_name,
                    engine_name,
                    results["scalar"],
                    results[engine_name],
                )

            entry = {"config": config_name, "policy": policy_name,
                     "trials": n_trials}
            # Negotiation may have demoted the parallel preference (e.g.
            # a single effective worker): record what actually ran so a
            # ~1x "parallel" number is legible.
            entry["parallel_engine_used"] = results["parallel"].engine_used
            for engine_name, t in seconds.items():
                entry[f"{engine_name}_seconds"] = round(t, 4)
                entry[f"{engine_name}_trials_per_sec"] = round(
                    n_trials / t, 2
                )
                totals[engine_name] += t
            entry["batch_speedup"] = round(
                seconds["scalar"] / seconds["batch"], 2
            )
            entry["parallel_speedup"] = round(
                seconds["scalar"] / seconds["parallel"], 2
            )
            entries.append(entry)
            total_trials += n_trials
            print(
                f"{config_name:6s} {policy_name:5s} "
                f"scalar {seconds['scalar']:7.3f}s  "
                f"batch {seconds['batch']:7.3f}s "
                f"({entry['batch_speedup']:5.1f}x)  "
                f"parallel {seconds['parallel']:7.3f}s "
                f"({entry['parallel_speedup']:5.1f}x)"
            )

    aggregate = {"trials": total_trials}
    for engine_name, t in totals.items():
        aggregate[f"{engine_name}_seconds"] = round(t, 4)
        aggregate[f"{engine_name}_trials_per_sec"] = round(
            total_trials / t, 2
        )
    aggregate["batch_speedup"] = round(
        totals["scalar"] / totals["batch"], 2
    )
    aggregate["parallel_speedup"] = round(
        totals["scalar"] / totals["parallel"], 2
    )

    return {
        "workload": {
            "figure": "fig08 comparison (synthetic configs)",
            "length": length,
            "trials_per_experiment": n_trials,
            "cache_size": CACHE_SIZE,
            "warmup": warmup,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "parallel_workers": parallel_engine.max_workers,
        },
        "entries": entries,
        "aggregate": aggregate,
    }


class _RecordingFlowExpect(FlowExpectPolicy):
    """FlowExpect that logs every (time, victim-uid) decision it makes."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.decisions: list[tuple] = []

    def select_victims(self, candidates, n_evict, ctx):
        victims = super().select_victims(candidates, n_evict, ctx)
        self.decisions.append(
            (ctx.time, tuple(sorted(v.uid for v in victims)))
        )
        return victims


def run_flowexpect_bench(
    length: int,
    lookahead: int,
    cache_size: int = CACHE_SIZE,
    max_null_overhead: float = 2.0,
) -> dict:
    """Time FlowExpect fast vs reference on one FLOOR join run.

    Both paths replay the identical stream realization; their per-step
    victim decisions are asserted equal before any timing is reported.

    Two observability checks ride along: a best-of-3 comparison asserts
    an explicit :class:`~repro.obs.NullRecorder` costs at most
    ``max_null_overhead`` percent over the default uninstrumented run
    (the zero-overhead contract of :mod:`repro.obs`), and a
    :class:`~repro.obs.CounterRecorder` run records the flow-solver
    iteration count and the ProbTable memo hit rate into the entry.
    """
    config = make_config("floor")
    r = config.r_model.sample_path(length, np.random.default_rng(42))
    s = config.s_model.sample_path(length, np.random.default_rng(43))

    seconds = {}
    decisions = {}
    totals = {}
    for label, fast in (("fast", True), ("reference", False)):
        policy = _RecordingFlowExpect(
            lookahead, config.r_model, config.s_model, fast=fast
        )
        sim = JoinSimulator(cache_size, policy)
        t0 = time.perf_counter()
        result = sim.run(r, s)
        seconds[label] = time.perf_counter() - t0
        decisions[label] = policy.decisions
        totals[label] = result.total_results

    if decisions["fast"] != decisions["reference"]:
        diverged = sum(
            a != b
            for a, b in zip(decisions["fast"], decisions["reference"])
        )
        raise AssertionError(
            f"FlowExpect fast path diverged from reference on {diverged} "
            f"of {len(decisions['reference'])} per-step decisions"
        )
    if totals["fast"] != totals["reference"]:
        raise AssertionError(
            "FlowExpect fast path total results diverged: "
            f"{totals['fast']} vs {totals['reference']}"
        )

    # Zero-overhead contract: an explicit NullRecorder run must cost no
    # more than max_null_overhead percent over the default run.  Both
    # variants run the same code, so any measured gap is either noise or
    # a real regression; the check takes the *minimum* per-round ratio of
    # interleaved pairs — noise only inflates a round's ratio, so the
    # best round is the least-noise estimate, while genuine overhead
    # (e.g. an unguarded counting call) shows up in every round.
    def _one_fast_run(recorder) -> float:
        policy = FlowExpectPolicy(
            lookahead, config.r_model, config.s_model, fast=True
        )
        sim = JoinSimulator(cache_size, policy, recorder=recorder)
        t0 = time.perf_counter()
        sim.run(r, s)
        return time.perf_counter() - t0

    base_seconds = float("inf")
    null_seconds = float("inf")
    null_ratio = float("inf")
    for _ in range(5):
        round_base = _one_fast_run(NULL_RECORDER)
        round_null = _one_fast_run(NullRecorder())
        base_seconds = min(base_seconds, round_base)
        null_seconds = min(null_seconds, round_null)
        null_ratio = min(null_ratio, round_null / round_base)
    null_overhead_pct = 100.0 * (null_ratio - 1.0)
    if null_overhead_pct > max_null_overhead:
        raise AssertionError(
            f"NullRecorder overhead {null_overhead_pct:.2f}% exceeds the "
            f"{max_null_overhead}% budget (base {base_seconds:.4f}s, "
            f"null {null_seconds:.4f}s)"
        )

    # CounterRecorder run: solver work and memo effectiveness.
    counter_recorder = CounterRecorder()
    policy = FlowExpectPolicy(
        lookahead, config.r_model, config.s_model, fast=True
    )
    sim = JoinSimulator(cache_size, policy, recorder=counter_recorder)
    t0 = time.perf_counter()
    sim.run(r, s)
    counted_seconds = time.perf_counter() - t0
    counters = counter_recorder.counters
    table_hits = counters.get("prob_table.hits", 0)
    table_misses = counters.get("prob_table.misses", 0)
    table_lookups = table_hits + table_misses

    speedup = seconds["reference"] / seconds["fast"]
    entry = {
        "config": "FLOOR",
        "length": length,
        "lookahead": lookahead,
        "cache_size": cache_size,
        "decisions": len(decisions["fast"]),
        "total_results": totals["fast"],
        "fast_seconds": round(seconds["fast"], 4),
        "reference_seconds": round(seconds["reference"], 4),
        "fast_ms_per_step": round(1000 * seconds["fast"] / length, 4),
        "reference_ms_per_step": round(
            1000 * seconds["reference"] / length, 4
        ),
        "fast_speedup": round(speedup, 2),
        "null_overhead_pct": round(null_overhead_pct, 2),
        "counter_overhead_pct": round(
            100.0 * (counted_seconds / base_seconds - 1.0), 2
        ),
        "flow_solves": counters.get("flow.solves", 0),
        "solver_iterations": counters.get("flow.solver_iterations", 0),
        "prob_table_lookups": table_lookups,
        "prob_table_hit_rate": (
            round(table_hits / table_lookups, 4) if table_lookups else None
        ),
    }
    print(
        f"flowexpect la={lookahead:2d} len={length} "
        f"reference {entry['reference_ms_per_step']:7.3f} ms/step  "
        f"fast {entry['fast_ms_per_step']:7.3f} ms/step "
        f"({entry['fast_speedup']:5.1f}x), identical decisions"
    )
    print(
        f"observability: NullRecorder {entry['null_overhead_pct']:+.2f}% "
        f"(budget {max_null_overhead}%), counters "
        f"{entry['counter_overhead_pct']:+.2f}%, "
        f"{entry['solver_iterations']} solver iterations over "
        f"{entry['flow_solves']} solves, prob-table hit rate "
        f"{entry['prob_table_hit_rate']}"
    )
    return entry


#: Floors for the batch-coverage section: the families whose adapters
#: replay per-trial Python loops share memoized scoring across trials,
#: so their speedup scales with the trial count; FlowExpect is Amdahl-
#: bound by its per-trial exact solver (see docs/PERFORMANCE.md) and
#: gets a lower floor.
BATCHCOV_FE_FAMILY = "flowexpect"


def run_batch_coverage_bench(
    n_trials: int,
    length: int,
    fe_trials: int,
    fe_length: int,
) -> dict:
    """Time the four PR-9 adapter families, scalar vs batch.

    LRU-k, windowed HEEB, trie caching, and FlowExpect used to negotiate
    down to the scalar tier; each now has an exact batch adapter.  Every
    family runs the same pre-generated paths on both tiers, asserts
    trial-for-trial identical results (totals and occupancy) and that
    the batch preference was *not* demoted, then records the speedup.
    FlowExpect runs a reduced shape: its scalar tier is itself the fast
    path, so the reference timing is expensive and the achievable
    speedup is bounded by the per-trial solver share (Amdahl), not by
    vectorization.
    """
    from repro.policies.lru import LrukPolicy

    warmup = 2 * CACHE_SIZE
    families: dict[str, dict] = {}

    def _time_family(
        name,
        r_model,
        s_model,
        factory,
        *,
        window=None,
        window_oracle=None,
        trials=n_trials,
        steps=length,
        cache_size=CACHE_SIZE,
    ):
        paths = generate_paths(r_model, s_model, steps, trials, seed=0)
        kwargs = dict(
            cache_size=cache_size,
            warmup=warmup,
            window=window,
            r_model=r_model,
            s_model=s_model,
            window_oracle=window_oracle,
        )
        seconds = {}
        results = {}
        for engine_name in ("scalar", "batch"):
            t0 = time.perf_counter()
            results[engine_name] = run_join_experiment(
                factory, paths, engine=engine_name, **kwargs
            )
            seconds[engine_name] = time.perf_counter() - t0
        if results["batch"].engine_used != "batch":
            raise AssertionError(
                f"batch-coverage {name}: batch preference was demoted to "
                f"{results['batch'].engine_used!r}"
            )
        _assert_equal(name, results["scalar"].policy_name, "batch",
                      results["scalar"], results["batch"])
        entry = {
            "policy": results["scalar"].policy_name,
            "trials": trials,
            "length": steps,
            "cache_size": cache_size,
            "window": window,
            "scalar_seconds": round(seconds["scalar"], 4),
            "batch_seconds": round(seconds["batch"], 4),
            "batch_speedup": round(
                seconds["scalar"] / seconds["batch"], 2
            ),
        }
        families[name] = entry
        print(
            f"batchcov {name:13s} scalar {seconds['scalar']:7.3f}s  "
            f"batch {seconds['batch']:7.3f}s "
            f"({entry['batch_speedup']:5.1f}x), identical results"
        )

    tower = make_config("tower")
    _time_family(
        "lruk", tower.r_model, tower.s_model, lambda: LrukPolicy(2)
    )
    _time_family(
        "windowed_heeb",
        tower.r_model,
        tower.s_model,
        lambda: tower.make_heeb(CACHE_SIZE),
        window=8,
        window_oracle=tower.window_oracle,
    )
    from repro.streams import StationaryStream
    from repro.streams.noise import from_mapping

    pmf = from_mapping({1: 0.35, 2: 0.25, 3: 0.2, 4: 0.12, 5: 0.08})
    trie_r, trie_s = StationaryStream(pmf), StationaryStream(pmf)
    _time_family(
        "trie", trie_r, trie_s, lambda: make_policy("trie")
    )
    fe_r, fe_s = StationaryStream(pmf), StationaryStream(pmf)
    _time_family(
        BATCHCOV_FE_FAMILY,
        fe_r,
        fe_s,
        lambda: FlowExpectPolicy(4, fe_r, fe_s, fast=True),
        trials=fe_trials,
        steps=fe_length,
        cache_size=6,
    )

    return {
        "length": length,
        "trials": n_trials,
        "fe_length": fe_length,
        "fe_trials": fe_trials,
        "families": families,
    }


def enforce_batch_coverage_floors(
    section: dict,
    min_batch_speedup: float | None,
    min_fe_batch_speedup: float | None,
) -> None:
    """Apply the CI smoke floors to a batch-coverage section.

    ``min_batch_speedup`` gates every family except FlowExpect, whose
    scalar tier already *is* the optimized fast path — the batch win
    there is bounded by the shareable (non-solver) fraction of the work
    and gets its own, lower ``min_fe_batch_speedup`` floor.
    """
    for name, entry in section["families"].items():
        floor = (
            min_fe_batch_speedup
            if name == BATCHCOV_FE_FAMILY
            else min_batch_speedup
        )
        if floor is not None and entry["batch_speedup"] < floor:
            raise SystemExit(
                f"batch-coverage {name} speedup "
                f"{entry['batch_speedup']}x is below the required "
                f"floor {floor}x"
            )


def run_native_bench(
    length: int, lookahead: int, n_trials: int = 4
) -> dict:
    """Time a FlowExpect join with and without the compiled kernels.

    Runs the identical FLOOR-config experiment twice through
    ``run_experiment(native=...)`` — the knob routes every
    :func:`~repro.flow.native.solve_unit_flow` call to the numba kernel
    when available — and asserts the decisions (totals, occupancy)
    are identical before reporting the speedup.  On a numba-free
    install the native run degrades to the reference kernels; the entry
    records ``native_available`` so a ~1x speedup is legible, and the
    ``--min-native-speedup`` floor only applies when the compiled
    kernels can actually run.
    """
    from repro.flow.native import native_available
    from repro.sim.engine import ExperimentSpec
    from repro.sim.runner import run_experiment

    config = make_config("floor")
    spec = ExperimentSpec(
        kind="join",
        cache_size=CACHE_SIZE,
        r_model=config.r_model,
        s_model=config.s_model,
    )
    paths = generate_paths(
        config.r_model, config.s_model, length, n_trials, seed=21
    )
    factory = lambda: FlowExpectPolicy(
        lookahead, config.r_model, config.s_model, fast=True
    )

    # The first native call pays jit compilation; a tiny warm-up run on
    # both legs keeps that out of the timed comparison.
    warm_paths = generate_paths(
        config.r_model, config.s_model, min(length, 40), 1, seed=22
    )
    for native in (False, True):
        run_experiment(spec, factory, warm_paths, native=native)

    seconds = {}
    results = {}
    for label, native in (("reference", False), ("native", True)):
        t0 = time.perf_counter()
        results[label] = run_experiment(
            spec, factory, paths, native=native
        )
        seconds[label] = time.perf_counter() - t0
    _assert_equal("FLOOR", "FLOWEXPECT", "native",
                  results["reference"], results["native"])

    available = native_available()
    entry = {
        "config": "FLOOR",
        "length": length,
        "lookahead": lookahead,
        "trials": n_trials,
        "cache_size": CACHE_SIZE,
        "native_available": available,
        "engine_used": results["native"].engine_used,
        "reference_seconds": round(seconds["reference"], 4),
        "native_seconds": round(seconds["native"], 4),
        "reference_ms_per_step": round(
            1000 * seconds["reference"] / (length * n_trials), 4
        ),
        "native_ms_per_step": round(
            1000 * seconds["native"] / (length * n_trials), 4
        ),
        "native_speedup": (
            round(seconds["reference"] / seconds["native"], 2)
            if available
            else None
        ),
    }
    print(
        f"native   la={lookahead:2d} len={length} trials={n_trials} "
        f"reference {seconds['reference']:7.3f}s  native "
        f"{seconds['native']:7.3f}s "
        + (
            f"({entry['native_speedup']:5.1f}x, {entry['engine_used']})"
            if available
            else "(numba absent: reference kernels on both runs)"
        )
    )
    return entry


def run_serve_bench(
    length: int,
    n_shards: int,
    queue_maxsize: int,
    max_null_overhead: float = 2.0,
) -> dict:
    """Time the serving tier on a seeded FLOOR replay; return the entry.

    First asserts the tier's parity contract at bench scale — a
    single-shard replay must reproduce the scalar simulator's result
    count exactly — then times a sharded replay and records ingestion
    throughput (tuples/sec), queue-depth telemetry (high-water mark and
    the P² p90/p99 of the ``serve.queue_depth`` series), and the p99 of
    the ``decide`` request-path span from the merged latency histograms.

    The span machinery's disabled-path contract rides along: replays
    under the shared :data:`~repro.obs.NULL_RECORDER` and an explicit
    :class:`~repro.obs.NullRecorder` (spans inactive in both — the
    request path must read no clocks) are interleaved and the *minimum*
    per-round throughput ratio must stay within ``max_null_overhead``
    percent, the same least-noise estimate the FlowExpect bench uses.
    """
    from repro.serve import run_replay
    from repro.serve.replay import generate_join_stream
    from repro.sim.engine import ExperimentSpec

    config = make_config("FLOOR")
    r_values, s_values = generate_join_stream(
        config.r_model, config.s_model, length, seed=0
    )
    spec = ExperimentSpec(kind="join", cache_size=CACHE_SIZE)
    factory = lambda: make_policy("lru")

    sim = JoinSimulator(policy=factory(), cache_size=CACHE_SIZE)
    sim_results = sim.run(r_values, s_values).total_results
    parity = run_replay(spec, factory, r_values, s_values, n_shards=1)
    if parity.total_results != sim_results:
        raise AssertionError(
            f"serve parity broken: single-shard replay produced "
            f"{parity.total_results} results, simulator {sim_results}"
        )

    def _one_replay(recorder) -> float:
        return run_replay(
            spec,
            factory,
            r_values,
            s_values,
            n_shards=n_shards,
            queue_maxsize=queue_maxsize,
            recorder=recorder,
        ).seconds

    base_seconds = float("inf")
    null_seconds = float("inf")
    null_ratio = float("inf")
    for _ in range(3):
        round_base = _one_replay(NULL_RECORDER)
        round_null = _one_replay(NullRecorder())
        base_seconds = min(base_seconds, round_base)
        null_seconds = min(null_seconds, round_null)
        null_ratio = min(null_ratio, round_null / round_base)
    span_overhead_pct = 100.0 * (null_ratio - 1.0)
    if span_overhead_pct > max_null_overhead:
        raise AssertionError(
            f"disabled-span serve overhead {span_overhead_pct:.2f}% "
            f"exceeds the {max_null_overhead}% budget "
            f"(base {base_seconds:.4f}s, null {null_seconds:.4f}s)"
        )

    # The instrumented run: an enabled recorder activates span timing,
    # so the summary carries the decide-span p99 for the history gate.
    recorder = CounterRecorder()
    summary = run_replay(
        spec,
        factory,
        r_values,
        s_values,
        n_shards=n_shards,
        queue_maxsize=queue_maxsize,
        recorder=recorder,
    )
    entry = {
        "length": length,
        "n_shards": n_shards,
        "queue_maxsize": queue_maxsize,
        "policy": "lru",
        "seconds": round(summary.seconds, 4),
        "tuples_per_sec": round(summary.tuples_per_sec, 1),
        "max_queue_depth": summary.max_queue_depth,
        "p90_queue_depth": (
            round(summary.p90_queue_depth, 2)
            if summary.p90_queue_depth is not None
            else None
        ),
        "p99_queue_depth": (
            round(summary.p99_queue_depth, 2)
            if summary.p99_queue_depth is not None
            else None
        ),
        "p99_ms": (
            round(summary.p99_decide_ms, 4)
            if summary.p99_decide_ms is not None
            else None
        ),
        "span_overhead_pct": round(span_overhead_pct, 2),
        "backpressure_waits": summary.backpressure_waits,
        "total_results": summary.total_results,
    }
    print(
        f"serve    shards={n_shards} len={length} "
        f"{entry['tuples_per_sec']:10.1f} tuples/sec  "
        f"queue depth p90 {entry['p90_queue_depth']} "
        f"max {entry['max_queue_depth']}  "
        f"decide p99 {entry['p99_ms']}ms  "
        f"spans disabled {entry['span_overhead_pct']:+.2f}% "
        f"(budget {max_null_overhead}%), parity OK"
    )
    return entry


def run_multi_join_bench(
    length: int,
    n_trials: int,
    serve_length: int,
    serve_shards: int,
    queue_maxsize: int,
) -> dict:
    """Time the CHAIN3 multi-join on scalar vs batch, then serve it.

    The batch tier runs the same trials as the scalar reference and
    must produce identical per-trial results (total, per-query, and
    per-stream occupancy) before its speedup is reported — the same
    apples-to-apples contract as the binary engine harness.  The serve
    half first asserts single-shard parity with
    :class:`~repro.sim.multi_join.MultiJoinSimulator`, then times a
    sharded replay and records ingestion throughput.
    """
    from repro.experiments.configs import make_multi_config
    from repro.serve import run_replay
    from repro.serve.replay import generate_multi_join_stream
    from repro.sim.engine import ExperimentSpec, spawn_rng
    from repro.sim.multi_join import MultiJoinSimulator
    from repro.sim.runner import run_multi_join_experiment

    config = make_multi_config("CHAIN3")
    warmup = 4 * CACHE_SIZE
    trials = []
    for run in range(n_trials):
        rng = spawn_rng(0, run)
        trials.append(
            {
                name: model.sample_path(length, rng)
                for name, model in config.models.items()
            }
        )

    factory = lambda: config.make_heeb(CACHE_SIZE)
    seconds = {}
    results = {}
    for engine_name in ("scalar", "batch"):
        t0 = time.perf_counter()
        results[engine_name] = run_multi_join_experiment(
            factory,
            trials,
            CACHE_SIZE,
            config.queries,
            warmup=warmup,
            models=config.models,
            engine=engine_name,
        )
        seconds[engine_name] = time.perf_counter() - t0
    if results["batch"].engine_used != "batch":
        raise AssertionError(
            "multi-join bench: batch preference was demoted to "
            f"{results['batch'].engine_used!r}"
        )
    mismatches = sum(
        a.total_results != b.total_results
        or a.per_query != b.per_query
        or any(
            not np.array_equal(
                np.asarray(a.occupancy_by_stream[name]),
                np.asarray(b.occupancy_by_stream[name]),
            )
            for name in a.occupancy_by_stream
        )
        for a, b in zip(results["scalar"].per_run, results["batch"].per_run)
    )
    if mismatches:
        raise AssertionError(
            f"multi-join bench: batch diverged from scalar on "
            f"{mismatches} of {n_trials} trials"
        )

    streams = generate_multi_join_stream(
        config.models, serve_length, seed=0
    )
    spec = ExperimentSpec(
        kind="multi_join",
        cache_size=CACHE_SIZE,
        queries=tuple(tuple(q) for q in config.queries),
        models=config.models,
    )
    serve_factory = lambda: make_policy("lru")
    sim = MultiJoinSimulator(
        CACHE_SIZE, serve_factory(), config.queries, models=config.models
    )
    sim_results = sim.run(streams).total_results
    parity = run_replay(spec, serve_factory, streams, n_shards=1)
    if parity.total_results != sim_results:
        raise AssertionError(
            f"multi-join serve parity broken: single-shard replay "
            f"produced {parity.total_results} results, simulator "
            f"{sim_results}"
        )
    summary = run_replay(
        spec,
        serve_factory,
        streams,
        n_shards=serve_shards,
        queue_maxsize=queue_maxsize,
    )

    entry = {
        "config": config.name,
        "length": length,
        "trials": n_trials,
        "cache_size": CACHE_SIZE,
        "warmup": warmup,
        "policy": "HEEB",
        "scalar_seconds": round(seconds["scalar"], 4),
        "batch_seconds": round(seconds["batch"], 4),
        "scalar_trials_per_sec": round(n_trials / seconds["scalar"], 2),
        "batch_trials_per_sec": round(n_trials / seconds["batch"], 2),
        "batch_speedup": round(seconds["scalar"] / seconds["batch"], 2),
        "serve_length": serve_length,
        "serve_n_shards": serve_shards,
        "serve_policy": "lru",
        "serve_seconds": round(summary.seconds, 4),
        "serve_tuples_per_sec": round(summary.tuples_per_sec, 1),
        "serve_total_results": summary.total_results,
    }
    print(
        f"multi    {config.name} len={length} trials={n_trials} "
        f"scalar {seconds['scalar']:7.3f}s  "
        f"batch {seconds['batch']:7.3f}s "
        f"({entry['batch_speedup']:5.1f}x), identical results; "
        f"serve shards={serve_shards} "
        f"{entry['serve_tuples_per_sec']:10.1f} tuples/sec, parity OK"
    )
    return entry


def _sketch_workload(
    length: int, head_values: int, tail_fraction: float, seed: int = 7
) -> list[int]:
    """Skewed reference stream over a huge value domain.

    A Zipf-popular "head" of ``head_values`` hot keys carries most
    references; a "tail" of essentially-unique cold keys (drawn from a
    disjoint 10^9-sized domain) supplies the one-hit wonders that blow
    up exact per-value state.  Values are plain ints, deterministic in
    ``seed``.
    """
    rng = np.random.default_rng(seed)
    is_tail = rng.random(length) < tail_fraction
    head = rng.zipf(1.5, size=length) % head_values
    tail = rng.integers(head_values, 10**9, size=length)
    values = np.where(is_tail, tail, head)
    return [int(v) for v in values]


def run_sketch_bench(
    cache_size: int = 10**6,
    length: int = 120_000,
    head_values: int = 1_000,
    tail_fraction: float = 0.15,
    sketch_width: int = 65_536,
    max_mem_mb: float = 64.0,
) -> dict:
    """Cache at ``cache_size`` slots with sketch front-ends vs exact.

    Two runs over the identical skewed reference stream:

    * **exact** — ``LfuPolicy(counts="exact")``, every miss admitted;
      per-value ``Counter`` state grows with the distinct-value count.
    * **sketch** — ``LfuPolicy(counts="sketch")`` plus the bloom
      :class:`~repro.sketch.AdmissionFilter`: frequency state is a
      fixed count-min table and one-hit wonders never occupy a cache
      slot.  The sketch run executes under :mod:`tracemalloc` and its
      peak must stay below ``max_mem_mb`` (the bounded-memory
      contract); the measured hit-rate delta vs the exact run is
      recorded for the history gate (lower is better — it is the price
      of approximation, dominated by each hot value's one extra
      doorkeeper miss).
    """
    import tracemalloc

    from repro.sim.cache_sim import CacheSimulator
    from repro.sketch import AdmissionFilter

    reference = _sketch_workload(length, head_values, tail_fraction)

    exact_policy = make_policy("lfu")
    t0 = time.perf_counter()
    exact = CacheSimulator(cache_size, exact_policy).run(reference)
    exact_seconds = time.perf_counter() - t0
    # What exact per-value state costs on this stream: one Counter entry
    # (and, for admitted values, one live cache tuple) per distinct value.
    distinct_values = len(set(reference))

    tracemalloc.start()
    sketch_policy = make_policy(
        "lfu", counts="sketch", sketch_width=sketch_width
    ).with_admission(AdmissionFilter())
    t0 = time.perf_counter()
    sketch = CacheSimulator(cache_size, sketch_policy).run(reference)
    sketch_seconds = time.perf_counter() - t0
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    mem_mb = peak_bytes / 2**20
    if mem_mb > max_mem_mb:
        raise AssertionError(
            f"sketch run peak memory {mem_mb:.1f} MB exceeds the "
            f"{max_mem_mb} MB bounded-memory budget"
        )
    exact_hit_rate = exact.hits / max(1, exact.hits + exact.misses)
    sketch_hit_rate = sketch.hits / max(1, sketch.hits + sketch.misses)
    delta = exact_hit_rate - sketch_hit_rate
    admission = sketch_policy.admission
    entry = {
        "cache_size": cache_size,
        "length": length,
        "head_values": head_values,
        "tail_fraction": tail_fraction,
        "sketch_width": sketch_width,
        "max_mem_mb": max_mem_mb,
        "mem_mb": round(mem_mb, 2),
        "exact_seconds": round(exact_seconds, 4),
        "sketch_seconds": round(sketch_seconds, 4),
        "steps_per_sec": round(length / sketch_seconds, 1),
        "exact_hit_rate": round(exact_hit_rate, 4),
        "sketch_hit_rate": round(sketch_hit_rate, 4),
        "hit_rate_delta": round(delta, 4),
        "distinct_values": distinct_values,
        "sketch_state_bytes": sketch_policy.sketch_memory_bytes()
        + admission.memory_bytes(),
        "admission_rejects": admission.rejects,
        "admission_fp_rate": round(admission.fp_rate(), 6),
    }
    print(
        f"sketch   cache={cache_size} len={length} "
        f"peak {entry['mem_mb']:6.1f} MB (budget {max_mem_mb}), "
        f"hit rate exact {entry['exact_hit_rate']:.4f} -> sketch "
        f"{entry['sketch_hit_rate']:.4f} (delta {entry['hit_rate_delta']:+.4f}), "
        f"state {entry['sketch_state_bytes'] / 2**20:.2f} MB fixed vs "
        f"{distinct_values} distinct values of exact state"
    )
    return entry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=256)
    parser.add_argument("--length", type=int, default=600)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel-engine worker count (default: cpu_count)",
    )
    parser.add_argument(
        "--fe-length",
        type=int,
        default=300,
        help="stream length for the FlowExpect fast-path benchmark",
    )
    parser.add_argument(
        "--fe-lookahead",
        type=int,
        default=8,
        help="FlowExpect lookahead for the fast-path benchmark",
    )
    parser.add_argument(
        "--min-fe-speedup",
        type=float,
        default=None,
        help="fail unless the FlowExpect fast path is at least this "
        "many times faster than the reference (CI smoke floor)",
    )
    parser.add_argument(
        "--max-null-overhead",
        type=float,
        default=2.0,
        help="fail when an explicit NullRecorder costs more than this "
        "percentage over the default uninstrumented run",
    )
    parser.add_argument(
        "--skip-engines",
        action="store_true",
        help="skip the engine-tier benchmark (FlowExpect section only)",
    )
    parser.add_argument(
        "--batchcov-trials",
        type=int,
        default=192,
        help="trial count for the batch-coverage adapter benchmark",
    )
    parser.add_argument(
        "--batchcov-length",
        type=int,
        default=400,
        help="stream length for the batch-coverage adapter benchmark",
    )
    parser.add_argument(
        "--batchcov-fe-trials",
        type=int,
        default=16,
        help="FlowExpect trial count for the batch-coverage benchmark",
    )
    parser.add_argument(
        "--batchcov-fe-length",
        type=int,
        default=150,
        help="FlowExpect stream length for the batch-coverage benchmark",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=None,
        help="fail unless every non-FlowExpect batch-coverage family is "
        "at least this many times faster than scalar (CI smoke floor)",
    )
    parser.add_argument(
        "--min-fe-batch-speedup",
        type=float,
        default=None,
        help="fail unless the FlowExpect batch adapter clears this "
        "lower, Amdahl-bounded floor (see docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--skip-batchcov",
        action="store_true",
        help="skip the batch-coverage adapter benchmark",
    )
    parser.add_argument(
        "--native-length",
        type=int,
        default=200,
        help="stream length for the native-kernel benchmark",
    )
    parser.add_argument(
        "--native-lookahead",
        type=int,
        default=8,
        help="FlowExpect lookahead for the native-kernel benchmark",
    )
    parser.add_argument(
        "--min-native-speedup",
        type=float,
        default=None,
        help="fail unless the compiled kernels beat the pure-Python "
        "reference by this factor (only enforced when numba is "
        "importable; CI native-leg floor)",
    )
    parser.add_argument(
        "--skip-native",
        action="store_true",
        help="skip the native-kernel benchmark",
    )
    parser.add_argument(
        "--serve-length",
        type=int,
        default=2000,
        help="stream length for the serving-tier throughput benchmark",
    )
    parser.add_argument(
        "--serve-shards",
        type=int,
        default=4,
        help="shard count for the serving-tier throughput benchmark",
    )
    parser.add_argument(
        "--serve-queue",
        type=int,
        default=256,
        help="per-shard queue bound for the serving-tier benchmark",
    )
    parser.add_argument(
        "--skip-serve",
        action="store_true",
        help="skip the serving-tier throughput benchmark",
    )
    parser.add_argument(
        "--multi-length",
        type=int,
        default=300,
        help="stream length for the multi-join benchmark",
    )
    parser.add_argument(
        "--multi-trials",
        type=int,
        default=64,
        help="trial count for the multi-join scalar-vs-batch timing",
    )
    parser.add_argument(
        "--multi-serve-length",
        type=int,
        default=1500,
        help="stream length for the multi-join serving throughput",
    )
    parser.add_argument(
        "--multi-shards",
        type=int,
        default=3,
        help="shard count for the multi-join serving throughput",
    )
    parser.add_argument(
        "--skip-multi",
        action="store_true",
        help="skip the multi-join benchmark",
    )
    parser.add_argument(
        "--sketch-cache-size",
        type=int,
        default=10**6,
        help="cache slots for the sketch front-end benchmark",
    )
    parser.add_argument(
        "--sketch-length",
        type=int,
        default=120_000,
        help="reference-stream length for the sketch benchmark",
    )
    parser.add_argument(
        "--sketch-max-mem-mb",
        type=float,
        default=64.0,
        help="tracemalloc peak budget (MB) for the sketch run",
    )
    parser.add_argument(
        "--sketch-width",
        type=int,
        default=65_536,
        help="count-min width per row for the sketch run",
    )
    parser.add_argument(
        "--skip-sketch",
        action="store_true",
        help="skip the sketch front-end benchmark",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=_REPO_ROOT / "BENCH_batch.json",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=_REPO_ROOT / "BENCH_history.jsonl",
        help="append this run to the benchmark history file "
        "(see tools/bench_history.py)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to the benchmark history",
    )
    args = parser.parse_args()

    fe_entry = run_flowexpect_bench(
        args.fe_length,
        args.fe_lookahead,
        max_null_overhead=args.max_null_overhead,
    )
    if (
        args.min_fe_speedup is not None
        and fe_entry["fast_speedup"] < args.min_fe_speedup
    ):
        raise SystemExit(
            f"FlowExpect fast-path speedup {fe_entry['fast_speedup']}x is "
            f"below the required floor {args.min_fe_speedup}x"
        )
    native_entry = None
    if not args.skip_native:
        native_entry = run_native_bench(
            args.native_length, args.native_lookahead
        )
        if (
            args.min_native_speedup is not None
            and native_entry["native_available"]
            and native_entry["native_speedup"] < args.min_native_speedup
        ):
            raise SystemExit(
                f"native kernel speedup {native_entry['native_speedup']}x "
                f"is below the required floor {args.min_native_speedup}x"
            )
    batchcov = None
    if not args.skip_batchcov:
        batchcov = run_batch_coverage_bench(
            args.batchcov_trials,
            args.batchcov_length,
            args.batchcov_fe_trials,
            args.batchcov_fe_length,
        )
        enforce_batch_coverage_floors(
            batchcov, args.min_batch_speedup, args.min_fe_batch_speedup
        )
    if args.skip_engines:
        return

    report = run_harness(args.trials, args.length, args.workers)
    report["flowexpect"] = fe_entry
    if batchcov is not None:
        report["batch_coverage"] = batchcov
    if native_entry is not None:
        report["native"] = native_entry
    if not args.skip_serve:
        report["serve"] = run_serve_bench(
            args.serve_length,
            args.serve_shards,
            args.serve_queue,
            max_null_overhead=args.max_null_overhead,
        )
    if not args.skip_multi:
        report["multi_join"] = run_multi_join_bench(
            args.multi_length,
            args.multi_trials,
            args.multi_serve_length,
            args.multi_shards,
            args.serve_queue,
        )
    if not args.skip_sketch:
        report["sketch"] = run_sketch_bench(
            cache_size=args.sketch_cache_size,
            length=args.sketch_length,
            sketch_width=args.sketch_width,
            max_mem_mb=args.sketch_max_mem_mb,
        )
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    if not args.no_history:
        bench_history = _load_bench_history()
        entry = bench_history.entry_from_report(report)
        bench_history.append_entry(args.history, entry)
        print(
            f"history: appended run {entry['git_sha']} to {args.history}"
        )
    agg = report["aggregate"]
    print(
        f"\naggregate: scalar {agg['scalar_trials_per_sec']} -> "
        f"batch {agg['batch_trials_per_sec']} "
        f"({agg['batch_speedup']}x), parallel "
        f"{agg['parallel_trials_per_sec']} trials/sec "
        f"({agg['parallel_speedup']}x), flowexpect fast path "
        f"{fe_entry['fast_speedup']}x, written to {args.out}"
    )


if __name__ == "__main__":
    main()
