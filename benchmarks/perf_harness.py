"""Perf-regression harness: batch engine vs scalar loop on fig08.

Times every batchable policy of the Figure-8 comparison workload (all
four synthetic configurations) on both engines and records trials/sec
plus the batch-over-scalar speedup in ``BENCH_batch.json`` at the repo
root.  The numbers seed the performance trajectory: future engine work
should move ``aggregate.speedup`` up, and a regression below the
recorded baseline is a red flag.

Both engines consume the *same* pre-generated paths and produce
identical per-trial results (asserted here run by run), so the timing
comparison is apples to apples.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py [--trials 256]
        [--length 600] [--out BENCH_batch.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.experiments.configs import SYNTHETIC_CONFIGS
from repro.policies.life import LifePolicy
from repro.policies.prob import ProbPolicy
from repro.policies.rand import RandPolicy
from repro.sim.runner import generate_paths, run_join_experiment

CACHE_SIZE = 10


def _policy_factories(config):
    factories = {
        "RAND": lambda: RandPolicy(seed=1),
        "PROB": lambda: ProbPolicy(),
    }
    if config.has_life:
        factories["LIFE"] = lambda: LifePolicy()
    factories["HEEB"] = lambda: config.make_heeb(CACHE_SIZE)
    return factories


def run_harness(n_trials: int, length: int) -> dict:
    """Time the fig08 workload on both engines; return the report dict."""
    warmup = 4 * CACHE_SIZE
    entries = []
    total_scalar = total_batch = 0.0
    total_trials = 0

    for config_name, config in SYNTHETIC_CONFIGS().items():
        paths = generate_paths(
            config.r_model, config.s_model, length, n_trials, seed=0
        )
        kwargs = dict(
            cache_size=CACHE_SIZE,
            warmup=warmup,
            r_model=config.r_model,
            s_model=config.s_model,
            window_oracle=config.window_oracle,
        )
        for policy_name, factory in _policy_factories(config).items():
            t0 = time.perf_counter()
            scalar = run_join_experiment(factory, paths, **kwargs)
            t_scalar = time.perf_counter() - t0

            t0 = time.perf_counter()
            batch = run_join_experiment(factory, paths, batch=True, **kwargs)
            t_batch = time.perf_counter() - t0

            mismatches = sum(
                a.total_results != b.total_results
                or not np.array_equal(a.occupancy, b.occupancy)
                for a, b in zip(scalar.per_run, batch.per_run)
            )
            if mismatches:
                raise AssertionError(
                    f"{config_name}/{policy_name}: batch diverged from "
                    f"scalar on {mismatches} trials"
                )

            entries.append(
                {
                    "config": config_name,
                    "policy": policy_name,
                    "trials": n_trials,
                    "scalar_seconds": round(t_scalar, 4),
                    "batch_seconds": round(t_batch, 4),
                    "scalar_trials_per_sec": round(n_trials / t_scalar, 2),
                    "batch_trials_per_sec": round(n_trials / t_batch, 2),
                    "speedup": round(t_scalar / t_batch, 2),
                }
            )
            total_scalar += t_scalar
            total_batch += t_batch
            total_trials += n_trials
            print(
                f"{config_name:6s} {policy_name:5s} "
                f"scalar {t_scalar:7.3f}s  batch {t_batch:7.3f}s  "
                f"speedup {t_scalar / t_batch:5.1f}x"
            )

    report = {
        "workload": {
            "figure": "fig08 comparison (synthetic configs)",
            "length": length,
            "trials_per_experiment": n_trials,
            "cache_size": CACHE_SIZE,
            "warmup": warmup,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "entries": entries,
        "aggregate": {
            "trials": total_trials,
            "scalar_seconds": round(total_scalar, 4),
            "batch_seconds": round(total_batch, 4),
            "scalar_trials_per_sec": round(total_trials / total_scalar, 2),
            "batch_trials_per_sec": round(total_trials / total_batch, 2),
            "speedup": round(total_scalar / total_batch, 2),
        },
    }
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=256)
    parser.add_argument("--length", type=int, default=600)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_batch.json",
    )
    args = parser.parse_args()

    report = run_harness(args.trials, args.length)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    agg = report["aggregate"]
    print(
        f"\naggregate: {agg['scalar_trials_per_sec']} -> "
        f"{agg['batch_trials_per_sec']} trials/sec "
        f"({agg['speedup']}x), written to {args.out}"
    )


if __name__ == "__main__":
    main()
