"""Ablation: time-incremental vs direct HEEB evaluation (Section 4.4.1).

Measures the per-step cost of Corollary-3 updates against recomputing
the truncated sum, and asserts the speedup the optimization exists for.
"""

from __future__ import annotations

import time

from repro.core.heeb import heeb_join
from repro.core.incremental import IncrementalHeebTracker, join_step
from repro.core.lifetime import LExp
from repro.experiments.report import format_table
from repro.streams import LinearTrendStream, bounded_normal

ALPHA = 10.0
HORIZON = 300
STEPS = 400


def _model():
    return LinearTrendStream(bounded_normal(10, 2.0), speed=1.0)


def test_incremental_update_speed(benchmark, emit):
    """One Corollary-3 update, timed properly."""
    model = _model()
    estimator = LExp(ALPHA)
    h = heeb_join(model, 50, 55, estimator, HORIZON)
    prob = model.prob(51, 55)
    result = benchmark(lambda: join_step(h, ALPHA, prob))
    assert result is not None


def test_incremental_vs_direct_throughput(benchmark, emit):
    model = _model()
    estimator = LExp(ALPHA)
    value = 60

    def run_incremental():
        tracker = IncrementalHeebTracker(
            model, "join", value, 40, estimator,
            horizon=HORIZON, resync_every=64,
        )
        for _ in range(STEPS):
            tracker.advance()

    benchmark.pedantic(run_incremental, rounds=1, iterations=1)

    start = time.perf_counter()
    tracker = IncrementalHeebTracker(
        model, "join", value, 40, estimator, horizon=HORIZON, resync_every=64
    )
    for _ in range(STEPS):
        tracker.advance()
    incremental_s = time.perf_counter() - start

    start = time.perf_counter()
    for t in range(41, 41 + STEPS):
        heeb_join(model, t, value, estimator, HORIZON)
    direct_s = time.perf_counter() - start

    speedup = direct_s / incremental_s if incremental_s > 0 else float("inf")
    emit(
        "Ablation: incremental vs direct H updates "
        f"({STEPS} steps, horizon={HORIZON})",
        format_table(
            {
                "incremental (resync 64)": {"seconds": incremental_s},
                "direct recomputation": {"seconds": direct_s},
                "speedup": {"seconds": speedup},
            },
            row_label="method",
            fmt="{:.4f}",
        ),
    )
    # The incremental path must be meaningfully faster.
    assert incremental_s < direct_s
