"""Figure 8: all algorithms across TOWER / ROOF / FLOOR / WALK.

Paper setup: cache 10, streams of 5000 tuples, 50 runs, warm-up ≥ 4×
cache ("the scale is intentionally kept small so that FlowExpect is
feasible").  Bench scale: length 600, 3 runs, FlowExpect look-ahead 5 --
the qualitative shape (OPT on top; HEEB beating RAND/PROB/LIFE and
FlowExpect in most configurations; PROB/LIFE failing under trends) is
what we assert.
"""

from __future__ import annotations

from repro.experiments.figures import figure8
from repro.experiments.report import format_table

LENGTH = 600
N_RUNS = 3


def test_fig08_comparison(benchmark, emit, sim_engine):
    results = benchmark.pedantic(
        lambda: figure8(
            length=LENGTH,
            cache_size=10,
            n_runs=N_RUNS,
            include_flowexpect=True,
            lookahead=5,
            seed=0,
            engine=sim_engine,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"Figure 8: average join counts (cache=10, length={LENGTH}, "
        f"runs={N_RUNS})",
        format_table(results),
    )

    for name, row in results.items():
        # OPT-offline wins across the board.
        best_online = max(v for k, v in row.items() if k != "OPT-OFFLINE")
        assert row["OPT-OFFLINE"] >= best_online - 1e-9, name
        # HEEB beats RAND, PROB, LIFE consistently.
        assert row["HEEB"] > row["PROB"], name
        if "LIFE" in row:
            assert row["HEEB"] > row["LIFE"], name

    # HEEB beats RAND everywhere and FlowExpect on the normal-noise
    # trends (the paper: "and even FlowExpect in most cases").
    assert results["TOWER"]["HEEB"] > results["TOWER"]["RAND"]
    assert results["ROOF"]["HEEB"] > results["ROOF"]["RAND"]
    assert results["WALK"]["HEEB"] > results["WALK"]["RAND"]
    assert results["ROOF"]["HEEB"] >= results["ROOF"]["FLOWEXPECT"] * 0.95
    # The HEEB advantage over naive baselines shrinks from TOWER to FLOOR.
    tower_gain = results["TOWER"]["HEEB"] / results["TOWER"]["RAND"]
    floor_gain = results["FLOOR"]["HEEB"] / results["FLOOR"]["RAND"]
    assert tower_gain > floor_gain
