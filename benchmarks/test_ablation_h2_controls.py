"""Ablation: h2 spline accuracy vs number of control points.

The paper uses 25 control points (5×5) and calls the approximation
"satisfactory"; it also notes that better approximations "will likely
improve accuracy and/or reduce the number of control points".  This
ablation quantifies the error as the control grid grows.
"""

from __future__ import annotations

from repro.experiments.figures import figure15_16
from repro.experiments.report import format_table

GRIDS = (4, 5, 8, 12)


def test_ablation_h2_controls(benchmark, emit):
    def run_all():
        return {
            n: figure15_16(n_controls=n, n_dense=9, exact_steps=30)
            for n in GRIDS
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = {}
    for n, cmp in results.items():
        rows[f"{n}x{n} ({n * n} points)"] = {
            "max err / max h2": cmp.max_abs_error / cmp.max_value,
            "mean err / max h2": cmp.mean_abs_error / cmp.max_value,
        }
    emit("Ablation: h2 spline error vs control-point count", format_table(
        rows, row_label="control grid", fmt="{:.4f}"
    ))

    errors = [results[n].max_abs_error for n in GRIDS]
    # Error shrinks (weakly) as the grid refines, and the paper's 5x5
    # grid is already within a reasonable fraction of the surface scale.
    assert errors[-1] <= errors[0] + 1e-12
    five = results[5]
    assert five.max_abs_error < 0.25 * five.max_value
