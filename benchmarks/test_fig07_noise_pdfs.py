"""Figure 7: the TOWER / ROOF / FLOOR noise pdfs (S-stream bound ±15)."""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure7
from repro.experiments.report import format_series_table


def test_fig07_noise_pdfs(benchmark, emit):
    pdfs = benchmark.pedantic(figure7, rounds=1, iterations=1)
    values = list(range(-15, 16, 3))
    series = {
        name: [dist.pmf(v) for v in values] for name, dist in pdfs.items()
    }
    emit(
        "Figure 7: TOWER/ROOF/FLOOR noise pdfs",
        format_series_table("value", values, series, fmt="{:.4f}"),
    )

    tower, roof, floor = pdfs["TOWER"], pdfs["ROOF"], pdfs["FLOOR"]
    # TOWER: sharp peak; ROOF: rounded; FLOOR: flat.
    assert tower.pmf(0) > roof.pmf(0) > floor.pmf(0)
    assert floor.pmf(-15) == pytest.approx(floor.pmf(15))
    assert floor.pmf(0) == pytest.approx(1 / 31)
    for dist in pdfs.values():
        assert sum(p for _, p in dist.items()) == pytest.approx(1.0)
