"""Figure 13: REAL -- caching a Melbourne-like temperature stream.

Paper pipeline (Section 6.5): fit an AR(1) by MLE (paper obtains
X_t = 0.72·X_{t-1} + 5.59 + N(0, 4.22²)), precompute the h2 surface at
25 control points with bicubic interpolation, and compare LFD, RAND,
LRU, PROB(LFU), HEEB for memory sizes 10..300 on 3650 daily readings.
Temperature locality keeps all heuristics close; LFD is the offline
floor and HEEB leads the online pack at larger memories.
"""

from __future__ import annotations

from repro.experiments.figures import figure13
from repro.experiments.report import format_series_table

MEMORY_SIZES = (10, 50, 100, 200, 300)


def test_fig13_real(benchmark, emit):
    result = benchmark.pedantic(
        lambda: figure13(memory_sizes=MEMORY_SIZES, n_days=3650),
        rounds=1,
        iterations=1,
    )
    fit = result.fit
    emit(
        "Figure 13: REAL, misses vs memory (3650 days; fitted AR(1): "
        f"phi1={fit.phi1:.2f}, phi0={fit.phi0:.2f}, sigma={fit.sigma:.2f}; "
        "paper fit: 0.72 / 5.59 / 4.22)",
        format_series_table(
            "memory", MEMORY_SIZES, result.misses, fmt="{:.0f}"
        ),
    )

    # LFD (offline optimal) has the fewest misses at every size.
    for name, series in result.misses.items():
        for lfd_m, other_m in zip(result.misses["LFD"], series):
            assert lfd_m <= other_m, name
        # Misses decrease with memory.
        assert all(a >= b for a, b in zip(series, series[1:])), name

    # HEEB leads the online heuristics at the larger memory sizes.
    for i in (-2, -1):
        online = {
            k: v[i] for k, v in result.misses.items() if k != "LFD"
        }
        assert online["HEEB"] <= min(online.values()) * 1.05

    # The fitted model is in the ballpark of the paper's fit.
    assert 0.5 <= fit.phi1 <= 0.9
    assert 2.5 <= fit.sigma <= 6.0
