"""Extension bench: multiple binary join queries over three streams.

Not a paper figure -- this exercises the Appendix-C generalization: three
trending streams, queries A⋈B and B⋈C, one shared cache.  HEEB sums
per-partner benefits and should approach OPT-offline while PROB/RAND
trail, mirroring the two-stream TOWER shape.
"""

from __future__ import annotations

import numpy as np

from repro.core.lifetime import LExp, alpha_for_mean_lifetime
from repro.experiments.report import format_table
from repro.sim.multi_join import (
    MultiHeebPolicy,
    MultiJoinSimulator,
    MultiProbPolicy,
    MultiRandPolicy,
    MultiScheduledPolicy,
    solve_opt_offline_multi,
)
from repro.streams import LinearTrendStream, bounded_normal

LENGTH = 800
CACHE = 12
N_RUNS = 3
QUERIES = [("A", "B"), ("B", "C")]


def _run_all():
    models = {
        "A": LinearTrendStream(bounded_normal(10, 1.0), speed=1.0, lag=1),
        "B": LinearTrendStream(bounded_normal(12, 1.5), speed=1.0),
        "C": LinearTrendStream(bounded_normal(15, 2.0), speed=1.0, lag=2),
    }
    alpha = alpha_for_mean_lifetime(4.0)
    totals: dict[str, float] = {}
    b_share = 0.0
    for run in range(N_RUNS):
        streams = {
            name: model.sample_path(
                LENGTH, np.random.default_rng(run * 10 + i)
            )
            for i, (name, model) in enumerate(models.items())
        }
        sol = solve_opt_offline_multi(streams, QUERIES, CACHE)
        opt_run = MultiJoinSimulator(
            CACHE, MultiScheduledPolicy(sol), queries=QUERIES,
            warmup=4 * CACHE,
        ).run(streams)
        totals["OPT-OFFLINE"] = (
            totals.get("OPT-OFFLINE", 0.0) + opt_run.results_after_warmup
        )
        for name, policy in (
            ("HEEB", MultiHeebPolicy(LExp(alpha), horizon=80)),
            ("PROB", MultiProbPolicy()),
            ("RAND", MultiRandPolicy(seed=run)),
        ):
            result = MultiJoinSimulator(
                CACHE, policy, queries=QUERIES, warmup=4 * CACHE,
                models=models,
            ).run(streams)
            totals[name] = totals.get(name, 0.0) + result.results_after_warmup
            if name == "HEEB":
                occ = result.occupancy_by_stream
                steady = {
                    s: occ[s][LENGTH // 2 :].mean() for s in "ABC"
                }
                b_share += steady["B"] / max(sum(steady.values()), 1e-9)
    return {k: v / N_RUNS for k, v in totals.items()}, b_share / N_RUNS


def test_ext_multi_join(benchmark, emit):
    (totals, b_share) = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    emit(
        "Extension: 3-stream multi-query join "
        f"(cache={CACHE}, length={LENGTH}, runs={N_RUNS}; "
        f"HEEB's hub-stream share = {b_share:.2f})",
        format_table({k: {"results": v} for k, v in totals.items()},
                     row_label="policy"),
    )
    assert totals["OPT-OFFLINE"] >= totals["HEEB"] - 1e-9
    assert totals["HEEB"] >= 0.9 * totals["OPT-OFFLINE"]
    assert totals["HEEB"] > totals["RAND"] > totals["PROB"]
    # The hub stream (two queries) gets more than a third of the cache.
    assert b_share > 0.45
