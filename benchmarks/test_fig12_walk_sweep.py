"""Figure 12: WALK cache-size sweep.

Random walks: the near future is predictable (HEEB/FlowExpect beat RAND
and PROB) but variances cumulate quickly, so no online algorithm comes
close to OPT-offline even with more memory.  LIFE is omitted (no window).
"""

from __future__ import annotations

from repro.experiments.configs import make_config
from repro.experiments.figures import figure9_12
from repro.experiments.report import format_series_table

SIZES = (1, 5, 10, 20, 30, 50)
LENGTH = 1200
N_RUNS = 3


def test_fig12_walk_sweep(benchmark, emit, sim_engine):
    out = benchmark.pedantic(
        lambda: figure9_12(
            make_config("walk"),
            cache_sizes=SIZES,
            length=LENGTH,
            n_runs=N_RUNS,
            engine=sim_engine,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"Figure 12: WALK, results vs cache size (length={LENGTH}, "
        f"runs={N_RUNS})",
        format_series_table("cache", SIZES, out),
    )
    assert "LIFE" not in out  # no window on random walks
    mid = SIZES.index(10)
    assert out["HEEB"][mid] > out["RAND"][mid]
    assert out["HEEB"][mid] > out["PROB"][mid]
    # The online/offline gap persists even at the largest cache size.
    last = len(SIZES) - 1
    assert out["HEEB"][last] < 0.9 * out["OPT-OFFLINE"][last]
