"""Figures 15/16: the REAL h2 surface, actual vs 25-control-point spline.

Paper: "We precompute and approximate this surface using bicubic
interpolation of 25 control points equally spaced over the domain.  We
have found this simple approximation satisfactory in terms of space,
speed, and accuracy."
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure15_16
from repro.experiments.report import format_series_table


def test_fig15_16_h2_surface(benchmark, emit):
    cmp = benchmark.pedantic(
        lambda: figure15_16(n_controls=5, n_dense=9, exact_steps=40),
        rounds=1,
        iterations=1,
    )
    # Print the middle slice of both surfaces.
    mid = cmp.dense_x.size // 2
    series = {
        "actual": list(cmp.actual_values[:, mid]),
        "bicubic(25 pts)": list(cmp.approx_values[:, mid]),
    }
    emit(
        "Figures 15/16: h2 surface slice at the middle anchor "
        f"(max |err| = {cmp.max_abs_error:.2e}, "
        f"mean |err| = {cmp.mean_abs_error:.2e}, "
        f"surface max = {cmp.max_value:.2e})",
        format_series_table(
            "bucket", list(cmp.dense_v), series, fmt="{:.5f}"
        ),
    )

    # The approximation is satisfactory relative to the surface scale.
    assert cmp.max_abs_error < 0.25 * cmp.max_value
    assert cmp.mean_abs_error < 0.05 * cmp.max_value
    # The surface peaks where the candidate value is close to the anchor.
    peak_rows = np.argmax(cmp.actual_values, axis=0)
    assert (np.diff(peak_rows) >= 0).all()
