"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper and prints the
rows through ``capsys.disabled()`` so they appear in the terminal even
under pytest's capture.  ``benchmark.pedantic(..., rounds=1)`` is used
throughout: these are experiment harnesses, not micro-benchmarks, and one
timed run is what we want to record.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--engine",
        choices=("batch", "scalar", "parallel"),
        default="batch",
        help=(
            "Monte-Carlo engine for the figure sweeps: 'batch' (default) "
            "runs all trials vectorized, 'scalar' uses the original "
            "per-trial loop, 'parallel' fans trials across worker "
            "processes.  Results are seed-for-seed identical; policies an "
            "engine cannot run fall back to scalar."
        ),
    )


@pytest.fixture
def sim_engine(request) -> str:
    """Engine name the sweeps should prefer ('scalar'/'batch'/'parallel')."""
    return request.config.getoption("--engine")


@pytest.fixture
def emit(capsys):
    """Print experiment tables through the capture layer."""

    def _emit(title: str, body: str) -> None:
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(body)

    return _emit
