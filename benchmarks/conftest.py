"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper and prints the
rows through ``capsys.disabled()`` so they appear in the terminal even
under pytest's capture.  ``benchmark.pedantic(..., rounds=1)`` is used
throughout: these are experiment harnesses, not micro-benchmarks, and one
timed run is what we want to record.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def emit(capsys):
    """Print experiment tables through the capture layer."""

    def _emit(title: str, body: str) -> None:
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(body)

    return _emit
