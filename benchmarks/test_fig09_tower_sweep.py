"""Figure 9: TOWER cache-size sweep (paper: sizes 1..50, length 5000,
50 runs; HEEB converges to OPT-offline much faster than the other
heuristics)."""

from __future__ import annotations

from repro.experiments.configs import make_config
from repro.experiments.figures import figure9_12
from repro.experiments.report import format_series_table

SIZES = (1, 5, 10, 20, 30, 50)
LENGTH = 1200
N_RUNS = 3


def test_fig09_tower_sweep(benchmark, emit, sim_engine):
    out = benchmark.pedantic(
        lambda: figure9_12(
            make_config("tower"),
            cache_sizes=SIZES,
            length=LENGTH,
            n_runs=N_RUNS,
            engine=sim_engine,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"Figure 9: TOWER, results vs cache size (length={LENGTH}, "
        f"runs={N_RUNS})",
        format_series_table("cache", SIZES, out),
    )
    # HEEB approaches OPT quickly and dominates the naive baselines.
    for i in range(len(SIZES)):
        assert out["HEEB"][i] >= out["PROB"][i]
        assert out["HEEB"][i] >= out["LIFE"][i]
    mid = SIZES.index(10)
    assert out["HEEB"][mid] >= 0.9 * out["OPT-OFFLINE"][mid]
    assert out["RAND"][mid] < 0.9 * out["OPT-OFFLINE"][mid]
