"""Figure 10: ROOF cache-size sweep (wider normal noise: HEEB still leads
but the gap to the baselines narrows relative to TOWER)."""

from __future__ import annotations

from repro.experiments.configs import make_config
from repro.experiments.figures import figure9_12
from repro.experiments.report import format_series_table

SIZES = (1, 5, 10, 20, 30, 50)
LENGTH = 1200
N_RUNS = 3


def test_fig10_roof_sweep(benchmark, emit, sim_engine):
    out = benchmark.pedantic(
        lambda: figure9_12(
            make_config("roof"),
            cache_sizes=SIZES,
            length=LENGTH,
            n_runs=N_RUNS,
            engine=sim_engine,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"Figure 10: ROOF, results vs cache size (length={LENGTH}, "
        f"runs={N_RUNS})",
        format_series_table("cache", SIZES, out),
    )
    for i in range(len(SIZES)):
        assert out["OPT-OFFLINE"][i] >= out["HEEB"][i] - 1e-9
        assert out["HEEB"][i] >= out["PROB"][i]
    mid = SIZES.index(10)
    assert out["HEEB"][mid] > out["RAND"][mid]
    # All heuristics approach OPT with ample memory.
    last = len(SIZES) - 1
    assert out["HEEB"][last] >= 0.9 * out["OPT-OFFLINE"][last]
