"""Figure 19: FlowExpect performance vs look-ahead distance ΔT.

Paper: streams of 500 tuples, memory 20, FLOOR-style inputs; limited
look-ahead (ΔT ≈ 5) brings an apparent improvement, after which gains
become indistinguishable while the cost grows.  Bench scale: length 400,
memory 10, ΔT up to 10.
"""

from __future__ import annotations

from repro.experiments.figures import figure19
from repro.experiments.report import format_series_table

DELTA_TS = (1, 2, 3, 5, 7, 10)
LENGTH = 400
CACHE = 10
N_RUNS = 2


def test_fig19_lookahead(benchmark, emit):
    out = benchmark.pedantic(
        lambda: figure19(
            delta_ts=DELTA_TS,
            length=LENGTH,
            cache_size=CACHE,
            n_runs=N_RUNS,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"Figure 19: results vs FlowExpect look-ahead ΔT "
        f"(length={LENGTH}, cache={CACHE}, runs={N_RUNS})",
        format_series_table("ΔT", DELTA_TS, out),
    )

    fe = out["FLOWEXPECT"]
    # The long-look-ahead end does not collapse below the short end:
    # gains saturate rather than reverse.
    assert max(fe[3:]) >= max(fe[:2]) * 0.97
    # FlowExpect with a saturated look-ahead beats PROB and LIFE on this
    # trending workload (they mispredict under drift).
    assert max(fe) > out["PROB"][0]
    assert max(fe) > out["LIFE"][0]
    # Baselines are look-ahead independent by construction.
    for name in ("RAND", "PROB", "LIFE"):
        assert len(set(out[name])) == 1
