"""Figures 17/18: stream-0 (R) cache occupancy over time under HEEB,
for variance ratios 1:1 / 1:2 / 1:4 and lags 1 / 2 / 4."""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure17_18
from repro.experiments.report import format_series_table

LENGTH = 2000
CACHE = 10
N_RUNS = 3
CHECKPOINTS = (100, 500, 1000, 1500, 1999)


def test_fig17_18_occupancy(benchmark, emit):
    out = benchmark.pedantic(
        lambda: figure17_18(length=LENGTH, cache_size=CACHE, n_runs=N_RUNS),
        rounds=1,
        iterations=1,
    )
    for group, title in (
        ("variance", "Figure 17: occupancy vs time, variance ratios"),
        ("lag", "Figure 18: occupancy vs time, lags"),
    ):
        series = {
            label: [float(arr[t]) for t in CHECKPOINTS]
            for label, arr in out[group].items()
        }
        emit(title, format_series_table("t", CHECKPOINTS, series, fmt="{:.3f}"))

    steady = lambda arr: float(np.mean(arr[LENGTH // 2 :]))  # noqa: E731

    var = {k: steady(v) for k, v in out["variance"].items()}
    assert var["Std0:Std1 = 1:1"] < var["Std0:Std1 = 1:2"] < var["Std0:Std1 = 1:4"] + 0.05
    # Equal-variance case splits roughly evenly; 1:4 strongly favors R.
    assert 0.35 < var["Std0:Std1 = 1:1"] < 0.65
    assert var["Std0:Std1 = 1:4"] > 0.55

    lag = {k: steady(v) for k, v in out["lag"].items()}
    assert (
        lag["stream0 is 1 behind stream1"]
        >= lag["stream0 is 2 behind stream1"]
        >= lag["stream0 is 4 behind stream1"]
    )
    assert lag["stream0 is 4 behind stream1"] < 0.45
