"""Ablation: OPT-offline graph formulations.

The paper (via Das et al. [8]) formulates OPT-offline on the slice graph
of Section 3.1 -- which FlowExpect with full look-ahead reproduces on
offline streams -- with O(n²) nodes.  Our compact tuple-chain formulation
has O(#matches) arcs.  This ablation (a) confirms both produce the same
optimum and (b) measures the cost gap that makes paper-scale OPT runs
feasible only with the compact graph.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.report import format_table
from repro.flow.opt_offline import solve_opt_offline
from repro.policies.flowexpect_policy import FlowExpectPolicy
from repro.sim.join_sim import JoinSimulator
from repro.streams import OfflineStream

LENGTH = 40
CACHE = 3


def _instance(seed: int):
    rng = np.random.default_rng(seed)
    r = list(rng.integers(0, 5, size=LENGTH))
    s = list(rng.integers(0, 5, size=LENGTH))
    return r, s


def test_ablation_opt_graph(benchmark, emit):
    agreements = []
    compact_s = slice_s = 0.0
    for seed in range(3):
        r, s = _instance(seed)

        start = time.perf_counter()
        sol = solve_opt_offline(r, s, CACHE)
        compact_s += time.perf_counter() - start

        start = time.perf_counter()
        policy = FlowExpectPolicy(
            LENGTH, OfflineStream(r), OfflineStream(s)
        )
        result = JoinSimulator(CACHE, policy).run(r, s)
        slice_s += time.perf_counter() - start

        agreements.append(result.total_results == sol.total_benefit)

    benchmark.pedantic(
        lambda: solve_opt_offline(*_instance(0), CACHE), rounds=3, iterations=1
    )
    emit(
        f"Ablation: OPT-offline formulations (n={LENGTH}, k={CACHE}, 3 seeds)",
        format_table(
            {
                "compact tuple-chain": {"seconds": compact_s},
                "slice graph (FlowExpect, full look-ahead)": {
                    "seconds": slice_s
                },
            },
            row_label="formulation",
            fmt="{:.4f}",
        ),
    )
    assert all(agreements)
    # Even at this tiny scale the compact formulation is far cheaper
    # (the slice variant re-solves an O(n²)-node graph at every step).
    assert compact_s < slice_s / 10
