"""Ablation: runtime-adaptive α vs fixed calibrations (paper future work).

Section 5.3 calibrates α from the *estimated* average lifetime
``(w_R + w_S)/2`` and notes that "a more principled technique would be to
observe the average lifetime at runtime and adjust α adaptively".  On
FLOOR with a small cache the estimate is badly off -- eviction pressure
keeps actual lifetimes far below the window-based guess -- and α matters:
a myopic α beats the rule by >10%.  This ablation shows the adaptive
policy discovering that from a mis-calibrated start.
"""

from __future__ import annotations

from repro.core.lifetime import LExp, alpha_for_mean_lifetime
from repro.experiments.report import format_table
from repro.policies import AdaptiveAlphaHeebPolicy, HeebPolicy, TrendJoinHeeb
from repro.sim.runner import generate_paths, run_join_experiment
from repro.streams import LinearTrendStream, bounded_uniform

LENGTH = 1200
CACHE = 5
N_RUNS = 3


def _run_all():
    r_model = LinearTrendStream(bounded_uniform(10), speed=1.0, lag=1)
    s_model = LinearTrendStream(bounded_uniform(15), speed=1.0)
    paths = generate_paths(r_model, s_model, LENGTH, N_RUNS, 0)
    rule_alpha = alpha_for_mean_lifetime((10 + 15) / 2)  # Section 5.3 rule

    variants = {
        "fixed alpha=1.5 (short-lifetime oracle)": lambda: HeebPolicy(
            TrendJoinHeeb(LExp(1.5))
        ),
        f"fixed alpha={rule_alpha:.1f} (paper (wR+wS)/2 rule)": lambda: HeebPolicy(
            TrendJoinHeeb(LExp(rule_alpha))
        ),
        "fixed alpha=200 (mis-calibrated)": lambda: HeebPolicy(
            TrendJoinHeeb(LExp(200.0))
        ),
        "adaptive from alpha=200": lambda: AdaptiveAlphaHeebPolicy(
            lambda est: TrendJoinHeeb(est), initial_alpha=200.0
        ),
    }
    out = {}
    for name, factory in variants.items():
        result = run_join_experiment(
            factory,
            paths,
            CACHE,
            warmup=4 * CACHE,
            r_model=r_model,
            s_model=s_model,
        )
        out[name] = result.mean_results
    return out


def test_ablation_adaptive_alpha(benchmark, emit):
    out = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    emit(
        "Ablation: adaptive vs fixed alpha on FLOOR "
        f"(cache={CACHE}, length={LENGTH}, runs={N_RUNS})",
        format_table(
            {k: {"results": v} for k, v in out.items()}, row_label="policy"
        ),
    )
    oracle = next(v for k, v in out.items() if "oracle" in k)
    rule = next(v for k, v in out.items() if "rule" in k)
    worst = out["fixed alpha=200 (mis-calibrated)"]
    adaptive = out["adaptive from alpha=200"]
    # Under cache pressure the short-lifetime calibration dominates the
    # window-based rule, and adaptation recovers most of that gap from a
    # badly mis-calibrated start.
    assert oracle > rule > worst * 0.99
    assert adaptive > worst
    assert adaptive >= 0.93 * oracle
