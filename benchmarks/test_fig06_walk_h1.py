"""Figure 6: precomputed h_R curves for random walks with drift 0 / 2 / 4.

Paper: N(0,1) steps, L_exp; larger positive drift makes values to the
right of the current mean more desirable to cache.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure6
from repro.experiments.report import format_series_table


def test_fig06_walk_h1(benchmark, emit):
    curves = benchmark.pedantic(
        lambda: figure6(drifts=(0, 2, 4), alpha=10.0, max_offset=20),
        rounds=1,
        iterations=1,
    )
    offsets = list(range(-20, 21, 4))
    series = {
        f"drift={d}": [curves[d](o) for o in offsets] for d in (0, 2, 4)
    }
    emit(
        "Figure 6: h_R(v_x − x_t0) for random walk with drift (alpha=10)",
        format_series_table("offset", offsets, series, fmt="{:.4f}"),
    )

    zero, two, four = curves[0], curves[2], curves[4]
    # Zero drift: symmetric and unimodal at 0 (Section 5.5 optimal rule).
    assert zero(0) == max(zero(o) for o in range(-20, 21))
    np.testing.assert_allclose(zero(6), zero(-6), rtol=1e-9)
    # Drift: rightward preference, growing with the drift constant.
    assert two(6) > two(-6)
    assert four(10) > four(-10)
    peak2 = int(two.offsets[np.argmax(two.values)])
    peak4 = int(four.offsets[np.argmax(four.values)])
    assert peak4 >= peak2 >= 0
