"""Extension bench: self-configuring HEEB vs hand-configured HEEB.

Measures how much of hand-configured HEEB's advantage the model-driven
policy (online classification + fitting + adaptive α) retains when given
no prior knowledge of the inputs.
"""

from __future__ import annotations

from repro.core.lifetime import LExp, alpha_for_mean_lifetime
from repro.experiments.report import format_table
from repro.policies import (
    HeebPolicy,
    ModelDrivenHeebPolicy,
    ProbPolicy,
    RandPolicy,
    TrendJoinHeeb,
)
from repro.sim.runner import generate_paths, run_join_experiment
from repro.streams import LinearTrendStream, bounded_normal

LENGTH = 1500
CACHE = 10
N_RUNS = 3


def _run_all():
    r_model = LinearTrendStream(bounded_normal(10, 1.0), speed=1.0, lag=1)
    s_model = LinearTrendStream(bounded_normal(15, 2.0), speed=1.0)
    paths = generate_paths(r_model, s_model, LENGTH, N_RUNS, 0)
    alpha = alpha_for_mean_lifetime(3.0)
    variants = {
        "HEEB (hand-configured models)": (
            lambda: HeebPolicy(TrendJoinHeeb(LExp(alpha))),
            True,
        ),
        "HEEB-AUTO (no models given)": (
            lambda: ModelDrivenHeebPolicy(min_history=150, refit_every=400),
            False,
        ),
        "PROB": (lambda: ProbPolicy(), False),
        "RAND": (lambda: RandPolicy(seed=1), False),
    }
    out = {}
    for name, (factory, give_models) in variants.items():
        result = run_join_experiment(
            factory,
            paths,
            CACHE,
            warmup=4 * CACHE,
            r_model=r_model if give_models else None,
            s_model=s_model if give_models else None,
        )
        out[name] = result.mean_results
    return out


def test_ext_model_driven(benchmark, emit):
    out = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    emit(
        "Extension: self-configuring HEEB on TOWER-like streams "
        f"(cache={CACHE}, length={LENGTH}, runs={N_RUNS})",
        format_table({k: {"results": v} for k, v in out.items()},
                     row_label="policy"),
    )
    manual = out["HEEB (hand-configured models)"]
    auto = out["HEEB-AUTO (no models given)"]
    assert auto >= 0.8 * manual
    assert auto > 1.2 * out["RAND"]
    assert auto > out["PROB"]
