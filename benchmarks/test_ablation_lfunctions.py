"""Ablation: HEEB's lifetime-estimator choice (L_exp vs L_fixed variants).

Section 4.3 argues for L_exp (convergent, incrementally computable);
L_fixed assumes replacement after exactly ΔT steps.  This ablation runs
HEEB with each estimator on the TOWER workload, where the calibrated
L_exp should be at least as good as badly-calibrated fixed horizons.
"""

from __future__ import annotations

from repro.core.lifetime import LExp, LFixed
from repro.experiments.configs import tower_config
from repro.experiments.report import format_table
from repro.policies.heeb_policy import GenericJoinHeeb, HeebPolicy, TrendJoinHeeb
from repro.sim.runner import generate_paths, run_join_experiment

LENGTH = 800
CACHE = 10
N_RUNS = 3


def _run_all():
    config = tower_config()
    paths = generate_paths(config.r_model, config.s_model, LENGTH, N_RUNS, 0)
    alpha = config.heeb_alpha_for(CACHE)
    variants = {
        f"L_exp(alpha={alpha:.2f})": lambda: HeebPolicy(TrendJoinHeeb(LExp(alpha))),
        "L_fixed(1)": lambda: HeebPolicy(GenericJoinHeeb(LFixed(1))),
        "L_fixed(3)": lambda: HeebPolicy(GenericJoinHeeb(LFixed(3))),
        "L_fixed(30)": lambda: HeebPolicy(GenericJoinHeeb(LFixed(30))),
    }
    out = {}
    for name, factory in variants.items():
        result = run_join_experiment(
            factory,
            paths,
            CACHE,
            warmup=4 * CACHE,
            r_model=config.r_model,
            s_model=config.s_model,
        )
        out[name] = result.mean_results
    return out


def test_ablation_lfunctions(benchmark, emit):
    out = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    emit(
        "Ablation: HEEB lifetime estimators on TOWER "
        f"(cache={CACHE}, length={LENGTH}, runs={N_RUNS})",
        format_table(
            {k: {"results": v} for k, v in out.items()}, row_label="estimator"
        ),
    )
    lexp = next(v for k, v in out.items() if k.startswith("L_exp"))
    # Calibrated L_exp at least matches every fixed-horizon variant.
    for name, value in out.items():
        if name.startswith("L_fixed"):
            assert lexp >= 0.97 * value, name
    # An overly long fixed horizon (ignoring replacement pressure)
    # performs measurably worse than a short one on this workload.
    assert out["L_fixed(30)"] <= out["L_fixed(3)"] * 1.05
