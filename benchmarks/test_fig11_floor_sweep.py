"""Figure 11: FLOOR cache-size sweep (uniform noise: the future is least
predictable, so HEEB's edge over the window-aware baselines is smallest
-- 'HEEB still does well but is certainly not as spectacular')."""

from __future__ import annotations

from repro.experiments.configs import make_config
from repro.experiments.figures import figure9_12
from repro.experiments.report import format_series_table

SIZES = (1, 5, 10, 20, 30, 50)
LENGTH = 1200
N_RUNS = 3


def test_fig11_floor_sweep(benchmark, emit, sim_engine):
    out = benchmark.pedantic(
        lambda: figure9_12(
            make_config("floor"),
            cache_sizes=SIZES,
            length=LENGTH,
            n_runs=N_RUNS,
            engine=sim_engine,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"Figure 11: FLOOR, results vs cache size (length={LENGTH}, "
        f"runs={N_RUNS})",
        format_series_table("cache", SIZES, out),
    )
    for i in range(len(SIZES)):
        assert out["OPT-OFFLINE"][i] >= out["HEEB"][i] - 1e-9
    # HEEB at least matches the best baseline at the paper's cache size.
    mid = SIZES.index(10)
    best_baseline = max(out["RAND"][mid], out["PROB"][mid], out["LIFE"][mid])
    assert out["HEEB"][mid] >= 0.95 * best_baseline
    last = len(SIZES) - 1
    assert out["HEEB"][last] >= 0.9 * out["OPT-OFFLINE"][last]
