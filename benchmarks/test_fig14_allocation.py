"""Figure 14: how HEEB allocates cache memory between the two streams.

Paper: starting from identical streams, make R lag by 2/4 steps or give
S noise 2×/4× the standard deviation.  HEEB allocates less memory to
streams that lag behind or have larger variances.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure14
from repro.experiments.report import format_table

LENGTH = 2500
CACHE = 10
N_RUNS = 3


def test_fig14_allocation(benchmark, emit):
    out = benchmark.pedantic(
        lambda: figure14(length=LENGTH, cache_size=CACHE, n_runs=N_RUNS),
        rounds=1,
        iterations=1,
    )
    steady = {
        label: float(np.mean(series[LENGTH // 2 :]))
        for label, series in out.items()
    }
    emit(
        f"Figure 14: steady-state fraction of cache taken by R tuples "
        f"(cache={CACHE}, length={LENGTH}, runs={N_RUNS})",
        format_table(
            {label: {"R fraction": v} for label, v in steady.items()},
            row_label="variant",
            fmt="{:.3f}",
        ),
    )

    base = steady["R AND S HAVE SAME PROPERTIES"]
    # Lagging stream R receives less memory, monotonically in the lag.
    assert steady["R LAGS BEHIND BY 2"] < base
    assert steady["R LAGS BEHIND BY 4"] <= steady["R LAGS BEHIND BY 2"]
    # Noisier S loses memory to R, monotonically in the noise ratio.
    assert steady["S NOISE HAS TWICE THE STDEV"] > base
    assert (
        steady["S NOISE HAS FOUR TIMES THE STDEV"]
        >= steady["S NOISE HAS TWICE THE STDEV"]
    )
    # Symmetric base case splits the cache roughly evenly.
    assert 0.35 < base < 0.65
