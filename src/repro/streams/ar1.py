"""AR(1) streams -- the model fitted to the REAL data set (Section 6.5).

The latent process is ``X_t = φ0 + φ1·X_{t-1} + Y_t`` with ``Y_t`` i.i.d.
normal.  Join-attribute values are discrete, so the stream emits *bucket
indices*: ``v = round(x / bucket)``.  The paper's REAL experiment joins a
temperature stream with a relation keyed by 0.1 °C ranges, i.e. the bucket
is 0.1 and emitted values are temperatures × 10.

Conditioned on the last observation ``x_{t0}``, the latent value ``k``
steps ahead is normal with

    ``mean = φ1^k · x_{t0} + φ0 · (1 - φ1^k) / (1 - φ1)``
    ``var  = σ² · (1 - φ1^{2k}) / (1 - φ1²)``

(standard AR(1) iteration; reduces to the random-walk formulas as
``φ1 → 1``).  Bucket probabilities are normal-CDF differences over the
bucket's latent range, so predictions are exact rather than sampled.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import norm

from .base import History, StreamModel, Value
from .noise import DiscreteDistribution

__all__ = ["AR1Stream"]


class AR1Stream(StreamModel):
    """A discretized AR(1) stream.

    Parameters
    ----------
    phi0, phi1, sigma:
        AR(1) parameters in latent units.  Requires ``|phi1| < 1`` (for a
        random walk use :class:`~repro.streams.random_walk.RandomWalkStream`).
    bucket:
        Width of one emitted value bucket in latent units.
    start:
        Latent starting value ``X_0``; defaults to the stationary mean.
    tail_sigmas:
        How many conditional standard deviations of support to enumerate
        when materializing a conditional distribution.
    """

    is_independent = False

    def __init__(
        self,
        phi0: float,
        phi1: float,
        sigma: float,
        bucket: float = 1.0,
        start: float | None = None,
        tail_sigmas: float = 6.0,
    ):
        if not abs(phi1) < 1:
            raise ValueError("AR(1) requires |phi1| < 1")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        self._phi0 = float(phi0)
        self._phi1 = float(phi1)
        self._sigma = float(sigma)
        self._bucket = float(bucket)
        self._tail_sigmas = float(tail_sigmas)
        self._start = self.stationary_mean if start is None else float(start)

    # ------------------------------------------------------------------
    @property
    def phi0(self) -> float:
        return self._phi0

    @property
    def phi1(self) -> float:
        return self._phi1

    @property
    def sigma(self) -> float:
        return self._sigma

    @property
    def bucket(self) -> float:
        return self._bucket

    @property
    def start(self) -> float:
        """Latent starting value ``X_0``."""
        return self._start

    @property
    def stationary_mean(self) -> float:
        return self._phi0 / (1.0 - self._phi1)

    @property
    def stationary_std(self) -> float:
        return self._sigma / math.sqrt(1.0 - self._phi1**2)

    # ------------------------------------------------------------------
    def to_bucket(self, latent: float) -> int:
        """Emitted bucket index for a latent value."""
        return int(round(latent / self._bucket))

    def to_latent(self, bucket_value: int) -> float:
        """Bucket-center latent value for an emitted bucket index."""
        return bucket_value * self._bucket

    def conditional_moments(
        self, k: int, latent_now: float
    ) -> tuple[float, float]:
        """Mean and standard deviation of the latent value ``k`` steps ahead."""
        if k <= 0:
            raise ValueError("k must be positive")
        phi1k = self._phi1**k
        mean = phi1k * latent_now + self._phi0 * (1.0 - phi1k) / (1.0 - self._phi1)
        var = self._sigma**2 * (1.0 - self._phi1 ** (2 * k)) / (1.0 - self._phi1**2)
        return mean, math.sqrt(var)

    # ------------------------------------------------------------------
    def sample_path(self, length: int, rng: np.random.Generator) -> list[Value]:
        noise = rng.normal(0.0, self._sigma, size=length)
        path: list[Value] = []
        x = self._start
        for t in range(length):
            if t > 0:
                x = self._phi0 + self._phi1 * x + noise[t]
            path.append(self.to_bucket(x))
        return path

    def sample_future(
        self,
        t0: int,
        horizon: int,
        rng: np.random.Generator,
        history: History | None = None,
    ) -> list[Value]:
        _, latent = self._anchor(history)
        noise = rng.normal(0.0, self._sigma, size=horizon)
        path: list[Value] = []
        x = latent
        for i in range(horizon):
            x = self._phi0 + self._phi1 * x + noise[i]
            path.append(self.to_bucket(x))
        return path

    def _anchor(self, history: History | None) -> tuple[int, float]:
        if history is None:
            return 0, self._start
        if history.last_value is None:
            raise ValueError("AR(1) history must carry a value")
        return history.now, self.to_latent(int(history.last_value))

    def cond_dist(self, t: int, history: History | None = None) -> DiscreteDistribution:
        self.check_time(t, history)
        anchor_t, latent = self._anchor(history)
        mean, std = self.conditional_moments(t - anchor_t, latent)
        lo = self.to_bucket(mean - self._tail_sigmas * std)
        hi = self.to_bucket(mean + self._tail_sigmas * std)
        values = np.arange(lo, hi + 1)
        edges = (np.arange(lo, hi + 2) - 0.5) * self._bucket
        cdf = norm.cdf(edges, loc=mean, scale=std)
        probs = np.diff(cdf)
        keep = probs > 0
        if not np.any(keep):  # degenerate numerical corner
            keep = np.zeros(values.size, dtype=bool)
            keep[np.argmin(np.abs(values * self._bucket - mean))] = True
            probs = np.ones(values.size)
        return DiscreteDistribution(values[keep], probs[keep])

    def prob(self, t: int, value: Value, history: History | None = None) -> float:
        self.check_time(t, history)
        if value is None:
            return 0.0
        anchor_t, latent = self._anchor(history)
        mean, std = self.conditional_moments(t - anchor_t, latent)
        lo = (int(value) - 0.5) * self._bucket
        hi = (int(value) + 0.5) * self._bucket
        # Scalar normal CDF via erf: ~100x faster than scipy's dispatch,
        # and this method sits on policy hot paths.
        inv = 1.0 / (std * math.sqrt(2.0))
        return 0.5 * (math.erf((hi - mean) * inv) - math.erf((lo - mean) * inv))
