"""Tabular streams: explicit per-step value distributions.

Section 3.4's suboptimality example specifies, for each future time step,
a small table such as "2 with probability 0.5, − otherwise".  A
:class:`TabularStream` stores exactly such tables: one list of
``(value, probability)`` pairs per time step, where the probabilities may
sum to less than one -- the remaining mass produces a "−" tuple that joins
with nothing.

Steps are independent of each other, so the incremental machinery of
Section 4.4 applies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import History, StreamModel, Value
from .noise import DiscreteDistribution

__all__ = ["TabularStream"]

#: One step's specification: ``[(value, prob), ...]`` with total mass <= 1.
StepSpec = Sequence[tuple[int, float]]


class TabularStream(StreamModel):
    """A stream defined by an explicit table of per-step distributions.

    Parameters
    ----------
    steps:
        ``steps[t]`` lists the joinable values at time ``t`` and their
        probabilities.  An empty list means the step certainly produces a
        "−" tuple.  Times beyond the table also produce "−".
    """

    is_independent = True

    def __init__(self, steps: Sequence[StepSpec]):
        cleaned: list[list[tuple[int, float]]] = []
        for t, spec in enumerate(steps):
            pairs = [(int(v), float(p)) for v, p in spec]
            total = sum(p for _, p in pairs)
            if total > 1.0 + 1e-9:
                raise ValueError(
                    f"step {t}: probabilities sum to {total} > 1"
                )
            if any(p < 0 for _, p in pairs):
                raise ValueError(f"step {t}: negative probability")
            values = [v for v, _ in pairs]
            if len(set(values)) != len(values):
                raise ValueError(f"step {t}: duplicate values")
            cleaned.append(pairs)
        self._steps = cleaned

    def __len__(self) -> int:
        return len(self._steps)

    def sample_path(self, length: int, rng: np.random.Generator) -> list[Value]:
        path: list[Value] = []
        for t in range(length):
            spec = self._steps[t] if t < len(self._steps) else []
            u = rng.random()
            acc = 0.0
            drawn: Value = None
            for v, p in spec:
                acc += p
                if u < acc:
                    drawn = v
                    break
            path.append(drawn)
        return path

    def support(
        self, t: int, history: History | None = None
    ) -> list[tuple[int, float]]:
        self.check_time(t, history)
        if t >= len(self._steps):
            return []
        return list(self._steps[t])

    def prob(self, t: int, value: Value, history: History | None = None) -> float:
        self.check_time(t, history)
        if value is None or t >= len(self._steps):
            return 0.0
        for v, p in self._steps[t]:
            if v == value:
                return p
        return 0.0

    def cond_dist(self, t: int, history: History | None = None) -> DiscreteDistribution:
        """Distribution over *joinable* values, renormalized.

        Raises when the step is certainly "−"; use :meth:`support` or
        :meth:`prob` when "−" mass matters.
        """
        spec = self.support(t, history)
        if not spec:
            raise ValueError(f"step {t} produces '−' with certainty")
        values = [v for v, _ in spec]
        probs = [p for _, p in spec]
        return DiscreteDistribution(values, probs)
