"""Synthetic Melbourne-like daily temperature data (REAL substitute).

The paper's REAL experiment uses the Melbourne daily temperature data set
from StatSci.org (10 years of daily temperatures, 3650 points) and fits an
AR(1) model by MLE, obtaining ``X_t = 0.72·X_{t-1} + 5.59 + N(0, 4.22²)``.
That data set is not redistributable here, so this module generates a
synthetic equivalent: a seasonal cycle plus AR(1) anomalies, tuned so that
a raw AR(1) MLE fit lands near the paper's reported parameters and the
series exhibits the strong day-to-day locality the experiment relies on.

The experiment pipeline is unchanged from the paper: generate (instead of
load) the series → fit AR(1) by MLE → drive the caching simulation with
HEEB using the fitted model.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["melbourne_like_temperatures", "PAPER_AR1_FIT"]

#: The AR(1) fit the paper reports for the real Melbourne data
#: (Section 6.5): ``X_t = 0.72 X_{t-1} + 5.59 + Y_t``, ``Y ~ N(0, 4.22²)``.
PAPER_AR1_FIT = {"phi0": 5.59, "phi1": 0.72, "sigma": 4.22}


def melbourne_like_temperatures(
    n_days: int = 3650,
    rng: np.random.Generator | None = None,
    mean_level: float = 15.0,
    seasonal_amplitude: float = 6.0,
    anomaly_phi1: float = 0.55,
    anomaly_sigma: float = 3.1,
) -> np.ndarray:
    """Generate a daily temperature series resembling the Melbourne data.

    The series is a yearly cosine cycle around ``mean_level`` plus AR(1)
    anomalies.  With the default parameters, fitting a plain AR(1) to the
    raw series (as the paper does -- the seasonal cycle itself contributes
    the slow mean-reversion the AR(1) absorbs) yields ``phi1`` near 0.7 and
    innovation standard deviation near 4, matching the published fit.

    Returns temperatures in °C as floats; callers bucket them (0.1 °C in
    the REAL experiment).
    """
    if n_days <= 0:
        raise ValueError("n_days must be positive")
    if rng is None:
        rng = np.random.default_rng(0)

    days = np.arange(n_days)
    # Southern-hemisphere phase: hottest around late January (day ~25).
    seasonal = mean_level + seasonal_amplitude * np.cos(
        2.0 * math.pi * (days - 25.0) / 365.25
    )

    anomalies = np.empty(n_days)
    x = 0.0
    noise = rng.normal(0.0, anomaly_sigma, size=n_days)
    for t in range(n_days):
        x = anomaly_phi1 * x + noise[t]
        anomalies[t] = x

    return seasonal + anomalies
