"""Stochastic stream models: the statistical substrate of the framework.

This subpackage implements every input model used by the paper's case
studies and experiments (Sections 5-6):

* :class:`~repro.streams.offline.OfflineStream` -- fully known sequences,
* :class:`~repro.streams.stationary.StationaryStream` -- i.i.d. values,
* :class:`~repro.streams.linear_trend.LinearTrendStream` -- linear trend
  plus bounded uniform / bounded normal noise (FLOOR / TOWER / ROOF),
* :class:`~repro.streams.random_walk.RandomWalkStream` -- random walk with
  drift (WALK),
* :class:`~repro.streams.ar1.AR1Stream` -- AR(1), the model fitted to the
  REAL (Melbourne temperature) data,

together with the caching→joining reduction of Section 2
(:mod:`~repro.streams.reduction`) and a synthetic substitute for the
Melbourne data set (:mod:`~repro.streams.melbourne`).

Models are additionally exposed through a string-keyed registry so
experiment configurations and the CLI can build them by name
(``make_stream("random-walk", step=...)``) instead of importing classes.
"""

from typing import Callable

from .ar1 import AR1Stream
from .base import History, StreamModel, Value, as_history
from .linear_trend import LinearTrendStream
from .melbourne import PAPER_AR1_FIT, melbourne_like_temperatures
from .noise import (
    DiscreteDistribution,
    bounded_normal,
    bounded_uniform,
    discretized_normal,
    from_mapping,
    point_mass,
)
from .offline import OfflineStream
from .random_walk import RandomWalkStream
from .reduction import PairedValue, occurrence_index, reduce_reference_stream
from .stationary import StationaryStream
from .tabular import TabularStream

# ----------------------------------------------------------------------
# String-keyed registry
# ----------------------------------------------------------------------
STREAM_REGISTRY: dict[str, Callable[..., StreamModel]] = {}


def register_stream(name: str, factory: Callable[..., StreamModel]) -> None:
    """Register a stream-model constructor under a (case-insensitive) name."""
    STREAM_REGISTRY[name.lower()] = factory


def make_stream(name: str, **kwargs) -> StreamModel:
    """Build a stream model by registry name, forwarding kwargs."""
    try:
        factory = STREAM_REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown stream model {name!r}; available: {available_streams()}"
        ) from None
    return factory(**kwargs)


def available_streams() -> tuple[str, ...]:
    """Registered stream-model names, sorted."""
    return tuple(sorted(STREAM_REGISTRY))


register_stream("stationary", StationaryStream)
register_stream("linear-trend", LinearTrendStream)
register_stream("random-walk", RandomWalkStream)
register_stream("ar1", AR1Stream)
register_stream("offline", OfflineStream)
register_stream("tabular", TabularStream)

__all__ = [
    "STREAM_REGISTRY",
    "available_streams",
    "make_stream",
    "register_stream",
    "AR1Stream",
    "DiscreteDistribution",
    "History",
    "LinearTrendStream",
    "OfflineStream",
    "PAPER_AR1_FIT",
    "PairedValue",
    "RandomWalkStream",
    "StationaryStream",
    "StreamModel",
    "TabularStream",
    "Value",
    "as_history",
    "bounded_normal",
    "bounded_uniform",
    "discretized_normal",
    "from_mapping",
    "melbourne_like_temperatures",
    "occurrence_index",
    "point_mass",
    "reduce_reference_stream",
]
