"""Stochastic stream models: the statistical substrate of the framework.

This subpackage implements every input model used by the paper's case
studies and experiments (Sections 5-6):

* :class:`~repro.streams.offline.OfflineStream` -- fully known sequences,
* :class:`~repro.streams.stationary.StationaryStream` -- i.i.d. values,
* :class:`~repro.streams.linear_trend.LinearTrendStream` -- linear trend
  plus bounded uniform / bounded normal noise (FLOOR / TOWER / ROOF),
* :class:`~repro.streams.random_walk.RandomWalkStream` -- random walk with
  drift (WALK),
* :class:`~repro.streams.ar1.AR1Stream` -- AR(1), the model fitted to the
  REAL (Melbourne temperature) data,

together with the caching→joining reduction of Section 2
(:mod:`~repro.streams.reduction`) and a synthetic substitute for the
Melbourne data set (:mod:`~repro.streams.melbourne`).
"""

from .ar1 import AR1Stream
from .base import History, StreamModel, Value, as_history
from .linear_trend import LinearTrendStream
from .melbourne import PAPER_AR1_FIT, melbourne_like_temperatures
from .noise import (
    DiscreteDistribution,
    bounded_normal,
    bounded_uniform,
    discretized_normal,
    from_mapping,
    point_mass,
)
from .offline import OfflineStream
from .random_walk import RandomWalkStream
from .reduction import PairedValue, occurrence_index, reduce_reference_stream
from .stationary import StationaryStream
from .tabular import TabularStream

__all__ = [
    "AR1Stream",
    "DiscreteDistribution",
    "History",
    "LinearTrendStream",
    "OfflineStream",
    "PAPER_AR1_FIT",
    "PairedValue",
    "RandomWalkStream",
    "StationaryStream",
    "StreamModel",
    "TabularStream",
    "Value",
    "as_history",
    "bounded_normal",
    "bounded_uniform",
    "discretized_normal",
    "from_mapping",
    "melbourne_like_temperatures",
    "occurrence_index",
    "point_mass",
    "reduce_reference_stream",
]
