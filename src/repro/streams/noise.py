"""Discrete probability distributions over integer values.

The paper models every stream as a discrete-time stochastic process whose
join-attribute values are discrete random variables (Section 2).  All noise
terms used in the case studies (Section 5) and experiments (Section 6) are
distributions over a contiguous range of integers:

* bounded uniform noise over ``[-w, w]`` (the FLOOR configuration),
* discretized bounded normal noise (TOWER and ROOF),
* discretized normal steps for random walks (WALK).

:class:`DiscreteDistribution` is the shared representation: a sorted integer
support with matching probabilities.  It supports the operations the rest of
the library needs -- pmf lookup, sampling, shifting, convolution (for
multi-step random-walk distributions), and moments.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "DiscreteDistribution",
    "bounded_uniform",
    "bounded_normal",
    "discretized_normal",
    "point_mass",
    "from_mapping",
]


class DiscreteDistribution:
    """An immutable probability distribution over integer values.

    Parameters
    ----------
    values:
        Integer support.  Need not be sorted or contiguous; duplicates are
        merged by summing their probabilities.
    probs:
        Nonnegative weights matching ``values``.  They are normalized to sum
        to one.
    """

    __slots__ = ("_values", "_probs", "_index")

    def __init__(self, values: Sequence[int], probs: Sequence[float]):
        values_arr = np.asarray(values, dtype=np.int64)
        probs_arr = np.asarray(probs, dtype=np.float64)
        if values_arr.shape != probs_arr.shape or values_arr.ndim != 1:
            raise ValueError("values and probs must be 1-D and equal length")
        if values_arr.size == 0:
            raise ValueError("distribution needs at least one value")
        if np.any(probs_arr < 0):
            raise ValueError("probabilities must be nonnegative")
        total = float(probs_arr.sum())
        if not total > 0:
            raise ValueError("probabilities must not all be zero")

        order = np.argsort(values_arr, kind="stable")
        values_arr = values_arr[order]
        probs_arr = probs_arr[order]
        if np.any(values_arr[1:] == values_arr[:-1]):
            uniq, inverse = np.unique(values_arr, return_inverse=True)
            merged = np.zeros(uniq.size, dtype=np.float64)
            np.add.at(merged, inverse, probs_arr)
            values_arr, probs_arr = uniq, merged

        self._values = values_arr
        self._probs = probs_arr / total
        self._index = {int(v): i for i, v in enumerate(values_arr)}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Sorted integer support (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def probs(self) -> np.ndarray:
        """Probabilities aligned with :attr:`values` (read-only view)."""
        view = self._probs.view()
        view.flags.writeable = False
        return view

    @property
    def min_value(self) -> int:
        return int(self._values[0])

    @property
    def max_value(self) -> int:
        return int(self._values[-1])

    def __len__(self) -> int:
        return int(self._values.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiscreteDistribution(support=[{self.min_value}, "
            f"{self.max_value}], size={len(self)})"
        )

    def items(self) -> Iterable[tuple[int, float]]:
        """Iterate over ``(value, probability)`` pairs in value order."""
        for v, p in zip(self._values, self._probs):
            yield int(v), float(p)

    # ------------------------------------------------------------------
    # Probability queries
    # ------------------------------------------------------------------
    def pmf(self, value: int) -> float:
        """Return ``Pr{X = value}`` (zero outside the support)."""
        i = self._index.get(int(value))
        return 0.0 if i is None else float(self._probs[i])

    def pmf_many(self, values: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`pmf` over an array of integer values."""
        values_arr = np.asarray(values, dtype=np.int64)
        idx = np.searchsorted(self._values, values_arr)
        idx_clipped = np.clip(idx, 0, self._values.size - 1)
        hit = self._values[idx_clipped] == values_arr
        out = np.where(hit, self._probs[idx_clipped], 0.0)
        return out

    def cdf(self, value: int) -> float:
        """Return ``Pr{X <= value}``."""
        pos = np.searchsorted(self._values, int(value), side="right")
        return float(self._probs[:pos].sum())

    def mean(self) -> float:
        return float(np.dot(self._values, self._probs))

    def variance(self) -> float:
        mu = self.mean()
        return float(np.dot((self._values - mu) ** 2, self._probs))

    def std(self) -> float:
        return math.sqrt(self.variance())

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw one integer (``size is None``) or an array of integers."""
        drawn = rng.choice(self._values, size=size, p=self._probs)
        if size is None:
            return int(drawn)
        return drawn.astype(np.int64)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def shift(self, offset: int) -> "DiscreteDistribution":
        """Distribution of ``X + offset``.

        Probabilities are carried over bit-exactly (no renormalization):
        shifted conditional distributions must agree with direct pmf
        lookups on the unshifted noise, which the batch engine's
        equivalence guarantee relies on.
        """
        out = DiscreteDistribution.__new__(DiscreteDistribution)
        out._values = self._values + int(offset)
        out._probs = self._probs
        out._index = {int(v): i for i, v in enumerate(out._values)}
        return out

    def convolve(self, other: "DiscreteDistribution") -> "DiscreteDistribution":
        """Distribution of ``X + Y`` for independent ``X`` (self) and ``Y``.

        Both operands are embedded into dense contiguous arrays so the sum
        can be computed with :func:`numpy.convolve`; gaps in either support
        simply carry zero probability.
        """
        dense_a = self._dense()
        dense_b = other._dense()
        probs = np.convolve(dense_a, dense_b)
        lo = self.min_value + other.min_value
        values = np.arange(lo, lo + probs.size, dtype=np.int64)
        keep = probs > 0
        return DiscreteDistribution(values[keep], probs[keep])

    def truncate(self, threshold: float) -> "DiscreteDistribution":
        """Drop support points with probability below ``threshold``.

        Useful to keep repeated convolutions (multi-step random-walk
        distributions) compact.  The result is renormalized.
        """
        keep = self._probs >= threshold
        if not np.any(keep):
            # Keep the single most likely value rather than return nothing.
            keep = self._probs == self._probs.max()
        return DiscreteDistribution(self._values[keep], self._probs[keep])

    def _dense(self) -> np.ndarray:
        dense = np.zeros(self.max_value - self.min_value + 1, dtype=np.float64)
        dense[self._values - self.min_value] = self._probs
        return dense

    # ------------------------------------------------------------------
    # Comparison helpers (used in tests)
    # ------------------------------------------------------------------
    def allclose(self, other: "DiscreteDistribution", atol: float = 1e-12) -> bool:
        """True when both distributions agree within ``atol`` pointwise."""
        lo = min(self.min_value, other.min_value)
        hi = max(self.max_value, other.max_value)
        grid = np.arange(lo, hi + 1)
        return bool(
            np.allclose(self.pmf_many(grid), other.pmf_many(grid), atol=atol)
        )


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
def bounded_uniform(width: int) -> DiscreteDistribution:
    """Uniform noise over the integers ``[-width, width]`` (FLOOR noise).

    Every value has probability ``1 / (2*width + 1)`` exactly as in
    Section 5.3 of the paper.
    """
    if width < 0:
        raise ValueError("width must be nonnegative")
    values = np.arange(-width, width + 1)
    probs = np.full(values.size, 1.0 / values.size)
    return DiscreteDistribution(values, probs)


def bounded_normal(width: int, sigma: float) -> DiscreteDistribution:
    """Discretized zero-mean normal noise truncated to ``[-width, width]``.

    This is the TOWER / ROOF noise of Section 6.1: a normal density sampled
    at the integers inside the bound and renormalized.
    """
    if width < 0:
        raise ValueError("width must be nonnegative")
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    values = np.arange(-width, width + 1)
    probs = np.exp(-0.5 * (values / sigma) ** 2)
    return DiscreteDistribution(values, probs)


def discretized_normal(
    sigma: float, mean: float = 0.0, tail: float = 1e-10
) -> DiscreteDistribution:
    """Discretized normal over all integers with negligible tail dropped.

    Used for random-walk steps (WALK configuration, Section 5.5).  The
    support is cut where the density falls below ``tail`` times the peak.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    # Half-width where density / peak < tail:  exp(-d^2 / (2 sigma^2)) < tail
    half = int(math.ceil(sigma * math.sqrt(max(2.0 * math.log(1.0 / tail), 1.0))))
    values = np.arange(math.floor(mean) - half, math.ceil(mean) + half + 1)
    probs = np.exp(-0.5 * ((values - mean) / sigma) ** 2)
    keep = probs > 0
    return DiscreteDistribution(values[keep], probs[keep])


def point_mass(value: int) -> DiscreteDistribution:
    """Distribution concentrated on a single integer."""
    return DiscreteDistribution([int(value)], [1.0])


def from_mapping(pmf: dict[int, float]) -> DiscreteDistribution:
    """Build a distribution from a ``{value: probability}`` mapping."""
    if not pmf:
        raise ValueError("mapping must not be empty")
    values = list(pmf.keys())
    probs = list(pmf.values())
    return DiscreteDistribution(values, probs)
