"""Offline (fully known) streams -- the scenario of Section 5.1.

An offline stream is a deterministic sequence ``a_0, a_1, ...`` analyzed as
the degenerate independent process with ``Pr{X_t = a_t} = 1``.  The paper
uses this scenario to recover the classic results: LFD is optimal for
caching, and FlowExpect degenerates into OPT-offline for joining.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import History, StreamModel, Value
from .noise import DiscreteDistribution, point_mass

__all__ = ["OfflineStream"]


class OfflineStream(StreamModel):
    """A stream whose entire value sequence is known in advance.

    Parameters
    ----------
    values:
        The sequence of join-attribute values; ``None`` entries are "−"
        tuples that join with nothing.
    """

    is_independent = True

    def __init__(self, values: Sequence[Value]):
        self._values: list[Value] = [
            None if v is None else int(v) for v in values
        ]
        if not self._values:
            raise ValueError("offline stream needs at least one value")

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> list[Value]:
        """The full deterministic value sequence (copy)."""
        return list(self._values)

    def value_at(self, t: int) -> Value:
        """The (certain) value produced at time ``t``.

        Times beyond the recorded sequence produce "−" (no tuple joins).
        """
        if t < 0:
            raise ValueError("time must be nonnegative")
        if t >= len(self._values):
            return None
        return self._values[t]

    def sample_path(self, length: int, rng: np.random.Generator) -> list[Value]:
        if length <= len(self._values):
            return self._values[:length]
        return self._values + [None] * (length - len(self._values))

    def cond_dist(self, t: int, history: History | None = None) -> DiscreteDistribution:
        self.check_time(t, history)
        v = self.value_at(t)
        if v is None:
            raise ValueError(
                f"offline stream produces '−' at t={t}; no distribution over "
                "joinable values exists -- use prob(), which returns 0"
            )
        return point_mass(v)

    def prob(self, t: int, value: Value, history: History | None = None) -> float:
        self.check_time(t, history)
        if value is None:
            return 0.0
        actual = self.value_at(t)
        return 1.0 if actual is not None and actual == value else 0.0

    def support(
        self, t: int, history: History | None = None
    ) -> list[tuple[int, float]]:
        self.check_time(t, history)
        v = self.value_at(t)
        if v is None:
            return []
        return [(v, 1.0)]

    def next_occurrence(self, value: int, after: int) -> int | None:
        """First time strictly after ``after`` at which ``value`` appears.

        This is the quantity driving LFD (Longest Forward Distance):
        Section 5.1 shows the offline caching ECB is a single-step function
        jumping at exactly this time.
        """
        for t in range(after + 1, len(self._values)):
            if self._values[t] == value:
                return t
        return None
