"""Random walks with drift -- the scenario of Section 5.5 (WALK).

The process is ``X_t = φ0 + X_{t-1} + Y_t`` where ``φ0`` is a constant
drift and the ``Y_t`` are i.i.d. zero-mean steps.  Conditioned on the last
observation ``x_{t0}``, the value ``Δt`` steps ahead is distributed as

    ``x_{t0} + Δt·φ0 + (Y_1 + ... + Y_Δt)``,

so the conditional pmf is the ``Δt``-fold convolution of the step
distribution, shifted.  The convolutions are cached: they depend only on
``Δt``, never on the time or the observed value (this is exactly the
translation invariance behind Theorem 5(2)).
"""

from __future__ import annotations

import numpy as np

from .base import History, StreamModel, Value
from .noise import DiscreteDistribution, point_mass

__all__ = ["RandomWalkStream"]


class RandomWalkStream(StreamModel):
    """A first-order random walk with optional constant drift.

    Parameters
    ----------
    step:
        Distribution of the zero-mean step ``Y_t``.
    drift:
        The constant drift ``φ0`` added every step.
    start:
        The deterministic value ``X_0``.
    truncate_tail:
        Probabilities below this threshold are dropped from cached
        multi-step convolutions to keep their support compact.
    """

    is_independent = False

    def __init__(
        self,
        step: DiscreteDistribution,
        drift: int = 0,
        start: int = 0,
        truncate_tail: float = 1e-12,
    ):
        self._step = step
        self._drift = int(drift)
        self._start = int(start)
        self._truncate_tail = float(truncate_tail)
        # _sums[k] = distribution of Y_1 + ... + Y_k (no drift); _sums[0]
        # is a point mass at zero.
        self._sums: list[DiscreteDistribution] = [point_mass(0)]

    # ------------------------------------------------------------------
    @property
    def step(self) -> DiscreteDistribution:
        return self._step

    @property
    def drift(self) -> int:
        return self._drift

    @property
    def start(self) -> int:
        return self._start

    def step_sum(self, k: int) -> DiscreteDistribution:
        """Distribution of the sum of ``k`` i.i.d. steps (drift excluded)."""
        if k < 0:
            raise ValueError("k must be nonnegative")
        while len(self._sums) <= k:
            nxt = self._sums[-1].convolve(self._step)
            if self._truncate_tail > 0:
                nxt = nxt.truncate(self._truncate_tail)
            self._sums.append(nxt)
        return self._sums[k]

    # ------------------------------------------------------------------
    def sample_path(self, length: int, rng: np.random.Generator) -> list[Value]:
        steps = self._step.sample(rng, size=length)
        path: list[Value] = []
        x = self._start
        for t in range(length):
            if t == 0:
                x = self._start
            else:
                x = x + self._drift + int(steps[t])
            path.append(x)
        return path

    def sample_future(
        self,
        t0: int,
        horizon: int,
        rng: np.random.Generator,
        history: History | None = None,
    ) -> list[Value]:
        if history is None:
            anchor_v = self._start
        elif history.last_value is None:
            raise ValueError("random walk history must carry a value")
        else:
            anchor_v = int(history.last_value)
        steps = self._step.sample(rng, size=horizon)
        path: list[Value] = []
        x = anchor_v
        for i in range(horizon):
            x = x + self._drift + int(steps[i])
            path.append(x)
        return path

    def cond_dist(self, t: int, history: History | None = None) -> DiscreteDistribution:
        self.check_time(t, history)
        if history is None:
            # Unconditional: treat X_0 = start as the anchor.
            anchor_t, anchor_v = 0, self._start
        else:
            if history.last_value is None:
                raise ValueError("random walk history must carry a value")
            anchor_t, anchor_v = history.now, int(history.last_value)
        k = t - anchor_t
        return self.step_sum(k).shift(anchor_v + k * self._drift)

    def prob(self, t: int, value: Value, history: History | None = None) -> float:
        self.check_time(t, history)
        if value is None:
            return 0.0
        if history is None:
            anchor_t, anchor_v = 0, self._start
        else:
            if history.last_value is None:
                raise ValueError("random walk history must carry a value")
            anchor_t, anchor_v = history.now, int(history.last_value)
        k = t - anchor_t
        return self.step_sum(k).pmf(int(value) - anchor_v - k * self._drift)
