"""Reduction from the caching problem to the joining problem (Section 2).

Given a reference stream ``R`` hitting a database relation, the paper
constructs a "supply" stream ``S`` that emits, at every step, the database
tuple joining with the current reference.  Because the joining problem
requires all tuples to be distinct, join-attribute values are rewritten to
``(v, i)`` pairs:

* the *i*-th occurrence of value ``v`` in ``R`` becomes ``(v, i-1)``,
* the *i*-th occurrence of value ``v`` in ``S`` becomes ``(v, i)``.

With this relabeling (Observation 1-3 in the paper): neither stream has
duplicates; each supply tuple ``s_(v,i)`` joins with exactly one future
reference tuple ``r_(v,i)``; and no reference tuple joins with any future
supply tuple.  Theorem 1 then states that for any *reasonable* replacement
policy, hits in the caching problem equal join results in the reduced
joining problem.

Values here are hashable pairs ``(v, i)``; the join simulator only ever
compares values for equality, so non-integer values are fine.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Sequence

__all__ = [
    "PairedValue",
    "reduce_reference_stream",
    "occurrence_index",
]

#: A relabeled join value: ``(original_value, occurrence_counter)``.
PairedValue = tuple[Hashable, int]


def occurrence_index(values: Sequence[Hashable]) -> list[int]:
    """For each position, how many times its value occurred before it.

    ``occurrence_index(['a','b','a'])`` is ``[0, 0, 1]``.
    """
    seen: Counter = Counter()
    out: list[int] = []
    for v in values:
        out.append(seen[v])
        seen[v] += 1
    return out


def reduce_reference_stream(
    reference: Sequence[Hashable],
) -> tuple[list[PairedValue], list[PairedValue]]:
    """Apply the Section-2 transformation to a reference sequence.

    Returns ``(r_values, s_values)``: the relabeled reference stream ``R'``
    and the supply stream ``S'``.  At every time ``t``,

    * ``r_values[t] = (v, k)`` where ``v = reference[t]`` and ``k`` counts
      prior occurrences of ``v`` (the paper's ``(v, i-1)`` for the *i*-th
      occurrence), and
    * ``s_values[t] = (v, k + 1)`` (the paper's ``(v, i)``).

    The supply tuple emitted at ``t`` is exactly the database tuple that a
    cache miss at ``t`` would fetch, relabeled so that it joins with the
    *next* reference to ``v`` and nothing else.
    """
    occ = occurrence_index(reference)
    r_values: list[PairedValue] = []
    s_values: list[PairedValue] = []
    for v, k in zip(reference, occ):
        r_values.append((v, k))
        s_values.append((v, k + 1))
    return r_values, s_values
