"""Stationary, independent streams -- the scenario of Section 5.2.

Every ``X_t`` is an independent draw from one time-invariant distribution
``p(v)``.  This is the setting assumed (implicitly) by most classic cache
replacement heuristics; the paper shows that under it, discarding the tuple
with the lowest reference probability is optimal (recovering LFU / A_o for
caching and PROB for joining).
"""

from __future__ import annotations

import numpy as np

from .base import History, StreamModel, Value
from .noise import DiscreteDistribution

__all__ = ["StationaryStream"]


class StationaryStream(StreamModel):
    """An i.i.d. stream drawing each value from a fixed distribution."""

    is_independent = True

    def __init__(self, dist: DiscreteDistribution):
        self._dist = dist

    @property
    def dist(self) -> DiscreteDistribution:
        """The time-invariant per-step value distribution ``p(v)``."""
        return self._dist

    def sample_path(self, length: int, rng: np.random.Generator) -> list[Value]:
        return [int(v) for v in self._dist.sample(rng, size=length)]

    def cond_dist(self, t: int, history: History | None = None) -> DiscreteDistribution:
        self.check_time(t, history)
        return self._dist
