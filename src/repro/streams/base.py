"""Stream process models: the statistical substrate of the framework.

Section 2 of the paper models each input stream ``S`` as a discrete-time
stochastic process ``{X_t | t = 0, 1, ...}`` over a discrete value domain.
Every algorithm in the framework (ECB computation, HEEB, FlowExpect) only
interacts with a stream through two capabilities:

1. *generation* -- drawing sample paths for simulation, and
2. *prediction* -- the conditional distribution ``Pr{X_t = v | history}``
   of a future value given everything observed so far (written
   ``x̄_{t0}`` in the paper).

:class:`StreamModel` captures exactly this contract.  Models for which the
per-step variables are mutually independent (offline, stationary, linear
trend with i.i.d. noise) advertise :attr:`StreamModel.is_independent` so
that callers may use the time- and value-incremental optimizations of
Section 4.4, which are only valid under independence.

Values are integers; ``None`` encodes the paper's "−" symbol: a tuple that
joins with nothing (used in the hand-constructed example of Section 3.4).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .noise import DiscreteDistribution

__all__ = ["History", "StreamModel", "Value"]

#: A join-attribute value: an integer, or ``None`` for the paper's "−".
Value = Optional[int]


@dataclass(frozen=True)
class History:
    """The observed prefix of a stream, as far as prediction needs it.

    The paper conditions all probabilities on ``x̄_{t0}``, the full history
    up to the current time ``t0``.  For every model in this library the
    history enters predictions only through (a) the time of the latest
    observation and (b) the latest observed value (all models are either
    independent or first-order Markov).  We therefore record just those two
    facts; models that need more can subclass.

    Attributes
    ----------
    now:
        Time of the most recent observation.
    last_value:
        The value observed at ``now`` (may be ``None`` for a "−" tuple).
    """

    now: int
    last_value: Value = None


class StreamModel(abc.ABC):
    """Abstract base for stochastic stream models.

    Subclasses must implement :meth:`sample_path` and :meth:`cond_dist`.
    """

    #: True when ``X_t`` is independent of the observed history, i.e. the
    #: per-step random variables are mutually independent.  Enables the
    #: incremental HEEB computations of Section 4.4.
    is_independent: bool = False

    @abc.abstractmethod
    def sample_path(
        self, length: int, rng: np.random.Generator
    ) -> list[Value]:
        """Draw one realization of the process for times ``0 .. length-1``."""

    @abc.abstractmethod
    def cond_dist(
        self, t: int, history: History | None = None
    ) -> DiscreteDistribution:
        """Conditional distribution of ``X_t`` given the observed history.

        Parameters
        ----------
        t:
            The future time step being predicted.  Must satisfy
            ``t > history.now`` when a history is given.
        history:
            Observed prefix; ignored by independent models.
        """

    def prob(self, t: int, value: Value, history: History | None = None) -> float:
        """Convenience: ``Pr{X_t = value | history}``.

        A ``None`` value never matches anything, so its probability of
        joining is zero by definition.
        """
        if value is None:
            return 0.0
        return self.cond_dist(t, history).pmf(value)

    def support(
        self, t: int, history: History | None = None
    ) -> list[tuple[int, float]]:
        """Joinable values at time ``t`` with their probabilities.

        The probabilities may sum to less than one: the remainder is the
        probability of producing a "−" tuple that joins with nothing.  The
        default implementation assumes no "−" mass and materializes the
        conditional distribution; models that can emit "−" override this.
        """
        return list(self.cond_dist(t, history).items())

    def sample_future(
        self,
        t0: int,
        horizon: int,
        rng: np.random.Generator,
        history: History | None = None,
    ) -> list[Value]:
        """Sample one future trajectory ``X_{t0+1}, ..., X_{t0+horizon}``.

        Used for Monte-Carlo validation of analytic probability
        computations.  The default draws each step independently from
        :meth:`support` (valid for independent models); Markov models
        override with sequential sampling from the anchored state.
        """
        if not self.is_independent:
            raise NotImplementedError(
                "Markov models must override sample_future"
            )
        path: list[Value] = []
        for dt in range(1, horizon + 1):
            spec = self.support(t0 + dt, history)
            u = rng.random()
            acc = 0.0
            drawn: Value = None
            for v, p in spec:
                acc += p
                if u < acc:
                    drawn = v
                    break
            path.append(drawn)
        return path

    def check_time(self, t: int, history: History | None) -> None:
        """Validate that ``t`` lies strictly in the future of the history."""
        if t < 0:
            raise ValueError(f"time must be nonnegative, got {t}")
        if history is not None and t <= history.now:
            raise ValueError(
                f"cond_dist asked for t={t} but history extends to "
                f"{history.now}; prediction must target the future"
            )


def as_history(values: Sequence[Value], now: int) -> History:
    """Build a :class:`History` from an observed value sequence.

    ``values[now]`` is the most recent observation.
    """
    if now < 0 or now >= len(values):
        raise ValueError(f"now={now} out of range for {len(values)} values")
    return History(now=now, last_value=values[now])
