"""Linear-trend streams with i.i.d. noise -- Sections 5.3 and 5.4.

The process is ``X_t = f(t) + Y_t`` where ``f`` is a (non-)decreasing
integer-valued trend and the ``Y_t`` are i.i.d. zero-mean noise terms drawn
from a bounded distribution.  The experiments of Section 6 use
``f(t) = speed * (t - lag)`` with:

* bounded uniform noise (FLOOR),
* discretized bounded normal noise with small / large standard deviation
  (TOWER / ROOF).

The moving noise support creates the "reference window" that drives the
category analysis of Sections 5.3-5.4 and Appendix O.
"""

from __future__ import annotations

import numpy as np

from .base import History, StreamModel, Value
from .noise import DiscreteDistribution

__all__ = ["LinearTrendStream"]


class LinearTrendStream(StreamModel):
    """A drifting stream ``X_t = f(t) + Y_t`` with i.i.d. noise.

    Parameters
    ----------
    noise:
        Zero-mean (or otherwise) noise distribution; its support bounds
        define the moving window ``[f(t) + noise.min, f(t) + noise.max]``.
    speed:
        Drift speed of the trend (the experiments use 1).
    lag:
        Number of steps the stream lags behind the nominal trend; the
        paper's configurations have R lag one step behind S.
    intercept:
        Constant offset of the trend.
    """

    is_independent = True

    def __init__(
        self,
        noise: DiscreteDistribution,
        speed: float = 1.0,
        lag: int = 0,
        intercept: int = 0,
    ):
        if speed < 0:
            raise ValueError("speed must be nonnegative (trend non-decreasing)")
        self._noise = noise
        self._speed = float(speed)
        self._lag = int(lag)
        self._intercept = int(intercept)

    # ------------------------------------------------------------------
    @property
    def noise(self) -> DiscreteDistribution:
        return self._noise

    @property
    def speed(self) -> float:
        return self._speed

    @property
    def lag(self) -> int:
        return self._lag

    @property
    def intercept(self) -> int:
        return self._intercept

    def trend(self, t: int) -> int:
        """The trend value ``f(t)`` (rounded to an integer)."""
        return self._intercept + int(round(self._speed * (t - self._lag)))

    def window(self, t: int) -> tuple[int, int]:
        """Inclusive value window with nonzero probability at time ``t``."""
        f = self.trend(t)
        return f + self._noise.min_value, f + self._noise.max_value

    # ------------------------------------------------------------------
    def sample_path(self, length: int, rng: np.random.Generator) -> list[Value]:
        steps = self._noise.sample(rng, size=length)
        return [self.trend(t) + int(y) for t, y in enumerate(steps)]

    def cond_dist(self, t: int, history: History | None = None) -> DiscreteDistribution:
        self.check_time(t, history)
        return self._noise.shift(self.trend(t))

    def prob(self, t: int, value: Value, history: History | None = None) -> float:
        # Direct pmf lookup avoids building a shifted distribution per call.
        self.check_time(t, history)
        if value is None:
            return 0.0
        return self._noise.pmf(int(value) - self.trend(t))
