"""Bloom filter: approximate membership over a fixed bit array.

Used as the TinyLFU "doorkeeper" (absorb first occurrences so one-hit
wonders never reach the count-min counters) and as the admission
filter's recent-value memory.  No false negatives; the false-positive
rate is tracked from the observed fill so callers can surface it as a
telemetry series.
"""

from __future__ import annotations

from typing import Hashable

from .countmin import value_hashes

__all__ = ["BloomFilter"]


class BloomFilter:
    """Fixed ``n_bits`` membership filter with ``n_hashes`` probes."""

    __slots__ = ("n_bits", "n_hashes", "n_added", "_bits", "_set_bits")

    def __init__(self, n_bits: int = 8192, n_hashes: int = 4):
        if n_bits < 8 or n_hashes < 1:
            raise ValueError("n_bits must be >= 8 and n_hashes >= 1")
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self.n_added = 0
        self._bits = bytearray(n_bits // 8 + (1 if n_bits % 8 else 0))
        self._set_bits = 0

    def _positions(self, value: Hashable) -> list[int]:
        h1, h2 = value_hashes(value)
        n = self.n_bits
        return [(h1 + i * h2) % n for i in range(self.n_hashes)]

    def add(self, value: Hashable) -> bool:
        """Insert ``value``; return True if it was (probably) new."""
        new = False
        for pos in self._positions(value):
            byte, mask = pos >> 3, 1 << (pos & 7)
            if not self._bits[byte] & mask:
                self._bits[byte] |= mask
                self._set_bits += 1
                new = True
        if new:
            self.n_added += 1
        return new

    def __contains__(self, value: Hashable) -> bool:
        for pos in self._positions(value):
            if not self._bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def clear(self) -> None:
        """Reset every bit (periodic doorkeeper flush)."""
        for i in range(len(self._bits)):
            self._bits[i] = 0
        self._set_bits = 0
        self.n_added = 0

    def fill_ratio(self) -> float:
        """Fraction of bits set."""
        return self._set_bits / self.n_bits

    def fp_rate(self) -> float:
        """Estimated false-positive probability at the current fill."""
        return self.fill_ratio() ** self.n_hashes

    def merge(self, other: "BloomFilter") -> None:
        """Bitwise-OR ``other`` into this filter (same geometry)."""
        if (other.n_bits, other.n_hashes) != (self.n_bits, self.n_hashes):
            raise ValueError("cannot merge bloom filters of different shape")
        for i, b in enumerate(other._bits):
            self._bits[i] |= b
        self._set_bits = sum(bin(b).count("1") for b in self._bits)
        self.n_added += other.n_added

    def memory_bytes(self) -> int:
        """Bytes held by the bit array."""
        return len(self._bits)

    def __repr__(self) -> str:
        return (
            f"BloomFilter(n_bits={self.n_bits}, n_hashes={self.n_hashes}, "
            f"fill={self.fill_ratio():.3f})"
        )
