"""TinyLFU: a doorkeeper bloom filter in front of an aging count-min.

First occurrences of a value are absorbed by the doorkeeper, so
one-hit wonders never consume count-min counters; repeat occurrences
increment the sketch.  When ``sample_size`` events have been observed
the counters are halved and the doorkeeper flushed, which exponentially
ages out stale popularity (Einziger, Gabbay & Friedman, "TinyLFU: A
Highly Efficient Cache Admission Policy").
"""

from __future__ import annotations

from typing import Hashable

from .bloom import BloomFilter
from .countmin import CountMinSketch

__all__ = ["TinyLfuFilter"]


class TinyLfuFilter:
    """Aging frequency estimates with one-hit-wonder suppression."""

    __slots__ = ("sketch", "doorkeeper", "sample_size", "events", "resets")

    def __init__(
        self,
        width: int = 2048,
        depth: int = 4,
        sample_size: int | None = None,
        doorkeeper_bits: int | None = None,
    ):
        self.sketch = CountMinSketch(width=width, depth=depth)
        self.doorkeeper = BloomFilter(
            n_bits=doorkeeper_bits if doorkeeper_bits is not None else 8 * width,
            n_hashes=4,
        )
        self.sample_size = sample_size if sample_size is not None else 16 * width
        if self.sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        self.events = 0
        self.resets = 0

    @property
    def total(self) -> int:
        """Events currently represented (doorkeeper + sketch weight)."""
        return self.doorkeeper.n_added + self.sketch.total

    def increment(self, value: Hashable, by: int = 1) -> None:
        """Record ``by`` occurrences of ``value``."""
        if by <= 0:
            return
        if value in self.doorkeeper:
            self.sketch.increment(value, by)
        else:
            self.doorkeeper.add(value)
            if by > 1:
                self.sketch.increment(value, by - 1)
        self.events += by
        if self.events >= self.sample_size:
            self._age()

    def _age(self) -> None:
        self.sketch.halve()
        self.doorkeeper.clear()
        self.events //= 2
        self.resets += 1

    def estimate(self, value: Hashable) -> int:
        """Estimated (aged) occurrence count of ``value``."""
        est = self.sketch.estimate(value)
        if value in self.doorkeeper:
            est += 1
        return est

    __getitem__ = estimate

    def merge(self, other: "TinyLfuFilter") -> None:
        """Combine another TinyLFU (same geometry) into this one."""
        self.sketch.merge(other.sketch)
        self.doorkeeper.merge(other.doorkeeper)
        self.events += other.events
        if self.events >= self.sample_size:
            self._age()

    def fill_ratio(self) -> float:
        """Count-min saturation (the doorkeeper fill is separate)."""
        return self.sketch.fill_ratio()

    def memory_bytes(self) -> int:
        """Bytes held by the sketch plus the doorkeeper."""
        return self.sketch.memory_bytes() + self.doorkeeper.memory_bytes()

    def __repr__(self) -> str:
        return (
            f"TinyLfuFilter(width={self.sketch.width}, "
            f"depth={self.sketch.depth}, sample_size={self.sample_size}, "
            f"resets={self.resets})"
        )
