"""Count-min sketch: fixed-memory frequency estimates over stream values.

The sketch stores a ``depth x width`` table of unsigned counters.  An
increment for value ``v`` bumps one counter per row; the estimate is
the minimum over rows, which can only over-count (never under-count).
Memory is exactly ``4 * width * depth`` bytes regardless of how many
distinct values the stream carries.

Hashing uses BLAKE2b split into two 64-bit halves combined with the
Kirsch-Mitzenmacher double-hashing scheme ``(h1 + i * h2) % width``,
so estimates are deterministic across processes and independent of
``PYTHONHASHSEED`` -- the same contract as ``serve.shard.stable_hash``.
"""

from __future__ import annotations

from array import array
from hashlib import blake2b
from typing import Hashable

__all__ = ["CountMinSketch", "value_hashes"]

_COUNTER_MAX = (1 << 32) - 1


def value_hashes(value: Hashable) -> tuple[int, int]:
    """Two independent 64-bit hashes of ``value`` (process-stable)."""
    digest = blake2b(repr(value).encode("utf-8"), digest_size=16).digest()
    return (
        int.from_bytes(digest[:8], "big"),
        int.from_bytes(digest[8:], "big") | 1,
    )


class CountMinSketch:
    """Frequency estimates in ``O(width x depth)`` memory.

    ``estimate(v) >= true_count(v)`` always holds (one-sided error);
    the overestimate is bounded by ``e * total / width`` with
    probability ``1 - e^-depth`` for the standard parameterisation.
    """

    __slots__ = ("width", "depth", "total", "_rows")

    def __init__(self, width: int = 2048, depth: int = 4):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.width = width
        self.depth = depth
        self.total = 0
        self._rows = [array("I", bytes(4 * width)) for _ in range(depth)]

    def _indexes(self, value: Hashable) -> list[int]:
        h1, h2 = value_hashes(value)
        width = self.width
        return [(h1 + i * h2) % width for i in range(self.depth)]

    def increment(self, value: Hashable, by: int = 1) -> None:
        """Add ``by`` occurrences of ``value`` (counters saturate)."""
        if by <= 0:
            return
        self.total += by
        for row, idx in zip(self._rows, self._indexes(value)):
            row[idx] = min(_COUNTER_MAX, row[idx] + by)

    def estimate(self, value: Hashable) -> int:
        """Estimated occurrence count of ``value`` (never an undercount)."""
        return min(
            row[idx] for row, idx in zip(self._rows, self._indexes(value))
        )

    __getitem__ = estimate

    def halve(self) -> None:
        """Age every counter by integer-halving it (TinyLFU reset)."""
        for row in self._rows:
            for i, c in enumerate(row):
                if c:
                    row[i] = c >> 1
        self.total >>= 1

    def merge(self, other: "CountMinSketch") -> None:
        """Element-wise add ``other`` into this sketch (same dims)."""
        if (other.width, other.depth) != (self.width, self.depth):
            raise ValueError("cannot merge sketches of different dimensions")
        for row, other_row in zip(self._rows, other._rows):
            for i, c in enumerate(other_row):
                if c:
                    row[i] = min(_COUNTER_MAX, row[i] + c)
        self.total += other.total

    def fill_ratio(self) -> float:
        """Fraction of counters that are nonzero (saturation signal)."""
        nonzero = sum(
            1 for row in self._rows for c in row if c
        )
        return nonzero / (self.width * self.depth)

    def memory_bytes(self) -> int:
        """Bytes held by the counter table (the dominant term)."""
        return sum(row.itemsize * len(row) for row in self._rows)

    def __repr__(self) -> str:
        return (
            f"CountMinSketch(width={self.width}, depth={self.depth}, "
            f"total={self.total})"
        )
