"""Admission front-end: reject tuples that cannot clear the cutoff EMA.

Eviction in :class:`~repro.policies.base.ScoredPolicy` already emits
the score of the marginal survivor (the ``scores.cutoff`` series from
PR 5).  :class:`AdmissionFilter` keeps an exponential moving average of
that cutoff and refuses first-time values whose score cannot clear it:
a tuple that would be the next eviction victim anyway never occupies a
cache slot.  A bloom doorkeeper remembers recently seen values so
recurring values are always admitted (frequency evidence beats the
one-shot score estimate); the doorkeeper is flushed when it saturates
so "recent" stays recent.

The filter is deliberately policy-agnostic: it sees only
``(value, score)`` pairs and the cutoff feedback, so HEEB, PROB, LFU
and any other scored policy gain admission control without per-policy
code.
"""

from __future__ import annotations

from typing import Hashable

from .bloom import BloomFilter

__all__ = ["AdmissionFilter"]


class AdmissionFilter:
    """EMA-of-cutoff admission with a bloom doorkeeper.

    Decision rule for a candidate ``(value, score)``:

    - value seen recently (doorkeeper hit) -> admit;
    - otherwise, admit only if a cutoff signal exists and
      ``score > margin * cutoff_ema``;
    - before the first eviction cutoff arrives, first-time values are
      rejected (pure doorkeeper mode) -- the cache only fills with
      values that have shown up at least twice.
    """

    __slots__ = (
        "ema_alpha",
        "margin",
        "cutoff_ema",
        "doorkeeper",
        "max_fill",
        "observed",
        "admits",
        "rejects",
        "flushes",
    )

    def __init__(
        self,
        n_bits: int = 65536,
        n_hashes: int = 4,
        ema_alpha: float = 0.1,
        margin: float = 1.0,
        max_fill: float = 0.5,
    ):
        if not 0.0 < ema_alpha <= 1.0:
            raise ValueError("ema_alpha must be in (0, 1]")
        if margin <= 0.0:
            raise ValueError("margin must be positive")
        if not 0.0 < max_fill < 1.0:
            raise ValueError("max_fill must be in (0, 1)")
        self.ema_alpha = ema_alpha
        self.margin = margin
        self.max_fill = max_fill
        self.cutoff_ema: float | None = None
        self.doorkeeper = BloomFilter(n_bits=n_bits, n_hashes=n_hashes)
        self.observed = 0
        self.admits = 0
        self.rejects = 0
        self.flushes = 0

    def admit(self, value: Hashable, score: float) -> bool:
        """Decide whether a first-class cache slot is worth ``value``."""
        self.observed += 1
        seen = value in self.doorkeeper
        if not seen:
            self.doorkeeper.add(value)
            if self.doorkeeper.fill_ratio() > self.max_fill:
                self._flush(keep=value)
        if seen or (
            self.cutoff_ema is not None and score > self.margin * self.cutoff_ema
        ):
            self.admits += 1
            return True
        self.rejects += 1
        return False

    def _flush(self, keep: Hashable) -> None:
        self.doorkeeper.clear()
        self.doorkeeper.add(keep)
        self.flushes += 1

    def update_cutoff(self, cutoff: float) -> None:
        """Feed one eviction-cutoff observation into the EMA."""
        if self.cutoff_ema is None:
            self.cutoff_ema = float(cutoff)
        else:
            a = self.ema_alpha
            self.cutoff_ema = a * float(cutoff) + (1.0 - a) * self.cutoff_ema

    def fp_rate(self) -> float:
        """Doorkeeper false-positive rate (a false positive = a tuple
        admitted as "recurring" that was actually first-time)."""
        return self.doorkeeper.fp_rate()

    def reset(self) -> None:
        """Clear all state for a fresh run (called from ``make_*_state``)."""
        self.cutoff_ema = None
        self.doorkeeper.clear()
        self.observed = 0
        self.admits = 0
        self.rejects = 0
        self.flushes = 0

    def merge(self, other: "AdmissionFilter") -> None:
        """Fold a retiring shard's filter into this one (reshard path)."""
        self.doorkeeper.merge(other.doorkeeper)
        if other.cutoff_ema is not None:
            if self.cutoff_ema is None:
                self.cutoff_ema = other.cutoff_ema
            else:
                self.cutoff_ema = 0.5 * (self.cutoff_ema + other.cutoff_ema)
        self.observed += other.observed
        self.admits += other.admits
        self.rejects += other.rejects
        self.flushes += other.flushes

    def memory_bytes(self) -> int:
        """Bytes held by the doorkeeper bit array."""
        return self.doorkeeper.memory_bytes()

    def __repr__(self) -> str:
        return (
            f"AdmissionFilter(cutoff_ema={self.cutoff_ema}, "
            f"admits={self.admits}, rejects={self.rejects})"
        )
