"""Bounded-memory sketch front-ends for caches at millions of tuples.

The exact policies keep one :class:`collections.Counter` entry per
distinct stream value, which caps realistic cache sizes well below the
"millions of live tuples" target.  This package trades a measured,
bounded accuracy loss for O(width x depth) memory:

- :class:`CountMinSketch` -- conservative frequency estimates in a
  fixed ``width x depth`` table of saturating counters.
- :class:`BloomFilter` -- approximate membership over a fixed bit
  array (no false negatives; tracked false-positive rate).
- :class:`TinyLfuFilter` -- a count-min sketch behind a bloom
  "doorkeeper" with periodic halving, so one-hit wonders never touch
  the counters and old frequencies age out (TinyLFU, Einziger et al.).
- :class:`AdmissionFilter` -- a bloom doorkeeper plus a running EMA of
  the eviction-score cutoff; first-time values whose score cannot
  clear the EMA are rejected before they ever occupy a cache slot.

All hashing is BLAKE2b-based and therefore stable across processes
and ``PYTHONHASHSEED`` values, matching the determinism contract of
``repro.serve.shard.stable_hash``.  Every structure supports
``merge()`` so per-shard sketches can be combined on reshard.
"""

from .bloom import BloomFilter
from .countmin import CountMinSketch
from .tinylfu import TinyLfuFilter
from .admission import AdmissionFilter

__all__ = [
    "AdmissionFilter",
    "BloomFilter",
    "CountMinSketch",
    "TinyLfuFilter",
]
