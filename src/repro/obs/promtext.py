"""Prometheus text exposition: render recorder state, parse it back.

The serve tier's ``/metrics`` endpoint speaks the Prometheus text
format (version 0.0.4) — the lingua franca every scraper understands —
without taking a client-library dependency: the format is line-based
and this module hand-renders it from plain recorder snapshots and
:class:`~repro.obs.hist.LogHistogram` state.

Three stable families keep the exposition schema-free as counters come
and go (dotted recorder names ride in labels instead of being mangled
into metric names, so the scrape is loss-lessly invertible back to the
snapshot — the exactness the endpoint test pins):

* ``repro_counter_total{name="serve.ingested"}`` — every recorder
  counter, verbatim;
* ``repro_timer_seconds_total{name="flow.solve"}`` /
  ``repro_timer_calls_total{name=...}`` — accumulated timers;
* ``repro_gauge{name="queue_depth",shard="0"}`` — caller-supplied
  operational gauges (queue saturation, occupancy, liveness);
* ``repro_latency_ms{span="serve.span.decide_ms"}`` — one Prometheus
  histogram (``_bucket``/``_sum``/``_count``) per log-bucketed latency
  histogram.

:func:`parse_prometheus_text` is the matching minimal parser used by
the endpoint tests and the CI scrape smoke: it validates the line
grammar and returns ``{(metric, labels): value}``.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence, Union

from .hist import LogHistogram

__all__ = [
    "render_prometheus",
    "parse_prometheus_text",
]

#: Labeled sample key: ``(metric_name, ((label, value), ...))``.
SampleKey = tuple[str, tuple[tuple[str, str], ...]]


def _escape(value: str) -> str:
    """Escape a label value per the text-format rules."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels(pairs: Mapping[str, Union[str, int, float]]) -> str:
    """Render a label set (possibly empty) in canonical key order."""
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{_escape(str(pairs[key]))}"' for key in sorted(pairs)
    )
    return "{" + inner + "}"


def _num(value: float) -> str:
    """Render a sample value (``+Inf`` for infinity)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    counters: Optional[Mapping[str, int]] = None,
    timers: Optional[Mapping[str, Mapping[str, float]]] = None,
    gauges: Optional[
        Sequence[tuple[str, Mapping[str, Union[str, int, float]], float]]
    ] = None,
    histograms: Optional[Mapping[str, LogHistogram]] = None,
) -> str:
    """Render the metric families as Prometheus text (0.0.4).

    ``counters`` and ``timers`` take the recorder snapshot's shapes
    verbatim; ``gauges`` is a sequence of ``(name, labels, value)``
    triples; ``histograms`` maps span series names to
    :class:`~repro.obs.hist.LogHistogram` instances.
    """
    lines: list[str] = []
    if counters:
        lines.append(
            "# HELP repro_counter_total Recorder counters, "
            "exactly as snapshotted."
        )
        lines.append("# TYPE repro_counter_total counter")
        for name in sorted(counters):
            lines.append(
                f"repro_counter_total{_labels({'name': name})} "
                f"{_num(float(counters[name]))}"
            )
    if timers:
        lines.append(
            "# HELP repro_timer_seconds_total Accumulated recorder "
            "timer seconds."
        )
        lines.append("# TYPE repro_timer_seconds_total counter")
        for name in sorted(timers):
            lines.append(
                f"repro_timer_seconds_total{_labels({'name': name})} "
                f"{_num(float(timers[name]['seconds']))}"
            )
        lines.append(
            "# HELP repro_timer_calls_total Recorder timer call counts."
        )
        lines.append("# TYPE repro_timer_calls_total counter")
        for name in sorted(timers):
            lines.append(
                f"repro_timer_calls_total{_labels({'name': name})} "
                f"{_num(float(timers[name]['calls']))}"
            )
    if gauges:
        lines.append("# HELP repro_gauge Operational gauges.")
        lines.append("# TYPE repro_gauge gauge")
        for name, labels, value in gauges:
            merged = dict(labels)
            merged["name"] = name
            lines.append(f"repro_gauge{_labels(merged)} {_num(float(value))}")
    if histograms:
        lines.append(
            "# HELP repro_latency_ms Log-bucketed span latency "
            "histograms (milliseconds)."
        )
        lines.append("# TYPE repro_latency_ms histogram")
        for span in sorted(histograms):
            hist = histograms[span]
            for bound, cum in hist.cumulative_buckets():
                le = "+Inf" if math.isinf(bound) else _num(bound)
                lines.append(
                    f"repro_latency_ms_bucket"
                    f"{_labels({'span': span, 'le': le})} {cum}"
                )
            lines.append(
                f"repro_latency_ms_sum{_labels({'span': span})} "
                f"{_num(hist.total)}"
            )
            lines.append(
                f"repro_latency_ms_count{_labels({'span': span})} "
                f"{hist.count}"
            )
    return "\n".join(lines) + "\n"


def _parse_labels(raw: str, lineno: int) -> tuple[tuple[str, str], ...]:
    """Parse one ``key="value",...`` label body (already brace-stripped)."""
    labels: list[tuple[str, str]] = []
    i = 0
    while i < len(raw):
        eq = raw.index("=", i)
        key = raw[i:eq].strip()
        if not key.replace("_", "a").isalnum():
            raise ValueError(f"line {lineno}: bad label name {key!r}")
        if raw[eq + 1] != '"':
            raise ValueError(f"line {lineno}: unquoted label value")
        j = eq + 2
        value: list[str] = []
        while raw[j] != '"':
            if raw[j] == "\\":
                nxt = raw[j + 1]
                value.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt)
                )
                j += 2
            else:
                value.append(raw[j])
                j += 1
        labels.append((key, "".join(value)))
        i = j + 1
        if i < len(raw):
            if raw[i] != ",":
                raise ValueError(f"line {lineno}: expected ',' in labels")
            i += 1
    return tuple(sorted(labels))


def parse_prometheus_text(text: str) -> dict[SampleKey, float]:
    """Parse (and thereby validate) Prometheus text exposition.

    Returns ``{(metric_name, ((label, value), ...)): sample_value}``.
    Raises :class:`ValueError` on any line that is neither a comment
    (``# HELP`` / ``# TYPE`` / blank) nor a well-formed sample — which
    is what makes it a format check for the CI scrape smoke.
    """
    samples: dict[SampleKey, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 2)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: bad comment {line!r}")
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            body, value_part = rest.rsplit("}", 1)
            labels = _parse_labels(body, lineno)
        else:
            name, _, value_part = line.partition(" ")
            labels = ()
        name = name.strip()
        if not name or not name.replace("_", "a").replace(":", "a").isalnum():
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        value_str = value_part.strip().split()[0]
        try:
            value = (
                math.inf
                if value_str == "+Inf"
                else -math.inf
                if value_str == "-Inf"
                else float(value_str)
            )
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad sample value {value_str!r}"
            ) from exc
        key = (name, labels)
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key}")
        samples[key] = value
    return samples
