"""``python -m repro.obs top`` — a refreshing TTY serve dashboard.

Polls a live :class:`~repro.serve.metrics.MetricsEndpoint` ``/health``
URL (or reads a JSON snapshot written by ``repro serve --health-out``)
and renders a per-shard table: worker liveness, queue depth and
saturation, occupancy, backpressure duty cycle, p99 decide latency —
plus a :func:`~repro.obs.timeseries.sparkline` of each shard's recent
queue depth, accumulated across refreshes.

Pure rendering is split from polling (:func:`render_health` is a
function of the health document and the depth history), so tests drive
the dashboard without sockets or timers, and the same code paths serve
both the live and the offline snapshot mode::

    python -m repro.obs top --url http://127.0.0.1:9200 --interval 1
    python -m repro.obs top --snapshot health.json --count 1

Only the standard library is used (``urllib.request`` for polling);
there is nothing to install on a bare production box.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Mapping, Optional, Sequence

from .timeseries import sparkline

__all__ = [
    "DepthHistory",
    "fetch_health",
    "load_snapshot",
    "render_health",
    "main",
]

#: Cells in the per-shard queue-depth sparkline.
SPARK_WIDTH = 24

#: Most recent depth samples retained per shard.
HISTORY_BUDGET = 120

#: ANSI clear-screen + cursor-home, used between live refreshes.
CLEAR = "\x1b[2J\x1b[H"


class DepthHistory:
    """Bounded per-shard queue-depth history for the sparkline column."""

    def __init__(self, budget: int = HISTORY_BUDGET):
        """Empty history keeping at most ``budget`` samples per shard."""
        self.budget = budget
        self._samples: dict[int, list[float]] = {}

    def push(self, health: Mapping) -> None:
        """Record one health document's per-shard queue depths."""
        for row in health.get("shards", ()):
            shard = int(row.get("shard", 0))
            samples = self._samples.setdefault(shard, [])
            samples.append(float(row.get("queue_depth", 0)))
            if len(samples) > self.budget:
                del samples[: len(samples) - self.budget]

    def samples(self, shard: int) -> list[float]:
        """The retained depth samples for ``shard`` (oldest first)."""
        return self._samples.get(shard, [])


def _fmt(value: Optional[float], fmt: str = "{:.2f}") -> str:
    """Render an optional number; ``-`` for missing."""
    if value is None:
        return "-"
    return fmt.format(value)


def render_health(
    health: Mapping, history: Optional[DepthHistory] = None
) -> str:
    """Render one health document as the dashboard screen (no ANSI).

    ``history`` supplies the per-shard queue-depth sparklines; omit it
    for a one-shot render without the trend column.
    """
    latency = health.get("latency", {})
    decide = latency.get("serve.span.decide_ms", {})
    head = (
        f"repro serve · {health.get('kind', '?')} · "
        f"status={health.get('status', '?')} · "
        f"shards={health.get('n_shards', '?')} · "
        f"up {float(health.get('uptime_seconds', 0.0)):.1f}s"
    )
    line2 = (
        f"ingested={health.get('ingested_arrivals', 0)} "
        f"occupancy={health.get('occupancy', 0)} "
        f"backpressure: waits={health.get('backpressure_waits', 0)} "
        f"duty={float(health.get('backpressure_duty', 0.0)):.2%}"
    )
    line3 = "decide latency: " + " ".join(
        f"{key}={_fmt(decide.get(key))}ms"
        for key in ("p50", "p90", "p99", "max")
    )
    columns = [
        "shard",
        "alive",
        "depth",
        "sat",
        "occ",
        "applied",
        "waits",
        "duty",
        "p99_ms",
        "depth trend",
    ]
    rows = [columns]
    for row in health.get("shards", ()):
        shard = int(row.get("shard", 0))
        trend = (
            sparkline(history.samples(shard), width=SPARK_WIDTH)
            if history is not None
            else ""
        )
        rows.append(
            [
                str(shard),
                "up" if row.get("alive") else "DOWN",
                str(row.get("queue_depth", 0)),
                f"{float(row.get('queue_saturation', 0.0)):.0%}",
                str(row.get("occupancy", 0)),
                str(row.get("events_applied", 0)),
                str(row.get("backpressure_waits", 0)),
                f"{float(row.get('backpressure_duty', 0.0)):.2%}",
                _fmt(row.get("p99_decide_ms"), "{:.3f}"),
                trend,
            ]
        )
    widths = [
        max(len(row[i]) for row in rows) for i in range(len(columns) - 1)
    ]
    table = "\n".join(
        "  ".join(
            [
                *(cell.ljust(widths[i]) for i, cell in enumerate(row[:-1])),
                row[-1],
            ]
        )
        for row in rows
    )
    return "\n".join([head, line2, line3, "", table])


def fetch_health(url: str, timeout: float = 2.0) -> dict:
    """GET and decode the ``/health`` JSON document from ``url``.

    ``url`` may be the endpoint base (``http://host:port``) or the full
    ``/health`` path; the suffix is appended when missing.
    """
    if not url.rstrip("/").endswith("/health"):
        url = url.rstrip("/") + "/health"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def load_snapshot(path: str) -> dict:
    """Read a health document from a JSON snapshot file."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: poll (or load) health documents and render the dashboard."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs top",
        description="Live per-shard dashboard for a repro serve endpoint.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--url",
        help="metrics endpoint base URL (e.g. http://127.0.0.1:9200)",
    )
    source.add_argument(
        "--snapshot",
        help="offline mode: render a health JSON file written by "
        "`repro serve --health-out`",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between refreshes (live mode; default 1.0)",
    )
    parser.add_argument(
        "--count",
        type=int,
        default=0,
        help="number of refreshes then exit (0 = until interrupted; "
        "snapshot mode always renders once)",
    )
    parser.add_argument(
        "--no-clear",
        action="store_true",
        help="do not clear the screen between refreshes (append instead)",
    )
    args = parser.parse_args(argv)

    history = DepthHistory()
    refreshes = 0
    try:
        while True:
            if args.snapshot:
                health = load_snapshot(args.snapshot)
            else:
                try:
                    health = fetch_health(args.url)
                except (urllib.error.URLError, OSError) as exc:
                    print(f"error: cannot reach {args.url}: {exc}",
                          file=sys.stderr)
                    return 1
            history.push(health)
            screen = render_health(health, history)
            if args.no_clear or args.snapshot:
                print(screen)
            else:
                print(f"{CLEAR}{screen}", flush=True)
            refreshes += 1
            if args.snapshot or (args.count and refreshes >= args.count):
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
