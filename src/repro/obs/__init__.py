"""Run-level observability: recorders, series, traces, and audits.

When a policy underperforms a paper figure or the FlowExpect fast path
regresses, final hit counts are not enough — diagnosing *why* needs
per-step visibility into evictions, ECB values, flow solves, and cache
occupancy.  This package provides that visibility as an opt-in layer
with zero overhead when disabled:

* :class:`Recorder` — the protocol every instrumentation sink follows
  (counters, monotonic timers, structured events, per-step series,
  snapshot/merge/fork);
* :class:`NullRecorder` / :data:`NULL_RECORDER` — the default no-op
  sink; every instrumented hot path guards on :attr:`Recorder.enabled`
  so a disabled run pays only an attribute check;
* :class:`CounterRecorder` — named counters plus wall-clock timers
  (evictions by policy, flow-solver iterations, ProbTable hits/misses,
  engine dispatch/fallback) plus bounded-memory
  :class:`~repro.obs.timeseries.TimeSeries` gauges (occupancy,
  cumulative hits/results, per-solve latency);
* :class:`TraceRecorder` — a bounded per-step JSONL event stream
  (arrivals, victim sets, per-candidate score/arc-cost snapshots,
  occupancy, series points) with a versioned schema;
* :mod:`repro.obs.timeseries` — the bounded-memory aggregation
  primitives (downsampling buffer, P²-style quantile sketches,
  sparklines);
* :mod:`repro.obs.report` — turns a trace file or a counter snapshot
  into human-readable tables, including ``--series`` sparklines
  (``python -m repro.obs report``);
* :mod:`repro.obs.audit` — step-aligned diffing of two traces
  (``python -m repro.obs diff``);
* :class:`ProgressRecorder` — a delegating wrapper rendering a stderr
  trials-done/ETA line (the experiment CLI's ``--progress``);
* :mod:`repro.obs.spans` — request-path span timing for the serve tier
  (:class:`SpanTracker`) plus the :data:`KNOWN_SERIES` naming registry;
* :mod:`repro.obs.hist` — mergeable log-bucketed latency histograms
  (:class:`LogHistogram`) whose exact merge survives shard fork/merge
  and live resharding;
* :mod:`repro.obs.promtext` — Prometheus text exposition rendering and
  a matching validator/parser for the serve ``/metrics`` endpoint;
* :mod:`repro.obs.top` — the refreshing per-shard TTY dashboard
  (``python -m repro.obs top``).

Recorders enter the system through ``recorder=`` keywords on the
simulators and experiment entry points and travel to policies via
:attr:`repro.policies.base.PolicyContext.recorder`.  See
``docs/OBSERVABILITY.md`` for the full guide and the event schema.
"""

from .audit import (
    TraceDiff,
    diff_trace_files,
    diff_traces,
    format_diff,
)
from .hist import HistogramSet, LogHistogram
from .progress import ProgressRecorder
from .promtext import parse_prometheus_text, render_prometheus
from .recorder import (
    NULL_RECORDER,
    CounterRecorder,
    NullRecorder,
    Recorder,
)
from .report import (
    collect_series,
    format_metrics,
    format_serve_section,
    format_series_table,
    format_trace_summary,
    save_series_png,
    serve_latency_histograms,
    summarize_trace,
    summarize_trace_file,
)
from .spans import KNOWN_SERIES, SpanTracker, check_series_name
from .timeseries import (
    P2Quantile,
    SeriesBuffer,
    TimeSeries,
    sparkline,
)
from .trace import (
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    read_trace,
)

__all__ = [
    "CounterRecorder",
    "HistogramSet",
    "KNOWN_SERIES",
    "LogHistogram",
    "NULL_RECORDER",
    "NullRecorder",
    "P2Quantile",
    "ProgressRecorder",
    "Recorder",
    "SeriesBuffer",
    "SpanTracker",
    "TRACE_SCHEMA_VERSION",
    "TimeSeries",
    "TraceDiff",
    "TraceRecorder",
    "check_series_name",
    "collect_series",
    "diff_trace_files",
    "diff_traces",
    "format_diff",
    "format_metrics",
    "format_serve_section",
    "format_series_table",
    "format_trace_summary",
    "parse_prometheus_text",
    "read_trace",
    "render_prometheus",
    "save_series_png",
    "serve_latency_histograms",
    "sparkline",
    "summarize_trace",
    "summarize_trace_file",
]
