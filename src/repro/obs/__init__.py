"""Run-level observability: recorders, series, traces, and audits.

When a policy underperforms a paper figure or the FlowExpect fast path
regresses, final hit counts are not enough — diagnosing *why* needs
per-step visibility into evictions, ECB values, flow solves, and cache
occupancy.  This package provides that visibility as an opt-in layer
with zero overhead when disabled:

* :class:`Recorder` — the protocol every instrumentation sink follows
  (counters, monotonic timers, structured events, per-step series,
  snapshot/merge/fork);
* :class:`NullRecorder` / :data:`NULL_RECORDER` — the default no-op
  sink; every instrumented hot path guards on :attr:`Recorder.enabled`
  so a disabled run pays only an attribute check;
* :class:`CounterRecorder` — named counters plus wall-clock timers
  (evictions by policy, flow-solver iterations, ProbTable hits/misses,
  engine dispatch/fallback) plus bounded-memory
  :class:`~repro.obs.timeseries.TimeSeries` gauges (occupancy,
  cumulative hits/results, per-solve latency);
* :class:`TraceRecorder` — a bounded per-step JSONL event stream
  (arrivals, victim sets, per-candidate score/arc-cost snapshots,
  occupancy, series points) with a versioned schema;
* :mod:`repro.obs.timeseries` — the bounded-memory aggregation
  primitives (downsampling buffer, P²-style quantile sketches,
  sparklines);
* :mod:`repro.obs.report` — turns a trace file or a counter snapshot
  into human-readable tables, including ``--series`` sparklines
  (``python -m repro.obs report``);
* :mod:`repro.obs.audit` — step-aligned diffing of two traces
  (``python -m repro.obs diff``);
* :class:`ProgressRecorder` — a delegating wrapper rendering a stderr
  trials-done/ETA line (the experiment CLI's ``--progress``).

Recorders enter the system through ``recorder=`` keywords on the
simulators and experiment entry points and travel to policies via
:attr:`repro.policies.base.PolicyContext.recorder`.  See
``docs/OBSERVABILITY.md`` for the full guide and the event schema.
"""

from .audit import (
    TraceDiff,
    diff_trace_files,
    diff_traces,
    format_diff,
)
from .progress import ProgressRecorder
from .recorder import (
    NULL_RECORDER,
    CounterRecorder,
    NullRecorder,
    Recorder,
)
from .report import (
    collect_series,
    format_metrics,
    format_series_table,
    format_trace_summary,
    save_series_png,
    summarize_trace,
    summarize_trace_file,
)
from .timeseries import (
    P2Quantile,
    SeriesBuffer,
    TimeSeries,
    sparkline,
)
from .trace import (
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    read_trace,
)

__all__ = [
    "CounterRecorder",
    "NULL_RECORDER",
    "NullRecorder",
    "P2Quantile",
    "ProgressRecorder",
    "Recorder",
    "SeriesBuffer",
    "TRACE_SCHEMA_VERSION",
    "TimeSeries",
    "TraceDiff",
    "TraceRecorder",
    "collect_series",
    "diff_trace_files",
    "diff_traces",
    "format_diff",
    "format_metrics",
    "format_series_table",
    "format_trace_summary",
    "read_trace",
    "save_series_png",
    "sparkline",
    "summarize_trace",
    "summarize_trace_file",
]
