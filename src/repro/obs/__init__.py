"""Run-level observability: recorders, trace streams, and summaries.

When a policy underperforms a paper figure or the FlowExpect fast path
regresses, final hit counts are not enough — diagnosing *why* needs
per-step visibility into evictions, ECB values, flow solves, and cache
occupancy.  This package provides that visibility as an opt-in layer
with zero overhead when disabled:

* :class:`Recorder` — the protocol every instrumentation sink follows
  (counters, monotonic timers, structured events, snapshot/merge/fork);
* :class:`NullRecorder` / :data:`NULL_RECORDER` — the default no-op
  sink; every instrumented hot path guards on :attr:`Recorder.enabled`
  so a disabled run pays only an attribute check;
* :class:`CounterRecorder` — named counters plus wall-clock timers
  (evictions by policy, flow-solver iterations, ProbTable hits/misses,
  engine dispatch/fallback);
* :class:`TraceRecorder` — a bounded per-step JSONL event stream
  (arrivals, victim sets, per-candidate score/arc-cost snapshots,
  occupancy) with a versioned schema;
* :mod:`repro.obs.report` — turns a trace file or a counter snapshot
  into a human-readable table (also ``python -m repro.obs.report``).

Recorders enter the system through ``recorder=`` keywords on the
simulators and experiment entry points and travel to policies via
:attr:`repro.policies.base.PolicyContext.recorder`.  See
``docs/OBSERVABILITY.md`` for the full guide and the event schema.
"""

from .recorder import (
    NULL_RECORDER,
    CounterRecorder,
    NullRecorder,
    Recorder,
)
from .report import (
    format_metrics,
    format_trace_summary,
    summarize_trace,
    summarize_trace_file,
)
from .trace import (
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    read_trace,
)

__all__ = [
    "CounterRecorder",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "TRACE_SCHEMA_VERSION",
    "TraceRecorder",
    "format_metrics",
    "format_trace_summary",
    "read_trace",
    "summarize_trace",
    "summarize_trace_file",
]
