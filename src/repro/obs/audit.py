"""Step-aligned diffing of two schema-1 traces.

Two instrumented runs that *should* agree — FlowExpect's fast path vs
its reference path, a batch replay vs the scalar original, the same
seed before and after a refactor — used to be compared by eyeballing
JSONL or writing a throwaway script.  This module turns that into one
command::

    python -m repro.obs diff fast.jsonl reference.jsonl

Events are grouped by simulation step ``t`` and compared kind by kind
in canonical form: eviction victim sets (by uid/side/value), scored
policies' per-uid scores (within a float tolerance), FlowExpect
kept-sets and per-candidate benefits, arrivals, step roll-ups, and
occupancy.  The report names the **first divergence** (step, kind, and
a human-readable detail) plus a per-step divergence count series — so
"at which step do HEEB and FlowExpect first disagree?" is answered by
the sparkline, not by scrolling.

Two event categories are deliberately excluded from comparison:

* unknown kinds — consumers of schema 1 must ignore what they do not
  understand (the forward-compatibility rule), and
* ``series`` events — they carry derived aggregates and wall-clock
  timings (``flow.solve_ms``) that legitimately differ between two
  otherwise-identical runs.

Like the report CLI, traces are read tolerantly (truncated trailing
lines are reported and skipped).  The CLI exits 0 only when the traces
are step-aligned identical, so it can gate equivalence in scripts.
"""

from __future__ import annotations

import argparse
import math
import sys
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence

from .timeseries import sparkline
from .trace import read_trace

__all__ = [
    "Divergence",
    "TraceDiff",
    "diff_traces",
    "diff_trace_files",
    "format_diff",
    "main",
]

#: Event kinds compared by default (deterministic simulation events).
COMPARED_KINDS = ("arrival", "evict", "scores", "flow", "step", "occupancy")

#: Default absolute/relative tolerance for float fields (scores,
#: expected benefits) — tight enough to catch real divergence, loose
#: enough for summation-order noise.
DEFAULT_TOL = 1e-9

#: At most this many divergences carry a rendered detail string.
MAX_DETAILED = 50


@dataclass
class Divergence:
    """One step-aligned disagreement between the two traces."""

    t: int
    kind: str
    detail: str


@dataclass
class TraceDiff:
    """Outcome of diffing two traces step by step."""

    #: Detailed divergences in step order (capped at :data:`MAX_DETAILED`).
    divergences: list[Divergence] = field(default_factory=list)
    #: Step -> number of divergent kind-comparisons at that step.
    per_step: dict[int, int] = field(default_factory=dict)
    #: Number of distinct steps present in either trace.
    steps_compared: int = 0
    #: Event counts of each input (compared kinds only).
    events_a: int = 0
    events_b: int = 0

    @property
    def first(self) -> Optional[Divergence]:
        """The earliest divergence, or ``None`` when traces agree."""
        return self.divergences[0] if self.divergences else None

    @property
    def total(self) -> int:
        """Total divergent kind-comparisons across all steps."""
        return sum(self.per_step.values())

    @property
    def identical(self) -> bool:
        """True when no compared event diverged."""
        return not self.per_step

    def divergence_series(self) -> list[tuple[int, int]]:
        """Per-step divergence counts as a ``(t, count)`` series.

        Covers every compared step (zeros included) so the sparkline
        shows *where* in the run the traces disagree.
        """
        if not self.per_step:
            return []
        lo = min(self.per_step)
        hi = max(self.per_step)
        return [(t, self.per_step.get(t, 0)) for t in range(lo, hi + 1)]


def _close(a: Any, b: Any, tol: float) -> bool:
    """Structural equality with float tolerance at the leaves."""
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        if isinstance(a, bool) != isinstance(b, bool):
            return False
        return math.isclose(float(a), float(b), rel_tol=tol, abs_tol=tol)
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        return a.keys() == b.keys() and all(
            _close(a[k], b[k], tol) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _close(x, y, tol) for x, y in zip(a, b)
        )
    return a == b


def _victim_key(victim: Mapping) -> tuple:
    return (
        victim.get("uid", -1) if isinstance(victim.get("uid"), int) else -1,
        str(victim.get("side")),
        str(victim.get("value")),
    )


def _canonical(ev: Mapping) -> Any:
    """Order-independent comparable form of one event's payload.

    Lists whose order is an implementation detail (eviction victims,
    flow/score candidates) are sorted by uid so two traces that evict
    the same *set* of tuples compare equal even if their emitters
    enumerated them differently.
    """
    kind = ev.get("kind")
    payload = {k: v for k, v in ev.items() if k not in ("kind", "t")}
    if kind == "evict":
        victims = payload.get("victims")
        if isinstance(victims, list):
            payload["victims"] = sorted(
                (dict(v) for v in victims if isinstance(v, Mapping)),
                key=_victim_key,
            )
    elif kind in ("scores", "flow"):
        candidates = payload.get("candidates")
        if isinstance(candidates, list):
            payload["candidates"] = sorted(
                (dict(c) for c in candidates if isinstance(c, Mapping)),
                key=_victim_key,
            )
    return payload


def _describe(kind: str, a: Any, b: Any) -> str:
    """Short human-readable description of one payload mismatch."""
    if kind == "evict" and isinstance(a, Mapping) and isinstance(b, Mapping):
        va = {_victim_key(v) for v in a.get("victims", ())}
        vb = {_victim_key(v) for v in b.get("victims", ())}
        only_a = sorted(va - vb)
        only_b = sorted(vb - va)
        if only_a or only_b:
            return (
                f"victims differ: only in A={only_a or '∅'}, "
                f"only in B={only_b or '∅'}"
            )
    if kind == "flow" and isinstance(a, Mapping) and isinstance(b, Mapping):
        ka = {
            c.get("uid")
            for c in a.get("candidates", ())
            if isinstance(c, Mapping) and c.get("kept")
        }
        kb = {
            c.get("uid")
            for c in b.get("candidates", ())
            if isinstance(c, Mapping) and c.get("kept")
        }
        if ka != kb:
            return (
                f"kept-sets differ: only in A={sorted(ka - kb) or '∅'}, "
                f"only in B={sorted(kb - ka) or '∅'}"
            )
    return f"A={_shorten(a)} vs B={_shorten(b)}"


def _shorten(payload: Any, limit: int = 160) -> str:
    text = repr(payload)
    return text if len(text) <= limit else text[: limit - 1] + "…"


def diff_traces(
    events_a: Iterable[Mapping],
    events_b: Iterable[Mapping],
    tol: float = DEFAULT_TOL,
    kinds: Sequence[str] = COMPARED_KINDS,
) -> TraceDiff:
    """Compare two event streams step by step.

    Returns a :class:`TraceDiff`; ``diff.identical`` is ``True`` iff
    every compared event kind agrees at every step (within ``tol`` on
    float fields).  Unknown kinds and ``series`` events are ignored —
    see the module docstring for why.
    """
    compared = set(kinds)
    by_step_a: dict[int, dict[str, list]] = defaultdict(lambda: defaultdict(list))
    by_step_b: dict[int, dict[str, list]] = defaultdict(lambda: defaultdict(list))
    counts = [0, 0]
    for i, (events, by_step) in enumerate(
        ((events_a, by_step_a), (events_b, by_step_b))
    ):
        for ev in events:
            kind = ev.get("kind")
            t = ev.get("t")
            if kind not in compared or not isinstance(t, int):
                continue
            counts[i] += 1
            by_step[t][kind].append(_canonical(ev))

    diff = TraceDiff(events_a=counts[0], events_b=counts[1])
    steps = sorted(set(by_step_a) | set(by_step_b))
    diff.steps_compared = len(steps)
    for t in steps:
        kinds_at_t = set(by_step_a.get(t, ())) | set(by_step_b.get(t, ()))
        for kind in sorted(kinds_at_t):
            seq_a = by_step_a.get(t, {}).get(kind, [])
            seq_b = by_step_b.get(t, {}).get(kind, [])
            detail = None
            if len(seq_a) != len(seq_b):
                detail = (
                    f"{len(seq_a)} event(s) in A vs {len(seq_b)} in B"
                )
            else:
                for a, b in zip(seq_a, seq_b):
                    if not _close(a, b, tol):
                        detail = _describe(kind, a, b)
                        break
            if detail is not None:
                diff.per_step[t] = diff.per_step.get(t, 0) + 1
                if len(diff.divergences) < MAX_DETAILED:
                    diff.divergences.append(Divergence(t, kind, detail))
    return diff


def diff_trace_files(
    path_a: Path,
    path_b: Path,
    tol: float = DEFAULT_TOL,
    warn: Optional[Any] = None,
) -> TraceDiff:
    """Read and diff two trace files tolerantly.

    ``warn`` is an optional writable stream receiving one line per
    skipped (truncated/corrupt) input line.
    """
    streams = []
    for path in (path_a, path_b):
        bad: list[str] = []
        streams.append(read_trace(path, strict=False, bad_lines=bad))
        if warn is not None:
            for entry in bad:
                print(f"warning: {path}:{entry} (line skipped)", file=warn)
    return diff_traces(streams[0], streams[1], tol=tol)


def format_diff(diff: TraceDiff, width: int = 60) -> str:
    """Render a :class:`TraceDiff` as the CLI report."""
    lines = [
        f"compared {diff.steps_compared} step(s) "
        f"({diff.events_a} vs {diff.events_b} comparable events)"
    ]
    if diff.identical:
        lines.append("traces are step-aligned identical — zero divergences")
        return "\n".join(lines)
    first = diff.first
    assert first is not None
    lines.append(
        f"FIRST DIVERGENCE at t={first.t} [{first.kind}]: {first.detail}"
    )
    lines.append(
        f"divergent steps: {len(diff.per_step)} "
        f"({diff.total} kind-comparison(s) differ)"
    )
    series = diff.divergence_series()
    if series:
        lo, hi = series[0][0], series[-1][0]
        lines.append(
            f"divergence series (steps {lo}..{hi}): "
            f"{sparkline([v for _, v in series], width=width)}"
        )
    shown = diff.divergences[1:6]
    for d in shown:
        lines.append(f"  t={d.t} [{d.kind}]: {d.detail}")
    remaining = diff.total - 1 - len(shown)
    if remaining > 0:
        lines.append(f"  … and {remaining} more")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: diff two traces; exit 0 iff they are identical."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs diff",
        description="Step-aligned diff of two repro.obs JSONL traces.",
    )
    parser.add_argument("trace_a", type=Path, help="first trace (JSONL)")
    parser.add_argument("trace_b", type=Path, help="second trace (JSONL)")
    parser.add_argument(
        "--tol",
        type=float,
        default=DEFAULT_TOL,
        help="float tolerance for scores/benefits (default %(default)s)",
    )
    args = parser.parse_args(argv)
    diff = diff_trace_files(
        args.trace_a, args.trace_b, tol=args.tol, warn=sys.stderr
    )
    print(format_diff(diff))
    return 0 if diff.identical else 1


if __name__ == "__main__":
    sys.exit(main())
