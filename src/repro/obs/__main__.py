"""CLI entry: ``python -m repro.obs <trace.jsonl>`` summarizes a trace.

Delegates to :func:`repro.obs.report.main`; this wrapper exists so the
package can be invoked directly without the runpy re-import warning that
``python -m repro.obs.report`` triggers (the package ``__init__`` already
imports the report module).
"""

from __future__ import annotations

import sys

from .report import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal CLI usage, not
        # an error.  Detach stdout so interpreter shutdown doesn't warn.
        sys.stdout = None  # type: ignore[assignment]
        code = 0
    sys.exit(code)
