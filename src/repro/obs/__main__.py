"""CLI entry: ``python -m repro.obs`` — reports, diffs, live dashboard.

Three subcommands::

    python -m repro.obs report run.jsonl [--series] [--serve] [--png out.png]
    python -m repro.obs diff fast.jsonl reference.jsonl [--tol 1e-9]
    python -m repro.obs top --url http://127.0.0.1:9200 [--interval 1]

For backward compatibility the original form ``python -m repro.obs
run.jsonl`` (no subcommand) still summarizes a trace — anything that is
not a recognized subcommand is handed to the report CLI unchanged.

This wrapper exists so the package can be invoked directly without the
runpy re-import warning that ``python -m repro.obs.report`` triggers
(the package ``__init__`` already imports the report module).
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from . import audit, report, top


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch to the report, diff, or top CLI."""
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "diff":
        return audit.main(args[1:])
    if args and args[0] == "top":
        return top.main(args[1:])
    if args and args[0] == "report":
        return report.main(args[1:])
    return report.main(args)


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — normal CLI usage, not
        # an error.  Detach stdout so interpreter shutdown doesn't warn.
        sys.stdout = None  # type: ignore[assignment]
        code = 0
    sys.exit(code)
