"""Summarize traces and counter snapshots into human-readable tables.

Two consumers share this module: the experiment CLI (``--metrics``
prints :func:`format_metrics`; ``--trace`` names a file this module can
summarize afterwards) and the standalone reader::

    python -m repro.obs.report run.jsonl            # summary table
    python -m repro.obs.report run.jsonl --steps 40 42   # zoom a window

The summary is computed from the event stream alone — no simulator
state — so it works on any schema-1 trace regardless of which run
produced it, and unknown event kinds are counted but otherwise ignored
(the forward-compatibility rule of :mod:`repro.obs.trace`).

``--series`` renders the trace's per-step gauges (``series`` events) as
ASCII sparkline tables; ``--png`` additionally plots them, when
matplotlib is installed (it is an optional dependency — without it the
flag fails with a clear message, nothing else degrades).

Both CLIs read traces tolerantly (``read_trace(strict=False)``): a
final line truncated by a crash mid-write is reported on stderr and
skipped instead of aborting the report.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

from .hist import LogHistogram
from .spans import SERVE_SPAN_PREFIX
from .timeseries import sparkline
from .trace import read_trace

__all__ = [
    "TraceSummary",
    "summarize_trace",
    "summarize_trace_file",
    "format_trace_summary",
    "format_metrics",
    "collect_series",
    "format_series_table",
    "serve_latency_histograms",
    "format_serve_section",
    "save_series_png",
    "main",
]


@dataclass
class TraceSummary:
    """Aggregate view of one event stream."""

    #: Events seen per kind (including kinds this version doesn't know).
    event_counts: Counter = field(default_factory=Counter)
    #: Evictions per policy name (sliding-window expiries excluded).
    evictions_by_policy: Counter = field(default_factory=Counter)
    #: Sliding-window expiries (no policy involved).
    expired: int = 0
    #: Arrivals per stream side ("R"/"S"), "−" arrivals excluded.
    arrivals: Counter = field(default_factory=Counter)
    #: "−" (missing-value) arrivals.
    null_arrivals: int = 0
    #: Cache-run reference outcomes.
    hits: int = 0
    misses: int = 0
    #: Join results summed over ``step`` events.
    join_results: int = 0
    #: FlowExpect solver iterations summed over ``flow`` events.
    flow_units: int = 0
    #: Closed [first, last] step range seen, or None for an empty trace.
    step_range: Optional[tuple[int, int]] = None
    #: Occupancy min/mean/max over ``occupancy`` events.
    occupancy_min: Optional[int] = None
    occupancy_max: Optional[int] = None
    occupancy_mean: Optional[float] = None
    #: Most frequently evicted (side, value) pairs.
    top_victims: list[tuple[str, int]] = field(default_factory=list)

    @property
    def total_events(self) -> int:
        """Total number of events in the stream."""
        return sum(self.event_counts.values())


def summarize_trace(events: Iterable[Mapping]) -> TraceSummary:
    """Fold an event stream into a :class:`TraceSummary`."""
    summary = TraceSummary()
    occ_total = 0
    occ_n = 0
    lo = hi = None
    victims: Counter = Counter()
    for ev in events:
        kind = ev.get("kind", "?")
        summary.event_counts[kind] += 1
        t = ev.get("t")
        if isinstance(t, int):
            lo = t if lo is None else min(lo, t)
            hi = t if hi is None else max(hi, t)
        if kind == "arrival":
            if ev.get("value") is None:
                summary.null_arrivals += 1
            else:
                summary.arrivals[ev.get("side", "?")] += 1
            if "hit" in ev:
                if ev["hit"]:
                    summary.hits += 1
                else:
                    summary.misses += 1
        elif kind == "evict":
            n = len(ev.get("victims", ()))
            if ev.get("expired"):
                summary.expired += n
            else:
                summary.evictions_by_policy[ev.get("policy", "?")] += n
            for victim in ev.get("victims", ()):
                victims[f"{victim.get('side', '?')}={victim.get('value')}"] += 1
        elif kind == "step":
            summary.join_results += ev.get("results", 0) or 0
        elif kind == "flow":
            summary.flow_units += ev.get("units", 0) or 0
        elif kind == "occupancy":
            total = ev.get("total")
            if isinstance(total, int):
                occ_total += total
                occ_n += 1
                if summary.occupancy_min is None:
                    summary.occupancy_min = summary.occupancy_max = total
                else:
                    summary.occupancy_min = min(summary.occupancy_min, total)
                    summary.occupancy_max = max(
                        summary.occupancy_max or total, total
                    )
    if lo is not None and hi is not None:
        summary.step_range = (lo, hi)
    if occ_n:
        summary.occupancy_mean = occ_total / occ_n
    summary.top_victims = victims.most_common(5)
    return summary


def summarize_trace_file(path: Union[str, Path]) -> TraceSummary:
    """Read a JSONL trace file and summarize it."""
    return summarize_trace(read_trace(path))


def _rows(summary: TraceSummary) -> list[tuple[str, str]]:
    """(label, value) rows of the summary table."""
    rows: list[tuple[str, str]] = [
        ("events", str(summary.total_events)),
    ]
    if summary.step_range is not None:
        rows.append(
            ("steps", f"{summary.step_range[0]}..{summary.step_range[1]}")
        )
    for kind in sorted(summary.event_counts):
        rows.append((f"events[{kind}]", str(summary.event_counts[kind])))
    for side in sorted(summary.arrivals):
        rows.append((f"arrivals[{side}]", str(summary.arrivals[side])))
    if summary.null_arrivals:
        rows.append(("arrivals[−]", str(summary.null_arrivals)))
    for policy in sorted(summary.evictions_by_policy):
        rows.append(
            (f"evictions[{policy}]", str(summary.evictions_by_policy[policy]))
        )
    if summary.expired:
        rows.append(("evictions[window-expired]", str(summary.expired)))
    if summary.hits or summary.misses:
        total = summary.hits + summary.misses
        rate = summary.hits / total if total else 0.0
        rows.append(("cache hits", str(summary.hits)))
        rows.append(("cache misses", str(summary.misses)))
        rows.append(("hit rate", f"{rate:.3f}"))
    if summary.join_results:
        rows.append(("join results", str(summary.join_results)))
    if summary.flow_units:
        rows.append(("flow solver iterations", str(summary.flow_units)))
    if summary.occupancy_mean is not None:
        rows.append(
            (
                "occupancy min/mean/max",
                f"{summary.occupancy_min}/"
                f"{summary.occupancy_mean:.2f}/{summary.occupancy_max}",
            )
        )
    for label, n in summary.top_victims:
        rows.append((f"most evicted {label}", f"{n}×"))
    return rows


def format_trace_summary(summary: TraceSummary) -> str:
    """Render a :class:`TraceSummary` as an aligned two-column table."""
    rows = _rows(summary)
    width = max((len(label) for label, _ in rows), default=0)
    return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)


def format_metrics(snapshot: Mapping) -> str:
    """Render a recorder snapshot (counters/timers/series) as a table.

    Accepts the dict produced by
    :meth:`repro.obs.recorder.CounterRecorder.snapshot`; unknown keys
    are ignored so the format survives schema growth.
    """
    counters = snapshot.get("counters", {})
    timers = snapshot.get("timers", {})
    series = snapshot.get("series", {})
    rows = [(name, str(counters[name])) for name in sorted(counters)]
    for name in sorted(timers):
        entry = timers[name]
        rows.append(
            (
                f"{name} (timer)",
                f"{entry['seconds']:.4f}s / {entry['calls']} calls",
            )
        )
    for name in sorted(series):
        entry = series[name]
        count = entry.get("count", 0)
        mean = entry.get("sum", 0.0) / count if count else 0.0
        rows.append(
            (
                f"{name} (series)",
                f"n={count} min={_fmt(entry.get('min'))} "
                f"mean={_fmt(mean)} max={_fmt(entry.get('max'))}",
            )
        )
    if not rows:
        return "(no metrics recorded)"
    width = max(len(label) for label, _ in rows)
    return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)


def _fmt(value: Optional[float]) -> str:
    """Compact numeric rendering: integral floats drop the fraction."""
    if value is None:
        return "-"
    if float(value) == int(value):
        return str(int(value))
    return f"{value:.4g}"


def collect_series(events: Iterable[Mapping]) -> dict[str, list[tuple[int, float]]]:
    """Group a trace's ``series`` events into per-name point lists.

    Points keep trace order (which is time order within one run);
    malformed series events — missing name or non-numeric value — are
    skipped per the forward-compatibility rule.
    """
    out: dict[str, list[tuple[int, float]]] = {}
    for ev in events:
        if ev.get("kind") != "series":
            continue
        name = ev.get("name")
        value = ev.get("value")
        t = ev.get("t")
        if not isinstance(name, str) or not isinstance(value, (int, float)):
            continue
        out.setdefault(name, []).append(
            (t if isinstance(t, int) else 0, float(value))
        )
    return out


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted, non-empty value list."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def format_series_table(
    series_map: Mapping[str, Sequence[tuple[int, float]]],
    width: int = 48,
) -> str:
    """Render collected series as aligned rows with sparklines.

    One row per series: point count, min/mean/p50/max (exact — computed
    from the trace's raw points, unlike the streaming estimates in
    recorder snapshots), the final value, and a ``width``-cell
    :func:`~repro.obs.timeseries.sparkline` of the values in time order.
    """
    if not series_map:
        return "(no series events in trace)"
    rows = []
    for name in sorted(series_map):
        points = series_map[name]
        values = [v for _, v in points]
        if not values:
            continue
        mean = sum(values) / len(values)
        rows.append(
            (
                name,
                f"n={len(values)}",
                f"min={_fmt(min(values))}",
                f"mean={_fmt(mean)}",
                f"p50={_fmt(_percentile(values, 0.5))}",
                f"max={_fmt(max(values))}",
                f"last={_fmt(values[-1])}",
                sparkline(values, width=width),
            )
        )
    if not rows:
        return "(no series events in trace)"
    widths = [max(len(row[i]) for row in rows) for i in range(7)]
    return "\n".join(
        "  ".join(
            [*(cell.ljust(widths[i]) for i, cell in enumerate(row[:7])), row[7]]
        )
        for row in rows
    )


def serve_latency_histograms(
    series_map: Mapping[str, Sequence[tuple[int, float]]],
) -> dict[str, LogHistogram]:
    """Rebuild span-latency histograms from a trace's series points.

    Every ``serve.span.*_ms`` point is folded into a
    :class:`~repro.obs.hist.LogHistogram` with the default layout — the
    same layout the live server fills — so a traced single-shard replay
    and a live ``/metrics`` scrape of the same run summarize latency
    with identical bucket boundaries.
    """
    hists: dict[str, LogHistogram] = {}
    for name in sorted(series_map):
        if not name.startswith(SERVE_SPAN_PREFIX):
            continue
        hist = LogHistogram(name)
        for _, value in series_map[name]:
            hist.observe(value)
        if hist.count:
            hists[name] = hist
    return hists


def format_serve_section(
    series_map: Mapping[str, Sequence[tuple[int, float]]],
) -> str:
    """Render the ``--serve`` report section from collected series.

    Summarizes the backpressure duty cycle (total blocked producer time
    over the run's uptime, both recorded as series by the server) and
    one percentile row per request-path span histogram.
    """
    rows: list[tuple[str, str]] = []
    wait_points = series_map.get("serve.backpressure.wait_ms", ())
    uptime_points = series_map.get("serve.uptime_ms", ())
    waited_ms = sum(v for _, v in wait_points)
    uptime_ms = uptime_points[-1][1] if uptime_points else None
    if uptime_ms:
        duty = min(1.0, waited_ms / uptime_ms)
        rows.append(
            (
                "backpressure duty cycle",
                f"{duty:.2%} (waited {waited_ms:.1f}ms "
                f"of {uptime_ms:.1f}ms uptime)",
            )
        )
    elif wait_points:
        rows.append(
            ("backpressure wait", f"{waited_ms:.1f}ms (no uptime series)")
        )
    for name, hist in serve_latency_histograms(series_map).items():
        pct = hist.percentiles()
        rows.append(
            (
                name,
                f"n={pct['count']} p50={_fmt(pct['p50'])} "
                f"p90={_fmt(hist.quantile(0.9))} "
                f"p99={_fmt(pct['p99'])} max={_fmt(pct['max'])}",
            )
        )
    if not rows:
        return "(no serve series in trace)"
    width = max(len(label) for label, _ in rows)
    return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)


def save_series_png(
    series_map: Mapping[str, Sequence[tuple[int, float]]],
    path: Union[str, Path],
) -> None:
    """Plot collected series to ``path`` as stacked PNG panels.

    matplotlib is an *optional* dependency of this one function; when it
    is not installed a :class:`RuntimeError` with installation guidance
    is raised and nothing is written.
    """
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError as exc:  # pragma: no cover - env-dependent
        raise RuntimeError(
            "PNG export requires matplotlib, which is not installed; "
            "install it (pip install matplotlib) or use the ASCII "
            "--series table instead"
        ) from exc
    names = [n for n in sorted(series_map) if series_map[n]]
    if not names:
        raise RuntimeError("no series events to plot")
    fig, axes = plt.subplots(
        len(names), 1, figsize=(8, 2.2 * len(names)), squeeze=False
    )
    for ax, name in zip(axes[:, 0], names):
        points = series_map[name]
        ax.plot([t for t, _ in points], [v for _, v in points], linewidth=0.9)
        ax.set_title(name, fontsize=9)
        ax.grid(True, alpha=0.3)
    axes[-1, 0].set_xlabel("step")
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    plt.close(fig)


def _format_event(ev: Mapping) -> str:
    """One-line rendering of a raw event for ``--steps`` zooming."""
    kind = ev.get("kind", "?")
    t = ev.get("t", "?")
    rest = {k: v for k, v in ev.items() if k not in ("kind", "t")}
    return f"t={t:<6} {kind:<10} {rest}"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: summarize a trace file, optionally zooming a step window."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize a repro.obs JSONL trace file.",
    )
    parser.add_argument("trace", type=Path, help="trace file (JSONL)")
    parser.add_argument(
        "--steps",
        type=int,
        nargs=2,
        metavar=("FIRST", "LAST"),
        default=None,
        help="also print the raw events of steps FIRST..LAST inclusive",
    )
    parser.add_argument(
        "--series",
        action="store_true",
        help="render the trace's per-step series as sparkline tables",
    )
    parser.add_argument(
        "--png",
        type=Path,
        default=None,
        metavar="PATH",
        help="with --series: also plot the series to a PNG "
        "(requires matplotlib)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="summarize serve-tier telemetry: backpressure duty cycle "
        "and request-path span latency histograms",
    )
    args = parser.parse_args(argv)

    bad_lines: list[str] = []
    events = read_trace(args.trace, strict=False, bad_lines=bad_lines)
    for bad in bad_lines:
        print(f"warning: {args.trace}:{bad} (line skipped)", file=sys.stderr)
    print(f"trace: {args.trace} ({len(events)} events)")
    print(format_trace_summary(summarize_trace(events)))
    if args.series or args.png is not None:
        series_map = collect_series(events)
        print(f"\nseries:\n{format_series_table(series_map)}")
        if args.png is not None:
            try:
                save_series_png(series_map, args.png)
            except RuntimeError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            print(f"wrote {args.png}")
    if args.serve:
        print(f"\nserve:\n{format_serve_section(collect_series(events))}")
    if args.steps is not None:
        first, last = args.steps
        print(f"\nevents for steps {first}..{last}:")
        for ev in events:
            t = ev.get("t")
            if isinstance(t, int) and first <= t <= last:
                print(_format_event(ev))
    return 0


if __name__ == "__main__":
    sys.exit(main())
