"""Bounded-memory per-step time series: buffers, sketches, sparklines.

PR 4's counters answer "how many evictions happened?"; the questions the
paper's figures actually pose — *when* does HEEB's hit rate converge to
FlowExpect's, *how* does occupancy settle after warm-up, *is* the
per-solve FlowExpect latency drifting — need values over time.  Storing
every ``(t, value)`` point is not an option for million-step streams, so
this module provides the standard streaming-telemetry shape (cf. the
sketch-based monitoring literature): every series is folded into a
fixed-size state no matter how many points it receives.

Three pieces compose into :class:`TimeSeries`, the per-series state held
by :class:`~repro.obs.recorder.CounterRecorder`:

* exact scalar aggregates — count, sum, min, max, last — which merge
  losslessly across engines and worker processes;
* :class:`SeriesBuffer`, a fixed-budget downsampling buffer: it keeps
  every ``stride``-th point and doubles the stride (thinning in place)
  whenever the budget fills, so the retained shape always spans the full
  run at uniform resolution;
* :class:`P2Quantile`, a P²-style streaming quantile estimator (Jain &
  Chlamtac): five markers per tracked quantile, adjusted per
  observation, with a weighted-update extension used to merge one
  sketch's markers into another (the parallel engine's
  ``fork``/``merge`` path).

Memory per series is therefore bounded by ``2 × buffer budget + O(1)``
floats regardless of stream length.  The scalar aggregates and the
buffer are *deterministic* in the order points arrive, which is what
lets the batch engine reproduce a scalar run's series bit for bit (it
replays its arrays in the same trial-major order); quantile estimates
are deterministic too, but merged sketches are approximate — the
parallel-engine tests pin them to a tolerance, not to equality.

:func:`sparkline` renders any value sequence as a fixed-width Unicode
strip for the ``python -m repro.obs report --series`` tables.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

__all__ = [
    "DEFAULT_BUFFER_BUDGET",
    "DEFAULT_QUANTILES",
    "P2Quantile",
    "SeriesBuffer",
    "TimeSeries",
    "sparkline",
]

#: Default point budget of a :class:`SeriesBuffer` (~8 KB per series).
DEFAULT_BUFFER_BUDGET = 512

#: Quantiles every :class:`TimeSeries` tracks by default.  The 0.99
#: sketch feeds the serve tier's queue-depth tail reporting
#: (``ReplaySummary.p99_queue_depth``).
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

#: Unicode blocks used by :func:`sparkline`, lowest to highest.
_BLOCKS = "▁▂▃▄▅▆▇█"


class P2Quantile:
    """Streaming estimate of one quantile via the P² marker algorithm.

    Five markers track the running minimum, the target quantile ``q``,
    the midpoints ``q/2`` and ``(1+q)/2``, and the running maximum; each
    observation nudges the middle markers toward their desired positions
    with a piecewise-parabolic height update.  Until five observations
    arrive the estimate is exact (computed from the sorted buffer).

    The non-standard extension here is *weighted* updates
    (``add(x, weight=w)``), equivalent in marker-position arithmetic to
    ``w`` repeated observations of ``x`` but O(1).  They exist for
    :meth:`merge`: folding another sketch in feeds its five marker
    heights, each carrying a fifth of its observation count — an
    approximation (the donor's distribution is summarized by five
    points) that keeps merged estimates within a few percent on smooth
    distributions, which the parallel-engine tests pin.
    """

    __slots__ = ("q", "count", "_initial", "_heights", "_positions", "_desired")

    def __init__(self, q: float):
        """Track the ``q``-quantile, ``0 < q < 1``."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must be strictly between 0 and 1")
        self.q = q
        self.count = 0.0
        #: Exact ``(value, weight)`` buffer used until 5 observations
        #: initialize the markers.  Weights are carried verbatim (no
        #: truncation), so marker positions and ``count`` agree exactly
        #: however fractional the weights of tiny-sketch merges are.
        self._initial: list[tuple[float, float]] = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []

    def _init_markers(self) -> None:
        entries = sorted(self._initial)
        self._heights = [v for v, _ in entries]
        positions: list[float] = []
        cum = 0.0
        for _, w in entries:
            cum += w
            positions.append(cum)
        self._positions = positions
        # Desired positions generalize the unit-weight seeds
        # ``[1, 1+2q, 1+4q, 3+2q, 5]`` to total weight ``W``: the
        # interior markers aim at the q/2, q, (1+q)/2 ranks of [1, W].
        total = cum
        q = self.q
        span = total - 1.0
        self._desired = [
            1.0,
            1.0 + span * q / 2.0,
            1.0 + span * q,
            1.0 + span * (1.0 + q) / 2.0,
            total,
        ]
        self._initial = []

    def add(self, x: float, weight: float = 1.0) -> None:
        """Fold in ``x`` with multiplicity ``weight`` (default one)."""
        if weight <= 0:
            return
        x = float(x)
        weight = float(weight)
        self.count += weight
        if self._heights:
            self._update(x, weight)
            return
        # Initial phase: buffer exact (value, weight) pairs so the five
        # seed markers are real observations carrying their full weight.
        self._initial.append((x, weight))
        if len(self._initial) == 5:
            self._init_markers()

    def _update(self, x: float, weight: float) -> None:
        h, n, d = self._heights, self._positions, self._desired
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        q = self.q
        inc = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)
        for i in range(k + 1, 5):
            n[i] += weight
        for i in range(5):
            d[i] += weight * inc[i]
        # A unit observation needs one adjustment pass; a weighted one
        # may leave a marker several positions from its target, so
        # passes repeat (bounded) until the markers stop moving.
        for _ in range(max(1, min(int(weight) + 1, 16))):
            if not self._adjust_pass():
                break

    def _adjust_pass(self) -> bool:
        h, n, d = self._heights, self._positions, self._desired
        moved = False
        for i in (1, 2, 3):
            delta = d[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if delta > 0 else -1.0
                # Weighted adds (sketch merges) can collapse adjacent
                # marker positions; the parabolic formula divides by
                # both gaps, so fall back to the linear one (whose
                # denominator the move condition keeps > 1) when either
                # gap is closed.
                if n[i + 1] - n[i] > 0.0 and n[i] - n[i - 1] > 0.0:
                    candidate = self._parabolic(i, step)
                else:
                    candidate = self._linear(i, step)
                if not h[i - 1] < candidate < h[i + 1]:
                    candidate = self._linear(i, step)
                h[i] = candidate
                n[i] += step
                moved = True
        return moved

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> Optional[float]:
        """Current estimate, ``None`` before any observation.

        Exact while fewer than five observations have arrived.
        """
        if self._heights:
            return self._heights[2]
        if not self._initial:
            return None
        entries = sorted(self._initial)
        if all(w == 1.0 for _, w in entries):
            # Nearest-rank on the exact buffer (the historical unit-weight
            # formula, preserved bit for bit).
            values = [v for v, _ in entries]
            rank = min(
                len(values) - 1, max(0, round(self.q * (len(values) - 1)))
            )
            return values[rank]
        # Weighted nearest-rank: first value whose cumulative weight
        # reaches q * W.
        target = self.q * self.count
        cum = 0.0
        for v, w in entries:
            cum += w
            if cum >= target:
                return v
        return entries[-1][0]

    def state(self) -> dict:
        """JSON-serializable state for snapshots and merging."""
        return {
            "q": self.q,
            "count": self.count,
            "initial": [[v, w] for v, w in self._initial],
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
        }

    @staticmethod
    def _parse_initial(entries) -> list[tuple[float, float]]:
        """Accept ``[v, w]`` pairs or the legacy bare-value format."""
        parsed = []
        for entry in entries:
            if isinstance(entry, (int, float)):
                parsed.append((float(entry), 1.0))
            else:
                v, w = entry
                parsed.append((float(v), float(w)))
        return parsed

    @classmethod
    def from_state(cls, state: Mapping) -> "P2Quantile":
        """Rebuild a sketch from :meth:`state` output."""
        sketch = cls(float(state["q"]))
        sketch.count = float(state["count"])
        sketch._initial = cls._parse_initial(state.get("initial", ()))
        sketch._heights = [float(v) for v in state.get("heights", ())]
        sketch._positions = [float(v) for v in state.get("positions", ())]
        sketch._desired = [float(v) for v in state.get("desired", ())]
        return sketch

    def merge(self, state: Mapping) -> None:
        """Fold another sketch's :meth:`state` into this one.

        Exact when the donor is still in its initial phase (its raw
        weighted values are replayed); otherwise its five markers are
        fed as weighted observations — an approximation the tests bound.
        """
        donor_count = float(state.get("count", 0.0))
        if donor_count <= 0:
            return
        initial = state.get("initial") or ()
        heights = state.get("heights") or ()
        if initial and not heights:
            for v, w in self._parse_initial(initial):
                self.add(v, weight=w)
            return
        weight = donor_count / 5.0
        for v in heights:
            self.add(float(v), weight=weight)


class SeriesBuffer:
    """Fixed-budget downsampling buffer of ``(t, value)`` points.

    Keeps every ``stride``-th offered point; when the retained list hits
    the budget it is thinned in place (every other point) and the stride
    doubles.  Retained points therefore always include the first point
    and span the run at uniform resolution, and the sequence of retained
    points is a deterministic function of the offered sequence — the
    property behind exact scalar/batch series parity.
    """

    __slots__ = ("budget", "stride", "offered", "points")

    def __init__(self, budget: int = DEFAULT_BUFFER_BUDGET):
        """Retain at most ``budget`` points (``budget >= 4``)."""
        if budget < 4:
            raise ValueError("budget must be >= 4")
        self.budget = budget
        self.stride = 1
        self.offered = 0
        self.points: list[tuple[int, float]] = []

    def add(self, t: int, value: float) -> None:
        """Offer one point; retained iff it falls on the current stride."""
        if self.offered % self.stride == 0:
            self.points.append((t, value))
            if len(self.points) >= self.budget:
                # Kept points sit at offered indices 0, s, 2s, ...;
                # dropping every other one leaves multiples of 2s, so
                # the doubled stride continues the pattern seamlessly.
                self.points = self.points[::2]
                self.stride *= 2
        self.offered += 1

    def state(self) -> dict:
        """JSON-serializable state for snapshots and merging."""
        return {
            "budget": self.budget,
            "stride": self.stride,
            "offered": self.offered,
            "points": [[t, v] for t, v in self.points],
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "SeriesBuffer":
        """Rebuild a buffer from :meth:`state` output."""
        buf = cls(int(state.get("budget", DEFAULT_BUFFER_BUDGET)))
        buf.stride = int(state.get("stride", 1))
        buf.offered = int(state.get("offered", 0))
        buf.points = [(int(t), float(v)) for t, v in state.get("points", ())]
        return buf

    def merge(self, state: Mapping) -> None:
        """Fold another buffer's :meth:`state` into this one.

        Points are interleaved by time and re-thinned to the budget.
        After a merge the buffer is a representative sample of both
        inputs (worker trials overlap in ``t``), not an exact replay —
        the exact aggregates live on :class:`TimeSeries` itself.
        """
        other_points = [(int(t), float(v)) for t, v in state.get("points", ())]
        if not other_points:
            self.offered += int(state.get("offered", 0))
            return
        combined = sorted(self.points + other_points, key=lambda p: p[0])
        stride = max(self.stride, int(state.get("stride", 1)))
        while len(combined) >= self.budget:
            combined = combined[::2]
            stride *= 2
        self.points = combined
        self.stride = stride
        self.offered += int(state.get("offered", 0))


class TimeSeries:
    """Bounded-memory aggregate of one named per-step gauge.

    Combines exact scalar aggregates (count/sum/min/max/last — these
    merge losslessly), a :class:`SeriesBuffer` for shape, and one
    :class:`P2Quantile` sketch per tracked quantile.
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "vmin",
        "vmax",
        "last_t",
        "last",
        "buffer",
        "sketches",
    )

    def __init__(
        self,
        name: str,
        budget: int = DEFAULT_BUFFER_BUDGET,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ):
        """Empty series ``name`` with the given buffer/sketch shape."""
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self.last_t: Optional[int] = None
        self.last: Optional[float] = None
        self.buffer = SeriesBuffer(budget)
        self.sketches = {q: P2Quantile(q) for q in quantiles}

    def add(self, t: int, value: float) -> None:
        """Fold in the point ``(t, value)``."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        self.last_t = t
        self.last = value
        self.buffer.add(t, value)
        for sketch in self.sketches.values():
            sketch.add(value)

    @property
    def mean(self) -> Optional[float]:
        """Mean of all points, ``None`` when empty."""
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate of quantile ``q`` (must be a tracked quantile)."""
        return self.sketches[q].value()

    def snapshot(self) -> dict:
        """Plain-dict view: aggregates, buffer state, sketch states."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "last_t": self.last_t,
            "last": self.last,
            "buffer": self.buffer.state(),
            "quantiles": {str(q): s.state() for q, s in self.sketches.items()},
        }

    @classmethod
    def from_state(cls, name: str, state: Mapping) -> "TimeSeries":
        """Rebuild a series from :meth:`snapshot` output."""
        buffer_state = state.get("buffer", {})
        quantile_states = state.get("quantiles", {})
        series = cls(
            name,
            budget=int(buffer_state.get("budget", DEFAULT_BUFFER_BUDGET)),
            quantiles=tuple(float(q) for q in quantile_states),
        )
        series.count = int(state.get("count", 0))
        series.total = float(state.get("sum", 0.0))
        series.vmin = state.get("min")
        series.vmax = state.get("max")
        series.last_t = state.get("last_t")
        series.last = state.get("last")
        series.buffer = SeriesBuffer.from_state(buffer_state)
        series.sketches = {
            float(q): P2Quantile.from_state(s) for q, s in quantile_states.items()
        }
        return series

    def merge(self, state: Mapping) -> None:
        """Fold another series' :meth:`snapshot` into this one.

        Scalar aggregates merge exactly; the buffer interleaves; sketch
        merging is the weighted-marker approximation of
        :meth:`P2Quantile.merge`.  The merged ``last`` is the point with
        the larger ``t`` (ties keep ours), which makes the merge of
        same-shaped worker series deterministic.
        """
        self.count += int(state.get("count", 0))
        self.total += float(state.get("sum", 0.0))
        other_min = state.get("min")
        if other_min is not None and (self.vmin is None or other_min < self.vmin):
            self.vmin = float(other_min)
        other_max = state.get("max")
        if other_max is not None and (self.vmax is None or other_max > self.vmax):
            self.vmax = float(other_max)
        other_t = state.get("last_t")
        if other_t is not None and (self.last_t is None or other_t > self.last_t):
            self.last_t = int(other_t)
            last = state.get("last")
            self.last = float(last) if last is not None else None
        self.buffer.merge(state.get("buffer", {}))
        for q, sketch_state in state.get("quantiles", {}).items():
            key = float(q)
            if key not in self.sketches:
                self.sketches[key] = P2Quantile.from_state(sketch_state)
            else:
                self.sketches[key].merge(sketch_state)


def sparkline(values: Iterable[float], width: int = 48) -> str:
    """Render values as a fixed-width Unicode block strip.

    Longer sequences are bucket-averaged down to ``width`` cells;
    shorter ones use one cell per value.  A constant (or empty) series
    renders as a flat mid-height strip so tables stay aligned.
    """
    data = [float(v) for v in values]
    if not data:
        return ""
    if len(data) > width:
        bucketed = []
        for i in range(width):
            lo = i * len(data) // width
            hi = max(lo + 1, (i + 1) * len(data) // width)
            chunk = data[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        data = bucketed
    vmin = min(data)
    vmax = max(data)
    if vmax - vmin <= 0:
        return _BLOCKS[3] * len(data)
    scale = (len(_BLOCKS) - 1) / (vmax - vmin)
    return "".join(_BLOCKS[int((v - vmin) * scale + 0.5)] for v in data)
