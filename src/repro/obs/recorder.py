"""Recorder protocol and the counter/no-op implementations.

The contract is designed around one invariant: **instrumentation must be
free when it is off**.  Hot loops therefore never build event payloads
or format strings unconditionally — they hoist the recorder once, check
the cheap :attr:`Recorder.enabled` / :attr:`Recorder.trace` flags, and
only then do per-event work.  :class:`NullRecorder` keeps both flags
``False`` and makes every method a no-op, so the disabled cost is one
attribute load per guarded block (asserted ≤2% on the FlowExpect
benchmark by ``benchmarks/perf_harness.py``).

Counters are plain integer accumulators keyed by dotted names
(``evict.LRU``, ``flow.solver_iterations``, ``prob_table.hits``); timers
accumulate monotonic wall-clock seconds plus a call count under one
name; series (:meth:`Recorder.series`) fold per-step gauges like cache
occupancy into the bounded-memory :class:`~repro.obs.timeseries.TimeSeries`
aggregates.  Snapshots are plain dicts — JSON-serializable, mergeable,
and safe to ship across a process boundary, which is how the parallel
engine folds worker-side counters back into the parent recorder.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Protocol, runtime_checkable

from .timeseries import TimeSeries

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "CounterRecorder",
]


@runtime_checkable
class Recorder(Protocol):
    """Instrumentation sink threaded through simulators and policies.

    Attributes
    ----------
    enabled:
        ``True`` when *any* instrumentation is active.  Hot paths guard
        every counting/timing block on this flag.
    trace:
        ``True`` when the sink also wants structured per-step events
        (:meth:`event`).  Event payload construction — candidate lists,
        score snapshots — is guarded on this flag separately because it
        is far more expensive than a counter bump.
    """

    enabled: bool
    trace: bool

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name``."""
        ...

    def timer(self, name: str) -> Any:
        """Context manager accumulating wall-clock seconds under ``name``."""
        ...

    def event(self, kind: str, t: int, /, **fields: Any) -> None:
        """Record one structured event at step ``t``."""
        ...

    def series(self, name: str, t: int, value: float) -> None:
        """Fold the per-step gauge point ``(t, value)`` into ``name``.

        Backed by bounded-memory aggregation (fixed-budget downsampling
        buffer + streaming quantile sketches), so emitting one point per
        step is safe for arbitrarily long runs.  Call sites guard on
        :attr:`enabled` like every other instrumentation block.
        """
        ...

    def merge(self, snapshot: Mapping) -> None:
        """Fold another recorder's :meth:`snapshot` into this one."""
        ...

    def fork(self) -> "Recorder":
        """A fresh child recorder for a worker process.

        The child starts empty; its :meth:`snapshot` is merged back by
        the caller once the worker finishes.  Implementations that
        cannot replicate themselves across a process boundary (e.g. a
        trace stream bound to an open file) return a counters-only
        child.
        """
        ...


@contextmanager
def _null_timer() -> Iterator[None]:
    """The do-nothing timer shared by every :class:`NullRecorder`."""
    yield


class NullRecorder:
    """The default sink: collects nothing, costs (almost) nothing.

    All instrumented call sites are guarded on :attr:`enabled` /
    :attr:`trace`, so with this recorder a run executes the exact same
    arithmetic as an uninstrumented one — a property the test suite pins
    by comparing seed-for-seed results with and without it.
    """

    enabled = False
    trace = False

    def count(self, name: str, n: int = 1) -> None:
        """No-op."""

    def timer(self, name: str) -> Any:
        """Return a shared do-nothing context manager."""
        return _null_timer()

    def event(self, kind: str, t: int, /, **fields: Any) -> None:
        """No-op."""

    def series(self, name: str, t: int, value: float) -> None:
        """No-op."""

    def snapshot(self) -> dict:
        """An empty snapshot."""
        return {}

    def merge(self, snapshot: Mapping) -> None:
        """Discard ``snapshot`` (nothing is collected)."""

    def fork(self) -> "NullRecorder":
        """Return the shared null singleton (stateless, so reusable)."""
        return NULL_RECORDER


#: Shared stateless instance used as the default everywhere.
NULL_RECORDER = NullRecorder()


class CounterRecorder:
    """Counters plus monotonic timers; the workhorse metrics sink.

    >>> rec = CounterRecorder()
    >>> rec.count("evict.LRU")
    >>> rec.count("evict.LRU", 2)
    >>> rec.snapshot()["counters"]["evict.LRU"]
    3

    Timers nest freely and accumulate ``(seconds, calls)`` per name::

        with rec.timer("flow.solve"):
            ...

    Snapshots merge additively (:meth:`merge`), which makes worker
    recorders composable: the parallel engine forks one child per
    worker chunk and merges the returned snapshots, so a parallel run's
    counters equal the scalar run's exactly (timers differ — they
    measure each process's own wall clock).
    """

    enabled = True
    trace = False

    def __init__(self) -> None:
        """Start with empty counter, timer, and series tables."""
        self.counters: dict[str, int] = {}
        #: name -> [accumulated seconds, calls]
        self.timers: dict[str, list[float]] = {}
        #: name -> bounded-memory per-step aggregate
        self.series_data: dict[str, TimeSeries] = {}

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    @contextmanager
    def _timed(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            slot = self.timers.setdefault(name, [0.0, 0])
            slot[0] += elapsed
            slot[1] += 1

    def timer(self, name: str) -> Any:
        """Context manager accumulating wall-clock seconds under ``name``."""
        return self._timed(name)

    def event(self, kind: str, t: int, /, **fields: Any) -> None:
        """Counters-only sink: events are counted, not stored."""
        self.count(f"events.{kind}")

    def series(self, name: str, t: int, value: float) -> None:
        """Fold ``(t, value)`` into the bounded series aggregate ``name``."""
        ts = self.series_data.get(name)
        if ts is None:
            ts = self.series_data[name] = TimeSeries(name)
        ts.add(t, value)

    def snapshot(self) -> dict:
        """``{"counters": ..., "timers": ..., "series": ...}``.

        The ``series`` key is present only when at least one series was
        recorded, so counters-only snapshots keep their PR-4 shape.
        """
        snap: dict = {
            "counters": dict(self.counters),
            "timers": {
                name: {"seconds": secs, "calls": int(calls)}
                for name, (secs, calls) in self.timers.items()
            },
        }
        if self.series_data:
            snap["series"] = {
                name: ts.snapshot() for name, ts in self.series_data.items()
            }
        return snap

    def merge(self, snapshot: Mapping) -> None:
        """Add a :meth:`snapshot`'s counters/timers/series into this one.

        Series aggregates merge exactly except for quantile sketches and
        downsampling buffers, which merge approximately (see
        :meth:`repro.obs.timeseries.TimeSeries.merge`).
        """
        for name, n in snapshot.get("counters", {}).items():
            self.count(name, n)
        for name, entry in snapshot.get("timers", {}).items():
            slot = self.timers.setdefault(name, [0.0, 0])
            slot[0] += entry["seconds"]
            slot[1] += entry["calls"]
        for name, state in snapshot.get("series", {}).items():
            ts = self.series_data.get(name)
            if ts is None:
                self.series_data[name] = TimeSeries.from_state(name, state)
            else:
                ts.merge(state)

    def fork(self) -> "CounterRecorder":
        """A fresh, empty counter recorder for a worker process."""
        return CounterRecorder()
