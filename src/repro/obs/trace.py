"""Bounded JSONL trace streams with a versioned event schema.

A trace is a sequence of JSON objects, one per line.  The first line is
always a header record::

    {"kind": "header", "schema": 1, "source": "repro.obs"}

Every following line is an event with at least ``kind`` (event type) and
``t`` (simulation step); remaining fields depend on the kind.  Schema
version 1 defines the kinds emitted by the instrumented simulators and
policies:

==============  ======================================================
``arrival``     one stream arrival: ``side``, ``value`` (``null`` for
                the paper's "−"), plus ``hit`` for cache references
``evict``       one eviction decision: ``policy``, ``victims`` (list of
                ``{uid, side, value, arrived}``), ``expired`` flag for
                sliding-window expiry
``scores``      per-candidate score snapshot from a scored policy
                (HEEB/PROB/LIFE/…): ``policy``, ``candidates`` (list of
                ``{uid, side, value, score}``)
``flow``        one FlowExpect solve: ``policy``, ``lookahead``,
                ``units`` (solver iterations), ``expected_benefit``,
                ``candidates`` (list of ``{uid, side, value, kept,
                benefit}`` — ``benefit`` is the next-step arc benefit)
``occupancy``   end-of-step cache state: ``total``, ``r`` (join runs)
``step``        per-step roll-up: ``results`` (join) or ``hit`` (cache)
``series``      one time-series point: ``name``, ``value`` (mirrors
                :meth:`~repro.obs.recorder.Recorder.series` calls)
==============  ======================================================

Consumers must ignore unknown kinds and unknown fields — that is what
lets the schema grow without a version bump (the ``series`` kind was
added exactly this way); the version changes only when the meaning of
an existing field changes.

Traces are **bounded**: after ``max_events`` events the recorder stops
storing them and counts the overflow under ``trace.dropped``, so a
runaway sweep cannot fill a disk.  Counters and timers (inherited from
:class:`~repro.obs.recorder.CounterRecorder`) are never dropped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Iterator, Optional, Union

from .recorder import CounterRecorder

__all__ = ["TRACE_SCHEMA_VERSION", "TraceRecorder", "read_trace"]

#: Version stamped into every trace header this package writes.
TRACE_SCHEMA_VERSION = 1

#: Default event bound: ~40 MB of JSONL at typical event sizes.
DEFAULT_MAX_EVENTS = 200_000


class TraceRecorder(CounterRecorder):
    """Counter recorder that additionally streams events as JSONL.

    Parameters
    ----------
    path:
        Destination file.  ``None`` keeps events in memory on
        :attr:`events` (handy in tests); a path opens the file lazily on
        the first event and writes the header line first.
    max_events:
        Hard bound on stored/written events; the excess is counted
        under the ``trace.dropped`` counter instead.

    Use as a context manager (or call :meth:`close`) so file-backed
    traces are flushed::

        with TraceRecorder("run.jsonl") as rec:
            JoinSimulator(10, policy, recorder=rec).run(r, s)
    """

    trace = True

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        """Stream events to ``path`` (JSONL) or buffer in memory, keeping
        at most ``max_events`` and counting the overflow in
        ``trace.dropped``."""
        super().__init__()
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.path = Path(path) if path is not None else None
        self.max_events = max_events
        #: In-memory events when ``path is None``.
        self.events: list[dict] = []
        self.n_events = 0
        self._file: Optional[IO[str]] = None

    def _sink(self, record: dict) -> None:
        """Write one record to the file or the in-memory list."""
        if self.path is None:
            self.events.append(record)
            return
        if self._file is None:
            self._file = self.path.open("w", encoding="utf-8")
            self._file.write(
                json.dumps(
                    {
                        "kind": "header",
                        "schema": TRACE_SCHEMA_VERSION,
                        "source": "repro.obs",
                    }
                )
                + "\n"
            )
        self._file.write(json.dumps(record) + "\n")

    def event(self, kind: str, t: int, /, **fields: Any) -> None:
        """Store one event (JSON line), bounded by :attr:`max_events`."""
        self.count(f"events.{kind}")
        if self.n_events >= self.max_events:
            self.count("trace.dropped")
            return
        self.n_events += 1
        record = {"kind": kind, "t": t}
        record.update(fields)
        self._sink(record)

    def series(self, name: str, t: int, value: float) -> None:
        """Aggregate the point and also stream it as a ``series`` event."""
        super().series(name, t, value)
        self.event("series", t, name=name, value=float(value))

    def close(self) -> None:
        """Flush and close the backing file, if any."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def fork(self) -> CounterRecorder:
        """Counters-only child: events do not cross the fork boundary.

        The parallel engine merges worker snapshots back, so counters
        from worker trials are preserved; per-step events from worker
        processes are not (documented in ``docs/OBSERVABILITY.md`` —
        trace with the scalar engine when you need every event).
        """
        return CounterRecorder()


def read_trace(
    path: Union[str, Path],
    strict: bool = True,
    bad_lines: Optional[list[str]] = None,
) -> list[dict]:
    """Load a JSONL trace file, validating its header.

    Returns the event records (header excluded).  Raises
    :class:`ValueError` on a missing/foreign header or an unsupported
    schema version, so callers fail loudly on stale files rather than
    silently misreading them.

    In strict mode (the default) any undecodable line — typically a
    final line truncated by a crash mid-write — also raises.  With
    ``strict=False`` undecodable lines are skipped instead and, when a
    ``bad_lines`` list is supplied, reported into it as
    ``"lineno: message"`` strings; the report/diff CLIs use this so a
    truncated trace is still inspectable.  The header line must be
    intact in either mode.
    """
    records = list(_iter_lines(Path(path), strict=strict, bad_lines=bad_lines))
    if not records or records[0].get("kind") != "header":
        raise ValueError(f"{path}: not a repro.obs trace (missing header)")
    schema = records[0].get("schema")
    if schema != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported trace schema {schema!r} "
            f"(this reader understands {TRACE_SCHEMA_VERSION})"
        )
    return records[1:]


def _iter_lines(
    path: Path,
    strict: bool = True,
    bad_lines: Optional[list[str]] = None,
) -> Iterator[dict]:
    """Yield one parsed JSON object per non-empty line of ``path``."""
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{lineno}: invalid JSON in trace: {exc}"
                    ) from None
                if bad_lines is not None:
                    bad_lines.append(f"{lineno}: {exc}")
