"""Stderr progress line driven by the recorder's ``trials.done`` counter.

The engines (scalar, batch, parallel) bump a ``trials.done`` counter on
every completed trial when a recorder is enabled.  Wrapping that
recorder in a :class:`ProgressRecorder` turns those bumps into a
carriage-return progress line on stderr::

    [progress] 12/48 trials · 9.3 trials/s · ETA 3.9s

The wrapper delegates every Recorder-protocol call to its inner
recorder, so it composes with :class:`~repro.obs.recorder.CounterRecorder`
and :class:`~repro.obs.trace.TraceRecorder` unchanged (``--progress
--trace run.jsonl`` works).  Under a :class:`~repro.obs.NullRecorder`
inner, :attr:`enabled` stays ``False``, engines never bump the counter,
and the wrapper prints nothing — the satellite's "no-op under
NullRecorder" contract.

Rendering is rate-limited (default four redraws per second) and the ETA
only appears when a total trial count was supplied; the experiment CLI
computes totals best-effort per figure command and passes ``None`` when
it cannot.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Any, Mapping, Optional

from .recorder import NULL_RECORDER, CounterRecorder, Recorder

__all__ = ["ProgressRecorder"]

#: Counter name the engines bump once per completed trial.
TRIALS_COUNTER = "trials.done"


class ProgressRecorder:
    """Delegating recorder that renders trial progress on stderr.

    Parameters
    ----------
    inner:
        The recorder doing the actual collection (defaults to a fresh
        :class:`CounterRecorder`).  All protocol calls are forwarded to
        it; only ``trials.done`` bumps are additionally observed.
    total:
        Expected number of trials, for the ``done/total`` fraction and
        the ETA.  ``None`` renders count and rate only.
    stream:
        Output stream (defaults to ``sys.stderr``).
    min_interval:
        Minimum seconds between redraws.
    """

    def __init__(
        self,
        inner: Optional[Recorder] = None,
        total: Optional[int] = None,
        stream: Optional[IO[str]] = None,
        min_interval: float = 0.25,
    ) -> None:
        """Wrap ``inner`` (or a fresh counter recorder) with a display."""
        self._inner: Recorder = inner if inner is not None else CounterRecorder()
        self.total = total
        self.done = 0
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval
        self._started = time.perf_counter()
        self._last_render = 0.0
        self._rendered = False
        self._finished = False

    # -- Recorder protocol: everything delegates to the inner recorder.

    @property
    def enabled(self) -> bool:
        """Mirror the inner recorder (False under NullRecorder)."""
        return self._inner.enabled

    @property
    def trace(self) -> bool:
        """Mirror the inner recorder."""
        return self._inner.trace

    def count(self, name: str, n: int = 1) -> None:
        """Forward, observing ``trials.done`` bumps for the display."""
        self._inner.count(name, n)
        if name == TRIALS_COUNTER:
            self.done += n
            self._render()

    def timer(self, name: str) -> Any:
        """Forward to the inner recorder."""
        return self._inner.timer(name)

    def event(self, kind: str, t: int, /, **fields: Any) -> None:
        """Forward to the inner recorder."""
        self._inner.event(kind, t, **fields)

    def series(self, name: str, t: int, value: float) -> None:
        """Forward to the inner recorder."""
        self._inner.series(name, t, value)

    def snapshot(self) -> dict:
        """Forward to the inner recorder."""
        return self._inner.snapshot()

    def merge(self, snapshot: Mapping) -> None:
        """Forward, harvesting trial counts merged back from workers.

        The parallel engine's worker chunks report their trials through
        merged snapshots rather than live ``count`` calls, so the bump
        is read out of the snapshot here.
        """
        self._inner.merge(snapshot)
        n = snapshot.get("counters", {}).get(TRIALS_COUNTER, 0)
        if n:
            self.done += int(n)
            self._render()

    def fork(self) -> Recorder:
        """Fork the inner recorder; the display stays in the parent."""
        return self._inner.fork()

    def close(self) -> None:
        """Finish the display and close the inner recorder if closable."""
        self.finish()
        close = getattr(self._inner, "close", None)
        if close is not None:
            close()

    # -- Display.

    def _line(self) -> str:
        elapsed = max(time.perf_counter() - self._started, 1e-9)
        rate = self.done / elapsed
        if self.total:
            parts = [f"[progress] {self.done}/{self.total} trials"]
        else:
            parts = [f"[progress] {self.done} trials"]
        parts.append(f"{rate:.1f} trials/s")
        if self.total and 0 < self.done <= self.total:
            remaining = (self.total - self.done) / rate if rate > 0 else 0.0
            parts.append(f"ETA {remaining:.1f}s")
        else:
            parts.append(f"elapsed {elapsed:.1f}s")
        return " · ".join(parts)

    def _render(self, force: bool = False) -> None:
        if self._inner is NULL_RECORDER or not self._inner.enabled:
            return
        now = time.perf_counter()
        if not force and now - self._last_render < self._min_interval:
            return
        self._last_render = now
        try:
            self._stream.write("\r" + self._line().ljust(60))
            self._stream.flush()
        except (ValueError, OSError):  # pragma: no cover - closed stream
            pass
        self._rendered = True

    def finish(self) -> None:
        """Draw the final state and terminate the line with a newline.

        Idempotent: the CLI may reach it via both its own teardown and
        :meth:`close`.
        """
        if self._finished:
            return
        self._finished = True
        if self.done:
            self._render(force=True)
        if self._rendered:
            try:
                self._stream.write("\n")
                self._stream.flush()
            except (ValueError, OSError):  # pragma: no cover - closed stream
                pass
            self._rendered = False
