"""Request-path span timing recorded through the Recorder protocol.

A *span* is one timed section of the serve request path — ``submit``,
``route``, ``queue_wait``, ``decide``, ``emit`` — measured on the
monotonic clock (:func:`time.perf_counter`) and recorded twice:

* as a ``*_ms`` series point through the existing
  :meth:`~repro.obs.recorder.Recorder.series` call (bounded memory,
  trace-visible, merged like every other series), and
* into a :class:`~repro.obs.hist.HistogramSet` of log-bucketed latency
  histograms, whose exact merge is what lets per-request latency
  survive shard fork/merge and live resharding.

Everything flows through the existing :class:`~repro.obs.recorder.Recorder`
protocol — no new protocol methods — so a :class:`~repro.obs.NullRecorder`
run stays free: call sites guard on :attr:`SpanTracker.active` and skip
the clock reads entirely (the serve perf harness asserts the disabled
overhead stays ≤ 2%).

Naming convention
-----------------
Series names are dotted lowercase; **any series whose values are
wall-clock milliseconds ends in** ``_ms`` (``flow.solve_ms`` set the
precedent; the serve spans follow as ``serve.span.<name>_ms``).
:data:`KNOWN_SERIES` is the registry of every series name the codebase
emits, with its unit — the naming unit test enforces both directions
(``ms`` unit ⟺ ``_ms`` suffix) and that emitted names stay registered,
and ``docs/OBSERVABILITY.md`` documents each entry.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from .hist import HistogramSet
from .recorder import Recorder

__all__ = [
    "MS_SUFFIX",
    "SERVE_SPAN_PREFIX",
    "SERVE_SPAN_NAMES",
    "KNOWN_SERIES",
    "is_wall_clock_series",
    "check_series_name",
    "SpanTracker",
]

#: Suffix every wall-clock-millisecond series name must carry.
MS_SUFFIX = "_ms"

#: Prefix of every serve request-path span series.
SERVE_SPAN_PREFIX = "serve.span."

#: The serve request path, in order: producer-side submit and routing,
#: then per-shard queue wait, policy decision, and telemetry emission.
SERVE_SPAN_NAMES = ("submit", "route", "queue_wait", "decide", "emit")

#: Registry of every series name the codebase emits, mapped to its
#: unit.  ``ms`` means wall-clock milliseconds (name must end ``_ms``);
#: the naming unit test and docs/OBSERVABILITY.md stay in sync with it.
KNOWN_SERIES: dict[str, str] = {
    "admission.rejects.cum": "rejects",
    "cache.hit_rate": "ratio",
    "cache.hits.cum": "hits",
    "cache.occupancy": "tuples",
    "flow.solve_ms": "ms",
    "join.results.cum": "results",
    "prob_table.hit_rate": "ratio",
    "scores.cutoff": "score",
    "serve.backpressure.wait_ms": "ms",
    "serve.queue_depth": "events",
    "serve.span.decide_ms": "ms",
    "serve.span.emit_ms": "ms",
    "serve.span.queue_wait_ms": "ms",
    "serve.span.route_ms": "ms",
    "serve.span.submit_ms": "ms",
    "serve.uptime_ms": "ms",
    "sketch.fill": "ratio",
    "sketch.fp_rate": "ratio",
}


def is_wall_clock_series(name: str) -> bool:
    """True when ``name`` follows the wall-clock ``*_ms`` convention."""
    return name.endswith(MS_SUFFIX)


def check_series_name(name: str) -> list[str]:
    """Convention violations for one series name (empty list = clean).

    Checks the lowercase dotted shape, registry membership, and the
    two-way ``_ms`` ⟺ ``ms``-unit rule.  Used by the naming unit test;
    returning messages (instead of raising) keeps one test able to
    report every violation at once.
    """
    problems: list[str] = []
    if name != name.lower():
        problems.append(f"{name!r}: series names are lowercase")
    if not all(part for part in name.split(".")):
        problems.append(f"{name!r}: empty dotted component")
    unit = KNOWN_SERIES.get(name)
    if unit is None:
        problems.append(f"{name!r}: not in the KNOWN_SERIES registry")
    elif unit == "ms" and not is_wall_clock_series(name):
        problems.append(f"{name!r}: unit is ms but name lacks '_ms'")
    elif unit != "ms" and is_wall_clock_series(name):
        problems.append(f"{name!r}: name ends '_ms' but unit is {unit!r}")
    return problems


class SpanTracker:
    """Records named span durations through a recorder and a histogram set.

    Parameters
    ----------
    recorder:
        The observability sink; each span lands as one
        ``<prefix><name>_ms`` series point when the recorder is enabled.
    hists:
        Optional :class:`~repro.obs.hist.HistogramSet` receiving the
        same durations as mergeable log-bucketed histograms.
    prefix:
        Prepended to every span name (the serve tier uses
        ``"serve.span."``).
    active:
        Master switch.  Defaults to the recorder's ``enabled`` flag;
        the serve tier flips it on when a live metrics endpoint starts,
        so histograms fill even under a :class:`~repro.obs.NullRecorder`.
        Call sites guard their clock reads on this attribute — when it
        is ``False`` a request path does no span work at all.

    Spans nest freely: :meth:`span` keeps a stack so nested sections
    each time themselves independently (``depth`` exposes the nesting
    level, mostly for tests and debugging).
    """

    __slots__ = ("recorder", "hists", "prefix", "active", "_stack")

    def __init__(
        self,
        recorder: Recorder,
        hists: Optional[HistogramSet] = None,
        prefix: str = "",
        active: Optional[bool] = None,
    ):
        """Bind the sinks; ``active`` defaults to ``recorder.enabled``."""
        self.recorder = recorder
        self.hists = hists
        self.prefix = prefix
        self.active = recorder.enabled if active is None else active
        self._stack: list[str] = []

    @property
    def depth(self) -> int:
        """Current nesting depth of open :meth:`span` sections."""
        return len(self._stack)

    def record(self, name: str, t: int, elapsed_ms: float) -> None:
        """Record one measured duration under span ``name``.

        The series point and histogram observation share the full
        ``<prefix><name>_ms`` series name, so offline traces and live
        scrapes summarize under identical keys.
        """
        series_name = f"{self.prefix}{name}{MS_SUFFIX}"
        if self.recorder.enabled:
            self.recorder.series(series_name, t, elapsed_ms)
        if self.hists is not None:
            self.hists.observe(series_name, elapsed_ms)

    @contextmanager
    def span(self, name: str, t: int = 0) -> Iterator[None]:
        """Time the enclosed block as span ``name`` at step ``t``.

        Free when :attr:`active` is ``False`` (no clock read, nothing
        recorded).  Hot loops that cannot afford a context manager use
        the same guard with explicit :func:`time.perf_counter` reads
        and :meth:`record`.
        """
        if not self.active:
            yield
            return
        self._stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            self._stack.pop()
            self.record(name, t, elapsed_ms)
