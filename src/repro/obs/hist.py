"""Mergeable log-bucketed latency histograms for the serving tier.

The bounded series of :mod:`repro.obs.timeseries` answer "what is the
p90 of this gauge?" with a five-marker P² sketch — great for occupancy
curves, too coarse for request latency, where the tail (p99, max) is
the whole point and where per-shard state must merge *exactly* across
``fork``/``merge`` and live resharding.  :class:`LogHistogram` is the
standard answer from the telemetry literature (HdrHistogram, Prometheus
native histograms): a fixed budget of geometrically growing buckets.

Design contract
---------------
* **Fixed budget.**  ``n_buckets`` counters plus a handful of scalars,
  no matter how many observations arrive.  The default layout spans
  1 µs .. ~4.7 hours of millisecond-valued observations at one bucket
  per factor of two.
* **Exact merge.**  Two histograms with the same layout merge by adding
  bucket counts — associative, commutative, lossless.  Total count,
  sum, min, and max are preserved exactly, and every quantile of the
  merged histogram equals the quantile of the union of observations to
  within one bucket's relative width (the acceptance bound the serve
  reshard tests pin).  Mismatched layouts re-bin the donor's buckets at
  their geometric midpoints (approximate, but never drops counts).
* **JSON state.**  ``state()`` / ``from_state()`` / ``merge()`` follow
  the :class:`~repro.obs.timeseries.P2Quantile` pattern, so histogram
  state travels through the same plain-dict snapshots the parallel
  engine and the serve tier already ship across process and shard
  boundaries.

:class:`HistogramSet` is the name-keyed collection the serve tier hangs
off every shard: observe into it per span, merge sets at shard
retirement, and render the result as Prometheus histogram families
(:func:`repro.obs.promtext.render_prometheus`).
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

__all__ = [
    "DEFAULT_GROWTH",
    "DEFAULT_MIN_VALUE_MS",
    "DEFAULT_N_BUCKETS",
    "LogHistogram",
    "HistogramSet",
]

#: Default geometric growth factor between bucket upper bounds.
DEFAULT_GROWTH = 2.0

#: Default upper bound of the first bucket, in milliseconds (1 µs).
DEFAULT_MIN_VALUE_MS = 1e-3

#: Default bucket budget: 1 µs · 2^43 ≈ 2.4 hours of dynamic range.
DEFAULT_N_BUCKETS = 44


class LogHistogram:
    """Fixed-budget histogram with geometrically growing buckets.

    Bucket ``i`` (``0 <= i < n_buckets``) counts observations ``v`` with
    ``bound[i-1] < v <= bound[i]`` where ``bound[i] =
    min_value * growth**i``; values at or below ``min_value`` land in
    bucket 0 and values above the last bound land in the final
    (overflow) bucket, so no observation is ever dropped.
    """

    __slots__ = (
        "name",
        "min_value",
        "growth",
        "counts",
        "count",
        "total",
        "vmin",
        "vmax",
        "_log_growth",
    )

    def __init__(
        self,
        name: str = "",
        *,
        min_value: float = DEFAULT_MIN_VALUE_MS,
        growth: float = DEFAULT_GROWTH,
        n_buckets: int = DEFAULT_N_BUCKETS,
    ):
        """Empty histogram ``name`` with the given bucket layout."""
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        if n_buckets < 2:
            raise ValueError("n_buckets must be >= 2")
        self.name = name
        self.min_value = float(min_value)
        self.growth = float(growth)
        self.counts = [0] * n_buckets
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None
        self._log_growth = math.log(self.growth)

    @property
    def n_buckets(self) -> int:
        """Number of buckets in the fixed layout."""
        return len(self.counts)

    def bucket_index(self, value: float) -> int:
        """Index of the bucket that would receive ``value``."""
        if value <= self.min_value:
            return 0
        index = int(
            math.ceil(math.log(value / self.min_value) / self._log_growth)
        )
        # Guard the exact-boundary case: floating-point log can land an
        # exact bound one bucket high or low, so settle by comparison.
        while index > 0 and value <= self.bucket_bound(index - 1):
            index -= 1
        while value > self.bucket_bound(index):
            index += 1
        return min(index, len(self.counts) - 1)

    def bucket_bound(self, index: int) -> float:
        """Inclusive upper bound of bucket ``index``."""
        return self.min_value * self.growth**index

    def observe(self, value: float) -> None:
        """Fold one observation into the histogram."""
        value = float(value)
        self.counts[self.bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> Optional[float]:
        """Mean of all observations, ``None`` when empty."""
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate of quantile ``q`` (``0 <= q <= 1``), or ``None``.

        Locates the bucket where the cumulative count crosses
        ``q * count`` and interpolates linearly inside it; the result is
        clamped to the observed ``[min, max]`` so single-bucket
        histograms report exact extremes.  The error is bounded by one
        bucket's width — the log-bucket guarantee.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return None
        target = q * self.count
        cum = 0
        for index, n in enumerate(self.counts):
            if n == 0:
                continue
            if cum + n >= target:
                lo = self.bucket_bound(index - 1) if index > 0 else 0.0
                hi = self.bucket_bound(index)
                frac = (target - cum) / n if n else 0.0
                value = lo + frac * (hi - lo)
                if self.vmin is not None:
                    value = max(value, self.vmin)
                if self.vmax is not None:
                    value = min(value, self.vmax)
                return value
            cum += n
        return self.vmax

    def percentiles(self) -> dict:
        """The headline latency summary: p50/p90/p99/max (and count)."""
        return {
            "count": self.count,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
            "max": self.vmax,
        }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style.

        Only buckets up to the last non-empty one are emitted, followed
        by the infinity bucket, so empty histograms render compactly.
        """
        out: list[tuple[float, int]] = []
        cum = 0
        last = -1
        for index, n in enumerate(self.counts):
            if n:
                last = index
        for index in range(last + 1):
            cum += self.counts[index]
            out.append((self.bucket_bound(index), cum))
        out.append((math.inf, self.count))
        return out

    def state(self) -> dict:
        """JSON-serializable state for snapshots and merging."""
        return {
            "min_value": self.min_value,
            "growth": self.growth,
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
        }

    @classmethod
    def from_state(cls, name: str, state: Mapping) -> "LogHistogram":
        """Rebuild a histogram from :meth:`state` output."""
        counts = [int(n) for n in state.get("counts", ())]
        hist = cls(
            name,
            min_value=float(state.get("min_value", DEFAULT_MIN_VALUE_MS)),
            growth=float(state.get("growth", DEFAULT_GROWTH)),
            n_buckets=max(2, len(counts)),
        )
        if counts:
            hist.counts = counts
        hist.count = int(state.get("count", 0))
        hist.total = float(state.get("sum", 0.0))
        vmin = state.get("min")
        vmax = state.get("max")
        hist.vmin = float(vmin) if vmin is not None else None
        hist.vmax = float(vmax) if vmax is not None else None
        return hist

    def _same_layout(self, state: Mapping) -> bool:
        return (
            float(state.get("min_value", -1.0)) == self.min_value
            and float(state.get("growth", -1.0)) == self.growth
            and len(state.get("counts", ())) == len(self.counts)
        )

    def merge(self, state: Mapping) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Same-layout merges add bucket counts and are exact; mismatched
        layouts re-bin the donor's buckets at their geometric midpoints
        (total count and sum still preserved exactly).
        """
        donor_counts = [int(n) for n in state.get("counts", ())]
        if self._same_layout(state):
            for index, n in enumerate(donor_counts):
                self.counts[index] += n
        else:
            donor = LogHistogram.from_state(self.name, state)
            for index, n in enumerate(donor_counts):
                if not n:
                    continue
                lo = donor.bucket_bound(index - 1) if index > 0 else 0.0
                hi = donor.bucket_bound(index)
                mid = math.sqrt(lo * hi) if lo > 0 else hi / 2.0
                self.counts[self.bucket_index(mid)] += n
        self.count += int(state.get("count", 0))
        self.total += float(state.get("sum", 0.0))
        other_min = state.get("min")
        if other_min is not None and (
            self.vmin is None or other_min < self.vmin
        ):
            self.vmin = float(other_min)
        other_max = state.get("max")
        if other_max is not None and (
            self.vmax is None or other_max > self.vmax
        ):
            self.vmax = float(other_max)


class HistogramSet:
    """Name-keyed :class:`LogHistogram` collection with set-level merge.

    The serve tier hangs one of these off every shard (span latencies
    observed worker-side) plus one off the server (producer-side spans
    and retired shards' merged state); ``state()``/``merge()`` make the
    whole set travel like one recorder snapshot.
    """

    __slots__ = ("hists",)

    def __init__(self) -> None:
        """Start empty; histograms are created on first observe."""
        self.hists: dict[str, LogHistogram] = {}

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the histogram ``name`` (created lazily)."""
        hist = self.hists.get(name)
        if hist is None:
            hist = self.hists[name] = LogHistogram(name)
        hist.observe(value)

    def get(self, name: str) -> Optional[LogHistogram]:
        """The histogram ``name``, or ``None`` if never observed."""
        return self.hists.get(name)

    def __bool__(self) -> bool:
        """True when at least one histogram holds observations."""
        return any(h.count for h in self.hists.values())

    def state(self) -> dict:
        """``{name: histogram state}`` for every histogram in the set."""
        return {name: hist.state() for name, hist in self.hists.items()}

    def merge(self, state: Mapping) -> None:
        """Fold another set's :meth:`state` into this one, name by name."""
        for name, hist_state in state.items():
            hist = self.hists.get(name)
            if hist is None:
                self.hists[name] = LogHistogram.from_state(name, hist_state)
            else:
                hist.merge(hist_state)

    def copy(self) -> "HistogramSet":
        """Deep copy via state round-trip (cheap: fixed-budget state)."""
        clone = HistogramSet()
        clone.merge(self.state())
        return clone
