"""Runtime-adaptive α calibration for HEEB (the paper's future work).

Section 5.3: "We use (w_R + w_S)/2 as a very crude estimate for the
average lifetime of a cached tuple, and choose α accordingly.  A more
principled technique would be to observe the average lifetime at runtime
and adjust α adaptively.  We plan to experiment with this technique as
future work."

:class:`AdaptiveAlphaHeebPolicy` implements that technique: it tracks the
lifetimes of evicted tuples with an exponential moving average, solves
the Section-4.3 calibration equation ``1/(1 − e^(−1/α)) = mean lifetime``
for α, and rebuilds its HEEB strategy whenever the calibrated α has
drifted by more than a configurable factor.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.lifetime import LExp, alpha_for_mean_lifetime
from ..core.tuples import StreamTuple
from .base import PolicyContext, ReplacementPolicy
from .heeb_policy import HeebStrategy

__all__ = ["AdaptiveAlphaHeebPolicy"]


class AdaptiveAlphaHeebPolicy(ReplacementPolicy):
    """HEEB with α recalibrated from observed tuple lifetimes.

    Parameters
    ----------
    strategy_factory:
        Builds a scenario-appropriate HEEB strategy for a given ``LExp``
        (e.g. ``lambda est: TrendJoinHeeb(est)``).
    initial_alpha:
        Starting calibration, used until enough evictions are observed.
    smoothing:
        Weight of each new lifetime observation in the exponential
        moving average (0 < smoothing ≤ 1).
    rebuild_threshold:
        Relative α drift that triggers rebuilding the strategy (tables
        are α-specific, so rebuilds are not free).
    min_observations:
        Evictions to observe before the first recalibration.
    """

    name = "HEEB-ADAPTIVE"

    def __init__(
        self,
        strategy_factory: Callable[[LExp], HeebStrategy],
        initial_alpha: float,
        smoothing: float = 0.05,
        rebuild_threshold: float = 0.25,
        min_observations: int = 20,
    ):
        if initial_alpha <= 0:
            raise ValueError("initial_alpha must be positive")
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        if rebuild_threshold <= 0:
            raise ValueError("rebuild_threshold must be positive")
        self._factory = strategy_factory
        self._initial_alpha = float(initial_alpha)
        self._smoothing = float(smoothing)
        self._threshold = float(rebuild_threshold)
        self._min_observations = int(min_observations)
        self._reset_state()

    def _reset_state(self) -> None:
        self.alpha = self._initial_alpha
        self._strategy = self._factory(LExp(self.alpha))
        self._mean_lifetime: float | None = None
        self._observations = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    def reset(self, ctx: PolicyContext) -> None:
        self._reset_state()
        self._strategy.reset(ctx)

    def on_evict(self, tup: StreamTuple, t: int) -> None:
        lifetime = max(1, t - tup.arrival)
        if self._mean_lifetime is None:
            self._mean_lifetime = float(lifetime)
        else:
            self._mean_lifetime += self._smoothing * (
                lifetime - self._mean_lifetime
            )
        self._observations += 1

    def _maybe_recalibrate(self, ctx: PolicyContext) -> None:
        if (
            self._mean_lifetime is None
            or self._observations < self._min_observations
            or self._mean_lifetime <= 1.05
        ):
            return
        target = alpha_for_mean_lifetime(self._mean_lifetime)
        drift = abs(target - self.alpha) / self.alpha
        if drift > self._threshold:
            self.alpha = target
            self._strategy = self._factory(LExp(self.alpha))
            self._strategy.reset(ctx)
            self.rebuilds += 1

    def select_victims(
        self,
        candidates: Sequence[StreamTuple],
        n_evict: int,
        ctx: PolicyContext,
    ) -> list[StreamTuple]:
        if n_evict <= 0:
            return []
        self._maybe_recalibrate(ctx)
        ranked = sorted(
            candidates,
            key=lambda tup: (self._strategy.h_value(tup, ctx), tup.uid),
        )
        return ranked[:n_evict]
