"""RAND: discard tuples uniformly at random.

The oblivious baseline of Section 6.2.  When a window oracle is supplied
(TOWER / ROOF / FLOOR experiments), dead tuples -- those whose value the
partner's moving window has already passed -- are always discarded first,
exactly as the paper configures RAND.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.tuples import StreamTuple
from .base import PolicyContext, ReplacementPolicy

__all__ = ["RandPolicy"]


class RandPolicy(ReplacementPolicy):
    name = "RAND"

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def seed(self) -> int:
        """The per-run reset seed (the batch adapter replays it per trial)."""
        return self._seed

    def reset(self, ctx: PolicyContext) -> None:
        self._rng = np.random.default_rng(self._seed)

    def select_victims(
        self,
        candidates: Sequence[StreamTuple],
        n_evict: int,
        ctx: PolicyContext,
    ) -> list[StreamTuple]:
        if n_evict <= 0:
            return []
        oracle = ctx.window_oracle
        if oracle is not None:
            dead = [c for c in candidates if oracle.is_dead(c, ctx.time)]
            alive = [c for c in candidates if not oracle.is_dead(c, ctx.time)]
        else:
            dead, alive = [], list(candidates)
        victims = dead[:n_evict]
        remaining = n_evict - len(victims)
        if remaining > 0:
            picks = self._rng.choice(len(alive), size=remaining, replace=False)
            victims.extend(alive[i] for i in picks)
        return victims
