"""Batch-aware replacement-policy adapters for the vectorized engine.

The batch simulators in :mod:`repro.sim.batch` run ``B`` independent
Monte-Carlo trials simultaneously over ``(B, slots)`` state arrays.  Each
adapter here mirrors one scalar policy *exactly*: for the same per-trial
seeds the batch engine's eviction decisions are identical to the scalar
:class:`~repro.sim.join_sim.JoinSimulator` /
:class:`~repro.sim.cache_sim.CacheSimulator` runs, which the equivalence
suite (``tests/test_batch_equivalence.py``) asserts tuple-for-tuple.

Equivalence is achieved by construction rather than by approximation:

* scored adapters reproduce the scalar score formula with the same
  floating-point operations (PROB's integer frequencies, LRU's last-use
  times, HEEB's precomputed tables reused verbatim), and the engine
  breaks ties by tuple uid exactly like
  :class:`~repro.policies.base.ScoredPolicy`;
* RAND keeps one ``numpy.random.Generator`` per trial, seeded like the
  scalar policy, and issues the identical sequence of ``choice`` calls;
* the window-oracle logic of Section 6.2 (dead tuples first) is
  vectorized for :class:`~repro.policies.window_oracle.TrendWindowOracle`;
* stateful policies whose scalar math is per-*value* rather than
  per-slot (LRU-k's reference histories, the windowed HEEB variants'
  per-tuple window clips, TrieCachePolicy's shared node scores and EMA
  budgets, FlowExpect's min-cost-flow solves) are replayed through
  *memo-gather* adapters: each distinct key calls the identical scalar
  function exactly once and the result is scattered across all trials,
  so the per-trial decisions stay bit-identical while the expensive
  math is shared ``B``-fold.

A few configurations remain scalar-only and raise
:class:`UnbatchablePolicyError` from :func:`make_batch_policy` (OPT
offline schedules, sketch-backed counts, admission filters,
history-anchored models under the trie/FlowExpect adapters); the
runner then falls back to the scalar loop, so mixing batchable and
unbatchable policies in one experiment is seamless.  The coverage
matrix in ``docs/PERFORMANCE.md`` documents exactly which policy ×
problem-kind pairs dispatch where, and ``tests/test_docs_consistency``
asserts it against this module's dispatch.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Optional

import numpy as np

from ..core.heeb import heeb_cache, heeb_join, heeb_join_band
from ..core.lifetime import LExp, WindowedLExp
from ..core.precompute import H1Table, H2Surface
from ..flow.fastpath import LookaheadTemplate
from ..flow.native import solve_unit_flow
from ..flow.prob_table import ProbTable
from ..flow.solver import COST_SCALE
from ..streams.ar1 import AR1Stream
from ..streams.base import StreamModel
from ..streams.linear_trend import LinearTrendStream
from ..streams.random_walk import RandomWalkStream
from ..streams.stationary import StationaryStream
from .base import ReplacementPolicy, WindowOracle
from .flowexpect_policy import FlowExpectPolicy
from .heeb_policy import (
    AR1CacheHeeb,
    AR1JoinHeeb,
    BandJoinHeeb,
    GenericJoinHeeb,
    HeebPolicy,
    TrendJoinHeeb,
    WalkCacheHeeb,
    WalkJoinHeeb,
)
from .life import LifePolicy
from .lru import LrukPolicy, LruPolicy
from .prob import ProbPolicy, _DEAD_PENALTY
from .rand import RandPolicy
from .trie import TrieCachePolicy
from .window_oracle import TrendWindowOracle

__all__ = [
    "NONE_VALUE",
    "R_CODE",
    "S_CODE",
    "UnbatchablePolicyError",
    "BatchPolicy",
    "BatchRand",
    "BatchLru",
    "BatchLruK",
    "BatchProb",
    "BatchLife",
    "BatchTrendJoinHeeb",
    "BatchWalkJoinHeeb",
    "BatchWalkCacheHeeb",
    "BatchStationaryJoinHeeb",
    "BatchWindowedStationaryJoinHeeb",
    "BatchWindowedTrendJoinHeeb",
    "BatchBandJoinHeeb",
    "BatchSurfaceHeeb",
    "BatchTrendOracle",
    "BatchTrie",
    "BatchFlowExpect",
    "BatchMultiPolicy",
    "BatchMultiRand",
    "BatchMultiLru",
    "BatchMultiProb",
    "BatchMultiStationaryHeeb",
    "BatchMultiTrie",
    "make_batch_policy",
]

#: Sentinel encoding the paper's "−" (``None``) value in integer arrays.
NONE_VALUE = np.iinfo(np.int64).min

#: Integer side codes used by the ``(B, slots)`` state arrays.
R_CODE = 0
S_CODE = 1


class UnbatchablePolicyError(TypeError):
    """The policy has no exact batch adapter; run it on the scalar path."""


def _unbatchable(policy_name: str, reason: str) -> UnbatchablePolicyError:
    """Build the normalized rejection: policy, reason, fallback tier.

    Every refusal in this module goes through here so the engine
    negotiation (and the user reading its warning) always sees the same
    shape: ``<POLICY> has no exact batch adapter (<reason>); it runs on
    the scalar tier``.  ``tests/test_engine_select`` asserts the format.
    """
    return UnbatchablePolicyError(
        f"{policy_name} has no exact batch adapter ({reason}); "
        "it runs on the scalar tier"
    )


class BatchPolicy(abc.ABC):
    """One replacement policy vectorized across ``B`` independent trials.

    The engine drives the adapter through the same event sequence the
    scalar simulators use (history observation, expiry, references,
    admissions, victim selection), but each event covers all trials at
    once.  Auxiliary per-slot state (recency stamps, frequency counts)
    lives in ``(B, slots)`` arrays returned by :meth:`aux_arrays`; the
    engine permutes them in lockstep with the tuple slots whenever the
    cache is compacted, so adapters never track slot movement themselves.
    """

    name: str = "batch-policy"

    #: Scored adapters return a ``(B, slots)`` score array and let the
    #: engine pick the ``n_evict`` lowest (score, uid) slots per trial.
    #: Non-scored adapters implement :meth:`select` directly.
    scored: bool = True

    #: Whether :meth:`scores` returns the *bit-identical* floats the
    #: scalar policy computes.  The engine only mirrors the scalar
    #: ``scores.cutoff`` series for exactly-scored adapters (the one
    #: tolerance-level adapter, :class:`BatchSurfaceHeeb`, opts out).
    exact_scores: bool = True

    def reset(self, n_trials: int, n_slots: int) -> None:
        """Allocate per-run state before a batch run starts."""

    def aux_arrays(self) -> tuple[np.ndarray, ...]:
        """Per-slot arrays the engine must permute on cache compaction."""
        return ()

    def begin_step(self, state, t: int, r_vals, s_vals) -> None:
        """Observe this step's arrivals (all trials), before any probing.

        ``r_vals`` / ``s_vals`` are ``(B,)`` int64 arrays using
        :data:`NONE_VALUE` for "−"; ``s_vals`` is ``None`` for the
        caching problem.
        """

    def on_reference(self, state, mask, t: int) -> None:
        """Slots flagged in ``mask`` joined an arrival / produced a hit."""

    def on_admit(self, state, rows, cols, side_code: int, values, t: int) -> None:
        """New tuples appeared at ``(rows, cols)`` (before selection)."""

    def scores(self, state, t: int) -> np.ndarray:
        """Keep-desirability per slot; garbage in dead slots is fine."""
        raise NotImplementedError

    def select(self, state, n_evict, t: int) -> np.ndarray:
        """Boolean victim mask for non-scored adapters."""
        raise NotImplementedError

    def series_logs(self) -> dict[str, list[list[tuple[int, float]]]]:
        """Policy-emitted series, per trial, drained after the run.

        Maps series name to one ``[(t, value), ...]`` list per trial;
        the simulators replay them trial-major into the recorder (the
        scalar emission order) when recording is on.  Adapters that
        mirror scalar policies emitting their own series (Trie's
        ``trie.budget.*``) accumulate here unconditionally — the cost is
        a few floats per eviction round.
        """
        return {}

    def counter_totals(self) -> dict[str, int]:
        """Policy-emitted counters, summed over all trials and steps.

        Mirrors scalar ``rec.count`` calls made inside policies
        (FlowExpect's ``flow.solves``); drained once after the run.
        """
        return {}


# ----------------------------------------------------------------------
# Window oracle
# ----------------------------------------------------------------------
class BatchTrendOracle:
    """Vectorized :class:`TrendWindowOracle` over ``(B, slots)`` arrays.

    Reproduces the scalar arithmetic (float division + floor) exactly so
    the dead/alive split and LIFE's remaining lifetimes match the scalar
    oracle element-for-element.
    """

    _FOREVER = float(2**62)

    def __init__(self, oracle: TrendWindowOracle):
        self._partner_of = {
            R_CODE: oracle.partner_model("R"),
            S_CODE: oracle.partner_model("S"),
        }

    def last_joinable(self, state) -> np.ndarray:
        """Latest joinable time per slot, as float64 (huge = forever)."""
        out = np.empty(state.val.shape, dtype=np.float64)
        for code, partner in self._partner_of.items():
            if partner.speed == 0:
                lj = np.full(state.val.shape, self._FOREVER)
            else:
                lj = partner.lag + np.floor(
                    (state.val - partner.noise.min_value - partner.intercept)
                    / partner.speed
                )
            mask = state.side == code
            out[mask] = lj[mask]
        return out

    def dead(self, state, t: int) -> np.ndarray:
        return self.last_joinable(state) <= t

    def remaining_life(self, state, t: int) -> np.ndarray:
        return np.maximum(0.0, self.last_joinable(state) - t)


def _batch_oracle(
    oracle: Optional[WindowOracle], policy_name: str
) -> Optional[BatchTrendOracle]:
    if oracle is None:
        return None
    if isinstance(oracle, TrendWindowOracle):
        return BatchTrendOracle(oracle)
    raise _unbatchable(
        policy_name,
        f"window oracle {type(oracle).__name__} has no vectorized replay",
    )


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
class BatchRand(BatchPolicy):
    """RAND with one generator per trial, replaying the scalar call trace.

    The scalar policy evicts oracle-dead tuples first (in candidate
    order) and fills the remainder with ``rng.choice`` over the live
    candidates; both the candidate ordering (slot order equals cache
    insertion order) and the per-trial RNG call pattern are preserved, so
    trial ``b`` makes exactly the draws scalar run ``b`` makes.
    """

    name = "RAND"
    scored = False

    def __init__(self, seed: int, oracle: Optional[BatchTrendOracle] = None):
        self._seed = seed
        self._oracle = oracle
        self._rngs: list[np.random.Generator] = []

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._rngs = [np.random.default_rng(self._seed) for _ in range(n_trials)]

    def select(self, state, n_evict, t: int) -> np.ndarray:
        victims = np.zeros(state.alive.shape, dtype=bool)
        if self._oracle is not None:
            dead = (self._oracle.dead(state, t) & state.alive).tolist()
        else:
            dead = None
        # Alive slots occupy the row prefix, so candidate positions are
        # simply range(alive count); plain-Python bookkeeping beats
        # per-trial numpy calls at these sizes, and the per-trial
        # ``choice`` call replays the scalar policy's RNG stream exactly.
        counts = state.alive.sum(axis=1).tolist()
        rngs = self._rngs
        rows: list[int] = []
        cols: list[int] = []
        for b, ne in enumerate(n_evict.tolist()):
            if ne <= 0:
                continue
            cnt = counts[b]
            flags = dead[b] if dead is not None else None
            if flags is not None and True in flags:
                chosen = [i for i in range(cnt) if flags[i]][:ne]
                live = [i for i in range(cnt) if not flags[i]]
            else:
                chosen = []
                live = range(cnt)
            remaining = ne - len(chosen)
            if remaining > 0:
                picks = rngs[b].choice(len(live), size=remaining, replace=False)
                chosen.extend(live[i] for i in picks.tolist())
            rows.extend([b] * len(chosen))
            cols.extend(chosen)
        victims[rows, cols] = True
        return victims


class BatchLru(BatchPolicy):
    """LRU: per-slot last-use stamps; new arrivals count as just used."""

    name = "LRU"

    def __init__(self) -> None:
        self._last_use = np.zeros((0, 0), dtype=np.int64)

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._last_use = np.zeros((n_trials, n_slots), dtype=np.int64)

    def aux_arrays(self) -> tuple[np.ndarray, ...]:
        return (self._last_use,)

    def on_reference(self, state, mask, t: int) -> None:
        self._last_use[mask] = t

    def on_admit(self, state, rows, cols, side_code: int, values, t: int) -> None:
        self._last_use[rows, cols] = t

    def scores(self, state, t: int) -> np.ndarray:
        return self._last_use.astype(np.float64)


class BatchLruK(BatchPolicy):
    """LRU-k: per-*value* reference histories, scattered into score arrays.

    The scalar :class:`~repro.policies.lru.LrukPolicy` keeps one
    ``deque(maxlen=k)`` of reference times per join value (histories
    survive evictions) and scores a tuple
    ``float(history[-k]) + 1e-9 * float(history[-1])``, with exactly
    ``-inf`` below ``k`` references (IEEE: ``-inf`` plus any finite
    tie-break stays ``-inf``).  The batch adapter keeps the same
    per-trial value→deque dicts, but exploits that a slot's score can
    only change when its value is referenced (at most one value per
    step, this step's R arrival) or when the slot is admitted:

    * ``begin_step`` appends the arrival to each trial's deque, computes
      the handful of fresh scores in plain Python — the identical float
      expression — and scatters them into every matching alive slot with
      one masked array assignment;
    * ``on_admit`` initializes the few admitted slots from the dicts.

    Everything else (ranking, uid tie-breaks, compaction) is the
    engine's shared vectorized machinery, so decisions, counters and
    the ``scores.cutoff`` series match the scalar run bit for bit.
    """

    def __init__(self, k: int):
        self.k = int(k)
        self.name = f"LRU-{self.k}"
        self._score = np.zeros((0, 0), dtype=np.float64)
        self._uses: list[dict[int, deque]] = []

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._score = np.zeros((n_trials, n_slots), dtype=np.float64)
        self._uses = [dict() for _ in range(n_trials)]

    def aux_arrays(self) -> tuple[np.ndarray, ...]:
        return (self._score,)

    def _value_score(self, history: Optional[deque]) -> float:
        """The scalar score formula for a value's current history."""
        if history is None or len(history) < self.k:
            # Fewer than k references: the -inf primary key absorbs any
            # finite recency tie-break, exactly like the scalar policy.
            return float("-inf")
        return float(history[0]) + 1e-9 * float(history[-1])

    def begin_step(self, state, t: int, r_vals, s_vals) -> None:
        # LRU-k histories track the *reference* stream R only (both join
        # sides share the value-keyed dict), mirroring LrukPolicy._sync.
        has = r_vals != NONE_VALUE
        if not bool(has.any()):
            return
        new_scores = np.zeros(r_vals.shape[0], dtype=np.float64)
        vals = r_vals.tolist()
        for b in np.flatnonzero(has).tolist():
            v = vals[b]
            history = self._uses[b].get(v)
            if history is None:
                history = deque(maxlen=self.k)
                self._uses[b][v] = history
            history.append(t)
            new_scores[b] = self._value_score(history)
        safe = np.where(has, r_vals, 0)
        mask = state.alive & has[:, None] & (state.val == safe[:, None])
        np.copyto(
            self._score,
            np.broadcast_to(new_scores[:, None], self._score.shape),
            where=mask,
        )

    def on_admit(self, state, rows, cols, side_code: int, values, t: int) -> None:
        self._score[rows, cols] = [
            self._value_score(self._uses[b].get(v))
            for b, v in zip(rows.tolist(), values.tolist())
        ]

    def scores(self, state, t: int) -> np.ndarray:
        return self._score


class BatchProb(BatchPolicy):
    """PROB / LFU: observed partner-value frequencies, kept incrementally.

    Cached slots carry their frequency as per-slot state updated by array
    comparisons against each step's arrivals; only the two dictionary
    updates per trial per step (the global value counters, needed to
    initialize newly admitted tuples) remain Python-level, so the scoring
    path is entirely vectorized.
    """

    name = "PROB"

    def __init__(self, kind: str, oracle: Optional[BatchTrendOracle] = None):
        if kind not in ("join", "cache"):
            raise ValueError(f"unknown kind {kind!r}")
        self._kind = kind
        self._oracle = oracle
        self._freq = np.zeros((0, 0), dtype=np.int64)
        self._r_counts: list[dict] = []
        self._s_counts: list[dict] = []

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._freq = np.zeros((n_trials, n_slots), dtype=np.int64)
        self._r_counts = [dict() for _ in range(n_trials)]
        self._s_counts = [dict() for _ in range(n_trials)]

    def aux_arrays(self) -> tuple[np.ndarray, ...]:
        return (self._freq,)

    def begin_step(self, state, t: int, r_vals, s_vals) -> None:
        for counts, v in zip(self._r_counts, r_vals.tolist()):
            if v != NONE_VALUE:
                counts[v] = counts.get(v, 0) + 1
        if s_vals is not None:
            for counts, w in zip(self._s_counts, s_vals.tolist()):
                if w != NONE_VALUE:
                    counts[w] = counts.get(w, 0) + 1
        # A slot's frequency counts its value in the stream it matches:
        # R-side tuples match S arrivals and vice versa; in the caching
        # problem every (database) tuple matches the reference stream R.
        if self._kind == "cache":
            hit_r = (
                state.alive
                & (r_vals[:, None] != NONE_VALUE)
                & (state.val == np.where(r_vals == NONE_VALUE, 0, r_vals)[:, None])
            )
            self._freq += hit_r
        else:
            r_safe = np.where(r_vals == NONE_VALUE, 0, r_vals)
            s_safe = np.where(s_vals == NONE_VALUE, 0, s_vals)
            self._freq += (
                state.alive
                & (state.side == R_CODE)
                & (s_vals[:, None] != NONE_VALUE)
                & (state.val == s_safe[:, None])
            )
            self._freq += (
                state.alive
                & (state.side == S_CODE)
                & (r_vals[:, None] != NONE_VALUE)
                & (state.val == r_safe[:, None])
            )

    def on_admit(self, state, rows, cols, side_code: int, values, t: int) -> None:
        if self._kind == "cache" or side_code == S_CODE:
            source = self._r_counts
        else:
            source = self._s_counts
        self._freq[rows, cols] = [
            source[b].get(v, 0) for b, v in zip(rows.tolist(), values.tolist())
        ]

    def scores(self, state, t: int) -> np.ndarray:
        sc = self._freq.astype(np.float64)
        if self._oracle is not None:
            sc = np.where(self._oracle.dead(state, t), sc - _DEAD_PENALTY, sc)
        return sc


class BatchLife(BatchPolicy):
    """LIFE: match-probability estimate × oracle remaining lifetime."""

    name = "LIFE"

    def __init__(self, kind: str, oracle: Optional[BatchTrendOracle]):
        if oracle is None:
            raise _unbatchable(
                "LIFE",
                "it requires a window oracle to determine tuple lifetimes",
            )
        self._prob = BatchProb(kind)
        self._oracle = oracle

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._prob.reset(n_trials, n_slots)

    def aux_arrays(self) -> tuple[np.ndarray, ...]:
        return self._prob.aux_arrays()

    def begin_step(self, state, t: int, r_vals, s_vals) -> None:
        self._prob.begin_step(state, t, r_vals, s_vals)

    def on_admit(self, state, rows, cols, side_code: int, values, t: int) -> None:
        self._prob.on_admit(state, rows, cols, side_code, values, t)

    def scores(self, state, t: int) -> np.ndarray:
        life = self._oracle.remaining_life(state, t)
        freq = self._prob._freq.astype(np.float64)
        total = float(max(1, t + 1))
        return (freq / total) * life


# ----------------------------------------------------------------------
# HEEB strategies
# ----------------------------------------------------------------------
def _dense_lookup(values: np.ndarray, lo: int, offsets: np.ndarray) -> np.ndarray:
    """Index a dense offset-table, returning 0.0 outside its range."""
    if values.size == 0:
        return np.zeros(offsets.shape)
    idx = offsets - lo
    valid = (idx >= 0) & (idx < values.size)
    return np.where(valid, values[np.clip(idx, 0, values.size - 1)], 0.0)


class BatchTrendJoinHeeb(BatchPolicy):
    """HEEB over unit-speed linear trends, via the Corollary-5 tables.

    Reads the exact per-offset tables the scalar
    :class:`~repro.policies.heeb_policy.TrendJoinHeeb` builds, densified
    into arrays, so batch and scalar scores are bit-identical.
    """

    name = "HEEB"

    def __init__(
        self,
        strategy: TrendJoinHeeb,
        r_model: LinearTrendStream,
        s_model: LinearTrendStream,
    ):
        self._r_model = r_model
        self._s_model = s_model
        # Keys mirror the scalar policy's cache: the table for side-X
        # tuples is built from the partner stream of X.
        self._lo_for_r, self._tab_for_r = strategy.table_array(
            s_model, "partner-of-R"
        )
        self._lo_for_s, self._tab_for_s = strategy.table_array(
            r_model, "partner-of-S"
        )

    def scores(self, state, t: int) -> np.ndarray:
        d_r = state.val - self._s_model.trend(t)
        d_s = state.val - self._r_model.trend(t)
        sc_r = _dense_lookup(self._tab_for_r, self._lo_for_r, d_r)
        sc_s = _dense_lookup(self._tab_for_s, self._lo_for_s, d_s)
        return np.where(state.side == R_CODE, sc_r, sc_s)


class BatchWalkJoinHeeb(BatchPolicy):
    """HEEB over random walks: vectorized ``h1`` lookups (Theorem 5(2))."""

    name = "HEEB"

    def __init__(
        self,
        strategy: WalkJoinHeeb,
        r_model: RandomWalkStream,
        s_model: RandomWalkStream,
    ):
        self._tab_for_r: H1Table = strategy.table_for(s_model, "partner-of-R")
        self._tab_for_s: H1Table = strategy.table_for(r_model, "partner-of-S")

    def scores(self, state, t: int) -> np.ndarray:
        no_s = state.last_s == NONE_VALUE
        no_r = state.last_r == NONE_VALUE
        anchor_s = np.where(no_s, 0, state.last_s)
        anchor_r = np.where(no_r, 0, state.last_r)
        sc_r = np.where(
            no_s[:, None], 0.0, self._tab_for_r.lookup(state.val - anchor_s[:, None])
        )
        sc_s = np.where(
            no_r[:, None], 0.0, self._tab_for_s.lookup(state.val - anchor_r[:, None])
        )
        return np.where(state.side == R_CODE, sc_r, sc_s)


class BatchWalkCacheHeeb(BatchPolicy):
    """Caching HEEB for random-walk references: one shared ``h1`` curve."""

    name = "HEEB"

    def __init__(self, strategy: WalkCacheHeeb):
        self._table = strategy.table

    def scores(self, state, t: int) -> np.ndarray:
        no_r = state.last_r == NONE_VALUE
        anchor = np.where(no_r, 0, state.last_r)
        return np.where(
            no_r[:, None], 0.0, self._table.lookup(state.val - anchor[:, None])
        )


class BatchStationaryJoinHeeb(BatchPolicy):
    """Generic joining HEEB specialized to stationary partners.

    For i.i.d. streams ``H`` depends on the candidate's value only, so
    the scalar ``heeb_join`` is evaluated once per support value into a
    dense table (identical floats for every query time) and scoring is a
    pure array lookup.
    """

    name = "HEEB"

    def __init__(
        self,
        strategy: GenericJoinHeeb,
        r_model: StationaryStream,
        s_model: StationaryStream,
    ):
        self._lo_for_r, self._tab_for_r = self._build(strategy, s_model)
        self._lo_for_s, self._tab_for_s = self._build(strategy, r_model)

    @staticmethod
    def _build(
        strategy: GenericJoinHeeb, partner: StationaryStream
    ) -> tuple[int, np.ndarray]:
        lo, hi = partner.dist.min_value, partner.dist.max_value
        values = np.array(
            [
                heeb_join(partner, 0, v, strategy.estimator, strategy.horizon)
                for v in range(lo, hi + 1)
            ]
        )
        return lo, values

    def scores(self, state, t: int) -> np.ndarray:
        sc_r = _dense_lookup(self._tab_for_r, self._lo_for_r, state.val)
        sc_s = _dense_lookup(self._tab_for_s, self._lo_for_s, state.val)
        return np.where(state.side == R_CODE, sc_r, sc_s)


class _MemoGatherHeeb(BatchPolicy):
    """Windowed HEEB via memo-gather over ``(side, value, remaining)``.

    Section 7 clips each tuple's survival estimate at its own window
    expiry, so scores depend on the per-tuple *remaining* window —
    ``max(0, arrival + window − t)``, at most ``window + 1`` distinct
    values — rather than the value alone.  Subclasses provide
    ``_score_one(side_code, value, remaining, t)``, which calls the
    identical scalar scoring function once per distinct key; this base
    class vectorizes the rest: the remaining-window arithmetic, the
    ``np.unique`` key extraction over all alive slots, and the scatter
    of memoized scores back into the ``(B, slots)`` array.  Because
    every float comes out of the scalar function, batch scores (and the
    ``scores.cutoff`` series) are bit-identical to the scalar tier.
    """

    name = "HEEB"

    def __init__(self, window: int):
        self._window = int(window)
        self._memo: dict[tuple[int, int, int], float] = {}

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._memo = {}

    def _score_one(self, side: int, value: int, remaining: int, t: int) -> float:
        raise NotImplementedError

    def _memo_key(
        self, side: int, value: int, remaining: int, t: int
    ) -> Optional[tuple]:
        """Memo key for a score, or ``None`` to disable memoization."""
        return (side, value, remaining)

    def scores(self, state, t: int) -> np.ndarray:
        out = np.zeros(state.val.shape)
        alive = state.alive
        if not bool(alive.any()):
            return out
        remaining = np.maximum(0, state.arr + self._window - t)
        keys = np.stack(
            [state.side[alive], state.val[alive], remaining[alive]], axis=-1
        )
        uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
        scores = np.empty(uniq.shape[0])
        for i, (side, value, rem) in enumerate(uniq.tolist()):
            key = self._memo_key(side, value, rem, t)
            h = self._memo.get(key) if key is not None else None
            if h is None:
                h = self._score_one(side, value, rem, t)
                if key is not None:
                    self._memo[key] = h
            scores[i] = h
        out[alive] = scores[inverse]
        return out


class BatchWindowedStationaryJoinHeeb(_MemoGatherHeeb):
    """Windowed generic joining HEEB over stationary partners.

    The scalar path scores a tuple with ``heeb_join(partner, t, v,
    WindowedLExp(alpha, remaining), horizon)``; for i.i.d. partners the
    result is independent of ``t``, so one persistent memo keyed
    ``(side, value, remaining)`` — each entry produced by that exact
    scalar call — answers every query for the whole run.
    """

    def __init__(
        self,
        strategy: GenericJoinHeeb,
        r_model: StationaryStream,
        s_model: StationaryStream,
        window: int,
    ):
        super().__init__(window)
        assert isinstance(strategy.estimator, LExp)
        self._alpha = strategy.estimator.alpha
        self._horizon = strategy.horizon
        self._partner_of = {R_CODE: s_model, S_CODE: r_model}

    def _score_one(self, side: int, value: int, remaining: int, t: int) -> float:
        estimator = WindowedLExp(self._alpha, remaining)
        return heeb_join(
            self._partner_of[side], 0, value, estimator, self._horizon
        )


class BatchWindowedTrendJoinHeeb(_MemoGatherHeeb):
    """Windowed HEEB over linear trends: memoized per-tuple direct sums.

    The scalar path evaluates ``TrendJoinHeeb._direct_sum(partner, v, t,
    min(remaining, suggested_horizon))`` per tuple.  For unit-speed
    trends the sum depends only on the trend offset ``v − f(t)`` and the
    clipped horizon (integer trend arithmetic makes the translated pmf
    arrays element-identical), so the memo persists across steps keyed
    on the offset; other speeds lack translation invariance and fall
    back to a per-step memo.  Every entry is produced by the public
    :meth:`~repro.policies.heeb_policy.TrendJoinHeeb.direct_sum` — the
    scalar expression itself — keeping scores bit-identical.
    """

    def __init__(
        self,
        strategy: TrendJoinHeeb,
        r_model: LinearTrendStream,
        s_model: LinearTrendStream,
        window: int,
    ):
        super().__init__(window)
        self._strategy = strategy
        self._partner_of = {R_CODE: s_model, S_CODE: r_model}
        self._suggested = strategy.estimator.suggested_horizon(strategy.tol)
        self._translation = r_model.speed == 1.0 and s_model.speed == 1.0
        self._memo_t: Optional[int] = None

    def _memo_key(
        self, side: int, value: int, remaining: int, t: int
    ) -> Optional[tuple]:
        horizon = min(remaining, self._suggested)
        if self._translation:
            return (side, value - self._partner_of[side].trend(t), horizon)
        return (side, value, remaining)

    def scores(self, state, t: int) -> np.ndarray:
        if not self._translation and self._memo_t != t:
            self._memo = {}
            self._memo_t = t
        return super().scores(state, t)

    def _score_one(self, side: int, value: int, remaining: int, t: int) -> float:
        horizon = min(remaining, self._suggested)
        return self._strategy.direct_sum(
            self._partner_of[side], value, t, horizon
        )


class BatchBandJoinHeeb(BatchPolicy):
    """Band-join HEEB over stationary partners, as dense value tables.

    The scalar :class:`~repro.policies.heeb_policy.BandJoinHeeb` ignores
    the window (its ``h_value`` never consults ``ctx.window``), and for
    i.i.d. partners ``heeb_join_band`` is independent of the query time,
    so one dense table per side — each entry the scalar call itself —
    covers the run.  The table spans ``[support_lo − band, support_hi +
    band]``: outside it every per-step band probability is zero and the
    scalar sum is exactly ``0.0``, matching the lookup's default.
    """

    name = "HEEB"

    def __init__(
        self,
        strategy: BandJoinHeeb,
        r_model: StationaryStream,
        s_model: StationaryStream,
    ):
        self._lo_for_r, self._tab_for_r = self._build(strategy, s_model)
        self._lo_for_s, self._tab_for_s = self._build(strategy, r_model)

    @staticmethod
    def _build(
        strategy: BandJoinHeeb, partner: StationaryStream
    ) -> tuple[int, np.ndarray]:
        lo = partner.dist.min_value - strategy.band
        hi = partner.dist.max_value + strategy.band
        values = np.array(
            [
                heeb_join_band(
                    partner, 0, v, strategy.band, strategy.estimator,
                    strategy.horizon,
                )
                for v in range(lo, hi + 1)
            ]
        )
        return lo, values

    def scores(self, state, t: int) -> np.ndarray:
        sc_r = _dense_lookup(self._tab_for_r, self._lo_for_r, state.val)
        sc_s = _dense_lookup(self._tab_for_s, self._lo_for_s, state.val)
        return np.where(state.side == R_CODE, sc_r, sc_s)


class BatchSurfaceHeeb(BatchPolicy):
    """AR(1) HEEB via the precomputed ``h2`` spline surface (Theorem 5(1)).

    Uses pointwise spline evaluation
    (:meth:`~repro.core.precompute.H2Surface.evaluate_many`); agrees with
    the scalar strategies to floating-point evaluation order, which is
    close but not guaranteed bit-identical — the one adapter outside the
    bit-exactness guarantee (hence ``exact_scores = False``: the engine
    does not mirror the scalar ``scores.cutoff`` series for it).
    """

    name = "HEEB"
    exact_scores = False

    def __init__(self, surface: H2Surface, model: AR1Stream, kind: str):
        self._surface = surface
        self._model = model
        self._kind = kind

    def _latent(self, anchors: np.ndarray) -> np.ndarray:
        return anchors * self._model.bucket

    def scores(self, state, t: int) -> np.ndarray:
        if self._kind == "cache":
            no_anchor = state.last_r == NONE_VALUE
            anchor = np.where(no_anchor, 0, state.last_r)
            latent = self._latent(anchor)[:, None]
            latent = np.broadcast_to(latent, state.val.shape)
            sc = self._surface.evaluate_many(state.val.astype(np.float64), latent)
            return np.where(no_anchor[:, None], 0.0, sc)
        no_s = state.last_s == NONE_VALUE
        no_r = state.last_r == NONE_VALUE
        lat_s = self._latent(np.where(no_s, 0, state.last_s))[:, None]
        lat_r = self._latent(np.where(no_r, 0, state.last_r))[:, None]
        vals = state.val.astype(np.float64)
        sc_r = self._surface.evaluate_many(
            vals, np.broadcast_to(lat_s, vals.shape)
        )
        sc_s = self._surface.evaluate_many(
            vals, np.broadcast_to(lat_r, vals.shape)
        )
        sc_r = np.where(no_s[:, None], 0.0, sc_r)
        sc_s = np.where(no_r[:, None], 0.0, sc_s)
        return np.where(state.side == R_CODE, sc_r, sc_s)


# ----------------------------------------------------------------------
# Trie caching
# ----------------------------------------------------------------------
class _TrieReplayCore:
    """Shared replay machinery behind :class:`BatchTrie` / :class:`BatchMultiTrie`.

    :class:`~repro.policies.trie.TrieCachePolicy` is stateful in two
    coupled ways — shared per-``(stream, value)`` node scores and the EMA
    budget shares its two-phase selection consults — so the batch replay
    splits the work accordingly:

    * node scores go through one *shared* memo (``score_of`` is the
      identical scalar benefit function, called once per distinct node),
      persistent across steps when every consulted model is stationary
      and cleared per step otherwise;
    * the selection phases (score-sort, per-level quotas via
      largest-remainder rounding, global fill) are replayed per trial in
      plain Python over that trial's shares row — the same float
      expressions in the same order as the scalar policy;
    * the budget update is vectorized over the participating trials:
      the EMA is elementwise (bit-exact per element) and the share
      totals/norms accumulate columns left to right, matching Python's
      ``sum`` over the scalar policy's dicts.

    Cutoff and per-level budget series are accumulated per trial and
    handed to the engine through ``series_logs`` so recorded runs see
    the scalar emission order.
    """

    def __init__(
        self,
        levels: tuple[str, ...],
        level_of_code: dict[int, str],
        score_of,
        beta: float,
        min_share: float,
        persistent: bool,
    ):
        self._levels = levels
        self._level_of_code = level_of_code
        self._score_of = score_of
        self._beta = beta
        self._min_share = min_share
        self._persistent = persistent
        self._memo: dict[tuple[int, int], float] = {}
        self._memo_t: Optional[int] = None
        self._pressure = np.zeros((0, 0))
        self._shares = np.zeros((0, 0))
        self._cutoff_log: list[list[tuple[int, float]]] = []
        self._budget_logs: dict[str, list[list[tuple[int, float]]]] = {}

    def reset(self, n_trials: int) -> None:
        n_levels = len(self._levels)
        self._pressure = np.zeros((n_trials, n_levels))
        self._shares = np.full((n_trials, n_levels), 1.0 / n_levels)
        self._memo = {}
        self._memo_t = None
        self._cutoff_log = [[] for _ in range(n_trials)]
        self._budget_logs = {
            name: [[] for _ in range(n_trials)] for name in self._levels
        }

    def series_logs(self) -> dict[str, list[list[tuple[int, float]]]]:
        out: dict[str, list[list[tuple[int, float]]]] = {
            "scores.cutoff": self._cutoff_log
        }
        for name, logs in self._budget_logs.items():
            out[f"trie.budget.{name}"] = logs
        return out

    def select(self, state, n_evict: np.ndarray, t: int) -> np.ndarray:
        if self._memo_t != t:
            if not self._persistent:
                self._memo = {}
            self._memo_t = t
        victims = np.zeros(state.alive.shape, dtype=bool)
        part_rows = np.flatnonzero(n_evict > 0).tolist()
        if not part_rows:
            return victims
        counts = state.alive.sum(axis=1)
        levels = self._levels
        level_index = {name: j for j, name in enumerate(levels)}
        name_of = self._level_of_code
        memo = self._memo
        participants: list[int] = []
        cutoff_rows: list[list[float]] = []
        for b in part_rows:
            ne = int(n_evict[b])
            cnt = int(counts[b])
            if cnt == 0:
                continue
            vals = state.val[b, :cnt].tolist()
            sides = state.side[b, :cnt].tolist()
            uids = state.uid[b, :cnt].tolist()
            entries: list[tuple[float, int, int]] = []
            for i in range(cnt):
                key = (sides[i], vals[i])
                score = memo.get(key)
                if score is None:
                    score = self._score_of(sides[i], vals[i], t)
                    memo[key] = score
                entries.append((score, uids[i], i))
            entries.sort()
            keep_count = cnt - ne
            if keep_count <= 0:
                for _, _, i in entries:
                    victims[b, i] = True
                victims_scored = entries[:ne]
            else:
                victims_scored = self._two_phase(
                    b, entries, keep_count, sides, level_index, victims
                )
            # _finish_round replay: publish the cutoff, collect this
            # trial's per-level cutoffs for the vectorized EMA below.
            self._cutoff_log[b].append(
                (t, max(entry[0] for entry in victims_scored))
            )
            cut = [0.0] * len(levels)
            for score, _, i in victims_scored:
                j = level_index.get(name_of.get(sides[i], ""))
                if j is not None and score > cut[j]:
                    cut[j] = score
            participants.append(b)
            cutoff_rows.append(cut)
        if participants:
            self._adapt_budgets(participants, cutoff_rows, t)
        return victims

    def _two_phase(
        self,
        b: int,
        entries: list[tuple[float, int, int]],
        keep_count: int,
        sides: list[int],
        level_index: dict[str, int],
        victims: np.ndarray,
    ) -> list[tuple[float, int, int]]:
        """Replay the scalar two-phase keep selection for one trial."""
        name_of = self._level_of_code
        by_level: dict[str, list[tuple[float, int, int]]] = {}
        for entry in entries:
            by_level.setdefault(name_of[sides[entry[2]]], []).append(entry)
        quotas = self._integer_quotas(b, keep_count, by_level, level_index)
        kept: set[int] = set()
        for name, group in by_level.items():
            for entry in group[len(group) - quotas.get(name, 0) :]:
                kept.add(entry[1])
        leftover = keep_count - len(kept)
        if leftover > 0:
            for entry in reversed(entries):
                if leftover == 0:
                    break
                if entry[1] not in kept:
                    kept.add(entry[1])
                    leftover -= 1
        victims_scored = [e for e in entries if e[1] not in kept]
        for _, _, i in victims_scored:
            victims[b, i] = True
        return victims_scored

    def _integer_quotas(
        self,
        b: int,
        keep_count: int,
        by_level: dict[str, list],
        level_index: dict[str, int],
    ) -> dict[str, int]:
        """``TrieCachePolicy._integer_quotas`` over trial ``b``'s shares."""
        present = [name for name in self._levels if name in by_level]
        if not present:
            return {}
        shares_row = self._shares[b]
        share = {name: float(shares_row[level_index[name]]) for name in present}
        total_share = sum(share[name] for name in present)
        raw = {
            name: keep_count * share[name] / total_share for name in present
        }
        quotas = {
            name: min(int(raw[name]), len(by_level[name])) for name in present
        }
        remainder = keep_count - sum(quotas.values())
        order = sorted(
            present, key=lambda n: (-(raw[n] - int(raw[n])), present.index(n))
        )
        while remainder > 0:
            progressed = False
            for name in order:
                if remainder == 0:
                    break
                if quotas[name] < len(by_level[name]):
                    quotas[name] += 1
                    remainder -= 1
                    progressed = True
            if not progressed:
                break
        return quotas

    def _adapt_budgets(
        self,
        participants: list[int],
        cutoff_rows: list[list[float]],
        t: int,
    ) -> None:
        """``TrieCachePolicy._finish_round``'s EMA over participating rows.

        The EMA is elementwise, so vectorizing over the ``(rows,
        levels)`` block is bit-exact; totals and norms accumulate
        columns left to right, matching Python's ``sum`` over the
        scalar dict values in level order.
        """
        beta = self._beta
        n_levels = len(self._levels)
        rows = np.asarray(participants)
        cuts = np.asarray(cutoff_rows)
        block = self._pressure[rows]
        block = (1.0 - beta) * block + beta * cuts
        self._pressure[rows] = block
        total = np.zeros(rows.size)
        for j in range(n_levels):
            total = total + block[:, j]
        update = total > 0.0
        if update.any():
            floor = self._min_share / n_levels
            up_rows = rows[update]
            shares = np.maximum(block[update] / total[update][:, None], floor)
            norm = np.zeros(up_rows.size)
            for j in range(n_levels):
                norm = norm + shares[:, j]
            self._shares[up_rows] = shares / norm[:, None]
        for b in participants:
            for j, name in enumerate(self._levels):
                self._budget_logs[name][b].append(
                    (t, float(self._shares[b, j]))
                )


class BatchTrie(BatchPolicy):
    """Trie caching on the binary problems, replayed trial by trial.

    Requires every model the scalar policy would consult (the reference
    model for ``kind="cache"``, both stream models for ``kind="join"``)
    to be present and independent, so node scores are shared across
    trials: each distinct ``(side, value)`` node calls the identical
    scalar benefit function (:func:`~repro.core.heeb.heeb_cache` /
    :func:`~repro.core.heeb.heeb_join`) exactly once per memo epoch.
    The window, when set, never enters the scalar policy's scoring —
    expiry is simulator-level — so windowed runs batch unchanged.
    """

    name = "TRIE"
    scored = False

    def __init__(
        self,
        policy: TrieCachePolicy,
        kind: str,
        r_model: StreamModel,
        s_model: Optional[StreamModel],
    ):
        estimator = policy.estimator
        horizon = policy.horizon
        if kind == "cache":
            levels: tuple[str, ...] = ("R",)
            consulted: tuple[StreamModel, ...] = (r_model,)

            def score_of(code: int, value: int, t: int) -> float:
                return heeb_cache(r_model, t, value, estimator, horizon)

        else:
            assert s_model is not None
            levels = ("R", "S")
            consulted = (r_model, s_model)
            partner_model = {R_CODE: s_model, S_CODE: r_model}

            def score_of(code: int, value: int, t: int) -> float:
                # _join_benefit's single-partner sum: 0.0 + H == H.
                return heeb_join(partner_model[code], t, value, estimator, horizon)

        persistent = all(isinstance(m, StationaryStream) for m in consulted)
        self._core = _TrieReplayCore(
            levels,
            {R_CODE: "R", S_CODE: "S"},
            score_of,
            policy.beta,
            policy.min_share,
            persistent,
        )

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._core.reset(n_trials)

    def select(self, state, n_evict, t: int) -> np.ndarray:
        return self._core.select(state, n_evict, t)

    def series_logs(self) -> dict[str, list[list[tuple[int, float]]]]:
        return self._core.series_logs()


# ----------------------------------------------------------------------
# FlowExpect
# ----------------------------------------------------------------------
class BatchFlowExpect(BatchPolicy):
    """FlowExpect replayed per trial over shared templates and ProbTables.

    Each eviction round mirrors
    :meth:`~repro.flow.fastpath.FlowExpectFastPath.decide` per trial —
    the same integer cost rounding, the same uid-rank perturbation, one
    :func:`~repro.flow.native.solve_unit_flow` call — while sharing all
    trial-independent work across the batch:

    * one :class:`~repro.flow.prob_table.ProbTable` answers every
      probability query (independent models never rebind their anchors,
      so memoized entries stay valid for the whole run and across
      trials);
    * the :class:`~repro.flow.fastpath.LookaheadTemplate` cache is keyed
      by candidate count, and per step each distinct count also shares
      its base cost vector — the undetermined-arrival arcs and the
      uid-rank perturbation (alive slots hold strictly ascending uids,
      making the scalar rank permutation the identity) — leaving only
      the determined first-slice arcs to fill per trial.

    The per-trial solver calls remain the dominant cost, which is why
    this adapter's batch speedup is modest compared to the scored
    adapters (see ``docs/PERFORMANCE.md``); the compiled kernel behind
    ``REPRO_NATIVE=1`` is the lever that accelerates it further.

    ``counter_totals`` mirrors the scalar ``flow.solves`` /
    ``flow.solver_iterations`` counters; wall-clock series
    (``flow.solve_ms``, ``prob_table.hit_rate``) and the memo tallies
    are scalar-only — sharing the table across trials changes hit/miss
    counts without changing any decision.
    """

    name = "FLOWEXPECT"
    scored = False

    def __init__(
        self,
        policy: FlowExpectPolicy,
        r_model: StreamModel,
        s_model: StreamModel,
        cache_size: int,
    ):
        self.lookahead = policy.lookahead
        self._cache_size = int(cache_size)
        self._table = ProbTable(r_model, s_model)
        self._templates: dict[tuple[int, int], LookaheadTemplate] = {}
        self._solves = 0
        self._iterations = 0

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._solves = 0
        self._iterations = 0

    def counter_totals(self) -> dict[str, int]:
        return {
            "flow.solves": self._solves,
            "flow.solver_iterations": self._iterations,
        }

    def _base_costs(
        self, n: int, t: int
    ) -> tuple[LookaheadTemplate, list[int]]:
        """Template + trial-independent cost vector for ``n`` candidates."""
        template = self._templates.get((n, self.lookahead))
        if template is None:
            template = LookaheadTemplate(n, self.lookahead)
            self._templates[(n, self.lookahead)] = template
        table = self._table
        born = template.born
        base = [0] * len(template.tails)
        for a, e, dt in template.costed:
            if e >= n:
                w = -table.expected_match(
                    "RS"[(e - n) % 2], t + born[e], t + dt
                )
                base[a] = int(round(w * COST_SCALE)) << n
        for rank, arc in enumerate(template.src_arcs):
            base[arc] += 1 << rank
        return template, base

    def select(self, state, n_evict, t: int) -> np.ndarray:
        victims = np.zeros(state.alive.shape, dtype=bool)
        rows = np.flatnonzero(n_evict > 0).tolist()
        if not rows:
            return victims
        counts = state.alive.sum(axis=1)
        table = self._table
        base_cache: dict[int, tuple[LookaheadTemplate, list[int]]] = {}
        for b in rows:
            n = int(counts[b])
            if n == 0:
                continue
            entry = base_cache.get(n)
            if entry is None:
                entry = self._base_costs(n, t)
                base_cache[n] = entry
            template, base = entry
            cost = list(base)
            vals = state.val[b, :n].tolist()
            sides = state.side[b, :n].tolist()
            for a, e, dt in template.costed:
                if e < n:
                    pside = "S" if sides[e] == R_CODE else "R"
                    w = -table.prob(pside, t + dt, vals[e])
                    cost[a] = int(round(w * COST_SCALE)) << n
            amount = min(self._cache_size, n)
            used = solve_unit_flow(template, cost, amount)
            self._solves += 1
            self._iterations += amount
            for p in range(n):
                if not used[template.src_arcs[p]]:
                    victims[b, p] = True
        return victims


# ----------------------------------------------------------------------
# Multi-join adapters
# ----------------------------------------------------------------------
class BatchMultiPolicy(BatchPolicy):
    """One replacement policy vectorized over an n-way join topology.

    Multi-join state arrays use *stream codes* — the index of the stream
    name in the run's arrival order — as ``side`` values, so the adapter
    must learn the code assignment before the run starts: the simulator
    calls :meth:`bind` with the stream names and the partner map, then
    :meth:`reset` as usual.  ``begin_step`` receives one ``(B,)`` value
    column per stream, indexed by code, instead of the binary R/S pair.
    """

    def bind(self, names, partner_names) -> None:
        """Learn the name → code assignment of this run (before reset)."""

    def begin_step(self, state, t: int, vals) -> None:  # type: ignore[override]
        """Observe this step's arrivals: ``vals[code]`` is ``(B,)`` int64."""


class BatchMultiRand(BatchMultiPolicy):
    """RAND on an n-way topology: per-trial generators, scalar call trace.

    The scalar policy (and the legacy ``MultiRandPolicy``, whose uid
    pre-sort is the identity on simulator-supplied candidate lists) draws
    ``rng.choice`` over the candidates in cache-insertion order; the
    row-prefix layout preserves that order, so delegating to
    :class:`BatchRand`'s oracle-free select replays the exact draws.
    """

    name = "RAND"
    scored = False

    def __init__(self, seed: int):
        self._inner = BatchRand(seed)

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._inner.reset(n_trials, n_slots)

    def select(self, state, n_evict, t: int) -> np.ndarray:
        return self._inner.select(state, n_evict, t)


class BatchMultiLru(BatchMultiPolicy):
    """LRU on an n-way topology: the binary stamp logic, name-agnostic."""

    name = "LRU"

    def __init__(self) -> None:
        self._inner = BatchLru()

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._inner.reset(n_trials, n_slots)

    def aux_arrays(self) -> tuple[np.ndarray, ...]:
        return self._inner.aux_arrays()

    def on_reference(self, state, mask, t: int) -> None:
        self._inner.on_reference(state, mask, t)

    def on_admit(self, state, rows, cols, side_code: int, values, t: int) -> None:
        self._inner.on_admit(state, rows, cols, side_code, values, t)

    def scores(self, state, t: int) -> np.ndarray:
        return self._inner.scores(state, t)


class BatchMultiProb(BatchMultiPolicy):
    """PROB / LFU over many streams: per-partner frequency summation.

    A tuple's frequency sums its value's observed count over *every*
    partner stream (the scalar policy's n-way rule).  Cached slots carry
    that sum as per-slot state updated by array comparisons against each
    step's arrivals; one dictionary update per trial per arriving stream
    (the global value counters, needed to initialize newly admitted
    tuples) remains Python-level, exactly like the binary adapter.
    """

    name = "PROB"

    def __init__(self) -> None:
        self._freq = np.zeros((0, 0), dtype=np.int64)
        self._adj = np.zeros((0, 0), dtype=bool)
        self._tracked: list[int] = []
        self._partners_by_code: dict[int, list[int]] = {}
        self._counts: dict[int, list[dict]] = {}

    def bind(self, names, partner_names) -> None:
        idx = {name: i for i, name in enumerate(names)}
        n = len(names)
        # adj[cached_code, arriving_code]: does the arrival probe the slot?
        self._adj = np.zeros((n, n), dtype=bool)
        for name, partners in partner_names.items():
            for p in partners:
                self._adj[idx[name], idx[p]] = True
        self._tracked = [idx[name] for name in names if name in partner_names]
        self._partners_by_code = {
            idx[name]: [idx[p] for p in partners]
            for name, partners in partner_names.items()
        }

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._freq = np.zeros((n_trials, n_slots), dtype=np.int64)
        self._counts = {
            code: [dict() for _ in range(n_trials)] for code in self._tracked
        }

    def aux_arrays(self) -> tuple[np.ndarray, ...]:
        return (self._freq,)

    def begin_step(self, state, t: int, vals) -> None:
        for code in self._tracked:
            counts = self._counts[code]
            for b, v in enumerate(vals[code].tolist()):
                if v != NONE_VALUE:
                    counts[b][v] = counts[b].get(v, 0) + 1
        for code in self._tracked:
            v = vals[code]
            has = v != NONE_VALUE
            if not has.any():
                continue
            safe = np.where(has, v, 0)
            # Dead slots' garbage side codes may index anywhere in the
            # adjacency column; the alive mask discards those lookups.
            partnered = self._adj[:, code][state.side]
            self._freq += (
                state.alive
                & partnered
                & has[:, None]
                & (state.val == safe[:, None])
            )

    def on_admit(self, state, rows, cols, side_code: int, values, t: int) -> None:
        partners = self._partners_by_code[side_code]
        counts = self._counts
        self._freq[rows, cols] = [
            sum(counts[p][b].get(v, 0) for p in partners)
            for b, v in zip(rows.tolist(), values.tolist())
        ]

    def scores(self, state, t: int) -> np.ndarray:
        return self._freq.astype(np.float64)


class BatchMultiStationaryHeeb(BatchMultiPolicy):
    """Generic joining HEEB on n-way topologies of stationary streams.

    Appendix C sums the binary benefit over every partner stream; for
    i.i.d. partners each term depends on the candidate's value only, so
    one dense per-stream table (the scalar ``heeb_join`` summed over the
    partners in partner order — identical floats for every query time)
    turns scoring into an array lookup per stream code.
    """

    name = "HEEB"

    def __init__(self, strategy: GenericJoinHeeb, models, partner_names):
        self._tables: dict[str, tuple[int, np.ndarray]] = {}
        for name, partners in partner_names.items():
            lo = min(models[p].dist.min_value for p in partners)
            hi = max(models[p].dist.max_value for p in partners)
            values = []
            for v in range(lo, hi + 1):
                total = 0.0
                for p in partners:
                    total += heeb_join(
                        models[p], 0, v, strategy.estimator, strategy.horizon
                    )
                values.append(total)
            self._tables[name] = (lo, np.array(values))
        self._by_code: list[Optional[tuple[int, np.ndarray]]] = []

    def bind(self, names, partner_names) -> None:
        # Streams outside every query are never cached, hence never scored.
        self._by_code = [self._tables.get(name) for name in names]

    def scores(self, state, t: int) -> np.ndarray:
        out = np.zeros(state.val.shape)
        for code, entry in enumerate(self._by_code):
            if entry is None:
                continue
            mask = state.side == code
            if not mask.any():
                continue
            lo, tab = entry
            out = np.where(mask, _dense_lookup(tab, lo, state.val), out)
        return out


class BatchMultiTrie(BatchMultiPolicy):
    """Trie caching on n-way topologies: the binary replay, per-stream levels.

    The scalar policy derives its trie levels from the run's partner map
    (one level per query stream), so the adapter builds its
    :class:`_TrieReplayCore` in :meth:`bind` — the simulator binds before
    resetting.  Node benefits sum :func:`~repro.core.heeb.heeb_join`
    over the cached stream's partners in partner order, shared across
    trials through the core's memo; requires every partner model to be
    present and independent.
    """

    name = "TRIE"
    scored = False

    def __init__(self, policy: TrieCachePolicy, models):
        self._policy = policy
        self._models = models
        self._core: Optional[_TrieReplayCore] = None

    def bind(self, names, partner_names) -> None:
        models = self._models
        policy = self._policy
        estimator = policy.estimator
        horizon = policy.horizon
        names = list(names)
        partner_lists = {
            name: tuple(partners) for name, partners in partner_names.items()
        }

        def score_of(code: int, value: int, t: int) -> float:
            total = 0.0
            for p in partner_lists[names[code]]:
                total += heeb_join(models[p], t, value, estimator, horizon)
            return total

        consulted = {p for partners in partner_lists.values() for p in partners}
        persistent = all(
            isinstance(models[p], StationaryStream) for p in consulted
        )
        self._core = _TrieReplayCore(
            tuple(partner_names),
            {code: name for code, name in enumerate(names)},
            score_of,
            policy.beta,
            policy.min_share,
            persistent,
        )

    def reset(self, n_trials: int, n_slots: int) -> None:
        assert self._core is not None, "bind() must precede reset()"
        self._core.reset(n_trials)

    def select(self, state, n_evict, t: int) -> np.ndarray:
        assert self._core is not None
        return self._core.select(state, n_evict, t)

    def series_logs(self) -> dict[str, list[list[tuple[int, float]]]]:
        assert self._core is not None
        return self._core.series_logs()


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def _batch_heeb(
    policy: HeebPolicy,
    kind: str,
    r_model: Optional[StreamModel],
    s_model: Optional[StreamModel],
    window: Optional[int],
) -> BatchPolicy:
    strategy = policy.strategy
    if isinstance(strategy, TrendJoinHeeb):
        if (
            kind == "join"
            and isinstance(r_model, LinearTrendStream)
            and isinstance(s_model, LinearTrendStream)
        ):
            if window is not None:
                # The windowed branch of the scalar h_value applies at
                # every speed; the memo-gather replay covers it whole.
                return BatchWindowedTrendJoinHeeb(
                    strategy, r_model, s_model, window
                )
            if r_model.speed == 1.0 and s_model.speed == 1.0:
                return BatchTrendJoinHeeb(strategy, r_model, s_model)
    elif isinstance(strategy, WalkJoinHeeb):
        # Walk/AR1/band scoring never consults the window (expiry is
        # simulator-level), so these adapters hold windowed or not.
        if (
            kind == "join"
            and isinstance(r_model, RandomWalkStream)
            and isinstance(s_model, RandomWalkStream)
        ):
            return BatchWalkJoinHeeb(strategy, r_model, s_model)
    elif isinstance(strategy, WalkCacheHeeb):
        if kind == "cache":
            return BatchWalkCacheHeeb(strategy)
    elif isinstance(strategy, AR1CacheHeeb):
        if kind == "cache":
            return BatchSurfaceHeeb(strategy.surface, strategy.model, "cache")
    elif isinstance(strategy, AR1JoinHeeb):
        if kind == "join":
            return BatchSurfaceHeeb(strategy.surface, strategy.model, "join")
    elif isinstance(strategy, BandJoinHeeb):
        if (
            kind == "join"
            and isinstance(r_model, StationaryStream)
            and isinstance(s_model, StationaryStream)
        ):
            return BatchBandJoinHeeb(strategy, r_model, s_model)
    elif isinstance(strategy, GenericJoinHeeb):
        if (
            kind == "join"
            and isinstance(r_model, StationaryStream)
            and isinstance(s_model, StationaryStream)
        ):
            if window is not None:
                if not isinstance(strategy.estimator, LExp):
                    raise _unbatchable(
                        policy.name,
                        "its windowed form clips L per tuple, which "
                        "requires an LExp base estimator",
                    )
                return BatchWindowedStationaryJoinHeeb(
                    strategy, r_model, s_model, window
                )
            return BatchStationaryJoinHeeb(strategy, r_model, s_model)
    raise _unbatchable(
        policy.name,
        f"HEEB strategy {type(strategy).__name__} has no exact replay "
        f"on this stream configuration",
    )


def _batch_trie(
    policy: TrieCachePolicy,
    kind: str,
    r_model: Optional[StreamModel],
    s_model: Optional[StreamModel],
) -> BatchPolicy:
    """Exact trie dispatch: require every consulted model, independent."""
    consulted = (r_model,) if kind == "cache" else (r_model, s_model)
    if any(m is None for m in consulted):
        raise _unbatchable(
            policy.name,
            "its frequency fallback folds per-trial stream histories",
        )
    if any(not m.is_independent for m in consulted):  # type: ignore[union-attr]
        raise _unbatchable(
            policy.name,
            "history-anchored models condition node benefits on "
            "per-trial observations",
        )
    return BatchTrie(policy, kind, r_model, s_model)  # type: ignore[arg-type]


def _batch_flowexpect(
    policy: FlowExpectPolicy,
    kind: str,
    r_model: Optional[StreamModel],
    s_model: Optional[StreamModel],
    cache_size: Optional[int],
) -> BatchPolicy:
    """Exact FlowExpect dispatch: fast path, resolved independent models."""
    if kind != "join":
        raise _unbatchable(
            policy.name, "the lookahead flow network is a joining construct"
        )
    if not policy.fast:
        raise _unbatchable(
            policy.name, "fast=False pins the networkx reference pipeline"
        )
    r = policy.r_model or r_model
    s = policy.s_model or s_model
    if r is None or s is None:
        raise _unbatchable(
            policy.name, "its cost matrix needs both stream models resolved"
        )
    if not (r.is_independent and s.is_independent):
        raise _unbatchable(
            policy.name,
            "Markov models rebind per-trial history anchors every step",
        )
    if cache_size is None:
        raise _unbatchable(
            policy.name, "its flow amount needs the cache size at build time"
        )
    return BatchFlowExpect(policy, r, s, cache_size)


def _check_sketch_free(policy: ReplacementPolicy) -> None:
    """Refuse batch adapters for sketch-frontend configurations.

    The batch adapters are exact-parity replays of the scalar decisions;
    count-min estimates and admission rejections are stateful
    approximations with no decision-identical vectorized counterpart, so
    the engine negotiation must fall back to the scalar loop for them
    (``counts="exact"`` without an admission filter stays batchable and
    seed-for-seed identical).
    """
    if getattr(policy, "admission", None) is not None:
        raise _unbatchable(
            policy.name,
            "the admission filter's doorkeeper/EMA state has no exact "
            "batch replay",
        )
    if isinstance(policy, ProbPolicy) and policy.counts != "exact":
        raise _unbatchable(
            policy.name,
            f"sketch-backed counts ({policy.counts!r}) are approximate; "
            "BatchProb replays exact counts",
        )


def _batch_multi(policy: ReplacementPolicy, models, queries) -> BatchMultiPolicy:
    """Exact multi-join adapter dispatch (see :func:`make_batch_policy`)."""
    from ..sim.step import multi_partner_names

    if not queries:
        raise ValueError("multi_join batch adapters need at least one query")
    partner_names = multi_partner_names(queries)
    if isinstance(policy, RandPolicy):
        return BatchMultiRand(policy.seed)
    if isinstance(policy, LrukPolicy):
        raise _unbatchable(
            policy.name,
            "LRU-k per-value reference histories have no n-way "
            "vectorized replay",
        )
    if isinstance(policy, LruPolicy):
        return BatchMultiLru()
    if isinstance(policy, ProbPolicy):
        # LFU subclasses PROB (identical mechanics, different label).
        adapter = BatchMultiProb()
        adapter.name = policy.name
        return adapter
    if isinstance(policy, TrieCachePolicy):
        consulted: list[str] = []
        for partners in partner_names.values():
            for p in partners:
                if p not in consulted:
                    consulted.append(p)
        if models is None or any(models.get(p) is None for p in consulted):
            raise _unbatchable(
                policy.name,
                "its frequency fallback folds per-trial stream histories",
            )
        if any(not models[p].is_independent for p in consulted):
            raise _unbatchable(
                policy.name,
                "history-anchored models condition node benefits on "
                "per-trial observations",
            )
        return BatchMultiTrie(policy, models)
    if isinstance(policy, HeebPolicy):
        strategy = policy.strategy
        if (
            isinstance(strategy, GenericJoinHeeb)
            and models is not None
            and all(
                isinstance(models.get(name), StationaryStream)
                for name in partner_names
            )
        ):
            return BatchMultiStationaryHeeb(strategy, models, partner_names)
        raise _unbatchable(
            policy.name,
            f"HEEB strategy {type(strategy).__name__} has no n-way replay "
            f"unless every query-stream model is stationary",
        )
    raise _unbatchable(
        policy.name,
        f"no multi-join adapter for policy type {type(policy).__name__}",
    )


def make_batch_policy(
    policy: ReplacementPolicy,
    kind: str = "join",
    r_model: Optional[StreamModel] = None,
    s_model: Optional[StreamModel] = None,
    window: Optional[int] = None,
    window_oracle: Optional[WindowOracle] = None,
    models=None,
    queries=None,
    cache_size: Optional[int] = None,
) -> BatchPolicy:
    """Build the exact batch adapter for a scalar policy instance.

    For ``kind="multi_join"`` the topology is described by ``queries``
    (binary stream-name pairs) and ``models`` (per-stream models for the
    model-aware policies); the returned adapter is a
    :class:`BatchMultiPolicy` that the simulator still has to
    :meth:`~BatchMultiPolicy.bind` to the run's stream order.
    ``cache_size`` is only consulted by the FlowExpect adapter, whose
    flow amount is fixed at build time.

    Raises :class:`UnbatchablePolicyError` when no exact adapter exists;
    callers (the engine negotiation) fall back to the scalar loop.  All
    refusals share the normalized ``<POLICY> has no exact batch adapter
    (<reason>); it runs on the scalar tier`` shape.
    """
    _check_sketch_free(policy)
    if kind == "multi_join":
        return _batch_multi(policy, models, queries)
    if kind not in ("join", "cache"):
        raise ValueError(f"unknown kind {kind!r}")
    if isinstance(policy, RandPolicy):
        return BatchRand(policy.seed, _batch_oracle(window_oracle, policy.name))
    if isinstance(policy, LrukPolicy):
        return BatchLruK(policy.k)
    if isinstance(policy, LruPolicy):
        return BatchLru()
    if isinstance(policy, LifePolicy):
        return BatchLife(kind, _batch_oracle(window_oracle, policy.name))
    if isinstance(policy, ProbPolicy):
        # LFU subclasses PROB (identical mechanics, different label).
        adapter = BatchProb(kind, _batch_oracle(window_oracle, policy.name))
        adapter.name = policy.name
        return adapter
    if isinstance(policy, TrieCachePolicy):
        return _batch_trie(policy, kind, r_model, s_model)
    if isinstance(policy, FlowExpectPolicy):
        return _batch_flowexpect(policy, kind, r_model, s_model, cache_size)
    if isinstance(policy, HeebPolicy):
        return _batch_heeb(policy, kind, r_model, s_model, window)
    raise _unbatchable(
        policy.name,
        f"no adapter for policy type {type(policy).__name__}",
    )
