"""Batch-aware replacement-policy adapters for the vectorized engine.

The batch simulators in :mod:`repro.sim.batch` run ``B`` independent
Monte-Carlo trials simultaneously over ``(B, slots)`` state arrays.  Each
adapter here mirrors one scalar policy *exactly*: for the same per-trial
seeds the batch engine's eviction decisions are identical to the scalar
:class:`~repro.sim.join_sim.JoinSimulator` /
:class:`~repro.sim.cache_sim.CacheSimulator` runs, which the equivalence
suite (``tests/test_batch_equivalence.py``) asserts tuple-for-tuple.

Equivalence is achieved by construction rather than by approximation:

* scored adapters reproduce the scalar score formula with the same
  floating-point operations (PROB's integer frequencies, LRU's last-use
  times, HEEB's precomputed tables reused verbatim), and the engine
  breaks ties by tuple uid exactly like
  :class:`~repro.policies.base.ScoredPolicy`;
* RAND keeps one ``numpy.random.Generator`` per trial, seeded like the
  scalar policy, and issues the identical sequence of ``choice`` calls;
* the window-oracle logic of Section 6.2 (dead tuples first) is
  vectorized for :class:`~repro.policies.window_oracle.TrendWindowOracle`.

Policies whose state cannot be expressed as per-slot arrays (FlowExpect,
OPT-offline schedules, LRU-k, generic model-driven HEEB) raise
:class:`UnbatchablePolicyError` from :func:`make_batch_policy`; the
runner then falls back to the scalar loop, so mixing batchable and
unbatchable policies in one experiment is seamless.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..core.heeb import heeb_join
from ..core.precompute import H1Table, H2Surface
from ..streams.ar1 import AR1Stream
from ..streams.base import StreamModel
from ..streams.linear_trend import LinearTrendStream
from ..streams.random_walk import RandomWalkStream
from ..streams.stationary import StationaryStream
from .base import ReplacementPolicy, WindowOracle
from .heeb_policy import (
    AR1CacheHeeb,
    AR1JoinHeeb,
    GenericJoinHeeb,
    HeebPolicy,
    TrendJoinHeeb,
    WalkCacheHeeb,
    WalkJoinHeeb,
)
from .life import LifePolicy
from .lru import LrukPolicy, LruPolicy
from .prob import ProbPolicy, _DEAD_PENALTY
from .rand import RandPolicy
from .window_oracle import TrendWindowOracle

__all__ = [
    "NONE_VALUE",
    "R_CODE",
    "S_CODE",
    "UnbatchablePolicyError",
    "BatchPolicy",
    "BatchRand",
    "BatchLru",
    "BatchProb",
    "BatchLife",
    "BatchTrendJoinHeeb",
    "BatchWalkJoinHeeb",
    "BatchWalkCacheHeeb",
    "BatchStationaryJoinHeeb",
    "BatchSurfaceHeeb",
    "BatchTrendOracle",
    "BatchMultiPolicy",
    "BatchMultiRand",
    "BatchMultiLru",
    "BatchMultiProb",
    "BatchMultiStationaryHeeb",
    "make_batch_policy",
]

#: Sentinel encoding the paper's "−" (``None``) value in integer arrays.
NONE_VALUE = np.iinfo(np.int64).min

#: Integer side codes used by the ``(B, slots)`` state arrays.
R_CODE = 0
S_CODE = 1


class UnbatchablePolicyError(TypeError):
    """The policy has no exact batch adapter; run it on the scalar path."""


class BatchPolicy(abc.ABC):
    """One replacement policy vectorized across ``B`` independent trials.

    The engine drives the adapter through the same event sequence the
    scalar simulators use (history observation, expiry, references,
    admissions, victim selection), but each event covers all trials at
    once.  Auxiliary per-slot state (recency stamps, frequency counts)
    lives in ``(B, slots)`` arrays returned by :meth:`aux_arrays`; the
    engine permutes them in lockstep with the tuple slots whenever the
    cache is compacted, so adapters never track slot movement themselves.
    """

    name: str = "batch-policy"

    #: Scored adapters return a ``(B, slots)`` score array and let the
    #: engine pick the ``n_evict`` lowest (score, uid) slots per trial.
    #: Non-scored adapters implement :meth:`select` directly.
    scored: bool = True

    def reset(self, n_trials: int, n_slots: int) -> None:
        """Allocate per-run state before a batch run starts."""

    def aux_arrays(self) -> tuple[np.ndarray, ...]:
        """Per-slot arrays the engine must permute on cache compaction."""
        return ()

    def begin_step(self, state, t: int, r_vals, s_vals) -> None:
        """Observe this step's arrivals (all trials), before any probing.

        ``r_vals`` / ``s_vals`` are ``(B,)`` int64 arrays using
        :data:`NONE_VALUE` for "−"; ``s_vals`` is ``None`` for the
        caching problem.
        """

    def on_reference(self, state, mask, t: int) -> None:
        """Slots flagged in ``mask`` joined an arrival / produced a hit."""

    def on_admit(self, state, rows, cols, side_code: int, values, t: int) -> None:
        """New tuples appeared at ``(rows, cols)`` (before selection)."""

    def scores(self, state, t: int) -> np.ndarray:
        """Keep-desirability per slot; garbage in dead slots is fine."""
        raise NotImplementedError

    def select(self, state, n_evict, t: int) -> np.ndarray:
        """Boolean victim mask for non-scored adapters."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# Window oracle
# ----------------------------------------------------------------------
class BatchTrendOracle:
    """Vectorized :class:`TrendWindowOracle` over ``(B, slots)`` arrays.

    Reproduces the scalar arithmetic (float division + floor) exactly so
    the dead/alive split and LIFE's remaining lifetimes match the scalar
    oracle element-for-element.
    """

    _FOREVER = float(2**62)

    def __init__(self, oracle: TrendWindowOracle):
        self._partner_of = {
            R_CODE: oracle.partner_model("R"),
            S_CODE: oracle.partner_model("S"),
        }

    def last_joinable(self, state) -> np.ndarray:
        """Latest joinable time per slot, as float64 (huge = forever)."""
        out = np.empty(state.val.shape, dtype=np.float64)
        for code, partner in self._partner_of.items():
            if partner.speed == 0:
                lj = np.full(state.val.shape, self._FOREVER)
            else:
                lj = partner.lag + np.floor(
                    (state.val - partner.noise.min_value - partner.intercept)
                    / partner.speed
                )
            mask = state.side == code
            out[mask] = lj[mask]
        return out

    def dead(self, state, t: int) -> np.ndarray:
        return self.last_joinable(state) <= t

    def remaining_life(self, state, t: int) -> np.ndarray:
        return np.maximum(0.0, self.last_joinable(state) - t)


def _batch_oracle(oracle: Optional[WindowOracle]) -> Optional[BatchTrendOracle]:
    if oracle is None:
        return None
    if isinstance(oracle, TrendWindowOracle):
        return BatchTrendOracle(oracle)
    raise UnbatchablePolicyError(
        f"no batch adapter for window oracle {type(oracle).__name__}"
    )


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
class BatchRand(BatchPolicy):
    """RAND with one generator per trial, replaying the scalar call trace.

    The scalar policy evicts oracle-dead tuples first (in candidate
    order) and fills the remainder with ``rng.choice`` over the live
    candidates; both the candidate ordering (slot order equals cache
    insertion order) and the per-trial RNG call pattern are preserved, so
    trial ``b`` makes exactly the draws scalar run ``b`` makes.
    """

    name = "RAND"
    scored = False

    def __init__(self, seed: int, oracle: Optional[BatchTrendOracle] = None):
        self._seed = seed
        self._oracle = oracle
        self._rngs: list[np.random.Generator] = []

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._rngs = [np.random.default_rng(self._seed) for _ in range(n_trials)]

    def select(self, state, n_evict, t: int) -> np.ndarray:
        victims = np.zeros(state.alive.shape, dtype=bool)
        if self._oracle is not None:
            dead = (self._oracle.dead(state, t) & state.alive).tolist()
        else:
            dead = None
        # Alive slots occupy the row prefix, so candidate positions are
        # simply range(alive count); plain-Python bookkeeping beats
        # per-trial numpy calls at these sizes, and the per-trial
        # ``choice`` call replays the scalar policy's RNG stream exactly.
        counts = state.alive.sum(axis=1).tolist()
        rngs = self._rngs
        rows: list[int] = []
        cols: list[int] = []
        for b, ne in enumerate(n_evict.tolist()):
            if ne <= 0:
                continue
            cnt = counts[b]
            flags = dead[b] if dead is not None else None
            if flags is not None and True in flags:
                chosen = [i for i in range(cnt) if flags[i]][:ne]
                live = [i for i in range(cnt) if not flags[i]]
            else:
                chosen = []
                live = range(cnt)
            remaining = ne - len(chosen)
            if remaining > 0:
                picks = rngs[b].choice(len(live), size=remaining, replace=False)
                chosen.extend(live[i] for i in picks.tolist())
            rows.extend([b] * len(chosen))
            cols.extend(chosen)
        victims[rows, cols] = True
        return victims


class BatchLru(BatchPolicy):
    """LRU: per-slot last-use stamps; new arrivals count as just used."""

    name = "LRU"

    def __init__(self) -> None:
        self._last_use = np.zeros((0, 0), dtype=np.int64)

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._last_use = np.zeros((n_trials, n_slots), dtype=np.int64)

    def aux_arrays(self) -> tuple[np.ndarray, ...]:
        return (self._last_use,)

    def on_reference(self, state, mask, t: int) -> None:
        self._last_use[mask] = t

    def on_admit(self, state, rows, cols, side_code: int, values, t: int) -> None:
        self._last_use[rows, cols] = t

    def scores(self, state, t: int) -> np.ndarray:
        return self._last_use.astype(np.float64)


class BatchProb(BatchPolicy):
    """PROB / LFU: observed partner-value frequencies, kept incrementally.

    Cached slots carry their frequency as per-slot state updated by array
    comparisons against each step's arrivals; only the two dictionary
    updates per trial per step (the global value counters, needed to
    initialize newly admitted tuples) remain Python-level, so the scoring
    path is entirely vectorized.
    """

    name = "PROB"

    def __init__(self, kind: str, oracle: Optional[BatchTrendOracle] = None):
        if kind not in ("join", "cache"):
            raise ValueError(f"unknown kind {kind!r}")
        self._kind = kind
        self._oracle = oracle
        self._freq = np.zeros((0, 0), dtype=np.int64)
        self._r_counts: list[dict] = []
        self._s_counts: list[dict] = []

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._freq = np.zeros((n_trials, n_slots), dtype=np.int64)
        self._r_counts = [dict() for _ in range(n_trials)]
        self._s_counts = [dict() for _ in range(n_trials)]

    def aux_arrays(self) -> tuple[np.ndarray, ...]:
        return (self._freq,)

    def begin_step(self, state, t: int, r_vals, s_vals) -> None:
        for counts, v in zip(self._r_counts, r_vals.tolist()):
            if v != NONE_VALUE:
                counts[v] = counts.get(v, 0) + 1
        if s_vals is not None:
            for counts, w in zip(self._s_counts, s_vals.tolist()):
                if w != NONE_VALUE:
                    counts[w] = counts.get(w, 0) + 1
        # A slot's frequency counts its value in the stream it matches:
        # R-side tuples match S arrivals and vice versa; in the caching
        # problem every (database) tuple matches the reference stream R.
        if self._kind == "cache":
            hit_r = (
                state.alive
                & (r_vals[:, None] != NONE_VALUE)
                & (state.val == np.where(r_vals == NONE_VALUE, 0, r_vals)[:, None])
            )
            self._freq += hit_r
        else:
            r_safe = np.where(r_vals == NONE_VALUE, 0, r_vals)
            s_safe = np.where(s_vals == NONE_VALUE, 0, s_vals)
            self._freq += (
                state.alive
                & (state.side == R_CODE)
                & (s_vals[:, None] != NONE_VALUE)
                & (state.val == s_safe[:, None])
            )
            self._freq += (
                state.alive
                & (state.side == S_CODE)
                & (r_vals[:, None] != NONE_VALUE)
                & (state.val == r_safe[:, None])
            )

    def on_admit(self, state, rows, cols, side_code: int, values, t: int) -> None:
        if self._kind == "cache" or side_code == S_CODE:
            source = self._r_counts
        else:
            source = self._s_counts
        self._freq[rows, cols] = [
            source[b].get(v, 0) for b, v in zip(rows.tolist(), values.tolist())
        ]

    def scores(self, state, t: int) -> np.ndarray:
        sc = self._freq.astype(np.float64)
        if self._oracle is not None:
            sc = np.where(self._oracle.dead(state, t), sc - _DEAD_PENALTY, sc)
        return sc


class BatchLife(BatchPolicy):
    """LIFE: match-probability estimate × oracle remaining lifetime."""

    name = "LIFE"

    def __init__(self, kind: str, oracle: Optional[BatchTrendOracle]):
        if oracle is None:
            raise UnbatchablePolicyError(
                "LIFE requires a window oracle to determine tuple lifetimes"
            )
        self._prob = BatchProb(kind)
        self._oracle = oracle

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._prob.reset(n_trials, n_slots)

    def aux_arrays(self) -> tuple[np.ndarray, ...]:
        return self._prob.aux_arrays()

    def begin_step(self, state, t: int, r_vals, s_vals) -> None:
        self._prob.begin_step(state, t, r_vals, s_vals)

    def on_admit(self, state, rows, cols, side_code: int, values, t: int) -> None:
        self._prob.on_admit(state, rows, cols, side_code, values, t)

    def scores(self, state, t: int) -> np.ndarray:
        life = self._oracle.remaining_life(state, t)
        freq = self._prob._freq.astype(np.float64)
        total = float(max(1, t + 1))
        return (freq / total) * life


# ----------------------------------------------------------------------
# HEEB strategies
# ----------------------------------------------------------------------
def _dense_lookup(values: np.ndarray, lo: int, offsets: np.ndarray) -> np.ndarray:
    """Index a dense offset-table, returning 0.0 outside its range."""
    if values.size == 0:
        return np.zeros(offsets.shape)
    idx = offsets - lo
    valid = (idx >= 0) & (idx < values.size)
    return np.where(valid, values[np.clip(idx, 0, values.size - 1)], 0.0)


class BatchTrendJoinHeeb(BatchPolicy):
    """HEEB over unit-speed linear trends, via the Corollary-5 tables.

    Reads the exact per-offset tables the scalar
    :class:`~repro.policies.heeb_policy.TrendJoinHeeb` builds, densified
    into arrays, so batch and scalar scores are bit-identical.
    """

    name = "HEEB"

    def __init__(
        self,
        strategy: TrendJoinHeeb,
        r_model: LinearTrendStream,
        s_model: LinearTrendStream,
    ):
        self._r_model = r_model
        self._s_model = s_model
        # Keys mirror the scalar policy's cache: the table for side-X
        # tuples is built from the partner stream of X.
        self._lo_for_r, self._tab_for_r = strategy.table_array(
            s_model, "partner-of-R"
        )
        self._lo_for_s, self._tab_for_s = strategy.table_array(
            r_model, "partner-of-S"
        )

    def scores(self, state, t: int) -> np.ndarray:
        d_r = state.val - self._s_model.trend(t)
        d_s = state.val - self._r_model.trend(t)
        sc_r = _dense_lookup(self._tab_for_r, self._lo_for_r, d_r)
        sc_s = _dense_lookup(self._tab_for_s, self._lo_for_s, d_s)
        return np.where(state.side == R_CODE, sc_r, sc_s)


class BatchWalkJoinHeeb(BatchPolicy):
    """HEEB over random walks: vectorized ``h1`` lookups (Theorem 5(2))."""

    name = "HEEB"

    def __init__(
        self,
        strategy: WalkJoinHeeb,
        r_model: RandomWalkStream,
        s_model: RandomWalkStream,
    ):
        self._tab_for_r: H1Table = strategy.table_for(s_model, "partner-of-R")
        self._tab_for_s: H1Table = strategy.table_for(r_model, "partner-of-S")

    def scores(self, state, t: int) -> np.ndarray:
        no_s = state.last_s == NONE_VALUE
        no_r = state.last_r == NONE_VALUE
        anchor_s = np.where(no_s, 0, state.last_s)
        anchor_r = np.where(no_r, 0, state.last_r)
        sc_r = np.where(
            no_s[:, None], 0.0, self._tab_for_r.lookup(state.val - anchor_s[:, None])
        )
        sc_s = np.where(
            no_r[:, None], 0.0, self._tab_for_s.lookup(state.val - anchor_r[:, None])
        )
        return np.where(state.side == R_CODE, sc_r, sc_s)


class BatchWalkCacheHeeb(BatchPolicy):
    """Caching HEEB for random-walk references: one shared ``h1`` curve."""

    name = "HEEB"

    def __init__(self, strategy: WalkCacheHeeb):
        self._table = strategy.table

    def scores(self, state, t: int) -> np.ndarray:
        no_r = state.last_r == NONE_VALUE
        anchor = np.where(no_r, 0, state.last_r)
        return np.where(
            no_r[:, None], 0.0, self._table.lookup(state.val - anchor[:, None])
        )


class BatchStationaryJoinHeeb(BatchPolicy):
    """Generic joining HEEB specialized to stationary partners.

    For i.i.d. streams ``H`` depends on the candidate's value only, so
    the scalar ``heeb_join`` is evaluated once per support value into a
    dense table (identical floats for every query time) and scoring is a
    pure array lookup.
    """

    name = "HEEB"

    def __init__(
        self,
        strategy: GenericJoinHeeb,
        r_model: StationaryStream,
        s_model: StationaryStream,
    ):
        self._lo_for_r, self._tab_for_r = self._build(strategy, s_model)
        self._lo_for_s, self._tab_for_s = self._build(strategy, r_model)

    @staticmethod
    def _build(
        strategy: GenericJoinHeeb, partner: StationaryStream
    ) -> tuple[int, np.ndarray]:
        lo, hi = partner.dist.min_value, partner.dist.max_value
        values = np.array(
            [
                heeb_join(partner, 0, v, strategy.estimator, strategy.horizon)
                for v in range(lo, hi + 1)
            ]
        )
        return lo, values

    def scores(self, state, t: int) -> np.ndarray:
        sc_r = _dense_lookup(self._tab_for_r, self._lo_for_r, state.val)
        sc_s = _dense_lookup(self._tab_for_s, self._lo_for_s, state.val)
        return np.where(state.side == R_CODE, sc_r, sc_s)


class BatchSurfaceHeeb(BatchPolicy):
    """AR(1) HEEB via the precomputed ``h2`` spline surface (Theorem 5(1)).

    Uses pointwise spline evaluation
    (:meth:`~repro.core.precompute.H2Surface.evaluate_many`); agrees with
    the scalar strategies to floating-point evaluation order, which is
    close but not guaranteed bit-identical — the one adapter outside the
    bit-exactness guarantee.
    """

    name = "HEEB"

    def __init__(self, surface: H2Surface, model: AR1Stream, kind: str):
        self._surface = surface
        self._model = model
        self._kind = kind

    def _latent(self, anchors: np.ndarray) -> np.ndarray:
        return anchors * self._model.bucket

    def scores(self, state, t: int) -> np.ndarray:
        if self._kind == "cache":
            no_anchor = state.last_r == NONE_VALUE
            anchor = np.where(no_anchor, 0, state.last_r)
            latent = self._latent(anchor)[:, None]
            latent = np.broadcast_to(latent, state.val.shape)
            sc = self._surface.evaluate_many(state.val.astype(np.float64), latent)
            return np.where(no_anchor[:, None], 0.0, sc)
        no_s = state.last_s == NONE_VALUE
        no_r = state.last_r == NONE_VALUE
        lat_s = self._latent(np.where(no_s, 0, state.last_s))[:, None]
        lat_r = self._latent(np.where(no_r, 0, state.last_r))[:, None]
        vals = state.val.astype(np.float64)
        sc_r = self._surface.evaluate_many(
            vals, np.broadcast_to(lat_s, vals.shape)
        )
        sc_s = self._surface.evaluate_many(
            vals, np.broadcast_to(lat_r, vals.shape)
        )
        sc_r = np.where(no_s[:, None], 0.0, sc_r)
        sc_s = np.where(no_r[:, None], 0.0, sc_s)
        return np.where(state.side == R_CODE, sc_r, sc_s)


# ----------------------------------------------------------------------
# Multi-join adapters
# ----------------------------------------------------------------------
class BatchMultiPolicy(BatchPolicy):
    """One replacement policy vectorized over an n-way join topology.

    Multi-join state arrays use *stream codes* — the index of the stream
    name in the run's arrival order — as ``side`` values, so the adapter
    must learn the code assignment before the run starts: the simulator
    calls :meth:`bind` with the stream names and the partner map, then
    :meth:`reset` as usual.  ``begin_step`` receives one ``(B,)`` value
    column per stream, indexed by code, instead of the binary R/S pair.
    """

    def bind(self, names, partner_names) -> None:
        """Learn the name → code assignment of this run (before reset)."""

    def begin_step(self, state, t: int, vals) -> None:  # type: ignore[override]
        """Observe this step's arrivals: ``vals[code]`` is ``(B,)`` int64."""


class BatchMultiRand(BatchMultiPolicy):
    """RAND on an n-way topology: per-trial generators, scalar call trace.

    The scalar policy (and the legacy ``MultiRandPolicy``, whose uid
    pre-sort is the identity on simulator-supplied candidate lists) draws
    ``rng.choice`` over the candidates in cache-insertion order; the
    row-prefix layout preserves that order, so delegating to
    :class:`BatchRand`'s oracle-free select replays the exact draws.
    """

    name = "RAND"
    scored = False

    def __init__(self, seed: int):
        self._inner = BatchRand(seed)

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._inner.reset(n_trials, n_slots)

    def select(self, state, n_evict, t: int) -> np.ndarray:
        return self._inner.select(state, n_evict, t)


class BatchMultiLru(BatchMultiPolicy):
    """LRU on an n-way topology: the binary stamp logic, name-agnostic."""

    name = "LRU"

    def __init__(self) -> None:
        self._inner = BatchLru()

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._inner.reset(n_trials, n_slots)

    def aux_arrays(self) -> tuple[np.ndarray, ...]:
        return self._inner.aux_arrays()

    def on_reference(self, state, mask, t: int) -> None:
        self._inner.on_reference(state, mask, t)

    def on_admit(self, state, rows, cols, side_code: int, values, t: int) -> None:
        self._inner.on_admit(state, rows, cols, side_code, values, t)

    def scores(self, state, t: int) -> np.ndarray:
        return self._inner.scores(state, t)


class BatchMultiProb(BatchMultiPolicy):
    """PROB / LFU over many streams: per-partner frequency summation.

    A tuple's frequency sums its value's observed count over *every*
    partner stream (the scalar policy's n-way rule).  Cached slots carry
    that sum as per-slot state updated by array comparisons against each
    step's arrivals; one dictionary update per trial per arriving stream
    (the global value counters, needed to initialize newly admitted
    tuples) remains Python-level, exactly like the binary adapter.
    """

    name = "PROB"

    def __init__(self) -> None:
        self._freq = np.zeros((0, 0), dtype=np.int64)
        self._adj = np.zeros((0, 0), dtype=bool)
        self._tracked: list[int] = []
        self._partners_by_code: dict[int, list[int]] = {}
        self._counts: dict[int, list[dict]] = {}

    def bind(self, names, partner_names) -> None:
        idx = {name: i for i, name in enumerate(names)}
        n = len(names)
        # adj[cached_code, arriving_code]: does the arrival probe the slot?
        self._adj = np.zeros((n, n), dtype=bool)
        for name, partners in partner_names.items():
            for p in partners:
                self._adj[idx[name], idx[p]] = True
        self._tracked = [idx[name] for name in names if name in partner_names]
        self._partners_by_code = {
            idx[name]: [idx[p] for p in partners]
            for name, partners in partner_names.items()
        }

    def reset(self, n_trials: int, n_slots: int) -> None:
        self._freq = np.zeros((n_trials, n_slots), dtype=np.int64)
        self._counts = {
            code: [dict() for _ in range(n_trials)] for code in self._tracked
        }

    def aux_arrays(self) -> tuple[np.ndarray, ...]:
        return (self._freq,)

    def begin_step(self, state, t: int, vals) -> None:
        for code in self._tracked:
            counts = self._counts[code]
            for b, v in enumerate(vals[code].tolist()):
                if v != NONE_VALUE:
                    counts[b][v] = counts[b].get(v, 0) + 1
        for code in self._tracked:
            v = vals[code]
            has = v != NONE_VALUE
            if not has.any():
                continue
            safe = np.where(has, v, 0)
            # Dead slots' garbage side codes may index anywhere in the
            # adjacency column; the alive mask discards those lookups.
            partnered = self._adj[:, code][state.side]
            self._freq += (
                state.alive
                & partnered
                & has[:, None]
                & (state.val == safe[:, None])
            )

    def on_admit(self, state, rows, cols, side_code: int, values, t: int) -> None:
        partners = self._partners_by_code[side_code]
        counts = self._counts
        self._freq[rows, cols] = [
            sum(counts[p][b].get(v, 0) for p in partners)
            for b, v in zip(rows.tolist(), values.tolist())
        ]

    def scores(self, state, t: int) -> np.ndarray:
        return self._freq.astype(np.float64)


class BatchMultiStationaryHeeb(BatchMultiPolicy):
    """Generic joining HEEB on n-way topologies of stationary streams.

    Appendix C sums the binary benefit over every partner stream; for
    i.i.d. partners each term depends on the candidate's value only, so
    one dense per-stream table (the scalar ``heeb_join`` summed over the
    partners in partner order — identical floats for every query time)
    turns scoring into an array lookup per stream code.
    """

    name = "HEEB"

    def __init__(self, strategy: GenericJoinHeeb, models, partner_names):
        self._tables: dict[str, tuple[int, np.ndarray]] = {}
        for name, partners in partner_names.items():
            lo = min(models[p].dist.min_value for p in partners)
            hi = max(models[p].dist.max_value for p in partners)
            values = []
            for v in range(lo, hi + 1):
                total = 0.0
                for p in partners:
                    total += heeb_join(
                        models[p], 0, v, strategy.estimator, strategy.horizon
                    )
                values.append(total)
            self._tables[name] = (lo, np.array(values))
        self._by_code: list[Optional[tuple[int, np.ndarray]]] = []

    def bind(self, names, partner_names) -> None:
        # Streams outside every query are never cached, hence never scored.
        self._by_code = [self._tables.get(name) for name in names]

    def scores(self, state, t: int) -> np.ndarray:
        out = np.zeros(state.val.shape)
        for code, entry in enumerate(self._by_code):
            if entry is None:
                continue
            mask = state.side == code
            if not mask.any():
                continue
            lo, tab = entry
            out = np.where(mask, _dense_lookup(tab, lo, state.val), out)
        return out


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def _batch_heeb(
    policy: HeebPolicy,
    kind: str,
    r_model: Optional[StreamModel],
    s_model: Optional[StreamModel],
    window: Optional[int],
) -> BatchPolicy:
    strategy = policy.strategy
    if window is not None:
        raise UnbatchablePolicyError(
            "windowed HEEB clips L per tuple; no exact batch adapter yet"
        )
    if isinstance(strategy, TrendJoinHeeb):
        if (
            kind == "join"
            and isinstance(r_model, LinearTrendStream)
            and isinstance(s_model, LinearTrendStream)
            and r_model.speed == 1.0
            and s_model.speed == 1.0
        ):
            return BatchTrendJoinHeeb(strategy, r_model, s_model)
    elif isinstance(strategy, WalkJoinHeeb):
        if (
            kind == "join"
            and isinstance(r_model, RandomWalkStream)
            and isinstance(s_model, RandomWalkStream)
        ):
            return BatchWalkJoinHeeb(strategy, r_model, s_model)
    elif isinstance(strategy, WalkCacheHeeb):
        if kind == "cache":
            return BatchWalkCacheHeeb(strategy)
    elif isinstance(strategy, AR1CacheHeeb):
        if kind == "cache":
            return BatchSurfaceHeeb(strategy.surface, strategy.model, "cache")
    elif isinstance(strategy, AR1JoinHeeb):
        if kind == "join":
            return BatchSurfaceHeeb(strategy.surface, strategy.model, "join")
    elif isinstance(strategy, GenericJoinHeeb):
        if (
            kind == "join"
            and isinstance(r_model, StationaryStream)
            and isinstance(s_model, StationaryStream)
        ):
            return BatchStationaryJoinHeeb(strategy, r_model, s_model)
    raise UnbatchablePolicyError(
        f"no batch adapter for HEEB strategy {type(strategy).__name__} "
        f"on this configuration"
    )


def _check_sketch_free(policy: ReplacementPolicy) -> None:
    """Refuse batch adapters for sketch-frontend configurations.

    The batch adapters are exact-parity replays of the scalar decisions;
    count-min estimates and admission rejections are stateful
    approximations with no decision-identical vectorized counterpart, so
    the engine negotiation must fall back to the scalar loop for them
    (``counts="exact"`` without an admission filter stays batchable and
    seed-for-seed identical).
    """
    if getattr(policy, "admission", None) is not None:
        raise UnbatchablePolicyError(
            "admission-filtered policies are scalar-only (the filter's "
            "doorkeeper/EMA state has no exact batch replay)"
        )
    if isinstance(policy, ProbPolicy) and policy.counts != "exact":
        raise UnbatchablePolicyError(
            f"sketch-backed PROB counts ({policy.counts!r}) are "
            "scalar-only; BatchProb replays exact counts"
        )


def _batch_multi(policy: ReplacementPolicy, models, queries) -> BatchMultiPolicy:
    """Exact multi-join adapter dispatch (see :func:`make_batch_policy`)."""
    from ..sim.step import multi_partner_names

    if not queries:
        raise ValueError("multi_join batch adapters need at least one query")
    partner_names = multi_partner_names(queries)
    if isinstance(policy, RandPolicy):
        return BatchMultiRand(policy.seed)
    if isinstance(policy, LrukPolicy):
        raise UnbatchablePolicyError("LRU-k keeps per-value histories")
    if isinstance(policy, LruPolicy):
        return BatchMultiLru()
    if isinstance(policy, ProbPolicy):
        # LFU subclasses PROB (identical mechanics, different label).
        adapter = BatchMultiProb()
        adapter.name = policy.name
        return adapter
    if isinstance(policy, HeebPolicy):
        strategy = policy.strategy
        if (
            isinstance(strategy, GenericJoinHeeb)
            and models is not None
            and all(
                isinstance(models.get(name), StationaryStream)
                for name in partner_names
            )
        ):
            return BatchMultiStationaryHeeb(strategy, models, partner_names)
        raise UnbatchablePolicyError(
            f"no multi-join batch adapter for HEEB strategy "
            f"{type(strategy).__name__} on this configuration "
            f"(all query-stream models must be stationary)"
        )
    raise UnbatchablePolicyError(
        f"no multi-join batch adapter for policy {type(policy).__name__}"
    )


def make_batch_policy(
    policy: ReplacementPolicy,
    kind: str = "join",
    r_model: Optional[StreamModel] = None,
    s_model: Optional[StreamModel] = None,
    window: Optional[int] = None,
    window_oracle: Optional[WindowOracle] = None,
    models=None,
    queries=None,
) -> BatchPolicy:
    """Build the exact batch adapter for a scalar policy instance.

    For ``kind="multi_join"`` the topology is described by ``queries``
    (binary stream-name pairs) and ``models`` (per-stream models for the
    model-aware policies); the returned adapter is a
    :class:`BatchMultiPolicy` that the simulator still has to
    :meth:`~BatchMultiPolicy.bind` to the run's stream order.

    Raises :class:`UnbatchablePolicyError` when no exact adapter exists;
    callers (the engine negotiation) fall back to the scalar loop.
    """
    _check_sketch_free(policy)
    if kind == "multi_join":
        return _batch_multi(policy, models, queries)
    if kind not in ("join", "cache"):
        raise ValueError(f"unknown kind {kind!r}")
    if isinstance(policy, RandPolicy):
        return BatchRand(policy.seed, _batch_oracle(window_oracle))
    if isinstance(policy, LrukPolicy):
        raise UnbatchablePolicyError("LRU-k keeps per-value histories")
    if isinstance(policy, LruPolicy):
        return BatchLru()
    if isinstance(policy, LifePolicy):
        return BatchLife(kind, _batch_oracle(window_oracle))
    if isinstance(policy, ProbPolicy):
        # LFU subclasses PROB (identical mechanics, different label).
        adapter = BatchProb(kind, _batch_oracle(window_oracle))
        adapter.name = policy.name
        return adapter
    if isinstance(policy, HeebPolicy):
        return _batch_heeb(policy, kind, r_model, s_model, window)
    raise UnbatchablePolicyError(
        f"no batch adapter for policy {type(policy).__name__}"
    )
