"""LIFE: discard the tuple with the least expected remaining output.

LIFE (Das, Gehrke, Riedewald [8]) scores a tuple by its estimated match
probability times its remaining lifetime, so long-lived tuples gain an
advantage over briefly productive ones.  Lifetimes come from a sliding
window; for the TOWER / ROOF / FLOOR experiments the paper uses the bound
of the noise distribution as the window, which our
:class:`~repro.policies.base.WindowOracle` encodes.  WALK has no window,
so LIFE is not applicable there (Section 6.2).
"""

from __future__ import annotations

from ..core.tuples import StreamTuple
from .base import PolicyContext, ScoredPolicy
from .prob import ProbPolicy

__all__ = ["LifePolicy"]


class LifePolicy(ScoredPolicy):
    name = "LIFE"

    def __init__(self) -> None:
        # Reuse PROB's frequency bookkeeping for the probability estimate.
        self._prob = ProbPolicy()

    def reset(self, ctx: PolicyContext) -> None:
        self._prob.reset(ctx)

    def score(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        oracle = ctx.window_oracle
        if oracle is None:
            raise ValueError(
                "LIFE requires a window oracle to determine tuple lifetimes "
                "(the paper does not run LIFE on windowless configurations)"
            )
        self._prob._sync_counts(ctx)
        life = max(0, oracle.remaining_life(tup, ctx.time))
        freq = self._prob.frequency(tup, ctx)
        total = max(1, ctx.time + 1)
        return (freq / total) * life
