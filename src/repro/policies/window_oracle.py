"""Value-window oracles for window-aware baselines (Section 6.2).

For the trend configurations (TOWER / ROOF / FLOOR), the paper gives
RAND, PROB, and LIFE knowledge of the noise bound: a tuple whose value
the partner's moving window has passed is dead and is always discarded
first, and LIFE's lifetimes are the time until the window passes.
"""

from __future__ import annotations

import math

from ..core.tuples import StreamTuple
from ..streams.linear_trend import LinearTrendStream

__all__ = ["TrendWindowOracle"]


class TrendWindowOracle:
    """Window knowledge for two :class:`LinearTrendStream` inputs."""

    def __init__(self, r_model: LinearTrendStream, s_model: LinearTrendStream):
        self._models = {"R": r_model, "S": s_model}

    def _partner(self, side: str) -> LinearTrendStream:
        return self._models["S" if side == "R" else "R"]

    def partner_model(self, side: str) -> LinearTrendStream:
        """The stream a ``side`` tuple joins against (batch adapter hook)."""
        return self._partner(side)

    def _last_joinable_time(self, tup: StreamTuple) -> int:
        """Latest time at which the partner window still covers the value.

        The partner window at time τ is ``[trend(τ) + noise.min,
        trend(τ) + noise.max]``; it covers ``v`` while ``trend(τ) ≤
        v − noise.min``, i.e. while ``τ ≤ lag + (v − noise.min −
        intercept) / speed``.
        """
        partner = self._partner(tup.side)
        v = int(tup.value)
        if partner.speed == 0:
            return 2**62  # window never moves: tuple joinable forever
        return partner.lag + math.floor(
            (v - partner.noise.min_value - partner.intercept) / partner.speed
        )

    def is_dead(self, tup: StreamTuple, t: int) -> bool:
        return self._last_joinable_time(tup) <= t

    def remaining_life(self, tup: StreamTuple, t: int) -> int:
        return max(0, self._last_joinable_time(tup) - t)
