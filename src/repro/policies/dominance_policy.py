"""Dominance-guarded replacement: Corollary 2 as an executable policy.

The paper's decision procedure is two-staged: if a *dominated subset* of
the right size exists, discarding it is provably optimal (Theorem 3 /
Corollary 2); only when candidates are incomparable is a heuristic such
as HEEB needed.  :class:`DominanceGuardedPolicy` implements exactly this
split: it materializes each candidate's ECB, discards a dominated subset
first, and delegates any remaining evictions to a fallback policy.

Besides being faithful to the paper's framework, the guard is a
correctness harness: whatever the fallback does, the guarded evictions
are optimal, so a guarded policy can never be worse than its fallback on
the dominance-forced decisions.
"""

from __future__ import annotations

from typing import Sequence

from ..core.dominance import find_dominated_subset
from ..core.ecb import ECB, ecb_cache, ecb_join
from ..core.tuples import StreamTuple
from ..streams.base import History, Value
from .base import PolicyContext, ReplacementPolicy

__all__ = ["DominanceGuardedPolicy"]


def _latest_history(values: Sequence[Value], now: int) -> History | None:
    for t in range(min(now, len(values) - 1), -1, -1):
        if values[t] is not None:
            return History(now=t, last_value=values[t])
    return None


class DominanceGuardedPolicy(ReplacementPolicy):
    """Evict dominated subsets optimally; defer the rest to a fallback.

    Parameters
    ----------
    fallback:
        Policy consulted for evictions the dominance test cannot decide.
    horizon:
        Horizon over which candidate ECBs are materialized and compared.
        Must extend past every candidate's last possible benefit for the
        dominance verdicts to be exact.
    """

    def __init__(self, fallback: ReplacementPolicy, horizon: int = 60):
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.fallback = fallback
        self.horizon = int(horizon)
        self.name = f"DOM+{fallback.name}"
        #: How many evictions were decided by dominance vs the fallback.
        self.decided_by_dominance = 0
        self.decided_by_fallback = 0

    def reset(self, ctx: PolicyContext) -> None:
        self.decided_by_dominance = 0
        self.decided_by_fallback = 0
        self.fallback.reset(ctx)

    # Forward bookkeeping hooks so stateful fallbacks stay consistent.
    def on_admit(self, tup: StreamTuple, t: int) -> None:
        self.fallback.on_admit(tup, t)

    def on_evict(self, tup: StreamTuple, t: int) -> None:
        self.fallback.on_evict(tup, t)

    def on_reference(self, tup: StreamTuple, t: int) -> None:
        self.fallback.on_reference(tup, t)

    def _candidate_ecb(self, tup: StreamTuple, ctx: PolicyContext) -> ECB:
        if ctx.kind == "cache":
            reference = ctx.r_model
            if reference is None:
                raise ValueError("dominance guard needs the reference model")
            history = None
            if not reference.is_independent:
                history = _latest_history(ctx.r_history, ctx.time)
            return ecb_cache(reference, ctx.time, tup.value, self.horizon, history)
        partner = ctx.partner_model(tup.side)
        if partner is None:
            raise ValueError("dominance guard needs both stream models")
        history = None
        if not partner.is_independent:
            history = _latest_history(ctx.partner_history(tup.side), ctx.time)
        return ecb_join(partner, ctx.time, tup.value, self.horizon, history)

    def select_victims(
        self,
        candidates: Sequence[StreamTuple],
        n_evict: int,
        ctx: PolicyContext,
    ) -> list[StreamTuple]:
        if n_evict <= 0:
            return []
        ecbs = {tup: self._candidate_ecb(tup, ctx) for tup in candidates}
        dominated = find_dominated_subset(ecbs, n_evict)
        self.decided_by_dominance += len(dominated)
        if len(dominated) >= n_evict:
            return list(dominated)
        remaining_need = n_evict - len(dominated)
        self.decided_by_fallback += remaining_need
        evicted = set(t.uid for t in dominated)
        rest = [c for c in candidates if c.uid not in evicted]
        extra = self.fallback.select_victims(rest, remaining_need, ctx)
        return list(dominated) + list(extra)
