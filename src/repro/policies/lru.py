"""LRU and LRU-k: recency-based classic caching policies.

LRU evicts the least recently referenced tuple; the paper's Section 5.2
cites it (via Aho-Denning-Ullman) as an approximation of the optimal
``A_o`` for (almost) stationary reference streams.  LRU-k (O'Neil, O'Neil,
Weikum [14]) evicts the tuple whose k-th most recent reference is oldest,
treating tuples with fewer than k recorded references as oldest of all
(ties broken by plain recency).  Both are the "perfect" versions: full
reference history per cached value, no approximation.
"""

from __future__ import annotations

from collections import defaultdict, deque

from ..core.tuples import StreamTuple
from .base import PolicyContext, ScoredPolicy

__all__ = ["LruPolicy", "LrukPolicy"]


class LruPolicy(ScoredPolicy):
    name = "LRU"

    def __init__(self) -> None:
        self._last_use: dict[int, int] = {}

    def reset(self, ctx: PolicyContext) -> None:
        self._last_use = {}

    def on_admit(self, tup: StreamTuple, t: int) -> None:
        self._last_use[tup.uid] = t

    def on_reference(self, tup: StreamTuple, t: int) -> None:
        self._last_use[tup.uid] = t

    def on_evict(self, tup: StreamTuple, t: int) -> None:
        self._last_use.pop(tup.uid, None)

    def score(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        # New arrivals (not yet admitted) count as just-referenced.
        return float(self._last_use.get(tup.uid, ctx.time))


class LrukPolicy(ScoredPolicy):
    """LRU-k over reference histories kept per *value*.

    Reference times are tracked per join value by scanning the observed
    reference stream (the classic setting: references address values, and
    history survives evictions), so a re-fetched database tuple retains
    its history and miss-references count as uses.
    """

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = int(k)
        self.name = f"LRU-{self.k}"
        self._uses: dict = defaultdict(lambda: deque(maxlen=self.k))
        self._consumed = 0

    def reset(self, ctx: PolicyContext) -> None:
        self._uses = defaultdict(lambda: deque(maxlen=self.k))
        self._consumed = 0

    def _sync(self, ctx: PolicyContext) -> None:
        history = ctx.r_history
        for t in range(self._consumed, len(history)):
            v = history[t]
            if v is not None:
                self._uses[v].append(t)
        self._consumed = len(history)

    def score(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        self._sync(ctx)
        uses = self._uses.get(tup.value)
        history = list(uses) if uses else []
        if len(history) >= self.k:
            kth_recent = history[-self.k]
            last = history[-1]
        else:
            # Fewer than k references: backward-k distance is infinite;
            # evict before any tuple with full history, tie-break by recency.
            kth_recent = float("-inf")
            last = history[-1] if history else ctx.time
        # Primary key: k-th most recent reference time; secondary: last use.
        return float(kth_recent) + 1e-9 * float(last)
