"""Cache replacement policies: baselines, classics, HEEB, and FlowExpect.

Policies are additionally exposed through a string-keyed registry so
experiment configurations, figure harnesses, and the CLI can build them
by name (``make_policy("prob")``) instead of importing factories:

>>> from repro.policies import make_policy
>>> make_policy("rand", seed=1).name
'RAND'
"""

from typing import Callable

from .adaptive_alpha import AdaptiveAlphaHeebPolicy
from .base import PolicyContext, ReplacementPolicy, ScoredPolicy, WindowOracle
from .batch import (
    BatchLife,
    BatchLru,
    BatchPolicy,
    BatchProb,
    BatchRand,
    BatchTrendOracle,
    UnbatchablePolicyError,
    make_batch_policy,
)
from .case_optimal import FarthestFromReferencePolicy, SmallestValueFirstPolicy
from .dominance_policy import DominanceGuardedPolicy
from .flowexpect_policy import FlowExpectPolicy
from .heeb_policy import (
    AR1CacheHeeb,
    AR1JoinHeeb,
    BandJoinHeeb,
    GenericCacheHeeb,
    GenericJoinHeeb,
    HeebPolicy,
    HeebStrategy,
    TrendJoinHeeb,
    WalkCacheHeeb,
    WalkJoinHeeb,
)
from .lfd import LfdPolicy
from .lfu import LfuPolicy
from .life import LifePolicy
from .lru import LrukPolicy, LruPolicy
from .model_driven import ModelDrivenHeebPolicy
from .prob import ProbPolicy
from .rand import RandPolicy
from .reduction_adapter import ReducedJoiningPolicy
from .scheduled import ScheduledPolicy
from .trie import TrieCachePolicy
from .window_oracle import TrendWindowOracle

# ----------------------------------------------------------------------
# String-keyed registry
# ----------------------------------------------------------------------
POLICY_REGISTRY: dict[str, Callable[..., ReplacementPolicy]] = {}


def register_policy(name: str, factory: Callable[..., ReplacementPolicy]) -> None:
    """Register a policy constructor under a (case-insensitive) name."""
    POLICY_REGISTRY[name.lower()] = factory


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Build a policy by registry name, forwarding constructor kwargs."""
    try:
        factory = POLICY_REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None
    return factory(**kwargs)


def available_policies() -> tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(POLICY_REGISTRY))


register_policy("rand", RandPolicy)
register_policy("lru", LruPolicy)
register_policy("lru-k", LrukPolicy)
register_policy("lfu", LfuPolicy)
register_policy("prob", ProbPolicy)
register_policy("life", LifePolicy)
register_policy("lfd", LfdPolicy)
register_policy("heeb", HeebPolicy)
register_policy("flowexpect", FlowExpectPolicy)
register_policy("adaptive-alpha-heeb", AdaptiveAlphaHeebPolicy)
register_policy("model-driven-heeb", ModelDrivenHeebPolicy)
register_policy("trie", TrieCachePolicy)

__all__ = [
    "POLICY_REGISTRY",
    "available_policies",
    "make_policy",
    "register_policy",
    "AR1CacheHeeb",
    "AR1JoinHeeb",
    "AdaptiveAlphaHeebPolicy",
    "BandJoinHeeb",
    "DominanceGuardedPolicy",
    "FarthestFromReferencePolicy",
    "FlowExpectPolicy",
    "GenericCacheHeeb",
    "GenericJoinHeeb",
    "BatchLife",
    "BatchLru",
    "BatchPolicy",
    "BatchProb",
    "BatchRand",
    "BatchTrendOracle",
    "HeebPolicy",
    "HeebStrategy",
    "make_batch_policy",
    "UnbatchablePolicyError",
    "LfdPolicy",
    "LfuPolicy",
    "LifePolicy",
    "LrukPolicy",
    "LruPolicy",
    "ModelDrivenHeebPolicy",
    "PolicyContext",
    "ProbPolicy",
    "RandPolicy",
    "ReducedJoiningPolicy",
    "ReplacementPolicy",
    "ScheduledPolicy",
    "ScoredPolicy",
    "SmallestValueFirstPolicy",
    "TrendJoinHeeb",
    "TrendWindowOracle",
    "TrieCachePolicy",
    "WalkCacheHeeb",
    "WalkJoinHeeb",
    "WindowOracle",
]
