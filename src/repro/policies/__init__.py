"""Cache replacement policies: baselines, classics, HEEB, and FlowExpect."""

from .adaptive_alpha import AdaptiveAlphaHeebPolicy
from .base import PolicyContext, ReplacementPolicy, ScoredPolicy, WindowOracle
from .batch import (
    BatchLife,
    BatchLru,
    BatchPolicy,
    BatchProb,
    BatchRand,
    BatchTrendOracle,
    UnbatchablePolicyError,
    make_batch_policy,
)
from .case_optimal import FarthestFromReferencePolicy, SmallestValueFirstPolicy
from .dominance_policy import DominanceGuardedPolicy
from .flowexpect_policy import FlowExpectPolicy
from .heeb_policy import (
    AR1CacheHeeb,
    AR1JoinHeeb,
    BandJoinHeeb,
    GenericCacheHeeb,
    GenericJoinHeeb,
    HeebPolicy,
    HeebStrategy,
    TrendJoinHeeb,
    WalkCacheHeeb,
    WalkJoinHeeb,
)
from .lfd import LfdPolicy
from .lfu import LfuPolicy
from .life import LifePolicy
from .lru import LrukPolicy, LruPolicy
from .model_driven import ModelDrivenHeebPolicy
from .prob import ProbPolicy
from .rand import RandPolicy
from .reduction_adapter import ReducedJoiningPolicy
from .scheduled import ScheduledPolicy
from .window_oracle import TrendWindowOracle

__all__ = [
    "AR1CacheHeeb",
    "AR1JoinHeeb",
    "AdaptiveAlphaHeebPolicy",
    "BandJoinHeeb",
    "DominanceGuardedPolicy",
    "FarthestFromReferencePolicy",
    "FlowExpectPolicy",
    "GenericCacheHeeb",
    "GenericJoinHeeb",
    "BatchLife",
    "BatchLru",
    "BatchPolicy",
    "BatchProb",
    "BatchRand",
    "BatchTrendOracle",
    "HeebPolicy",
    "HeebStrategy",
    "make_batch_policy",
    "UnbatchablePolicyError",
    "LfdPolicy",
    "LfuPolicy",
    "LifePolicy",
    "LrukPolicy",
    "LruPolicy",
    "ModelDrivenHeebPolicy",
    "PolicyContext",
    "ProbPolicy",
    "RandPolicy",
    "ReducedJoiningPolicy",
    "ReplacementPolicy",
    "ScheduledPolicy",
    "ScoredPolicy",
    "SmallestValueFirstPolicy",
    "TrendJoinHeeb",
    "TrendWindowOracle",
    "WalkCacheHeeb",
    "WalkJoinHeeb",
    "WindowOracle",
]
