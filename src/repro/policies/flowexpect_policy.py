"""FlowExpect as a replacement policy pluggable into the simulators."""

from __future__ import annotations

from typing import Sequence

from ..core.tuples import StreamTuple
from ..flow.flowexpect import flowexpect_decide
from ..streams.base import History, StreamModel, Value
from .base import PolicyContext, ReplacementPolicy

__all__ = ["FlowExpectPolicy"]


def _latest_history(values: Sequence[Value], now: int) -> History | None:
    """Anchor a Markov model on the most recent observed (non-"−") value."""
    for t in range(now, -1, -1):
        if t < len(values) and values[t] is not None:
            return History(now=t, last_value=values[t])
    return None


class FlowExpectPolicy(ReplacementPolicy):
    """Solve the Section-3 min-cost flow at every step; apply its decision.

    Parameters
    ----------
    lookahead:
        The paper's ``l``: how many future steps the flow graph spans.
    r_model / s_model:
        Stream models; if omitted, they are taken from the simulator
        context.
    """

    name = "FLOWEXPECT"

    def __init__(
        self,
        lookahead: int,
        r_model: StreamModel | None = None,
        s_model: StreamModel | None = None,
    ):
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        self.lookahead = int(lookahead)
        self._r_model = r_model
        self._s_model = s_model

    def select_victims(
        self,
        candidates: Sequence[StreamTuple],
        n_evict: int,
        ctx: PolicyContext,
    ) -> list[StreamTuple]:
        if n_evict <= 0:
            return []
        r_model = self._r_model or ctx.r_model
        s_model = self._s_model or ctx.s_model
        if r_model is None or s_model is None:
            raise ValueError("FlowExpect needs both stream models")
        r_history = None
        s_history = None
        if not r_model.is_independent:
            r_history = _latest_history(ctx.r_history, ctx.time)
        if not s_model.is_independent:
            s_history = _latest_history(ctx.s_history, ctx.time)
        decision = flowexpect_decide(
            candidates,
            ctx.time,
            self.lookahead,
            ctx.cache_size,
            r_model,
            s_model,
            r_history,
            s_history,
        )
        return decision.victims
