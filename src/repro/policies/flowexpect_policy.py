"""FlowExpect as a replacement policy pluggable into the simulators."""

from __future__ import annotations

from typing import Sequence

from ..core.tuples import StreamTuple
from ..flow.fastpath import FlowExpectFastPath
from ..flow.flowexpect import FlowExpectDecision, flowexpect_decide
from ..policies.base import PolicyContext, ReplacementPolicy
from ..streams.base import StreamModel

__all__ = ["FlowExpectPolicy"]


class FlowExpectPolicy(ReplacementPolicy):
    """Solve the Section-3 min-cost flow at every step; apply its decision.

    Parameters
    ----------
    lookahead:
        The paper's ``l``: how many future steps the flow graph spans.
    r_model / s_model:
        Stream models; if omitted, they are taken from the simulator
        context.
    fast:
        Use the template-reusing direct solver of
        :mod:`repro.flow.fastpath` (the default).  ``fast=False`` is the
        reference escape hatch: the per-step networkx graph plus
        ``network_simplex`` pipeline.  Both paths share one uid-rank
        tie-break, so their kept/victim decisions are identical — the
        flag trades speed only.
    """

    name = "FLOWEXPECT"

    def __init__(
        self,
        lookahead: int,
        r_model: StreamModel | None = None,
        s_model: StreamModel | None = None,
        fast: bool = True,
    ):
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        self.lookahead = int(lookahead)
        self._r_model = r_model
        self._s_model = s_model
        self._fast = bool(fast)
        #: Per-run fast-path state: prob tables and graph templates are
        #: only reusable against one model pair, so it is rebuilt on
        #: reset and whenever the context supplies different models.
        self._fastpath: FlowExpectFastPath | None = None
        self._fastpath_models: tuple[StreamModel, StreamModel] | None = None

    @property
    def r_model(self) -> StreamModel | None:
        """The pinned R-stream model (``None`` defers to the context)."""
        return self._r_model

    @property
    def s_model(self) -> StreamModel | None:
        """The pinned S-stream model (``None`` defers to the context)."""
        return self._s_model

    @property
    def fast(self) -> bool:
        """Whether decisions run on the template-reusing fast path."""
        return self._fast

    def reset(self, ctx: PolicyContext) -> None:
        self._fastpath = None
        self._fastpath_models = None

    def select_victims(
        self,
        candidates: Sequence[StreamTuple],
        n_evict: int,
        ctx: PolicyContext,
    ) -> list[StreamTuple]:
        if n_evict <= 0:
            return []
        return self.decide(candidates, ctx).victims

    def decide(
        self, candidates: Sequence[StreamTuple], ctx: PolicyContext
    ) -> FlowExpectDecision:
        """Solve one FlowExpect step for the current context."""
        r_model = self._r_model or ctx.r_model
        s_model = self._s_model or ctx.s_model
        if r_model is None or s_model is None:
            raise ValueError("FlowExpect needs both stream models")
        r_history = None
        s_history = None
        if not r_model.is_independent:
            r_history = ctx.latest_history("R")
        if not s_model.is_independent:
            s_history = ctx.latest_history("S")
        rec = ctx.recorder
        if self._fast:
            if self._fastpath_models != (r_model, s_model):
                self._fastpath = FlowExpectFastPath(
                    r_model, s_model, recorder=rec
                )
                self._fastpath_models = (r_model, s_model)
            assert self._fastpath is not None
            decision = self._fastpath.decide(
                candidates,
                ctx.time,
                self.lookahead,
                ctx.cache_size,
                r_history,
                s_history,
            )
        else:
            decision = flowexpect_decide(
                candidates,
                ctx.time,
                self.lookahead,
                ctx.cache_size,
                r_model,
                s_model,
                r_history,
                s_history,
            )
            # The reference pipeline has no recorder of its own; count
            # the solve here so both paths report ``flow.solves``.
            if rec.enabled:
                rec.count("flow.solves")
        if rec.trace:
            kept_uids = {c.uid for c in decision.kept}
            records = []
            for c in candidates:
                p_model = s_model if c.side == "R" else r_model
                p_history = s_history if c.side == "R" else r_history
                records.append(
                    {
                        "uid": c.uid,
                        "side": c.side,
                        "value": c.value,
                        "kept": c.uid in kept_uids,
                        # First-slice expected benefit: the probability
                        # the partner stream produces this value next
                        # step — the cost of the candidate's first
                        # horizontal arc, negated.
                        "benefit": p_model.prob(ctx.time + 1, c.value, p_history),
                    }
                )
            rec.event(
                "flow",
                ctx.time,
                policy=self.name,
                lookahead=self.lookahead,
                units=min(ctx.cache_size, len(candidates)),
                expected_benefit=decision.expected_benefit,
                candidates=records,
            )
        return decision
