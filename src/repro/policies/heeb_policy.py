"""HEEB as a replacement policy, with per-scenario evaluation strategies.

Section 5 shows that *how* ``H_x`` is computed efficiently depends on the
input model: direct summation for arbitrary models, a translation-
invariant table for linear trends (value-incremental computation,
Corollary 5), precomputed ``h1`` curves for random walks and ``h2``
surfaces for AR(1) (Theorem 5).  :class:`HeebPolicy` delegates to a
:class:`HeebStrategy` implementing the appropriate computation; all
strategies share one ``L`` for every candidate, which trivially satisfies
property 4 of Section 4.3.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

from ..core.heeb import heeb_cache, heeb_join
from ..core.lifetime import LExp, LifetimeEstimator, WindowedLExp
from ..core.precompute import H1Table, H2Surface, random_walk_h1_join
from ..core.tuples import StreamTuple
from ..streams.ar1 import AR1Stream
from ..streams.base import History, Value
from ..streams.linear_trend import LinearTrendStream
from ..streams.random_walk import RandomWalkStream
from .base import PolicyContext, ScoredPolicy

__all__ = [
    "HeebStrategy",
    "GenericJoinHeeb",
    "GenericCacheHeeb",
    "TrendJoinHeeb",
    "WalkJoinHeeb",
    "WalkCacheHeeb",
    "AR1CacheHeeb",
    "AR1JoinHeeb",
    "BandJoinHeeb",
    "HeebPolicy",
]


def _latest_history(values: Sequence[Value], now: int) -> History | None:
    for t in range(min(now, len(values) - 1), -1, -1):
        if values[t] is not None:
            return History(now=t, last_value=values[t])
    return None


class HeebStrategy(abc.ABC):
    """Computes ``H_x`` for candidate tuples in a given scenario."""

    def reset(self, ctx: PolicyContext) -> None:
        """Clear per-run state / lazily built tables."""

    @abc.abstractmethod
    def h_value(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        """``H`` for one candidate at the current time ``ctx.time``."""


class GenericJoinHeeb(HeebStrategy):
    """Direct summation of the joining ``H`` for any stream model.

    Exact but slow (one ``prob`` call per look-ahead step); intended for
    small runs and as the reference the specialized strategies are tested
    against.  Supports sliding-window semantics by switching to the
    window-clipped ``L_exp`` of Section 7.
    """

    def __init__(self, estimator: LifetimeEstimator, horizon: int | None = None):
        self.estimator = estimator
        self.horizon = horizon

    def _estimator_for(self, tup: StreamTuple, ctx: PolicyContext) -> LifetimeEstimator:
        if ctx.window is None:
            return self.estimator
        if not isinstance(self.estimator, LExp):
            raise ValueError("windowed HEEB requires an LExp base estimator")
        remaining = max(0, tup.arrival + ctx.window - ctx.time)
        return WindowedLExp(self.estimator.alpha, remaining)

    def h_value(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        if ctx.is_multi:
            return self._h_value_multi(tup, ctx)
        partner = ctx.partner_model(tup.side)
        if partner is None:
            raise ValueError("GenericJoinHeeb needs stream models in context")
        history = None
        if not partner.is_independent:
            history = _latest_history(ctx.partner_history(tup.side), ctx.time)
        return heeb_join(
            partner,
            ctx.time,
            tup.value,
            self._estimator_for(tup, ctx),
            self.horizon,
            history,
        )

    def _h_value_multi(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        """Appendix C rule: ``H`` sums the binary benefit over every
        partner stream the tuple can join — the binary join is the
        1-partner degenerate case and yields the identical float."""
        if ctx.models is None:
            raise ValueError("GenericJoinHeeb needs stream models in context")
        estimator = self._estimator_for(tup, ctx)
        total = 0.0
        for name in ctx.partners_of(tup.side):
            partner = ctx.model_for(name)
            if partner is None:
                raise ValueError(
                    f"GenericJoinHeeb: no model for stream {name!r}"
                )
            history = None
            if not partner.is_independent:
                history = ctx.latest_history(name)
            total += heeb_join(
                partner, ctx.time, tup.value, estimator, self.horizon, history
            )
        return total


class GenericCacheHeeb(HeebStrategy):
    """Direct summation of the caching ``H`` for any reference model."""

    def __init__(self, estimator: LifetimeEstimator, horizon: int | None = None):
        self.estimator = estimator
        self.horizon = horizon

    def h_value(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        reference = ctx.r_model
        if reference is None:
            raise ValueError("GenericCacheHeeb needs the reference model")
        history = None
        if not reference.is_independent:
            history = _latest_history(ctx.r_history, ctx.time)
        return heeb_cache(
            reference,
            ctx.time,
            tup.value,
            self.estimator,
            self.horizon,
            history,
        )


class TrendJoinHeeb(HeebStrategy):
    """Value-incremental ``H`` for linear-trend streams (Corollary 5).

    For a unit-speed trend, ``H`` depends only on the offset
    ``d = v_x − f_partner(t0)`` -- the tuple sees the same future from its
    frame of reference at every time -- so one table per partner stream,
    built lazily, answers every query in O(1):

        ``H(d) = Σ_{Δt≥1} pmf_noise(d − Δt) · e^{−Δt/α}``.

    Non-unit speeds fall back to a vectorized direct sum over the Δt range
    where the partner window covers the value.
    """

    def __init__(self, estimator: LExp, tol: float = 1e-12):
        if not isinstance(estimator, LExp):
            raise ValueError("TrendJoinHeeb requires LExp")
        self.estimator = estimator
        self.tol = tol
        self._tables: dict[str, dict[int, float]] = {}

    def reset(self, ctx: PolicyContext) -> None:
        self._tables = {}

    def _table_for(self, partner: LinearTrendStream, key: str) -> dict[int, float]:
        table = self._tables.get(key)
        if table is not None:
            return table
        noise = partner.noise
        alpha = self.estimator.alpha
        extra = int(math.ceil(alpha * math.log(1.0 / self.tol)))
        table = {}
        for d in range(noise.min_value + 1, noise.max_value + extra + 1):
            lo = max(1, d - noise.max_value)
            hi = d - noise.min_value
            dts = np.arange(lo, hi + 1)
            if dts.size:
                pmfs = noise.pmf_many(d - dts)
                table[d] = float(np.dot(pmfs, np.exp(-dts / alpha)))
            else:
                table[d] = 0.0
        self._tables[key] = table
        return table

    def _direct_sum(
        self,
        partner: LinearTrendStream,
        value: int,
        t0: int,
        max_dt: int,
    ) -> float:
        """Vectorized Σ pmf(v − f(t0+Δt))·e^(−Δt/α) over Δt ≤ max_dt."""
        if max_dt < 1:
            return 0.0
        noise = partner.noise
        alpha = self.estimator.alpha
        dts = np.arange(1, max_dt + 1)
        trend_vals = np.array([partner.trend(t0 + int(dt)) for dt in dts])
        pmfs = noise.pmf_many(value - trend_vals)
        return float(np.dot(pmfs, np.exp(-dts / alpha)))

    def direct_sum(
        self,
        partner: LinearTrendStream,
        value: int,
        t0: int,
        max_dt: int,
    ) -> float:
        """Public access to the windowed/general-speed direct sum.

        The batch engine's windowed adapter calls this per distinct
        ``(offset, clipped horizon)`` key — the same NumPy expression the
        scalar path evaluates, so memoized batch scores stay
        bit-identical to per-tuple scalar scores.
        """
        return self._direct_sum(partner, value, t0, max_dt)

    def table_array(
        self, partner: LinearTrendStream, key: str
    ) -> tuple[int, np.ndarray]:
        """The lazily built offset table as ``(lowest_offset, values)``.

        Offsets are contiguous, so the dict maps losslessly onto a dense
        array; the batch engine scores whole candidate blocks by indexing
        it (entries outside the array are 0, matching ``table.get(d,
        0.0)``).  Returns the exact same floats the scalar path uses.
        """
        table = self._table_for(partner, key)
        lo = partner.noise.min_value + 1
        return lo, np.array([table[d] for d in range(lo, lo + len(table))])

    def h_value(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        partner = ctx.partner_model(tup.side)
        if not isinstance(partner, LinearTrendStream):
            raise ValueError("TrendJoinHeeb expects LinearTrendStream partners")
        v = int(tup.value)
        if ctx.window is not None:
            # Section 7: the tuple's own window expiry clips L; the clip
            # point is per-tuple, so the shared table does not apply.
            remaining = max(0, tup.arrival + ctx.window - ctx.time)
            horizon = min(remaining, self.estimator.suggested_horizon(self.tol))
            return self._direct_sum(partner, v, ctx.time, horizon)
        if partner.speed == 1.0:
            table = self._table_for(partner, f"partner-of-{tup.side}")
            return table.get(v - partner.trend(ctx.time), 0.0)
        # General speed: direct vectorized sum over the covering Δt range.
        return self._direct_sum(
            partner, v, ctx.time, self.estimator.suggested_horizon(self.tol)
        )


class WalkJoinHeeb(HeebStrategy):
    """Precomputed ``h1`` per stream for random-walk joins (Theorem 5(2)).

    ``H = h1_partner(v_x − x^partner_{t0})`` where ``x^partner_{t0}`` is
    the partner stream's most recent observation.
    """

    def __init__(self, estimator: LExp, horizon: int | None = None):
        if not isinstance(estimator, LExp):
            raise ValueError("WalkJoinHeeb requires LExp")
        self.estimator = estimator
        self.horizon = horizon
        self._tables: dict[str, H1Table] = {}

    def reset(self, ctx: PolicyContext) -> None:
        self._tables = {}

    def _table_for(self, partner: RandomWalkStream, key: str) -> H1Table:
        table = self._tables.get(key)
        if table is None:
            table = random_walk_h1_join(partner, self.estimator, self.horizon)
            self._tables[key] = table
        return table

    def table_for(self, partner: RandomWalkStream, key: str) -> H1Table:
        """Public access to the per-partner ``h1`` table (built lazily).

        The batch engine reuses the exact same table via
        :meth:`H1Table.lookup`, which keeps batch and scalar scores
        bit-identical.
        """
        return self._table_for(partner, key)

    def h_value(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        partner = ctx.partner_model(tup.side)
        if not isinstance(partner, RandomWalkStream):
            raise ValueError("WalkJoinHeeb expects RandomWalkStream partners")
        history = _latest_history(ctx.partner_history(tup.side), ctx.time)
        if history is None:
            return 0.0
        table = self._table_for(partner, f"partner-of-{tup.side}")
        return table(int(tup.value) - int(history.last_value))


class WalkCacheHeeb(HeebStrategy):
    """Precomputed ``h1`` for random-walk *caching* (Theorem 5(2)).

    ``H = h1(v_x − x_{t0})`` with ``h1`` the L-weighted first-reference
    curve of Figure 6 (see
    :func:`repro.core.precompute.random_walk_h1_cache`).  The table is
    built offline and passed in, mirroring the AR(1) surface workflow.
    """

    def __init__(self, table: H1Table):
        self.table = table

    def h_value(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        history = _latest_history(ctx.r_history, ctx.time)
        if history is None:
            return 0.0
        return self.table(int(tup.value) - int(history.last_value))


class AR1CacheHeeb(HeebStrategy):
    """Spline-interpolated ``h2`` surface for AR(1) caching (Theorem 5(1)).

    Exactly the paper's REAL setup: ``h2`` precomputed at a small control
    grid (25 points by default) and interpolated bicubically at runtime;
    ``H = h2(v_x, x_{t0})``.
    """

    def __init__(self, model: AR1Stream, surface: H2Surface):
        self.model = model
        self.surface = surface

    def h_value(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        history = _latest_history(ctx.r_history, ctx.time)
        if history is None:
            return 0.0
        latent_now = self.model.to_latent(int(history.last_value))
        return self.surface(float(tup.value), latent_now)


class AR1JoinHeeb(HeebStrategy):
    """Precomputed ``h2`` surface for AR(1) *joining* (Theorem 5(1)).

    ``H = h2(v_x, x^partner_{t0})``: the surface weights the partner's
    conditional match probabilities (no taboo term), precomputed over a
    control grid and interpolated bicubically, exactly like the caching
    variant used for REAL.
    """

    def __init__(self, model: AR1Stream, surface: H2Surface):
        self.model = model
        self.surface = surface

    def h_value(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        history = _latest_history(ctx.partner_history(tup.side), ctx.time)
        if history is None:
            return 0.0
        latent_now = self.model.to_latent(int(history.last_value))
        return self.surface(float(tup.value), latent_now)


class BandJoinHeeb(HeebStrategy):
    """Direct band-join ``H`` for any stream model (future-work variant).

    Uses the non-equality predicate ``|X^partner_t − v_x| ≤ band``; see
    :func:`repro.core.heeb.heeb_join_band`.
    """

    def __init__(
        self,
        band: int,
        estimator: LifetimeEstimator,
        horizon: int | None = None,
    ):
        if band < 0:
            raise ValueError("band must be nonnegative")
        self.band = int(band)
        self.estimator = estimator
        self.horizon = horizon

    def h_value(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        from ..core.heeb import heeb_join_band

        partner = ctx.partner_model(tup.side)
        if partner is None:
            raise ValueError("BandJoinHeeb needs stream models in context")
        history = None
        if not partner.is_independent:
            history = _latest_history(ctx.partner_history(tup.side), ctx.time)
        return heeb_join_band(
            partner,
            ctx.time,
            tup.value,
            self.band,
            self.estimator,
            self.horizon,
            history,
        )


class HeebPolicy(ScoredPolicy):
    """Evict the candidates with the lowest estimated expected benefit."""

    name = "HEEB"

    def __init__(self, strategy: HeebStrategy):
        self.strategy = strategy

    def reset(self, ctx: PolicyContext) -> None:
        self.strategy.reset(ctx)

    def score(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        return self.strategy.h_value(tup, ctx)
