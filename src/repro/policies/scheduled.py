"""Replay a precomputed (OPT-offline) eviction schedule as a policy.

Running the optimal offline schedule through the ordinary simulator keeps
the result accounting (warm-up, occupancy traces) identical across all
algorithms in an experiment.
"""

from __future__ import annotations

from typing import Sequence

from ..core.tuples import StreamTuple
from ..flow.opt_offline import OfflineSolution
from .base import PolicyContext, ReplacementPolicy

__all__ = ["ScheduledPolicy"]


class ScheduledPolicy(ReplacementPolicy):
    """Evicts each tuple at the time its schedule dictates.

    The schedule's capacity argument must match the simulator's, in which
    case the scheduled evictions always satisfy the simulator's demand
    exactly.  ``mismatches`` counts any step where extra evictions were
    forced (it stays 0 in a consistent setup; tests assert this).
    """

    name = "OPT-OFFLINE"

    def __init__(self, solution: OfflineSolution):
        self._solution = solution
        self.mismatches = 0

    def reset(self, ctx: PolicyContext) -> None:
        self.mismatches = 0

    def select_victims(
        self,
        candidates: Sequence[StreamTuple],
        n_evict: int,
        ctx: PolicyContext,
    ) -> list[StreamTuple]:
        t = ctx.time
        due = [
            c
            for c in candidates
            if self._solution.scheduled_eviction(c.side, c.arrival) <= t
        ]
        if len(due) >= n_evict:
            return due
        # Forced fallback: evict the tuples scheduled to leave soonest.
        self.mismatches += 1
        others = sorted(
            (c for c in candidates if c not in due),
            key=lambda c: self._solution.scheduled_eviction(c.side, c.arrival),
        )
        return due + others[: n_evict - len(due)]
