"""Run a caching policy on the reduced joining problem (Theorem 1).

Section 2 proves that hits in the caching problem equal join results in
the reduced joining problem *under the same reasonable policy*.  This
module makes the correspondence executable: :class:`ReducedJoiningPolicy`
wraps an arbitrary caching policy and drives the joining simulator on the
transformed streams so that the cache evolution is isomorphic step by
step:

* the reference-stream tuple ``r'_(v,k)`` is never cached (Observation 3:
  it can join no future supply tuple);
* on a *hit* (the joining supply tuple ``s_(v,k)`` is cached), the
  expired ``s_(v,k)`` is replaced by the freshly arrived ``s_(v,k+1)`` --
  the same database tuple under its next label (the unique reasonable
  move, Definition 1);
* on a *miss*, the wrapped caching policy chooses the victim among the
  cached database tuples plus the newly fetched one, and its decision is
  mirrored onto the joining candidates.

Tests drive LRU, LFD, and RAND through both simulators and assert
``H(C0, R, P) = J(C0, R, S, P)`` exactly.
"""

from __future__ import annotations

from typing import Sequence

from ..core.tuples import StreamTuple
from .base import PolicyContext, ReplacementPolicy

__all__ = ["ReducedJoiningPolicy"]


def _original_value(tup: StreamTuple):
    """The database value behind a reduced ``(v, i)`` pair."""
    return tup.value[0]


class ReducedJoiningPolicy(ReplacementPolicy):
    """Adapts a caching policy to the reduced joining problem.

    The wrapped policy sees a faithful caching-problem view: candidate
    "database tuples" carry the original values (not the ``(v, i)``
    labels), hits are forwarded as references, and its victim choice is
    translated back to the joining candidates.
    """

    def __init__(self, caching_policy: ReplacementPolicy):
        self._inner = caching_policy
        self.name = f"REDUCED[{caching_policy.name}]"
        #: maps original value -> current proxy StreamTuple shown to the
        #: inner policy (stable identity across supply-tuple relabelings,
        #: like a real database tuple).
        self._proxies: dict = {}
        self._next_proxy_uid = 0
        self._inner_ctx: PolicyContext | None = None

    def reset(self, ctx: PolicyContext) -> None:
        self._proxies = {}
        self._next_proxy_uid = 0
        self._inner_ctx = PolicyContext(
            kind="cache",
            time=-1,
            cache_size=ctx.cache_size,
            r_model=ctx.r_model,
        )
        self._inner.reset(self._inner_ctx)

    def _proxy_for(self, value, arrival: int) -> StreamTuple:
        proxy = self._proxies.get(value)
        if proxy is None:
            proxy = StreamTuple(self._next_proxy_uid, "S", value, arrival)
            self._next_proxy_uid += 1
            self._proxies[value] = proxy
        return proxy

    def select_victims(
        self,
        candidates: Sequence[StreamTuple],
        n_evict: int,
        ctx: PolicyContext,
    ) -> list[StreamTuple]:
        assert self._inner_ctx is not None, "reset() not called"
        t = ctx.time
        # Mirror the reference history (original values) for the inner
        # policy: the reduced R' stream carries (v, k) pairs.
        inner_ctx = self._inner_ctx
        inner_ctx.time = t
        while len(inner_ctx.r_history) < len(ctx.r_history):
            pos = len(inner_ctx.r_history)
            pair = ctx.r_history[pos]
            inner_ctx.r_history.append(None if pair is None else pair[0])

        new_r = [c for c in candidates if c.side == "R" and c.arrival == t]
        new_s = [c for c in candidates if c.side == "S" and c.arrival == t]
        cached_s = [
            c for c in candidates if c.side == "S" and c.arrival < t
        ]
        victims: list[StreamTuple] = list(new_r)  # never cache R' tuples

        if not new_s:
            return victims[:]

        (supply,) = new_s
        ref_value = _original_value(supply)
        predecessor = next(
            (
                c
                for c in cached_s
                if _original_value(c) == ref_value
            ),
            None,
        )
        if predecessor is not None:
            # Hit: the predecessor s_(v,k) just joined r'_(v,k) and is now
            # expired; replacing it with s_(v,k+1) is the unique
            # reasonable move and keeps the cache isomorphic.
            self._inner.on_reference(self._proxy_for(ref_value, t), t)
            victims.append(predecessor)
            return victims

        # Miss: ask the caching policy to pick a victim among the cached
        # database tuples plus the newly fetched one.
        proxy_new = self._proxy_for(ref_value, t)
        proxy_candidates = [
            self._proxy_for(_original_value(c), c.arrival) for c in cached_s
        ] + [proxy_new]
        inner_needed = max(0, len(proxy_candidates) - ctx.cache_size)
        if inner_needed == 0:
            inner_victims: list[StreamTuple] = []
        else:
            inner_victims = list(
                self._inner.select_victims(
                    proxy_candidates, inner_needed, inner_ctx
                )
            )
        by_value = {_original_value(c): c for c in cached_s}
        for inner_victim in inner_victims:
            self._inner.on_evict(inner_victim, t)
            if inner_victim.value == ref_value:
                victims.append(supply)
                self._proxies.pop(ref_value, None)
            else:
                victims.append(by_value[inner_victim.value])
                self._proxies.pop(inner_victim.value, None)
        if supply not in victims:
            self._inner.on_admit(proxy_new, t)
        return victims
