"""Replacement-policy interface shared by the join and cache simulators.

A policy is asked, at each time step, to pick victims among the candidate
tuples (cached tuples plus new arrivals), exactly as in the paper's
Section 3.3 formalization: the algorithm sees the cache ``K``, the new
arrivals ``N``, the observed history ``H``, and (optionally) the stream
models ``p``, and outputs the tuples *not* kept.

Policies may also receive notification hooks (admissions, evictions, and
references, i.e. join matches or cache hits) so that recency/frequency
bookkeeping such as LRU's does not require scanning histories.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional, Protocol, Sequence

from ..core.tuples import StreamTuple
from ..obs.recorder import NULL_RECORDER, Recorder
from ..streams.base import History, StreamModel, Value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..sketch import AdmissionFilter

__all__ = [
    "PolicyContext",
    "WindowOracle",
    "ReplacementPolicy",
    "ScoredPolicy",
    "validate_victims",
]


def validate_victims(
    policy_name: str,
    candidates: Sequence[StreamTuple],
    victims: Sequence[StreamTuple],
    n_evict: int,
) -> list[StreamTuple]:
    """Check a policy's victim selection against the eviction contract.

    Victims must be distinct, drawn from the candidate set, and number at
    least ``n_evict`` (returning more is allowed — evicting worthless
    tuples is never harmful).  Returns the victims as a list; raises
    :class:`ValueError` naming the offending policy otherwise.  Shared by
    every engine so all simulators reject malformed selections with the
    same diagnostics.
    """
    victims = list(victims)
    uids = {v.uid for v in victims}
    if len(uids) != len(victims):
        raise ValueError(f"{policy_name}: duplicate victims")
    if not uids <= {c.uid for c in candidates}:
        raise ValueError(f"{policy_name}: victim not a candidate")
    if len(victims) < n_evict:
        raise ValueError(
            f"{policy_name}: returned {len(victims)} victims, "
            f"needed {n_evict}"
        )
    return victims


class WindowOracle(Protocol):
    """Joinability window knowledge handed to window-aware heuristics.

    Section 6.2: "LIFE requires a sliding window to determine tuples'
    lifetimes ... we use the bound on the noise distribution as the
    sliding window.  We make RAND and PROB aware of this sliding window,
    too, so they always discard tuples outside the window first."
    """

    def is_dead(self, tup: StreamTuple, t: int) -> bool:
        """True when the tuple can no longer join any future arrival."""
        ...

    def remaining_life(self, tup: StreamTuple, t: int) -> int:
        """Number of future steps during which the tuple can still join."""
        ...


@dataclass
class PolicyContext:
    """Everything a policy may consult when choosing victims.

    The context is *partner-aware*: a binary R/S join is the 1-partner
    degenerate case of the general n-way topology.  When
    :attr:`partner_names` is ``None`` the context is binary and the
    classic ``r_*``/``s_*`` fields apply; when it is set (kind
    ``"multi_join"``), streams are addressed by name through
    :attr:`histories`/:attr:`models` and :meth:`partners_of` returns the
    partners each stream joins against.  Policies written against
    :meth:`partners_of`/:meth:`model_for`/:meth:`latest_history` work
    unchanged on both shapes.

    Attributes
    ----------
    kind:
        ``"join"`` (two-stream equijoin), ``"cache"`` (reference stream
        against a database relation), or ``"multi_join"`` (n-way).
    time:
        The current step ``t0``; the new arrivals of this step are already
        appended to the histories.
    cache_size:
        Capacity ``k`` in tuples.
    r_history / s_history:
        Observed values so far (indices are time steps).  For the caching
        problem, ``r_history`` is the reference stream and ``s_history``
        is empty.  Unused when :attr:`partner_names` is set.
    r_model / s_model:
        The stochastic models, when the policy is model-aware (HEEB,
        FlowExpect).  For caching, ``r_model`` is the reference model.
    window:
        Sliding-window length under Section-7 semantics, else ``None``.
    window_oracle:
        Value-window knowledge for the window-aware baselines.
    partner_names:
        For n-way topologies: stream name → names of the streams it
        joins against (one entry per query edge).  ``None`` marks a
        binary context.
    histories:
        For n-way topologies: stream name → observed values so far.
    models:
        For n-way topologies: stream name → stochastic model, when the
        policy is model-aware.
    recorder:
        Observability sink (:mod:`repro.obs`).  Defaults to the shared
        no-op recorder; policies emitting counters or trace events must
        guard on ``recorder.enabled`` / ``recorder.trace`` so disabled
        runs stay free.
    """

    kind: str
    time: int
    cache_size: int
    r_history: list[Value] = field(default_factory=list)
    s_history: list[Value] = field(default_factory=list)
    r_model: Optional[StreamModel] = None
    s_model: Optional[StreamModel] = None
    window: Optional[int] = None
    window_oracle: Optional[WindowOracle] = None
    #: ``(t, value)`` of each side's most recent non-"−" observation,
    #: maintained by :meth:`record_arrival`.  Markov-model anchoring
    #: (FlowExpect) reads these in O(1) instead of rescanning the
    #: history on every eviction.
    r_last_obs: Optional[tuple[int, int]] = None
    s_last_obs: Optional[tuple[int, int]] = None
    recorder: Recorder = NULL_RECORDER
    partner_names: Optional[Mapping[str, tuple[str, ...]]] = None
    histories: Optional[dict[str, list[Value]]] = None
    models: Optional[Mapping[str, StreamModel]] = None
    #: Per-stream ``(t, value)`` anchors for n-way contexts (the
    #: name-keyed analogue of ``r_last_obs``/``s_last_obs``).
    last_obs: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def is_multi(self) -> bool:
        """True for n-way (name-addressed) contexts."""
        return self.partner_names is not None

    def record_arrival(self, side: str, value: Value) -> None:
        """Append this step's arrival and update the last-observed anchor.

        Simulators must call this (with :attr:`time` already set to the
        current step) instead of appending to the history lists directly;
        it is what keeps :meth:`latest_history` incremental.  ``None``
        (the paper's "−") is recorded in the history but never becomes an
        anchor — a "−" tuple is an observation that carries no value to
        condition on.
        """
        if self.histories is not None:
            self.histories.setdefault(side, []).append(value)
            if value is not None:
                self.last_obs[side] = (self.time, value)
            return
        if side == "R":
            self.r_history.append(value)
            if value is not None:
                self.r_last_obs = (self.time, value)
        else:
            self.s_history.append(value)
            if value is not None:
                self.s_last_obs = (self.time, value)

    def latest_history(self, side: str) -> Optional[History]:
        """Anchor for ``side``'s Markov model: its latest non-"−" value.

        O(1) via the counters :meth:`record_arrival` maintains.  Falls
        back to one backward scan for hand-built contexts whose histories
        were populated directly (the scan can only run while no arrival
        has ever been recorded, so it cannot reintroduce the per-eviction
        rescans this replaces).
        """
        if self.histories is not None:
            obs = self.last_obs.get(side)
        else:
            obs = self.r_last_obs if side == "R" else self.s_last_obs
        if obs is None:
            values = self.history_for(side)
            for t in range(min(self.time, len(values) - 1), -1, -1):
                if values[t] is not None:
                    obs = (t, values[t])
                    break
            if obs is None:
                return None
        return History(now=obs[0], last_value=obs[1])

    def history_for(self, side: str) -> list[Value]:
        if self.histories is not None:
            return self.histories.setdefault(side, [])
        return self.r_history if side == "R" else self.s_history

    def partner_history(self, side: str) -> list[Value]:
        """History of the stream that tuples from ``side`` join against."""
        if self.histories is not None:
            partners = self.partners_of(side)
            return self.history_for(partners[0]) if partners else []
        return self.s_history if side == "R" else self.r_history

    def partner_model(self, side: str) -> Optional[StreamModel]:
        if self.histories is not None:
            partners = self.partners_of(side)
            return self.model_for(partners[0]) if partners else None
        return self.s_model if side == "R" else self.r_model

    def partners_of(self, side: str) -> tuple[str, ...]:
        """Names of the streams that ``side`` tuples join against.

        The binary join degenerates to a single partner: ``R`` joins
        ``S`` and vice versa.
        """
        if self.partner_names is not None:
            return tuple(self.partner_names.get(side, ()))
        return ("S",) if side == "R" else ("R",)

    def model_for(self, name: str) -> Optional[StreamModel]:
        """Model of stream ``name`` (binary names are ``"R"``/``"S"``)."""
        if self.partner_names is not None:
            return None if self.models is None else self.models.get(name)
        return self.r_model if name == "R" else self.s_model


class ReplacementPolicy(abc.ABC):
    """Base class for all cache replacement policies."""

    #: Human-readable name used in experiment reports.
    name: str = "policy"

    def reset(self, ctx: PolicyContext) -> None:
        """Called once before a run starts; clear any per-run state."""

    @abc.abstractmethod
    def select_victims(
        self,
        candidates: Sequence[StreamTuple],
        n_evict: int,
        ctx: PolicyContext,
    ) -> list[StreamTuple]:
        """Choose at least ``n_evict`` candidates to discard.

        Returning more than ``n_evict`` victims is allowed (evicting
        tuples known to be worthless is never harmful); returning fewer
        is an error the simulator rejects.
        """

    # -- sketch-state hooks (default no-ops) ---------------------------
    def sketch_state(self) -> Optional[dict[str, Any]]:
        """Bounded-memory sketch state to carry across a reshard.

        ``None`` means the policy has no sketch state (the exact
        policies); otherwise the returned mapping is fed to every
        successor policy's :meth:`merge_sketch_state` so frequency and
        admission history survive shard rebuilds.
        """
        return None

    def merge_sketch_state(self, state: Optional[dict[str, Any]]) -> None:
        """Fold a retiring policy's :meth:`sketch_state` into this one."""

    # -- notification hooks (default no-ops) ---------------------------
    def on_admit(self, tup: StreamTuple, t: int) -> None:
        """A tuple entered the cache at step ``t``."""

    def on_evict(self, tup: StreamTuple, t: int) -> None:
        """A tuple left the cache at step ``t``."""

    def on_reference(self, tup: StreamTuple, t: int) -> None:
        """A cached tuple joined a new arrival / produced a hit at ``t``."""


class ScoredPolicy(ReplacementPolicy):
    """A policy that evicts the ``n`` lowest-scoring candidates.

    Subclasses implement :meth:`score`; higher scores mean more worth
    keeping.  Ties break deterministically by tuple uid (oldest first) so
    runs are reproducible.

    An optional :class:`~repro.sketch.AdmissionFilter` can be attached
    with :meth:`with_admission`; new arrivals whose score cannot clear
    the filter's running eviction-cutoff EMA are then returned as extra
    victims (the ``validate_victims`` contract allows over-eviction), so
    every scored policy gains admission control without per-policy code.
    """

    #: Opt-in admission front-end; ``None`` keeps the exact seed-for-seed
    #: eviction path byte-identical to previous releases.
    admission: "AdmissionFilter | None" = None

    def with_admission(self, admission: "AdmissionFilter") -> "ScoredPolicy":
        """Attach an admission front-end; returns ``self`` for chaining."""
        self.admission = admission
        return self

    def sketch_state(self) -> Optional[dict[str, Any]]:
        """Expose the admission filter for merge-on-reshard."""
        if self.admission is None:
            return None
        return {"admission": self.admission}

    def merge_sketch_state(self, state: Optional[dict[str, Any]]) -> None:
        """Merge a retiring shard's admission filter into ours."""
        if not state:
            return
        donor = state.get("admission")
        if (
            donor is not None
            and self.admission is not None
            and donor is not self.admission
        ):
            self.admission.merge(donor)

    @abc.abstractmethod
    def score(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        """Desirability of keeping ``tup`` (higher is better)."""

    def select_victims(
        self,
        candidates: Sequence[StreamTuple],
        n_evict: int,
        ctx: PolicyContext,
    ) -> list[StreamTuple]:
        if self.admission is not None:
            return self._select_with_admission(candidates, n_evict, ctx)
        if n_evict <= 0:
            return []
        rec = ctx.recorder
        if rec.enabled:
            scored = [(self.score(tup, ctx), tup.uid, tup) for tup in candidates]
            if rec.trace:
                # Snapshot every candidate's score (the per-candidate
                # ECB/HEEB values for the model-aware policies) before
                # ranking, so a trace can answer "why was X evicted at t?".
                rec.event(
                    "scores",
                    ctx.time,
                    policy=self.name,
                    candidates=[
                        {
                            "uid": tup.uid,
                            "side": tup.side,
                            "value": tup.value,
                            "score": score,
                        }
                        for score, _, tup in scored
                    ],
                )
            ranked = sorted(scored)
            # Eviction threshold over time: the best score that still got
            # evicted.  The batch engine mirrors this series for every
            # exactly-scored adapter (trace events stay scalar-only).
            rec.series("scores.cutoff", ctx.time, ranked[n_evict - 1][0])
            return [tup for _, _, tup in ranked[:n_evict]]
        ranked = sorted(
            candidates, key=lambda tup: (self.score(tup, ctx), tup.uid)
        )
        return ranked[:n_evict]

    def _select_with_admission(
        self,
        candidates: Sequence[StreamTuple],
        n_evict: int,
        ctx: PolicyContext,
    ) -> list[StreamTuple]:
        """Eviction with the admission front-end in the loop.

        New arrivals (``tup.arrival == ctx.time``) are screened first:
        a rejected arrival becomes an extra victim, shrinking (or
        eliminating) the ranked eviction pass.  The ranked pass feeds
        its marginal-survivor score back into the filter's cutoff EMA,
        so admission thresholds track whatever the policy currently
        considers worth keeping.
        """
        admission = self.admission
        assert admission is not None
        t = ctx.time
        rec = ctx.recorder
        new_scores: dict[int, float] = {}
        rejected: list[StreamTuple] = []
        for tup in candidates:
            if tup.arrival == t:
                score = self.score(tup, ctx)
                new_scores[tup.uid] = score
                if not admission.admit(tup.value, score):
                    rejected.append(tup)
        victims = list(rejected)
        n_more = n_evict - len(rejected)
        if n_more > 0:
            rejected_uids = {tup.uid for tup in rejected}
            scored = [
                (
                    new_scores[tup.uid]
                    if tup.uid in new_scores
                    else self.score(tup, ctx),
                    tup.uid,
                    tup,
                )
                for tup in candidates
                if tup.uid not in rejected_uids
            ]
            ranked = sorted(scored)
            cutoff = ranked[n_more - 1][0]
            admission.update_cutoff(cutoff)
            if rec.enabled:
                rec.series("scores.cutoff", t, cutoff)
            victims.extend(tup for _, _, tup in ranked[:n_more])
        if rec.enabled:
            rec.series("admission.rejects.cum", t, admission.rejects)
            rec.series("sketch.fp_rate", t, admission.fp_rate())
        return victims
