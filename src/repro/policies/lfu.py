"""LFU: evict the least frequently referenced value.

The "perfect" LFU of Section 6.5: a tuple's frequency is the total number
of references to its value so far (not just while cached).  On the
caching problem this coincides with PROB -- the paper's REAL experiment
labels the policy "PROB (essentially LFU in this case)" -- so LFU is a
thin, separately named wrapper over :class:`~repro.policies.prob.ProbPolicy`
to keep reports readable.
"""

from __future__ import annotations

from .prob import ProbPolicy

__all__ = ["LfuPolicy"]


class LfuPolicy(ProbPolicy):
    name = "LFU"
