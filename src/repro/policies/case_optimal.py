"""Provably optimal policies derived from dominance analysis (Section 5).

Two scenario-specific algorithms the framework proves optimal:

* :class:`SmallestValueFirstPolicy` -- caching with a non-decreasing
  trend and right-bounded noise (Section 5.3): the reference window moves
  right, so dominance totally orders database tuples by value and
  discarding the smallest is optimal.
* :class:`FarthestFromReferencePolicy` -- caching with a zero-drift
  random walk whose steps follow a symmetric unimodal distribution
  (Section 5.5): all ECBs are ranked by distance from the latest
  reference, so discarding the farthest value is optimal.

Both are used in tests to confirm that HEEB agrees with optimal decisions
whenever dominance applies (Theorem 4).
"""

from __future__ import annotations

from ..core.tuples import StreamTuple
from .base import PolicyContext, ScoredPolicy

__all__ = ["SmallestValueFirstPolicy", "FarthestFromReferencePolicy"]


class SmallestValueFirstPolicy(ScoredPolicy):
    """Evict the cached tuple with the smallest join-attribute value."""

    name = "SMALLEST-VALUE"

    def score(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        return float(tup.value)


class FarthestFromReferencePolicy(ScoredPolicy):
    """Evict the tuple farthest from the most recent reference value."""

    name = "FARTHEST"

    def score(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        history = ctx.r_history
        current = None
        for v in reversed(history):
            if v is not None:
                current = v
                break
        if current is None:
            return 0.0
        return -abs(float(tup.value) - float(current))
