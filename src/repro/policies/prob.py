"""PROB: discard the tuple least likely to join, by observed frequency.

PROB (Das, Gehrke, Riedewald [8]) estimates a tuple's match probability
from the historical frequency of its join value in the partner stream and
evicts the least frequent.  Section 5.2 proves this is optimal for
stationary, independent streams; Section 6.3 shows it fails under trends
because "the past is used to predict the future in a simplistic manner".

On the caching problem the same rule counts value frequencies in the
reference stream, which is exactly perfect LFU (the paper labels the REAL
experiment's variant "PROB (essentially LFU in this case)").

With a window oracle, dead tuples are evicted first (Section 6.2).

Frequency state is exact by default (an unbounded ``Counter``); the
``counts="sketch"`` / ``counts="tinylfu"`` knobs swap in the bounded
:mod:`repro.sketch` back-ends so PROB/LFU scale to value domains far
larger than memory -- estimates can then over-count (count-min is
one-sided), which is the documented exact-vs-sketch parity caveat.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional, Union

from ..core.tuples import StreamTuple
from ..sketch import CountMinSketch, TinyLfuFilter
from .base import PolicyContext, ScoredPolicy

__all__ = ["ProbPolicy"]

#: Score penalty that forces window-dead tuples below every live tuple.
_DEAD_PENALTY = 1e18


class _ExactCounts(Counter):
    """Unbounded exact counter speaking the sketch increment protocol."""

    def increment(self, value, by: int = 1) -> None:
        """Add ``by`` occurrences of ``value``."""
        self[value] += by


#: Shared empty counter so multi-join frequency lookups on streams with
#: no recorded arrivals allocate nothing.
_EMPTY_COUNTER: _ExactCounts = _ExactCounts()

_Counts = Union[_ExactCounts, CountMinSketch, TinyLfuFilter]

_COUNT_MODES = ("exact", "sketch", "tinylfu")


class ProbPolicy(ScoredPolicy):
    name = "PROB"

    def __init__(
        self,
        counts: str = "exact",
        sketch_width: int = 2048,
        sketch_depth: int = 4,
        sample_size: Optional[int] = None,
    ) -> None:
        """``counts`` selects the frequency back-end.

        ``"exact"`` (default) keeps the byte-identical ``Counter`` path;
        ``"sketch"`` backs counts with a :class:`CountMinSketch` and
        ``"tinylfu"`` with a :class:`TinyLfuFilter` (doorkeeper +
        periodic halving), both in O(width x depth) memory.
        """
        if counts not in _COUNT_MODES:
            raise ValueError(
                f"counts must be one of {_COUNT_MODES}, got {counts!r}"
            )
        self.counts = counts
        self._sketch_width = sketch_width
        self._sketch_depth = sketch_depth
        self._sample_size = sample_size
        self._r_counts: _Counts = self._make_counts()
        self._s_counts: _Counts = self._make_counts()
        self._r_consumed = 0
        self._s_consumed = 0
        # Name-keyed counters for n-way contexts (binary contexts keep
        # the dedicated R/S pair above untouched).
        self._multi_counts: dict[str, _Counts] = {}
        self._multi_consumed: dict[str, int] = {}

    def _make_counts(self) -> _Counts:
        if self.counts == "sketch":
            return CountMinSketch(
                width=self._sketch_width, depth=self._sketch_depth
            )
        if self.counts == "tinylfu":
            return TinyLfuFilter(
                width=self._sketch_width,
                depth=self._sketch_depth,
                sample_size=self._sample_size,
            )
        return _ExactCounts()

    def reset(self, ctx: PolicyContext) -> None:
        self._r_counts = self._make_counts()
        self._s_counts = self._make_counts()
        self._r_consumed = 0
        self._s_consumed = 0
        self._multi_counts = {}
        self._multi_consumed = {}

    def _sync_counts(self, ctx: PolicyContext) -> None:
        """Fold newly observed history entries into the frequency counters.

        R and S consumption is tracked with *independent* cursors: the
        simulators feed equal-length histories, but partner-aware and
        replayed contexts may not, and a single shared cursor silently
        skipped ``s_history`` entries past ``len(r_history)`` forever.
        """
        consumed = False
        if ctx.histories is not None:
            for name, history in ctx.histories.items():
                counts = self._multi_counts.setdefault(
                    name, self._make_counts()
                )
                start = self._multi_consumed.get(name, 0)
                n = len(history)
                for t in range(start, n):
                    v = history[t]
                    if v is not None:
                        counts.increment(v)
                if n > start:
                    consumed = True
                self._multi_consumed[name] = n
        else:
            r_hist, s_hist = ctx.r_history, ctx.s_history
            n_r = len(r_hist)
            for t in range(self._r_consumed, n_r):
                v = r_hist[t]
                if v is not None:
                    self._r_counts.increment(v)
            n_s = len(s_hist)
            for t in range(self._s_consumed, n_s):
                w = s_hist[t]
                if w is not None:
                    self._s_counts.increment(w)
            consumed = n_r > self._r_consumed or n_s > self._s_consumed
            self._r_consumed = n_r
            self._s_consumed = n_s
        if consumed and self.counts != "exact" and ctx.recorder.enabled:
            ctx.recorder.series("sketch.fill", ctx.time, self._sketch_fill())

    def _active_sketches(self) -> list[_Counts]:
        if self._multi_counts:
            return list(self._multi_counts.values())
        return [self._r_counts, self._s_counts]

    def _sketch_fill(self) -> float:
        """Mean fill ratio over the sketches that have absorbed events."""
        fills = [
            sk.fill_ratio()
            for sk in self._active_sketches()
            if not isinstance(sk, _ExactCounts) and sk.total > 0
        ]
        return sum(fills) / len(fills) if fills else 0.0

    def sketch_memory_bytes(self) -> int:
        """Bytes held by the sketch back-ends (0 in exact mode)."""
        return sum(
            sk.memory_bytes()
            for sk in self._active_sketches()
            if not isinstance(sk, _ExactCounts)
        )

    # -- merge-on-reshard -----------------------------------------------
    def sketch_state(self) -> Optional[dict[str, Any]]:
        """Admission filter plus (in sketch modes) the frequency state."""
        state = super().sketch_state() or {}
        if self.counts != "exact":
            state["counts"] = {
                "mode": self.counts,
                "r": self._r_counts,
                "s": self._s_counts,
                "multi": dict(self._multi_counts),
            }
        return state or None

    def merge_sketch_state(self, state: Optional[dict[str, Any]]) -> None:
        """Fold a retiring policy's sketches into this one's."""
        super().merge_sketch_state(state)
        if not state:
            return
        donor = state.get("counts")
        if donor is None or self.counts == "exact":
            return
        if donor.get("mode") != self.counts:
            return
        if donor["r"] is not self._r_counts:
            self._r_counts.merge(donor["r"])
        if donor["s"] is not self._s_counts:
            self._s_counts.merge(donor["s"])
        for name, counts in donor["multi"].items():
            mine = self._multi_counts.setdefault(name, self._make_counts())
            if mine is not counts:
                mine.merge(counts)

    def frequency(self, tup: StreamTuple, ctx: PolicyContext) -> int:
        """Observed occurrences of the tuple's value in the stream it matches.

        On n-way topologies a tuple matches arrivals of *every* partner
        stream, so its frequency sums the partner counts.
        """
        if ctx.histories is not None:
            return sum(
                self._multi_counts.get(name, _EMPTY_COUNTER)[tup.value]
                for name in ctx.partners_of(tup.side)
            )
        if ctx.kind == "cache":
            # Database tuples are referenced by the reference stream R.
            return self._r_counts[tup.value]
        counts = self._s_counts if tup.side == "R" else self._r_counts
        return counts[tup.value]

    def score(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        self._sync_counts(ctx)
        score = float(self.frequency(tup, ctx))
        oracle = ctx.window_oracle
        if oracle is not None and oracle.is_dead(tup, ctx.time):
            score -= _DEAD_PENALTY
        return score
