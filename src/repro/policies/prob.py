"""PROB: discard the tuple least likely to join, by observed frequency.

PROB (Das, Gehrke, Riedewald [8]) estimates a tuple's match probability
from the historical frequency of its join value in the partner stream and
evicts the least frequent.  Section 5.2 proves this is optimal for
stationary, independent streams; Section 6.3 shows it fails under trends
because "the past is used to predict the future in a simplistic manner".

On the caching problem the same rule counts value frequencies in the
reference stream, which is exactly perfect LFU (the paper labels the REAL
experiment's variant "PROB (essentially LFU in this case)").

With a window oracle, dead tuples are evicted first (Section 6.2).
"""

from __future__ import annotations

from collections import Counter

from ..core.tuples import StreamTuple
from .base import PolicyContext, ScoredPolicy

__all__ = ["ProbPolicy"]

#: Score penalty that forces window-dead tuples below every live tuple.
_DEAD_PENALTY = 1e18

#: Shared empty counter so multi-join frequency lookups on streams with
#: no recorded arrivals allocate nothing.
_EMPTY_COUNTER: Counter = Counter()


class ProbPolicy(ScoredPolicy):
    name = "PROB"

    def __init__(self) -> None:
        self._r_counts: Counter = Counter()
        self._s_counts: Counter = Counter()
        self._consumed = 0
        # Name-keyed counters for n-way contexts (binary contexts keep
        # the dedicated R/S pair above untouched).
        self._multi_counts: dict[str, Counter] = {}
        self._multi_consumed: dict[str, int] = {}

    def reset(self, ctx: PolicyContext) -> None:
        self._r_counts = Counter()
        self._s_counts = Counter()
        self._consumed = 0
        self._multi_counts = {}
        self._multi_consumed = {}

    def _sync_counts(self, ctx: PolicyContext) -> None:
        """Fold newly observed history entries into the frequency counters."""
        if ctx.histories is not None:
            for name, history in ctx.histories.items():
                counts = self._multi_counts.setdefault(name, Counter())
                start = self._multi_consumed.get(name, 0)
                for t in range(start, len(history)):
                    v = history[t]
                    if v is not None:
                        counts[v] += 1
                self._multi_consumed[name] = len(history)
            return
        r_hist, s_hist = ctx.r_history, ctx.s_history
        n = len(r_hist)
        for t in range(self._consumed, n):
            v = r_hist[t]
            if v is not None:
                self._r_counts[v] += 1
            if t < len(s_hist):
                w = s_hist[t]
                if w is not None:
                    self._s_counts[w] += 1
        self._consumed = n

    def frequency(self, tup: StreamTuple, ctx: PolicyContext) -> int:
        """Observed occurrences of the tuple's value in the stream it matches.

        On n-way topologies a tuple matches arrivals of *every* partner
        stream, so its frequency sums the partner counts.
        """
        if ctx.histories is not None:
            return sum(
                self._multi_counts.get(name, _EMPTY_COUNTER)[tup.value]
                for name in ctx.partners_of(tup.side)
            )
        if ctx.kind == "cache":
            # Database tuples are referenced by the reference stream R.
            return self._r_counts[tup.value]
        counts = self._s_counts if tup.side == "R" else self._r_counts
        return counts[tup.value]

    def score(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        self._sync_counts(ctx)
        score = float(self.frequency(tup, ctx))
        oracle = ctx.window_oracle
        if oracle is not None and oracle.is_dead(tup, ctx.time):
            score -= _DEAD_PENALTY
        return score
