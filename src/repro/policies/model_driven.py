"""Self-configuring HEEB: identify the input models online, then exploit
them.

The paper's framework needs "known or observed statistical properties of
input streams"; this policy closes the loop for deployments where nothing
is known a priori.  It watches the observed history, periodically runs
the model classifier (:mod:`repro.analysis.detection`) on both streams,
instantiates the scenario-appropriate HEEB strategy (trend table, walk
``h1`` table, or the generic direct sum), and recalibrates α from
observed eviction lifetimes.  Before enough history has accumulated it
falls back to PROB, which needs no model.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from ..analysis.detection import detect_model
from ..core.lifetime import LExp, alpha_for_mean_lifetime
from ..core.tuples import StreamTuple
from ..streams.ar1 import AR1Stream
from ..streams.base import StreamModel, Value
from ..streams.linear_trend import LinearTrendStream
from ..streams.random_walk import RandomWalkStream
from .base import PolicyContext, ReplacementPolicy
from .heeb_policy import (
    GenericJoinHeeb,
    HeebStrategy,
    TrendJoinHeeb,
    WalkJoinHeeb,
)
from .prob import ProbPolicy

__all__ = ["ModelDrivenHeebPolicy"]


def _ar1_join_strategy(partner: AR1Stream, estimator, horizon: int):
    """Precompute a Theorem-5 joining surface against one AR(1) partner."""
    from ..core.precompute import ar1_h2_join
    from .heeb_policy import AR1JoinHeeb

    center = partner.stationary_mean
    half = 4.0 * partner.stationary_std
    v_grid = np.linspace(
        partner.to_bucket(center - half), partner.to_bucket(center + half), 7
    ).round()
    x_grid = np.linspace(center - half, center + half, 7)
    surface = ar1_h2_join(partner, estimator, v_grid, x_grid, horizon)
    return AR1JoinHeeb(partner, surface)


class _PerSideStrategy:
    """Dispatches H computation to a per-stream-side strategy."""

    def __init__(self, by_side: dict):
        self._by_side = by_side

    def reset(self, ctx) -> None:
        for strategy in self._by_side.values():
            strategy.reset(ctx)

    def h_value(self, tup, ctx) -> float:
        return self._by_side[tup.side].h_value(tup, ctx)


class ModelDrivenHeebPolicy(ReplacementPolicy):
    """HEEB that fits its own stream models from the observed history.

    Parameters
    ----------
    min_history:
        Observations per stream required before the first fit; PROB is
        used until then.
    refit_every:
        Steps between model refits.
    initial_alpha:
        α used until lifetime observations accumulate.
    horizon:
        Horizon cap for the generic strategy.
    """

    name = "HEEB-AUTO"

    def __init__(
        self,
        min_history: int = 120,
        refit_every: int = 400,
        initial_alpha: float = 10.0,
        horizon: int = 200,
        lifetime_smoothing: float = 0.05,
    ):
        if min_history < 20:
            raise ValueError("min_history must be >= 20 (classifier minimum)")
        if refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        self._min_history = int(min_history)
        self._refit_every = int(refit_every)
        self._initial_alpha = float(initial_alpha)
        self._horizon = int(horizon)
        self._smoothing = float(lifetime_smoothing)
        self._reset_state()

    def _reset_state(self) -> None:
        self._cold_start = ProbPolicy()
        self._strategy: HeebStrategy | None = None
        self._r_model: StreamModel | None = None
        self._s_model: StreamModel | None = None
        self._last_fit_at = -(10**9)
        self._mean_lifetime: float | None = None
        self.alpha = self._initial_alpha
        self.refits = 0
        #: Diagnoses of the most recent fit, for introspection.
        self.kinds: tuple[str, str] | None = None

    # ------------------------------------------------------------------
    def reset(self, ctx: PolicyContext) -> None:
        self._reset_state()
        self._cold_start.reset(ctx)

    def on_evict(self, tup: StreamTuple, t: int) -> None:
        lifetime = max(1, t - tup.arrival)
        if self._mean_lifetime is None:
            self._mean_lifetime = float(lifetime)
        else:
            self._mean_lifetime += self._smoothing * (
                lifetime - self._mean_lifetime
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _clean(history: Sequence[Value]) -> np.ndarray:
        return np.array([v for v in history if v is not None], dtype=float)

    def _current_alpha(self) -> float:
        if self._mean_lifetime is None or self._mean_lifetime <= 1.05:
            return self._initial_alpha
        return alpha_for_mean_lifetime(self._mean_lifetime)

    def _strategy_for(
        self, r_model: StreamModel, s_model: StreamModel
    ) -> HeebStrategy:
        estimator = LExp(self._current_alpha())
        if isinstance(r_model, LinearTrendStream) and isinstance(
            s_model, LinearTrendStream
        ):
            return TrendJoinHeeb(estimator)
        if isinstance(r_model, RandomWalkStream) and isinstance(
            s_model, RandomWalkStream
        ):
            horizon = min(self._horizon, estimator.suggested_horizon(1e-6))
            return WalkJoinHeeb(estimator, horizon=horizon)
        if isinstance(r_model, AR1Stream) and isinstance(s_model, AR1Stream):
            horizon = min(self._horizon, estimator.suggested_horizon(1e-6))
            return _PerSideStrategy(
                {
                    # A tuple from R joins S arrivals and vice versa.
                    "R": _ar1_join_strategy(s_model, estimator, horizon),
                    "S": _ar1_join_strategy(r_model, estimator, horizon),
                }
            )
        return GenericJoinHeeb(estimator, horizon=self._horizon)

    def _maybe_refit(self, ctx: PolicyContext) -> None:
        r_clean = self._clean(ctx.r_history)
        s_clean = self._clean(ctx.s_history)
        if min(r_clean.size, s_clean.size) < self._min_history:
            return
        if ctx.time - self._last_fit_at < self._refit_every:
            return
        try:
            r_model = detect_model(r_clean)
            s_model = detect_model(s_clean)
        except ValueError:
            return  # classifier could not commit; keep the previous setup
        self._r_model, self._s_model = r_model, s_model
        self.alpha = self._current_alpha()
        self._strategy = self._strategy_for(r_model, s_model)
        self._strategy.reset(ctx)
        self._last_fit_at = ctx.time
        self.refits += 1
        self.kinds = (type(r_model).__name__, type(s_model).__name__)

    # ------------------------------------------------------------------
    def select_victims(
        self,
        candidates: Sequence[StreamTuple],
        n_evict: int,
        ctx: PolicyContext,
    ) -> list[StreamTuple]:
        if n_evict <= 0:
            return []
        self._maybe_refit(ctx)
        if self._strategy is None:
            return self._cold_start.select_victims(candidates, n_evict, ctx)
        shadow = replace(ctx, r_model=self._r_model, s_model=self._s_model)
        ranked = sorted(
            candidates,
            key=lambda tup: (self._strategy.h_value(tup, shadow), tup.uid),
        )
        return ranked[:n_evict]
