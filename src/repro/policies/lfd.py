"""LFD: Longest Forward Distance -- the optimal offline caching policy.

Belady's algorithm [5]: evict the tuple whose value will not be
referenced for the longest time.  Section 5.1 derives it from the
framework: with an offline reference stream every caching ECB is a
single-step function jumping at the tuple's next reference, dominance
totally orders the candidates, and Theorem 3 makes the farthest-reference
eviction optimal.

The policy precomputes, for each position in the reference sequence, the
next occurrence of each value (one backwards pass), so scoring is O(1).
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..core.tuples import StreamTuple
from .base import PolicyContext, ScoredPolicy

__all__ = ["LfdPolicy"]


class LfdPolicy(ScoredPolicy):
    name = "LFD"

    def __init__(self, reference: Sequence[Hashable]):
        self._reference = list(reference)
        n = len(self._reference)
        #: next_ref[t] = first time > t at which reference[?] == value of
        #: the tuple referenced at t... we need per (t, value) lookups, so
        #: store, for each time t, the next occurrence of reference[t]
        #: after t, and for scoring use a per-value sorted occurrence list.
        self._occurrences: dict[Hashable, list[int]] = {}
        for t in range(n):
            v = self._reference[t]
            if v is not None:
                self._occurrences.setdefault(v, []).append(t)
        self._cursor: dict[Hashable, int] = {}

    def reset(self, ctx: PolicyContext) -> None:
        self._cursor = {}

    def _next_occurrence(self, value: Hashable, after: int) -> float:
        """First reference to ``value`` strictly after time ``after``."""
        occs = self._occurrences.get(value)
        if not occs:
            return float("inf")
        # Advance a per-value cursor; time only moves forward within a run.
        i = self._cursor.get(value, 0)
        while i < len(occs) and occs[i] <= after:
            i += 1
        self._cursor[value] = i
        return float(occs[i]) if i < len(occs) else float("inf")

    def score(self, tup: StreamTuple, ctx: PolicyContext) -> float:
        # Farthest next reference => evict first => lowest score.
        return -self._next_occurrence(tup.value, ctx.time)
